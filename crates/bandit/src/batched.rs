//! Batched GP-UCB (GP-BUCB) — the "parallel Gaussian Process" direction the
//! paper's §6 cites (Desautels, Krause & Burdick, JMLR 2014) as the key to
//! extending ease.ml's resource model from a single device to many.
//!
//! When `B` training runs must be dispatched before any of their rewards
//! come back, naive GP-UCB would pick the same argmax `B` times. GP-BUCB
//! instead *hallucinates* each selected arm's observation at its current
//! posterior mean: the hallucination leaves the posterior mean unchanged
//! but shrinks the variance, so subsequent selections within the batch are
//! pushed towards diverse, still-uncertain arms.

use crate::beta::BetaSchedule;
use crate::gp_ucb::{ArmExplanation, ScoredArm};
use easeml_gp::{ArmPrior, GpPosterior};
use easeml_linalg::vec_ops;
use easeml_obs::{top_k_indices, Component, Event, RecorderHandle};

/// Batched GP-UCB selection with hallucinated updates.
///
/// # Examples
///
/// ```
/// use easeml_bandit::{BetaSchedule, GpBucb};
/// use easeml_gp::ArmPrior;
///
/// let beta = BetaSchedule::Simple { num_arms: 3, delta: 0.1 };
/// let mut policy = GpBucb::new(ArmPrior::independent(3, 1.0), 1e-3, beta);
/// // Dispatch a batch of two runs before any reward returns.
/// let a = policy.select_next();
/// let b = policy.select_next();
/// assert_ne!(a, b, "hallucination diversifies the batch");
/// policy.resolve(a, 0.9);
/// policy.resolve(b, 0.4);
/// assert_eq!(policy.best_observed(), Some((a, 0.9)));
/// ```
#[derive(Debug, Clone)]
pub struct GpBucb {
    /// The real posterior, fed only by true observations.
    real: GpPosterior,
    /// The hallucinated posterior used for in-batch selection.
    halluc: GpPosterior,
    beta: BetaSchedule,
    costs: Option<Vec<f64>>,
    /// True observations so far (drives β).
    t: usize,
    /// Arms selected in the current batch, pending their true rewards,
    /// in dispatch order.
    pending: Vec<usize>,
    /// Disabled by default; [`GpBucb::with_recorder`] attaches a sink that
    /// receives an `ArmChosen` per selection.
    recorder: RecorderHandle,
    /// User id stamped on emitted events (0 until a recorder is attached).
    owner: usize,
}

impl GpBucb {
    /// Creates a cost-oblivious batched policy.
    pub fn new(prior: ArmPrior, noise_var: f64, beta: BetaSchedule) -> Self {
        let real = GpPosterior::new(prior, noise_var);
        GpBucb {
            halluc: real.clone(),
            real,
            beta,
            costs: None,
            t: 0,
            pending: Vec::new(),
            recorder: RecorderHandle::noop(),
            owner: 0,
        }
    }

    /// Attaches a recorder; `owner` is the user id stamped on the emitted
    /// events. Builder-style counterpart of [`GpBucb::set_recorder`].
    pub fn with_recorder(mut self, recorder: RecorderHandle, owner: usize) -> Self {
        self.set_recorder(recorder, owner);
        self
    }

    /// Attaches (or, with a noop handle, detaches) a recorder; `owner` is
    /// the user id stamped on the emitted events.
    pub fn set_recorder(&mut self, recorder: RecorderHandle, owner: usize) {
        self.recorder = recorder;
        self.owner = owner;
    }

    /// Adds per-arm costs (the §3.2 twist applied within batches).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or non-positive costs.
    pub fn with_costs(mut self, costs: Vec<f64>) -> Self {
        assert_eq!(
            costs.len(),
            self.real.num_arms(),
            "one cost per arm is required"
        );
        assert!(costs.iter().all(|&c| c > 0.0), "costs must be positive");
        self.costs = Some(costs);
        self
    }

    /// Number of arms.
    pub fn num_arms(&self) -> usize {
        self.real.num_arms()
    }

    /// Arms selected but not yet resolved with a true reward.
    pub fn pending(&self) -> &[usize] {
        &self.pending
    }

    /// The real (non-hallucinated) posterior.
    pub fn posterior(&self) -> &GpPosterior {
        &self.real
    }

    /// The hallucinated posterior driving in-batch selection. Equal to
    /// [`GpBucb::posterior`] whenever no arms are pending.
    pub fn hallucinated(&self) -> &GpPosterior {
        &self.halluc
    }

    fn cost(&self, arm: usize) -> f64 {
        self.costs.as_ref().map_or(1.0, |c| c[arm])
    }

    /// Selects the next arm of the batch and hallucinates its outcome
    /// (records the current posterior mean as a fake observation).
    ///
    /// Runs under a `pick_arm` span; the emitted [`Event::ArmChosen`]
    /// carries the hallucinated mean and standard deviation the selection
    /// actually scored, so traces show the in-batch state.
    pub fn select_next(&mut self) -> usize {
        let _span = self.recorder.span("pick_arm");
        let _timing = self.recorder.time(Component::ArmSelect);
        let beta = self.beta.at(self.t + self.pending.len() + 1);
        let scores: Vec<f64> = (0..self.num_arms())
            .map(|k| self.halluc.mean(k) + (beta / self.cost(k)).sqrt() * self.halluc.std(k))
            .collect();
        let arm = vec_ops::argmax(&scores).expect("at least one arm");
        self.recorder.emit(|| Event::ArmChosen {
            user: self.owner,
            arm,
            ucb: scores[arm],
            beta,
            cost: self.cost(arm),
            mean: self.halluc.mean(arm),
            sigma: self.halluc.std(arm),
            parent: easeml_obs::current_span(),
        });
        let fake = self.halluc.mean(arm);
        self.halluc.observe(arm, fake);
        self.pending.push(arm);
        arm
    }

    /// Read-only why-chain for the *next* [`GpBucb::select_next`]: the arm
    /// it would pick, the winning margin, and the top-K runners-up scored on
    /// the hallucinated posterior with the batch-aware β. Does not
    /// hallucinate, emit events, or grow the pending batch — call it just
    /// before `select_next` to capture the decision's provenance.
    pub fn explain_next(&self, k: usize) -> ArmExplanation {
        let beta = self.beta.at(self.t + self.pending.len() + 1);
        let scores: Vec<f64> = (0..self.num_arms())
            .map(|a| self.halluc.mean(a) + (beta / self.cost(a)).sqrt() * self.halluc.std(a))
            .collect();
        let ranked = top_k_indices(&scores, k.max(1));
        let chosen = vec_ops::argmax(&scores).expect("at least one arm");
        let margin = if scores.len() >= 2 {
            let runner_up = ranked
                .get(1)
                .map(|&a| scores[a])
                .unwrap_or(f64::NEG_INFINITY);
            scores[chosen] - runner_up
        } else {
            f64::NAN
        };
        let top = ranked
            .into_iter()
            .map(|arm| ScoredArm {
                arm,
                mean: self.halluc.mean(arm),
                sigma: self.halluc.std(arm),
                ucb: scores[arm],
                masked: false,
            })
            .collect();
        ArmExplanation {
            chosen,
            margin,
            top,
        }
    }

    /// Rebuilds the hallucinated posterior: the real posterior plus a fake
    /// mean-observation per pending arm, in dispatch order.
    fn rebuild_halluc(&mut self) {
        let mut h = self.real.clone();
        for &a in &self.pending {
            let fake = h.mean(a);
            h.observe(a, fake);
        }
        self.halluc = h;
    }

    /// Resolves one pending arm with its true reward. The hallucinated
    /// posterior is rebuilt from the real one so the resolved fake does not
    /// linger; remaining pending arms keep their dispatch order.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is not pending.
    pub fn resolve(&mut self, arm: usize, reward: f64) {
        let idx = self
            .pending
            .iter()
            .position(|&a| a == arm)
            .expect("arm must be pending");
        self.pending.remove(idx);
        self.real.observe(arm, reward);
        self.t += 1;
        self.rebuild_halluc();
    }

    /// [`GpBucb::resolve`] addressed by position in the pending batch
    /// instead of by arm index. When the same arm is dispatched twice in one
    /// batch, `resolve(arm, _)` can only retire the *first* occurrence; a
    /// dispatcher that tracks which physical run finished uses the pending
    /// position to retire exactly that one, keeping the pending order
    /// aligned with its own in-flight bookkeeping. Returns the arm.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn resolve_at(&mut self, idx: usize, reward: f64) -> usize {
        assert!(idx < self.pending.len(), "pending index {idx} out of range");
        let arm = self.pending.remove(idx);
        self.real.observe(arm, reward);
        self.t += 1;
        self.rebuild_halluc();
        arm
    }

    /// Drops one pending arm without observing a reward — the censored-run
    /// path: a crashed or timed-out dispatch consumed budget but produced
    /// no usable quality, so its hallucination must be retracted.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is not pending.
    pub fn cancel(&mut self, arm: usize) {
        let idx = self
            .pending
            .iter()
            .position(|&a| a == arm)
            .expect("arm must be pending");
        self.pending.remove(idx);
        self.rebuild_halluc();
    }

    /// [`GpBucb::cancel`] addressed by position in the pending batch — the
    /// positional twin of [`GpBucb::resolve_at`]. Returns the arm.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn cancel_at(&mut self, idx: usize) -> usize {
        assert!(idx < self.pending.len(), "pending index {idx} out of range");
        let arm = self.pending.remove(idx);
        self.rebuild_halluc();
        arm
    }

    /// Re-enters `arm` into the pending batch with a hallucinated
    /// observation, *without* running selection — checkpoint restore of an
    /// in-flight dispatch. Because the hallucinated posterior is always the
    /// real posterior plus one mean-fake per pending arm in dispatch order,
    /// replaying the real observations and then marking the pending arms in
    /// their original order rebuilds the in-batch state bit-identically.
    pub fn mark_pending(&mut self, arm: usize) {
        let fake = self.halluc.mean(arm);
        self.halluc.observe(arm, fake);
        self.pending.push(arm);
    }

    /// Feeds a true observation that never went through
    /// [`GpBucb::select_next`] — warm-up runs and checkpoint replay. The
    /// pending batch (if any) is re-hallucinated on top of the grown real
    /// posterior.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range arms or non-finite rewards (propagated from
    /// the posterior).
    pub fn observe_direct(&mut self, arm: usize, reward: f64) {
        self.real.observe(arm, reward);
        self.t += 1;
        self.rebuild_halluc();
    }

    /// Best true observation so far.
    pub fn best_observed(&self) -> Option<(usize, f64)> {
        self.real.best_observed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeml_linalg::Matrix;

    fn beta() -> BetaSchedule {
        BetaSchedule::Simple {
            num_arms: 4,
            delta: 0.1,
        }
    }

    fn correlated_prior() -> ArmPrior {
        // Arms 0-1 strongly correlated; arms 2-3 independent.
        let g = Matrix::from_rows(&[
            &[1.0, 0.95, 0.0, 0.0],
            &[0.95, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
        ]);
        ArmPrior::from_gram(g)
    }

    #[test]
    fn batch_selections_are_diverse_under_correlation() {
        let mut p = GpBucb::new(correlated_prior(), 1e-3, beta());
        let batch: Vec<usize> = (0..3).map(|_| p.select_next()).collect();
        // Hallucination must prevent picking both of the correlated twins
        // before the independent arms.
        assert!(
            !(batch.contains(&0) && batch.contains(&1)),
            "correlated twins both picked in one batch: {batch:?}"
        );
        assert_eq!(p.pending().len(), 3);
    }

    #[test]
    fn explain_next_agrees_with_select_next_across_a_batch() {
        let mut p = GpBucb::new(correlated_prior(), 1e-3, beta());
        for _ in 0..4 {
            let expl = p.explain_next(2);
            let pending_before = p.pending().len();
            assert_eq!(
                p.pending().len(),
                pending_before,
                "explain_next must not grow the batch"
            );
            let a = p.select_next();
            assert_eq!(expl.chosen, a, "explanation must mirror the batch argmax");
            assert_eq!(expl.top[0].arm, a);
            assert_eq!(expl.top.len(), 2);
            assert!(expl.margin >= 0.0);
            assert!(!expl.top[0].masked, "GP-BUCB has no quarantine mask");
        }
    }

    #[test]
    fn plain_repetition_would_not_be_diverse() {
        // Sanity contrast: without hallucination, the top-UCB arm repeats.
        let p = GpBucb::new(correlated_prior(), 1e-3, beta());
        let b = p.beta.at(1);
        let scores: Vec<f64> = (0..4)
            .map(|k| p.real.mean(k) + b.sqrt() * p.real.std(k))
            .collect();
        let top = vec_ops::argmax(&scores).unwrap();
        // The same arm would win again immediately without hallucination.
        let scores2 = scores.clone();
        assert_eq!(top, vec_ops::argmax(&scores2).unwrap());
    }

    #[test]
    fn resolving_clears_pending_and_feeds_the_real_posterior() {
        let mut p = GpBucb::new(ArmPrior::independent(4, 1.0), 1e-3, beta());
        let a = p.select_next();
        let b = p.select_next();
        assert_ne!(a, b, "independent arms diversify");
        p.resolve(a, 0.9);
        assert_eq!(p.pending(), &[b]);
        assert_eq!(p.best_observed(), Some((a, 0.9)));
        p.resolve(b, 0.2);
        assert!(p.pending().is_empty());
        assert_eq!(p.posterior().num_observations(), 2);
        // After the batch resolves, hallucinated == real.
        for k in 0..4 {
            assert!((p.halluc.mean(k) - p.real.mean(k)).abs() < 1e-12);
            assert!((p.halluc.var(k) - p.real.var(k)).abs() < 1e-12);
        }
    }

    #[test]
    fn hallucination_shrinks_variance_but_not_mean() {
        let mut p = GpBucb::new(ArmPrior::independent(4, 1.0), 1e-3, beta());
        let a = p.select_next();
        assert!((p.halluc.mean(a) - p.real.mean(a)).abs() < 1e-9);
        assert!(p.halluc.var(a) < p.real.var(a));
    }

    #[test]
    fn costs_bias_batch_selection() {
        let mut p =
            GpBucb::new(ArmPrior::independent(2, 1.0), 1e-3, beta()).with_costs(vec![100.0, 1.0]);
        assert_eq!(p.select_next(), 1, "cheap arm first");
    }

    #[test]
    #[should_panic(expected = "pending")]
    fn resolving_a_non_pending_arm_panics() {
        let mut p = GpBucb::new(ArmPrior::independent(2, 1.0), 1e-3, beta());
        p.resolve(0, 0.5);
    }

    #[test]
    fn cancel_retracts_the_hallucination_without_observing() {
        let mut p = GpBucb::new(ArmPrior::independent(4, 1.0), 1e-3, beta());
        let a = p.select_next();
        assert!(p.hallucinated().var(a) < p.posterior().var(a));
        p.cancel(a);
        assert!(p.pending().is_empty());
        assert_eq!(p.posterior().num_observations(), 0);
        for k in 0..4 {
            assert!((p.hallucinated().var(k) - p.posterior().var(k)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "pending")]
    fn cancelling_a_non_pending_arm_panics() {
        let mut p = GpBucb::new(ArmPrior::independent(2, 1.0), 1e-3, beta());
        p.cancel(1);
    }

    #[test]
    fn observe_direct_feeds_the_real_posterior_and_rehallucinates() {
        let mut p = GpBucb::new(correlated_prior(), 1e-3, beta());
        let a = p.select_next();
        // A warm-up observation on a different arm lands while `a` is in
        // flight: the real posterior grows and the fake on `a` is replayed.
        let other = (0..4).find(|&k| k != a).unwrap();
        p.observe_direct(other, 0.7);
        assert_eq!(p.pending(), &[a]);
        assert_eq!(p.posterior().num_observations(), 1);
        assert!(p.hallucinated().var(a) < p.posterior().var(a));
    }

    #[test]
    fn positional_resolution_retires_the_addressed_occurrence() {
        // Force duplicate pending arms on a two-arm policy, then retire the
        // *second* occurrence of the duplicated arm by position.
        let mut p = GpBucb::new(ArmPrior::independent(2, 1.0), 1e-3, beta());
        let a = p.select_next();
        let b = p.select_next();
        let c = p.select_next();
        assert_eq!(a, c, "two arms, three picks: one arm repeats");
        let dup_second = p.pending().iter().rposition(|&x| x == a).unwrap();
        let retired = p.resolve_at(dup_second, 0.6);
        assert_eq!(retired, a);
        assert_eq!(p.posterior().num_observations(), 1);
        // The first occurrence of `a` (and `b`) are still pending, in order.
        let expect: Vec<usize> = [a, b, c]
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != dup_second)
            .map(|(_, &x)| x)
            .collect();
        assert_eq!(p.pending(), expect.as_slice());
        let cancelled = p.cancel_at(0);
        assert_eq!(cancelled, expect[0]);
        assert_eq!(p.pending(), &expect[1..]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn positional_resolution_rejects_bad_indices() {
        let mut p = GpBucb::new(ArmPrior::independent(2, 1.0), 1e-3, beta());
        p.resolve_at(0, 0.5);
    }

    #[test]
    fn pending_preserves_dispatch_order_across_resolutions() {
        let mut p = GpBucb::new(ArmPrior::independent(4, 1.0), 1e-3, beta());
        let a = p.select_next();
        let b = p.select_next();
        let c = p.select_next();
        p.resolve(a, 0.5);
        assert_eq!(p.pending(), &[b, c], "order survives an interior removal");
    }

    #[test]
    fn recorder_sees_batched_arm_choices() {
        use easeml_obs::InMemoryRecorder;
        use std::sync::Arc;
        let rec = Arc::new(InMemoryRecorder::new());
        let mut p = GpBucb::new(ArmPrior::independent(3, 1.0), 1e-3, beta())
            .with_recorder(RecorderHandle::new(rec.clone()), 5);
        let a = p.select_next();
        let events = rec.events();
        assert_eq!(events.len(), 3, "{events:?}");
        match (&events[0], &events[1]) {
            (
                Event::SpanStart { span, name, .. },
                Event::ArmChosen {
                    user: 5,
                    arm,
                    parent,
                    ..
                },
            ) => {
                assert_eq!(name, "pick_arm");
                assert_eq!(*arm, a);
                assert_eq!(parent, span, "ArmChosen nests under pick_arm");
            }
            other => panic!("unexpected leading events {other:?}"),
        }
        assert_eq!(rec.timing(Component::ArmSelect).count(), 1);
    }
}
