//! Batched GP-UCB (GP-BUCB) — the "parallel Gaussian Process" direction the
//! paper's §6 cites (Desautels, Krause & Burdick, JMLR 2014) as the key to
//! extending ease.ml's resource model from a single device to many.
//!
//! When `B` training runs must be dispatched before any of their rewards
//! come back, naive GP-UCB would pick the same argmax `B` times. GP-BUCB
//! instead *hallucinates* each selected arm's observation at its current
//! posterior mean: the hallucination leaves the posterior mean unchanged
//! but shrinks the variance, so subsequent selections within the batch are
//! pushed towards diverse, still-uncertain arms.

use crate::beta::BetaSchedule;
use easeml_gp::{ArmPrior, GpPosterior};
use easeml_linalg::vec_ops;

/// Batched GP-UCB selection with hallucinated updates.
///
/// # Examples
///
/// ```
/// use easeml_bandit::{BetaSchedule, GpBucb};
/// use easeml_gp::ArmPrior;
///
/// let beta = BetaSchedule::Simple { num_arms: 3, delta: 0.1 };
/// let mut policy = GpBucb::new(ArmPrior::independent(3, 1.0), 1e-3, beta);
/// // Dispatch a batch of two runs before any reward returns.
/// let a = policy.select_next();
/// let b = policy.select_next();
/// assert_ne!(a, b, "hallucination diversifies the batch");
/// policy.resolve(a, 0.9);
/// policy.resolve(b, 0.4);
/// assert_eq!(policy.best_observed(), Some((a, 0.9)));
/// ```
#[derive(Debug, Clone)]
pub struct GpBucb {
    /// The real posterior, fed only by true observations.
    real: GpPosterior,
    /// The hallucinated posterior used for in-batch selection.
    halluc: GpPosterior,
    beta: BetaSchedule,
    costs: Option<Vec<f64>>,
    /// True observations so far (drives β).
    t: usize,
    /// Arms selected in the current batch, pending their true rewards.
    pending: Vec<usize>,
}

impl GpBucb {
    /// Creates a cost-oblivious batched policy.
    pub fn new(prior: ArmPrior, noise_var: f64, beta: BetaSchedule) -> Self {
        let real = GpPosterior::new(prior, noise_var);
        GpBucb {
            halluc: real.clone(),
            real,
            beta,
            costs: None,
            t: 0,
            pending: Vec::new(),
        }
    }

    /// Adds per-arm costs (the §3.2 twist applied within batches).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or non-positive costs.
    pub fn with_costs(mut self, costs: Vec<f64>) -> Self {
        assert_eq!(
            costs.len(),
            self.real.num_arms(),
            "one cost per arm is required"
        );
        assert!(costs.iter().all(|&c| c > 0.0), "costs must be positive");
        self.costs = Some(costs);
        self
    }

    /// Number of arms.
    pub fn num_arms(&self) -> usize {
        self.real.num_arms()
    }

    /// Arms selected but not yet resolved with a true reward.
    pub fn pending(&self) -> &[usize] {
        &self.pending
    }

    /// The real (non-hallucinated) posterior.
    pub fn posterior(&self) -> &GpPosterior {
        &self.real
    }

    fn cost(&self, arm: usize) -> f64 {
        self.costs.as_ref().map_or(1.0, |c| c[arm])
    }

    /// Selects the next arm of the batch and hallucinates its outcome
    /// (records the current posterior mean as a fake observation).
    pub fn select_next(&mut self) -> usize {
        let beta = self.beta.at(self.t + self.pending.len() + 1);
        let scores: Vec<f64> = (0..self.num_arms())
            .map(|k| self.halluc.mean(k) + (beta / self.cost(k)).sqrt() * self.halluc.std(k))
            .collect();
        let arm = vec_ops::argmax(&scores).expect("at least one arm");
        let fake = self.halluc.mean(arm);
        self.halluc.observe(arm, fake);
        self.pending.push(arm);
        arm
    }

    /// Resolves one pending arm with its true reward. When the last pending
    /// arm resolves, the hallucinated posterior is rebuilt from the real
    /// one (all fakes replaced by truths).
    ///
    /// # Panics
    ///
    /// Panics if `arm` is not pending.
    pub fn resolve(&mut self, arm: usize, reward: f64) {
        let idx = self
            .pending
            .iter()
            .position(|&a| a == arm)
            .expect("arm must be pending");
        self.pending.swap_remove(idx);
        self.real.observe(arm, reward);
        self.t += 1;
        if self.pending.is_empty() {
            self.halluc = self.real.clone();
        } else {
            // Rebuild hallucinations on top of the updated real posterior
            // so resolved fakes do not linger.
            let mut h = self.real.clone();
            for &a in &self.pending {
                let fake = h.mean(a);
                h.observe(a, fake);
            }
            self.halluc = h;
        }
    }

    /// Best true observation so far.
    pub fn best_observed(&self) -> Option<(usize, f64)> {
        self.real.best_observed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeml_linalg::Matrix;

    fn beta() -> BetaSchedule {
        BetaSchedule::Simple {
            num_arms: 4,
            delta: 0.1,
        }
    }

    fn correlated_prior() -> ArmPrior {
        // Arms 0-1 strongly correlated; arms 2-3 independent.
        let g = Matrix::from_rows(&[
            &[1.0, 0.95, 0.0, 0.0],
            &[0.95, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
        ]);
        ArmPrior::from_gram(g)
    }

    #[test]
    fn batch_selections_are_diverse_under_correlation() {
        let mut p = GpBucb::new(correlated_prior(), 1e-3, beta());
        let batch: Vec<usize> = (0..3).map(|_| p.select_next()).collect();
        // Hallucination must prevent picking both of the correlated twins
        // before the independent arms.
        assert!(
            !(batch.contains(&0) && batch.contains(&1)),
            "correlated twins both picked in one batch: {batch:?}"
        );
        assert_eq!(p.pending().len(), 3);
    }

    #[test]
    fn plain_repetition_would_not_be_diverse() {
        // Sanity contrast: without hallucination, the top-UCB arm repeats.
        let p = GpBucb::new(correlated_prior(), 1e-3, beta());
        let b = p.beta.at(1);
        let scores: Vec<f64> = (0..4)
            .map(|k| p.real.mean(k) + b.sqrt() * p.real.std(k))
            .collect();
        let top = vec_ops::argmax(&scores).unwrap();
        // The same arm would win again immediately without hallucination.
        let scores2 = scores.clone();
        assert_eq!(top, vec_ops::argmax(&scores2).unwrap());
    }

    #[test]
    fn resolving_clears_pending_and_feeds_the_real_posterior() {
        let mut p = GpBucb::new(ArmPrior::independent(4, 1.0), 1e-3, beta());
        let a = p.select_next();
        let b = p.select_next();
        assert_ne!(a, b, "independent arms diversify");
        p.resolve(a, 0.9);
        assert_eq!(p.pending(), &[b]);
        assert_eq!(p.best_observed(), Some((a, 0.9)));
        p.resolve(b, 0.2);
        assert!(p.pending().is_empty());
        assert_eq!(p.posterior().num_observations(), 2);
        // After the batch resolves, hallucinated == real.
        for k in 0..4 {
            assert!((p.halluc.mean(k) - p.real.mean(k)).abs() < 1e-12);
            assert!((p.halluc.var(k) - p.real.var(k)).abs() < 1e-12);
        }
    }

    #[test]
    fn hallucination_shrinks_variance_but_not_mean() {
        let mut p = GpBucb::new(ArmPrior::independent(4, 1.0), 1e-3, beta());
        let a = p.select_next();
        assert!((p.halluc.mean(a) - p.real.mean(a)).abs() < 1e-9);
        assert!(p.halluc.var(a) < p.real.var(a));
    }

    #[test]
    fn costs_bias_batch_selection() {
        let mut p =
            GpBucb::new(ArmPrior::independent(2, 1.0), 1e-3, beta()).with_costs(vec![100.0, 1.0]);
        assert_eq!(p.select_next(), 1, "cheap arm first");
    }

    #[test]
    #[should_panic(expected = "pending")]
    fn resolving_a_non_pending_arm_panics() {
        let mut p = GpBucb::new(ArmPrior::independent(2, 1.0), 1e-3, beta());
        p.resolve(0, 0.5);
    }
}
