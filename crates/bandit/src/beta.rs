//! Exploration-weight (β) schedules for the UCB criterion.

use std::f64::consts::PI;

/// The β_t schedule controlling the exploration weight of GP-UCB.
///
/// The paper uses three concrete schedules:
///
/// * Algorithm 1 line 3 (cost-oblivious): `β_t = log(K t² / δ)`;
/// * Theorem 1 (cost-aware single-tenant):
///   `β_t = 2 c* log(π² K t² / (6 δ))`;
/// * Theorems 2–3 (multi-tenant):
///   `β_t^i = 2 c* log(π² n K* t² / (6 δ))`.
///
/// `Constant` exists for controlled experiments and tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BetaSchedule {
    /// Algorithm 1 line 3: `log(K t² / δ)`.
    Simple {
        /// Number of arms K.
        num_arms: usize,
        /// Failure probability δ ∈ (0, 1).
        delta: f64,
    },
    /// Theorem 1: `2 c* log(π² K t² / (6 δ))`.
    CostAware {
        /// Maximum arm cost c*.
        max_cost: f64,
        /// Number of arms K.
        num_arms: usize,
        /// Failure probability δ ∈ (0, 1).
        delta: f64,
    },
    /// Theorems 2–3: `2 c* log(π² n K* t² / (6 δ))`.
    MultiTenant {
        /// Maximum cost over all tenants and arms, c*.
        max_cost: f64,
        /// Number of tenants n.
        num_tenants: usize,
        /// Maximum number of arms over tenants, K*.
        max_arms: usize,
        /// Failure probability δ ∈ (0, 1).
        delta: f64,
    },
    /// A fixed exploration weight.
    Constant(
        /// The constant β value.
        f64,
    ),
}

impl BetaSchedule {
    /// Evaluates β at step `t` (1-based; `t = 0` is treated as 1).
    ///
    /// All schedules are clamped below at a small positive value so the UCB
    /// criterion never loses its exploration term to a negative logarithm at
    /// tiny `t`.
    pub fn at(&self, t: usize) -> f64 {
        let t = t.max(1) as f64;
        let raw = match *self {
            BetaSchedule::Simple { num_arms, delta } => {
                debug_assert!(num_arms > 0 && delta > 0.0 && delta < 1.0);
                (num_arms as f64 * t * t / delta).ln()
            }
            BetaSchedule::CostAware {
                max_cost,
                num_arms,
                delta,
            } => {
                debug_assert!(max_cost > 0.0 && num_arms > 0 && delta > 0.0 && delta < 1.0);
                2.0 * max_cost * (PI * PI * num_arms as f64 * t * t / (6.0 * delta)).ln()
            }
            BetaSchedule::MultiTenant {
                max_cost,
                num_tenants,
                max_arms,
                delta,
            } => {
                debug_assert!(
                    max_cost > 0.0 && num_tenants > 0 && max_arms > 0 && delta > 0.0 && delta < 1.0
                );
                2.0 * max_cost
                    * (PI * PI * num_tenants as f64 * max_arms as f64 * t * t / (6.0 * delta)).ln()
            }
            BetaSchedule::Constant(b) => b,
        };
        raw.max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_schedule_matches_formula() {
        let b = BetaSchedule::Simple {
            num_arms: 8,
            delta: 0.1,
        };
        let expected = (8.0 * 25.0 / 0.1f64).ln();
        assert!((b.at(5) - expected).abs() < 1e-12);
    }

    #[test]
    fn cost_aware_matches_theorem_1() {
        let b = BetaSchedule::CostAware {
            max_cost: 3.0,
            num_arms: 4,
            delta: 0.05,
        };
        let t = 7.0f64;
        let expected = 2.0 * 3.0 * (PI * PI * 4.0 * t * t / (6.0 * 0.05)).ln();
        assert!((b.at(7) - expected).abs() < 1e-12);
    }

    #[test]
    fn multi_tenant_matches_theorems_2_3() {
        let b = BetaSchedule::MultiTenant {
            max_cost: 2.0,
            num_tenants: 10,
            max_arms: 8,
            delta: 0.1,
        };
        let t = 3.0f64;
        let expected = 2.0 * 2.0 * (PI * PI * 10.0 * 8.0 * t * t / (6.0 * 0.1)).ln();
        assert!((b.at(3) - expected).abs() < 1e-12);
    }

    #[test]
    fn schedules_are_nondecreasing_in_t() {
        let schedules = [
            BetaSchedule::Simple {
                num_arms: 3,
                delta: 0.1,
            },
            BetaSchedule::CostAware {
                max_cost: 1.0,
                num_arms: 3,
                delta: 0.1,
            },
            BetaSchedule::MultiTenant {
                max_cost: 1.0,
                num_tenants: 2,
                max_arms: 3,
                delta: 0.1,
            },
        ];
        for s in schedules {
            let mut prev = 0.0;
            for t in 1..100 {
                let b = s.at(t);
                assert!(b >= prev, "{s:?} decreased at t={t}");
                assert!(b > 0.0);
                prev = b;
            }
        }
    }

    #[test]
    fn t_zero_is_treated_as_one() {
        let b = BetaSchedule::Simple {
            num_arms: 2,
            delta: 0.5,
        };
        assert_eq!(b.at(0), b.at(1));
    }

    #[test]
    fn constant_schedule() {
        assert_eq!(BetaSchedule::Constant(2.5).at(1), 2.5);
        assert_eq!(BetaSchedule::Constant(2.5).at(1000), 2.5);
        // Negative constants are clamped to stay usable under sqrt.
        assert!(BetaSchedule::Constant(-1.0).at(1) > 0.0);
    }
}
