//! GP-UCB: the Gaussian-process upper-confidence-bound policy of
//! Algorithm 1, with the paper's cost-aware twist (§3.2).

use crate::beta::BetaSchedule;
use crate::ArmPolicy;
use easeml_gp::{ArmPrior, GpPosterior};
use easeml_linalg::vec_ops;
use easeml_obs::{top_k_indices, Component, Event, RecorderHandle};

/// One arm's posterior snapshot inside an [`ArmExplanation`]: what the
/// policy knew about the arm at selection time. `ucb` is the arm's *real*
/// upper confidence bound — masked arms keep their true score here (with
/// `masked: true`) even though the argmax saw `-∞` for them.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredArm {
    /// Arm (model) index.
    pub arm: usize,
    /// Posterior mean μ(k).
    pub mean: f64,
    /// Posterior standard deviation σ(k).
    pub sigma: f64,
    /// Upper confidence bound μ(k) + √(β/c_k)·σ(k).
    pub ucb: f64,
    /// Whether quarantine masked the arm out of the argmax.
    pub masked: bool,
}

/// The why-chain of one arm selection: the chosen arm, the winning margin,
/// and the top-K runners-up ranked exactly as the argmax saw them.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmExplanation {
    /// The arm [`GpUcb::select_arm`] (or [`crate::GpBucb::select_next`])
    /// would return from this posterior state.
    pub chosen: usize,
    /// Effective score gap between the winner and the runner-up, computed on
    /// the *masked* scores the argmax ranked (so a quarantined near-winner
    /// does not shrink the margin). `NaN` when there is no runner-up.
    pub margin: f64,
    /// Top-K arms by effective (mask-adjusted) score, best first. Entry 0 is
    /// always the chosen arm.
    pub top: Vec<ScoredArm>,
}

/// GP-UCB arm selection.
///
/// At step t the policy plays
///
/// ```text
/// cost-oblivious:  a_t = argmax_k  μ_{t−1}(k) + √β_t        · σ_{t−1}(k)
/// cost-aware:      a_t = argmax_k  μ_{t−1}(k) + √(β_t / c_k) · σ_{t−1}(k)
/// ```
///
/// The cost-aware form is the paper's "simple twist": all else equal, slower
/// models (larger c_k) get a lower priority, but an expensive arm with a
/// large enough potential reward is still worth a bet.
///
/// # Examples
///
/// ```
/// use easeml_bandit::{BetaSchedule, GpUcb};
/// use easeml_gp::ArmPrior;
///
/// let prior = ArmPrior::independent(3, 1.0);
/// let mut ucb = GpUcb::cost_oblivious(
///     prior,
///     0.01,
///     BetaSchedule::Simple { num_arms: 3, delta: 0.1 },
/// );
/// let a = ucb.select_arm();
/// ucb.observe(a, 0.9);
/// assert_eq!(ucb.best_observed(), Some((a, 0.9)));
/// ```
#[derive(Debug, Clone)]
pub struct GpUcb {
    gp: GpPosterior,
    costs: Option<Vec<f64>>,
    beta: BetaSchedule,
    /// Number of completed observations; the *next* selection happens at
    /// step `t + 1`.
    t: usize,
    /// Disabled by default; [`GpUcb::with_recorder`] attaches a sink that
    /// receives an `ArmChosen` per selection and a `PosteriorUpdated` per
    /// observation.
    recorder: RecorderHandle,
    /// User id stamped on emitted events (0 until a recorder is attached).
    owner: usize,
    /// Quarantine mask: a `true` entry excludes the arm from the argmax
    /// (e.g. after repeated training failures) until it is unmasked again.
    masked: Vec<bool>,
}

impl GpUcb {
    /// Creates a cost-oblivious GP-UCB policy.
    ///
    /// # Panics
    ///
    /// Panics if `noise_var <= 0` (propagated from [`GpPosterior::new`]).
    pub fn cost_oblivious(prior: ArmPrior, noise_var: f64, beta: BetaSchedule) -> Self {
        let masked = vec![false; prior.num_arms()];
        GpUcb {
            gp: GpPosterior::new(prior, noise_var),
            costs: None,
            beta,
            t: 0,
            recorder: RecorderHandle::noop(),
            owner: 0,
            masked,
        }
    }

    /// Creates a cost-aware GP-UCB policy with per-arm costs `c_k`.
    ///
    /// # Panics
    ///
    /// Panics if `costs.len()` does not match the number of arms or any cost
    /// is not strictly positive.
    pub fn cost_aware(
        prior: ArmPrior,
        noise_var: f64,
        beta: BetaSchedule,
        costs: Vec<f64>,
    ) -> Self {
        assert_eq!(
            costs.len(),
            prior.num_arms(),
            "one cost per arm is required"
        );
        assert!(
            costs.iter().all(|&c| c > 0.0),
            "arm costs must be strictly positive"
        );
        let masked = vec![false; prior.num_arms()];
        GpUcb {
            gp: GpPosterior::new(prior, noise_var),
            costs: Some(costs),
            beta,
            t: 0,
            recorder: RecorderHandle::noop(),
            owner: 0,
            masked,
        }
    }

    /// Attaches a recorder; `owner` is the user id stamped on the emitted
    /// events. Builder-style counterpart of [`GpUcb::set_recorder`].
    pub fn with_recorder(mut self, recorder: RecorderHandle, owner: usize) -> Self {
        self.set_recorder(recorder, owner);
        self
    }

    /// Attaches (or, with a noop handle, detaches) a recorder; `owner` is
    /// the user id stamped on the emitted events.
    pub fn set_recorder(&mut self, recorder: RecorderHandle, owner: usize) {
        self.recorder = recorder;
        self.owner = owner;
    }

    /// Whether the policy divides the exploration bonus by the arm cost.
    #[inline]
    pub fn is_cost_aware(&self) -> bool {
        self.costs.is_some()
    }

    /// The underlying GP posterior.
    #[inline]
    pub fn posterior(&self) -> &GpPosterior {
        &self.gp
    }

    /// Number of completed observations t.
    #[inline]
    pub fn steps(&self) -> usize {
        self.t
    }

    /// β used by the *next* selection (evaluated at t + 1).
    #[inline]
    pub fn beta_next(&self) -> f64 {
        self.beta.at(self.t + 1)
    }

    /// The β schedule itself.
    #[inline]
    pub fn beta_schedule(&self) -> BetaSchedule {
        self.beta
    }

    /// Cost of playing `arm` (1.0 when cost-oblivious).
    #[inline]
    pub fn cost(&self, arm: usize) -> f64 {
        self.costs.as_ref().map_or(1.0, |c| c[arm])
    }

    /// Upper confidence bound `B_t(k) = μ(k) + √(β/c_k) σ(k)` of `arm` for
    /// the next selection.
    pub fn ucb(&self, arm: usize) -> f64 {
        let beta = self.beta_next();
        self.gp.mean(arm) + (beta / self.cost(arm)).sqrt() * self.gp.std(arm)
    }

    /// Upper confidence bounds of all arms for the next selection.
    pub fn ucbs(&self) -> Vec<f64> {
        (0..self.gp.num_arms()).map(|k| self.ucb(k)).collect()
    }

    /// Exploration width `√(β/c_k) σ(k)` of `arm` — the UCB minus the mean.
    pub fn exploration_width(&self, arm: usize) -> f64 {
        (self.beta_next() / self.cost(arm)).sqrt() * self.gp.std(arm)
    }

    /// Masks `arm` out of (or back into) [`GpUcb::select_arm`]'s argmax.
    /// Masking is the quarantine mechanism: an arm that keeps failing can be
    /// excluded without touching the posterior, then unmasked on probation.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn set_arm_masked(&mut self, arm: usize, masked: bool) {
        assert!(arm < self.masked.len(), "arm {arm} out of range");
        self.masked[arm] = masked;
    }

    /// Whether `arm` is currently masked out of selection.
    pub fn is_masked(&self, arm: usize) -> bool {
        self.masked.get(arm).copied().unwrap_or(false)
    }

    /// Indices of currently masked arms, ascending.
    pub fn masked_arms(&self) -> Vec<usize> {
        self.masked
            .iter()
            .enumerate()
            .filter_map(|(k, &m)| m.then_some(k))
            .collect()
    }

    /// Chooses the next arm: argmax of the UCB over unmasked arms, ties
    /// toward the lower index. If every arm is masked the mask is ignored —
    /// the service must keep making progress, so quarantine degrades to a
    /// no-op rather than deadlocking the tenant.
    ///
    /// Runs under a `pick_arm` span; the emitted [`Event::ArmChosen`] carries
    /// the chosen arm's posterior mean and standard deviation so offline
    /// tooling can score the GP's calibration against the realized quality.
    pub fn select_arm(&self) -> usize {
        let _span = self.recorder.span("pick_arm");
        let _timing = self.recorder.time(Component::ArmSelect);
        let mut ucbs = self.ucbs();
        if self.masked.iter().any(|&m| m) && !self.masked.iter().all(|&m| m) {
            for (k, &m) in self.masked.iter().enumerate() {
                if m {
                    ucbs[k] = f64::NEG_INFINITY;
                }
            }
        }
        let arm = vec_ops::argmax(&ucbs).expect("policy has at least one arm");
        self.recorder.emit(|| Event::ArmChosen {
            user: self.owner,
            arm,
            ucb: self.ucb(arm),
            beta: self.beta_next(),
            cost: self.cost(arm),
            mean: self.gp.mean(arm),
            sigma: self.gp.std(arm),
            parent: easeml_obs::current_span(),
        });
        arm
    }

    /// Effective scores [`GpUcb::select_arm`]'s argmax ranks: the UCBs, with
    /// masked arms forced to `-∞` unless every arm is masked (in which case
    /// quarantine degrades to a no-op, matching the selection rule).
    fn effective_scores(&self) -> Vec<f64> {
        let mut ucbs = self.ucbs();
        if self.masked.iter().any(|&m| m) && !self.masked.iter().all(|&m| m) {
            for (k, &m) in self.masked.iter().enumerate() {
                if m {
                    ucbs[k] = f64::NEG_INFINITY;
                }
            }
        }
        ucbs
    }

    /// Read-only why-chain for the *next* selection: the arm
    /// [`GpUcb::select_arm`] would choose, the winning margin, and the top-K
    /// runners-up with their posterior state. Does not move the posterior,
    /// emit events, or consume randomness — safe to call on the hot path
    /// before (or instead of) `select_arm`.
    pub fn explain_selection(&self, k: usize) -> ArmExplanation {
        let scores = self.effective_scores();
        let ranked = top_k_indices(&scores, k.max(1));
        let chosen = vec_ops::argmax(&scores).expect("policy has at least one arm");
        let margin = if scores.len() >= 2 {
            let runner_up = ranked
                .get(1)
                .map(|&a| scores[a])
                .unwrap_or(f64::NEG_INFINITY);
            scores[chosen] - runner_up
        } else {
            f64::NAN
        };
        let top = ranked
            .into_iter()
            .map(|arm| ScoredArm {
                arm,
                mean: self.gp.mean(arm),
                sigma: self.gp.std(arm),
                ucb: self.ucb(arm),
                masked: self.is_masked(arm),
            })
            .collect();
        ArmExplanation {
            chosen,
            margin,
            top,
        }
    }

    /// Incorporates an observation.
    ///
    /// Runs under a `posterior_update` span; the emitted
    /// [`Event::PosteriorUpdated`] carries the refreshed factor's condition
    /// estimate for numerical-health monitoring.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range arms or non-finite rewards (propagated from
    /// the posterior).
    pub fn observe(&mut self, arm: usize, reward: f64) {
        let _span = self.recorder.span("posterior_update");
        self.gp.observe(arm, reward);
        self.t += 1;
        self.recorder.emit(|| Event::PosteriorUpdated {
            arm,
            reward,
            num_obs: self.t,
            cond: self.gp.condition_estimate(),
            parent: easeml_obs::current_span(),
        });
    }

    /// Best observed `(arm, reward)` so far.
    pub fn best_observed(&self) -> Option<(usize, f64)> {
        self.gp.best_observed()
    }
}

impl ArmPolicy for GpUcb {
    fn num_arms(&self) -> usize {
        self.gp.num_arms()
    }

    fn select(&mut self, _rng: &mut dyn rand::RngCore) -> usize {
        self.select_arm()
    }

    fn observe(&mut self, arm: usize, reward: f64) {
        GpUcb::observe(self, arm, reward);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeml_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn simple_beta(k: usize) -> BetaSchedule {
        BetaSchedule::Simple {
            num_arms: k,
            delta: 0.1,
        }
    }

    #[test]
    fn first_selection_prefers_highest_prior_ucb() {
        // Arm 1 has larger prior variance, so with equal means it wins.
        let gram = Matrix::from_diag(&[0.5, 2.0]);
        let ucb = GpUcb::cost_oblivious(ArmPrior::from_gram(gram), 0.01, simple_beta(2));
        assert_eq!(ucb.select_arm(), 1);
    }

    #[test]
    fn exploitation_wins_after_strong_observation() {
        let mut ucb = GpUcb::cost_oblivious(ArmPrior::independent(2, 0.05), 0.001, simple_beta(2));
        // Arm 0 yields a reward far above what exploration of arm 1 can
        // promise under a small prior variance.
        ucb.observe(0, 5.0);
        assert_eq!(ucb.select_arm(), 0);
    }

    #[test]
    fn unexplored_arm_is_eventually_tried() {
        let mut ucb = GpUcb::cost_oblivious(ArmPrior::independent(3, 1.0), 0.01, simple_beta(3));
        let mut seen = [false; 3];
        for _ in 0..10 {
            let a = ucb.select_arm();
            seen[a] = true;
            ucb.observe(a, 0.1);
        }
        assert!(seen.iter().all(|&s| s), "all arms explored: {seen:?}");
    }

    #[test]
    fn cost_aware_penalizes_expensive_arm() {
        // Identical arms except cost: the cheap one must be picked first.
        let prior = ArmPrior::independent(2, 1.0);
        let ucb = GpUcb::cost_aware(prior, 0.01, simple_beta(2), vec![100.0, 1.0]);
        assert_eq!(ucb.select_arm(), 1);
        assert!(ucb.is_cost_aware());
        assert_eq!(ucb.cost(0), 100.0);
    }

    #[test]
    fn expensive_arm_with_huge_potential_still_wins() {
        // Arm 0 is expensive but has a much larger prior variance (and so a
        // larger potential reward): worth a bet, as §3.2 argues.
        let gram = Matrix::from_diag(&[400.0, 0.01]);
        let ucb = GpUcb::cost_aware(
            ArmPrior::from_gram(gram),
            0.01,
            simple_beta(2),
            vec![4.0, 1.0],
        );
        assert_eq!(ucb.select_arm(), 0);
    }

    #[test]
    fn ucb_decomposes_into_mean_plus_width() {
        let mut ucb = GpUcb::cost_aware(
            ArmPrior::independent(2, 1.0),
            0.01,
            simple_beta(2),
            vec![2.0, 1.0],
        );
        ucb.observe(0, 0.5);
        for k in 0..2 {
            let expected = ucb.posterior().mean(k) + ucb.exploration_width(k);
            assert!((ucb.ucb(k) - expected).abs() < 1e-12);
        }
        assert_eq!(ucb.ucbs().len(), 2);
    }

    #[test]
    fn beta_advances_with_observations() {
        let mut ucb = GpUcb::cost_oblivious(ArmPrior::independent(2, 1.0), 0.01, simple_beta(2));
        let b1 = ucb.beta_next();
        ucb.observe(0, 0.1);
        let b2 = ucb.beta_next();
        assert!(b2 > b1);
        assert_eq!(ucb.steps(), 1);
        assert_eq!(ucb.beta_schedule(), simple_beta(2));
    }

    #[test]
    fn cost_oblivious_cost_is_unit() {
        let ucb = GpUcb::cost_oblivious(ArmPrior::independent(2, 1.0), 0.01, simple_beta(2));
        assert_eq!(ucb.cost(0), 1.0);
        assert!(!ucb.is_cost_aware());
    }

    #[test]
    #[should_panic(expected = "one cost per arm")]
    fn mismatched_costs_panic() {
        let _ = GpUcb::cost_aware(
            ArmPrior::independent(2, 1.0),
            0.01,
            simple_beta(2),
            vec![1.0],
        );
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_cost_panics() {
        let _ = GpUcb::cost_aware(
            ArmPrior::independent(2, 1.0),
            0.01,
            simple_beta(2),
            vec![1.0, 0.0],
        );
    }

    #[test]
    fn arm_policy_trait_roundtrip() {
        let mut ucb = GpUcb::cost_oblivious(ArmPrior::independent(2, 1.0), 0.01, simple_beta(2));
        let mut rng = StdRng::seed_from_u64(1);
        let a = ArmPolicy::select(&mut ucb, &mut rng);
        ArmPolicy::observe(&mut ucb, a, 0.3);
        assert_eq!(ArmPolicy::num_arms(&ucb), 2);
        assert_eq!(ucb.best_observed(), Some((a, 0.3)));
    }

    #[test]
    fn recorder_sees_arm_choices_and_posterior_updates() {
        use easeml_obs::InMemoryRecorder;
        use std::sync::Arc;
        let rec = Arc::new(InMemoryRecorder::new());
        let mut ucb = GpUcb::cost_oblivious(ArmPrior::independent(2, 1.0), 0.01, simple_beta(2))
            .with_recorder(RecorderHandle::new(rec.clone()), 7);
        let a = ucb.select_arm();
        ucb.observe(a, 0.4);
        let events = rec.events();
        // Each call wraps its event in a span: start, payload, end — twice.
        assert_eq!(events.len(), 6, "{events:?}");
        let (pick_span, arm_parent) = match (&events[0], &events[1]) {
            (
                Event::SpanStart { span, name, .. },
                Event::ArmChosen {
                    user: 7,
                    mean,
                    sigma,
                    parent,
                    ..
                },
            ) => {
                assert_eq!(name, "pick_arm");
                assert!(mean.is_finite() && *sigma >= 0.0);
                (*span, *parent)
            }
            other => panic!("unexpected leading events {other:?}"),
        };
        assert_eq!(arm_parent, pick_span, "ArmChosen nests under pick_arm");
        assert!(matches!(events[2], Event::SpanEnd { span, .. } if span == pick_span));
        match (&events[3], &events[4]) {
            (
                Event::SpanStart { span, name, .. },
                Event::PosteriorUpdated {
                    num_obs: 1,
                    cond,
                    parent,
                    ..
                },
            ) => {
                assert_eq!(name, "posterior_update");
                assert!(*cond >= 1.0);
                assert_eq!(parent, span);
            }
            other => panic!("unexpected observe events {other:?}"),
        }
        assert_eq!(rec.timing(Component::ArmSelect).count(), 1);
    }

    #[test]
    fn masked_arm_is_skipped_until_unmasked() {
        // Arm 0 dominates; masking it must divert selection to arm 1, and
        // unmasking must restore the original argmax.
        let mut ucb = GpUcb::cost_oblivious(ArmPrior::independent(2, 0.05), 0.001, simple_beta(2));
        ucb.observe(0, 5.0);
        assert_eq!(ucb.select_arm(), 0);
        ucb.set_arm_masked(0, true);
        assert!(ucb.is_masked(0));
        assert_eq!(ucb.masked_arms(), vec![0]);
        assert_eq!(ucb.select_arm(), 1);
        ucb.set_arm_masked(0, false);
        assert_eq!(ucb.select_arm(), 0);
        assert!(ucb.masked_arms().is_empty());
    }

    #[test]
    fn fully_masked_policy_ignores_the_mask() {
        let mut ucb = GpUcb::cost_oblivious(ArmPrior::independent(2, 0.05), 0.001, simple_beta(2));
        ucb.observe(0, 5.0);
        ucb.set_arm_masked(0, true);
        ucb.set_arm_masked(1, true);
        // Quarantining everything must not deadlock: selection falls back
        // to the unmasked argmax.
        assert_eq!(ucb.select_arm(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn masking_out_of_range_arm_panics() {
        let mut ucb = GpUcb::cost_oblivious(ArmPrior::independent(2, 1.0), 0.01, simple_beta(2));
        ucb.set_arm_masked(5, true);
    }

    #[test]
    fn explain_selection_agrees_with_select_arm() {
        let mut ucb = GpUcb::cost_oblivious(ArmPrior::independent(4, 1.0), 0.01, simple_beta(4));
        for _ in 0..6 {
            let expl = ucb.explain_selection(3);
            let a = ucb.select_arm();
            assert_eq!(expl.chosen, a, "explanation must mirror the argmax");
            assert_eq!(expl.top[0].arm, a, "entry 0 is the chosen arm");
            assert_eq!(expl.top.len(), 3);
            assert!(expl.margin >= 0.0, "winner beats the runner-up");
            let runner_up = &expl.top[1];
            let gap = expl.top[0].ucb - runner_up.ucb;
            assert!((gap - expl.margin).abs() < 1e-12);
            ucb.observe(a, 0.2);
        }
    }

    #[test]
    fn explain_selection_respects_the_quarantine_mask() {
        let mut ucb = GpUcb::cost_oblivious(ArmPrior::independent(3, 0.05), 0.001, simple_beta(3));
        ucb.observe(0, 5.0);
        ucb.set_arm_masked(0, true);
        let expl = ucb.explain_selection(3);
        assert_eq!(expl.chosen, ucb.select_arm());
        assert_ne!(expl.chosen, 0, "masked dominator cannot win");
        // The masked arm still ranks (last) and keeps its real UCB.
        let masked_entry = expl.top.iter().find(|s| s.arm == 0).unwrap();
        assert!(masked_entry.masked);
        assert!(masked_entry.ucb.is_finite());
        assert_eq!(expl.top.last().unwrap().arm, 0);
        // Margin is computed on the masked scores, so it compares the two
        // unmasked arms, not the quarantined dominator.
        let s1 = ucb.ucb(expl.top[0].arm);
        let s2 = ucb.ucb(expl.top[1].arm);
        assert!((expl.margin - (s1 - s2)).abs() < 1e-12);
    }

    #[test]
    fn explain_selection_single_arm_has_nan_margin() {
        let ucb = GpUcb::cost_oblivious(ArmPrior::independent(1, 1.0), 0.01, simple_beta(1));
        let expl = ucb.explain_selection(8);
        assert_eq!(expl.chosen, 0);
        assert_eq!(expl.top.len(), 1);
        assert!(expl.margin.is_nan());
    }

    #[test]
    fn correlated_prior_focuses_search() {
        // With strong correlation, observing a bad arm should depress the
        // UCB of its correlated neighbour relative to an independent arm.
        let gram = Matrix::from_rows(&[&[1.0, 0.95, 0.0], &[0.95, 1.0, 0.0], &[0.0, 0.0, 1.0]]);
        let mut ucb = GpUcb::cost_oblivious(ArmPrior::from_gram(gram), 0.01, simple_beta(3));
        ucb.observe(0, -2.0);
        assert!(ucb.ucb(1) < ucb.ucb(2));
        assert_eq!(ucb.select_arm(), 2);
    }
}
