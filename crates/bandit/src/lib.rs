//! Single-tenant model-selection policies (paper §3).
//!
//! Ease.ml treats the model-selection problem of a single user as a
//! multi-armed bandit: each candidate model is an arm, playing an arm means
//! training the model, and the observed reward is the model's accuracy. This
//! crate implements:
//!
//! * [`GpUcb`] — the GP-UCB policy of Algorithm 1, in both the cost-oblivious
//!   form (`argmax μ + √β σ`) and the paper's cost-aware twist
//!   (`argmax μ + √(β/c) σ`, §3.2) together with the β schedules of
//!   Algorithm 1 and Theorems 1–3 ([`beta::BetaSchedule`]);
//! * [`Ucb1`] — the classic distribution-free UCB1 baseline discussed in
//!   §3.1's theoretical comparison;
//! * the heuristic and Bayesian alternatives in [`policies`]:
//!   ε-greedy, Thompson sampling, expected improvement (GP-EI) and
//!   probability of improvement (GP-PI) — the §4.5 future-work acquisition
//!   functions — plus the [`policies::FixedOrder`] policy that models the
//!   MOSTCITED / MOSTRECENT user heuristics of §5.2;
//! * [`regret::RegretTracker`] — single-tenant regret and accuracy-loss
//!   accounting matching §3's definitions.
//!
//! All stochastic policies take the RNG as an argument, so every simulation
//! in the workspace is reproducible from a seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batched;
pub mod beta;
pub mod gp_ucb;
pub mod policies;
pub mod regret;
pub mod stats;
pub mod ucb1;

pub use batched::GpBucb;
pub use beta::BetaSchedule;
pub use gp_ucb::{ArmExplanation, GpUcb, ScoredArm};
pub use policies::{
    EpsilonGreedy, ExpectedImprovement, FixedOrder, ProbabilityOfImprovement, RandomArm,
    ThompsonSampling,
};
pub use regret::RegretTracker;
pub use ucb1::Ucb1;

use rand::Rng;

/// A sequential arm-selection policy: propose an arm, then learn from the
/// observed reward.
///
/// The GP-driven policies also expose their posterior directly (needed by
/// the multi-tenant scheduler); this trait is the lowest common denominator
/// used by the single-tenant experiment loops.
pub trait ArmPolicy {
    /// Number of arms.
    fn num_arms(&self) -> usize;

    /// Chooses the next arm to play.
    fn select(&mut self, rng: &mut dyn rand::RngCore) -> usize;

    /// Incorporates the observed reward for `arm`.
    fn observe(&mut self, arm: usize, reward: f64);
}

/// Uniformly random arm choice shared by several policies.
pub(crate) fn random_arm(num_arms: usize, rng: &mut dyn rand::RngCore) -> usize {
    rng.gen_range(0..num_arms)
}
