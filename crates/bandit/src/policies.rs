//! Heuristic and Bayesian single-tenant policies beyond GP-UCB.
//!
//! * [`FixedOrder`] models the heuristics ease.ml's users relied on before
//!   the system existed (§5.2): train the most-cited network first, or the
//!   most recently published one, in a fixed order.
//! * [`ExpectedImprovement`] and [`ProbabilityOfImprovement`] are the GP-EI
//!   and GP-PI acquisition functions the paper lists as open extensions in
//!   §4.5 — implemented here for the acquisition-ablation bench.
//! * [`ThompsonSampling`], [`EpsilonGreedy`], and [`RandomArm`] round out
//!   the baseline set.

use crate::stats::{normal_cdf, normal_pdf, sample_normal};
use crate::{random_arm, ArmPolicy};
use easeml_gp::{ArmPrior, GpPosterior};
use easeml_linalg::vec_ops;
use rand::Rng;

/// Plays arms in a fixed, user-specified order (each exactly once), then
/// repeats the best arm found. Models the MOSTCITED / MOSTRECENT heuristics.
#[derive(Debug, Clone)]
pub struct FixedOrder {
    order: Vec<usize>,
    tried: Vec<bool>,
    best: Option<(usize, f64)>,
}

impl FixedOrder {
    /// Creates the policy from an ordering of all arms.
    ///
    /// # Panics
    ///
    /// Panics if `order` is empty or is not a permutation of `0..order.len()`.
    pub fn new(order: Vec<usize>) -> Self {
        assert!(!order.is_empty(), "order must be non-empty");
        let mut check = order.clone();
        check.sort_unstable();
        assert!(
            check.iter().enumerate().all(|(i, &v)| i == v),
            "order must be a permutation of 0..K"
        );
        let tried = vec![false; order.len()];
        FixedOrder {
            order,
            tried,
            best: None,
        }
    }

    /// How many arms remain untried. Arms observed out of order (e.g.
    /// during a warm-up pass) also count as tried — the heuristic user
    /// would not retrain a model she already has numbers for.
    pub fn remaining(&self) -> usize {
        self.tried.iter().filter(|&&t| !t).count()
    }

    /// Whether every arm has been tried.
    pub fn exhausted(&self) -> bool {
        self.tried.iter().all(|&t| t)
    }
}

impl ArmPolicy for FixedOrder {
    fn num_arms(&self) -> usize {
        self.order.len()
    }

    fn select(&mut self, _rng: &mut dyn rand::RngCore) -> usize {
        match self.order.iter().copied().find(|&a| !self.tried[a]) {
            Some(a) => a,
            None => self.best.expect("exhausted policy has observations").0,
        }
    }

    fn observe(&mut self, arm: usize, reward: f64) {
        assert!(reward.is_finite(), "reward must be finite");
        assert!(arm < self.tried.len(), "arm index out of range");
        self.tried[arm] = true;
        if self.best.is_none_or(|(_, b)| reward > b) {
            self.best = Some((arm, reward));
        }
    }
}

/// Uniformly random arm selection — the weakest baseline.
#[derive(Debug, Clone)]
pub struct RandomArm {
    num_arms: usize,
}

impl RandomArm {
    /// Creates the policy.
    ///
    /// # Panics
    ///
    /// Panics if `num_arms == 0`.
    pub fn new(num_arms: usize) -> Self {
        assert!(num_arms > 0, "need at least one arm");
        RandomArm { num_arms }
    }
}

impl ArmPolicy for RandomArm {
    fn num_arms(&self) -> usize {
        self.num_arms
    }

    fn select(&mut self, rng: &mut dyn rand::RngCore) -> usize {
        random_arm(self.num_arms, rng)
    }

    fn observe(&mut self, _arm: usize, _reward: f64) {}
}

/// ε-greedy over empirical means: with probability ε explore uniformly,
/// otherwise exploit the best empirical mean (unpulled arms first).
#[derive(Debug, Clone)]
pub struct EpsilonGreedy {
    epsilon: f64,
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl EpsilonGreedy {
    /// Creates the policy.
    ///
    /// # Panics
    ///
    /// Panics if `num_arms == 0` or ε ∉ [0, 1].
    pub fn new(num_arms: usize, epsilon: f64) -> Self {
        assert!(num_arms > 0, "need at least one arm");
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1]");
        EpsilonGreedy {
            epsilon,
            sums: vec![0.0; num_arms],
            counts: vec![0; num_arms],
        }
    }
}

impl ArmPolicy for EpsilonGreedy {
    fn num_arms(&self) -> usize {
        self.sums.len()
    }

    fn select(&mut self, rng: &mut dyn rand::RngCore) -> usize {
        if let Some(unpulled) = self.counts.iter().position(|&c| c == 0) {
            return unpulled;
        }
        if rng.gen::<f64>() < self.epsilon {
            return random_arm(self.sums.len(), rng);
        }
        let means: Vec<f64> = (0..self.sums.len())
            .map(|k| self.sums[k] / self.counts[k] as f64)
            .collect();
        vec_ops::argmax(&means).expect("at least one arm")
    }

    fn observe(&mut self, arm: usize, reward: f64) {
        assert!(reward.is_finite(), "reward must be finite");
        self.sums[arm] += reward;
        self.counts[arm] += 1;
    }
}

/// Thompson sampling over the GP posterior marginals: sample
/// `θ_k ~ N(μ(k), σ²(k))` and play the argmax.
#[derive(Debug, Clone)]
pub struct ThompsonSampling {
    gp: GpPosterior,
}

impl ThompsonSampling {
    /// Creates the policy.
    pub fn new(prior: ArmPrior, noise_var: f64) -> Self {
        ThompsonSampling {
            gp: GpPosterior::new(prior, noise_var),
        }
    }

    /// The underlying posterior.
    pub fn posterior(&self) -> &GpPosterior {
        &self.gp
    }
}

impl ArmPolicy for ThompsonSampling {
    fn num_arms(&self) -> usize {
        self.gp.num_arms()
    }

    fn select(&mut self, rng: &mut dyn rand::RngCore) -> usize {
        let draws: Vec<f64> = (0..self.gp.num_arms())
            .map(|k| sample_normal(self.gp.mean(k), self.gp.std(k), rng))
            .collect();
        vec_ops::argmax(&draws).expect("at least one arm")
    }

    fn observe(&mut self, arm: usize, reward: f64) {
        self.gp.observe(arm, reward);
    }
}

/// GP-EI: plays the arm maximizing the expected improvement over the best
/// observed reward, `EI(k) = (μ−y⁺−ξ)Φ(z) + σφ(z)` with
/// `z = (μ−y⁺−ξ)/σ`.
#[derive(Debug, Clone)]
pub struct ExpectedImprovement {
    gp: GpPosterior,
    /// Exploration margin ξ ≥ 0.
    xi: f64,
}

impl ExpectedImprovement {
    /// Creates the policy.
    ///
    /// # Panics
    ///
    /// Panics if `xi < 0`.
    pub fn new(prior: ArmPrior, noise_var: f64, xi: f64) -> Self {
        assert!(xi >= 0.0, "xi must be non-negative");
        ExpectedImprovement {
            gp: GpPosterior::new(prior, noise_var),
            xi,
        }
    }

    /// The EI acquisition value of `arm` given the incumbent `best`.
    pub fn acquisition(&self, arm: usize, best: f64) -> f64 {
        let mu = self.gp.mean(arm);
        let sigma = self.gp.std(arm);
        let delta = mu - best - self.xi;
        if sigma < 1e-12 {
            return delta.max(0.0);
        }
        let z = delta / sigma;
        delta * normal_cdf(z) + sigma * normal_pdf(z)
    }

    /// The underlying posterior.
    pub fn posterior(&self) -> &GpPosterior {
        &self.gp
    }
}

impl ArmPolicy for ExpectedImprovement {
    fn num_arms(&self) -> usize {
        self.gp.num_arms()
    }

    fn select(&mut self, _rng: &mut dyn rand::RngCore) -> usize {
        let best = self
            .gp
            .best_observed()
            .map_or(f64::NEG_INFINITY, |(_, y)| y);
        if best == f64::NEG_INFINITY {
            // No incumbent yet: explore the most uncertain arm.
            return vec_ops::argmax(self.gp.vars()).expect("at least one arm");
        }
        let acq: Vec<f64> = (0..self.gp.num_arms())
            .map(|k| self.acquisition(k, best))
            .collect();
        vec_ops::argmax(&acq).expect("at least one arm")
    }

    fn observe(&mut self, arm: usize, reward: f64) {
        self.gp.observe(arm, reward);
    }
}

/// GP-PI: plays the arm maximizing the probability of improving on the best
/// observed reward, `PI(k) = Φ((μ−y⁺−ξ)/σ)`.
#[derive(Debug, Clone)]
pub struct ProbabilityOfImprovement {
    gp: GpPosterior,
    /// Exploration margin ξ ≥ 0.
    xi: f64,
}

impl ProbabilityOfImprovement {
    /// Creates the policy.
    ///
    /// # Panics
    ///
    /// Panics if `xi < 0`.
    pub fn new(prior: ArmPrior, noise_var: f64, xi: f64) -> Self {
        assert!(xi >= 0.0, "xi must be non-negative");
        ProbabilityOfImprovement {
            gp: GpPosterior::new(prior, noise_var),
            xi,
        }
    }

    /// The PI acquisition value of `arm` given the incumbent `best`.
    pub fn acquisition(&self, arm: usize, best: f64) -> f64 {
        let sigma = self.gp.std(arm);
        let delta = self.gp.mean(arm) - best - self.xi;
        if sigma < 1e-12 {
            return if delta > 0.0 { 1.0 } else { 0.0 };
        }
        normal_cdf(delta / sigma)
    }

    /// The underlying posterior.
    pub fn posterior(&self) -> &GpPosterior {
        &self.gp
    }
}

impl ArmPolicy for ProbabilityOfImprovement {
    fn num_arms(&self) -> usize {
        self.gp.num_arms()
    }

    fn select(&mut self, _rng: &mut dyn rand::RngCore) -> usize {
        let best = self
            .gp
            .best_observed()
            .map_or(f64::NEG_INFINITY, |(_, y)| y);
        if best == f64::NEG_INFINITY {
            return vec_ops::argmax(self.gp.vars()).expect("at least one arm");
        }
        let acq: Vec<f64> = (0..self.gp.num_arms())
            .map(|k| self.acquisition(k, best))
            .collect();
        vec_ops::argmax(&acq).expect("at least one arm")
    }

    fn observe(&mut self, arm: usize, reward: f64) {
        self.gp.observe(arm, reward);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn fixed_order_sweeps_then_repeats_best() {
        let mut p = FixedOrder::new(vec![2, 0, 1]);
        let mut r = rng();
        assert_eq!(p.remaining(), 3);
        assert_eq!(p.select(&mut r), 2);
        p.observe(2, 0.5);
        assert_eq!(p.select(&mut r), 0);
        p.observe(0, 0.9);
        assert_eq!(p.select(&mut r), 1);
        p.observe(1, 0.2);
        assert!(p.exhausted());
        // Best was arm 0.
        assert_eq!(p.select(&mut r), 0);
        assert_eq!(p.select(&mut r), 0);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn fixed_order_rejects_non_permutation() {
        let _ = FixedOrder::new(vec![0, 0, 1]);
    }

    #[test]
    fn random_arm_covers_the_range() {
        let mut p = RandomArm::new(5);
        let mut r = rng();
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[p.select(&mut r)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(p.num_arms(), 5);
    }

    #[test]
    fn epsilon_greedy_exploits_with_epsilon_zero() {
        let mut p = EpsilonGreedy::new(3, 0.0);
        let mut r = rng();
        // Initial sweep.
        for _ in 0..3 {
            let a = p.select(&mut r);
            p.observe(a, if a == 1 { 1.0 } else { 0.0 });
        }
        for _ in 0..20 {
            let a = p.select(&mut r);
            assert_eq!(a, 1);
            p.observe(a, 1.0);
        }
    }

    #[test]
    fn epsilon_greedy_explores_with_epsilon_one() {
        let mut p = EpsilonGreedy::new(3, 1.0);
        let mut r = rng();
        for _ in 0..3 {
            let a = p.select(&mut r);
            p.observe(a, 0.0);
        }
        let mut seen = [false; 3];
        for _ in 0..100 {
            let a = p.select(&mut r);
            seen[a] = true;
            p.observe(a, 0.0);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn thompson_finds_the_best_arm() {
        let mut p = ThompsonSampling::new(ArmPrior::independent(3, 1.0), 0.01);
        let mut r = rng();
        let means = [0.1, 0.9, 0.3];
        let mut best_pulls = 0;
        for i in 0..300 {
            let a = p.select(&mut r);
            p.observe(a, means[a]);
            if i >= 150 && a == 1 {
                best_pulls += 1;
            }
        }
        assert!(best_pulls > 120, "best arm pulled {best_pulls}/150 late");
        assert_eq!(p.posterior().num_arms(), 3);
    }

    #[test]
    fn ei_prefers_uncertain_arm_before_any_incumbent() {
        use easeml_linalg::Matrix;
        let gram = Matrix::from_diag(&[0.1, 3.0]);
        let mut p = ExpectedImprovement::new(ArmPrior::from_gram(gram), 0.01, 0.0);
        let mut r = rng();
        assert_eq!(p.select(&mut r), 1);
    }

    #[test]
    fn ei_acquisition_is_nonnegative_and_zero_when_hopeless() {
        let mut p = ExpectedImprovement::new(ArmPrior::independent(2, 1.0), 0.001, 0.0);
        p.observe(0, 5.0);
        // Arm 0's posterior is tight around 5; improving on 10 is hopeless.
        let a0 = p.acquisition(0, 10.0);
        assert!((0.0..1e-3).contains(&a0));
        // Improving on −10 is nearly certain and large.
        assert!(p.acquisition(0, -10.0) > 10.0);
    }

    #[test]
    fn pi_acquisition_is_a_probability() {
        let mut p = ProbabilityOfImprovement::new(ArmPrior::independent(2, 1.0), 0.001, 0.0);
        p.observe(0, 0.5);
        for best in [-1.0, 0.0, 0.5, 1.0] {
            for k in 0..2 {
                let v = p.acquisition(k, best);
                assert!((0.0..=1.0).contains(&v), "PI({k}, {best}) = {v}");
            }
        }
    }

    #[test]
    fn ei_and_pi_converge_to_the_best_arm() {
        let means = [0.2, 0.5, 0.95];
        for use_ei in [true, false] {
            let prior = ArmPrior::independent(3, 1.0);
            let mut late_best = 0;
            let mut r = rng();
            let mut ei = ExpectedImprovement::new(prior.clone(), 0.01, 0.01);
            let mut pi = ProbabilityOfImprovement::new(prior, 0.01, 0.01);
            for i in 0..120 {
                let a = if use_ei {
                    ei.select(&mut r)
                } else {
                    pi.select(&mut r)
                };
                let reward = means[a];
                if use_ei {
                    ei.observe(a, reward);
                } else {
                    pi.observe(a, reward);
                }
                if i >= 60 && a == 2 {
                    late_best += 1;
                }
            }
            assert!(
                late_best > 40,
                "acquisition (ei={use_ei}) picked best arm {late_best}/60 late rounds"
            );
        }
    }
}
