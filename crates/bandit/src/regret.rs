//! Single-tenant regret accounting (§3's definitions).

use easeml_linalg::vec_ops;

/// Tracks the regret quantities of §3 for a single tenant whose arms have
/// known true mean qualities (available in simulation):
///
/// * instantaneous regret `r_t = μ* − μ_{a_t}`;
/// * cumulative regret `R_T = Σ r_t`;
/// * cost-aware cumulative regret `R̃_T = Σ c_{a_t} r_t` (Theorem 1);
/// * the "ease.ml regret" ingredient: accuracy loss
///   `l_T = μ* − max_{t≤T} y_t`, the gap between the best possible quality
///   and the best model trained so far (Appendix A, eqs. 2–3).
///
/// # Examples
///
/// ```
/// use easeml_bandit::RegretTracker;
///
/// let mut t = RegretTracker::with_costs(vec![0.6, 0.9], vec![1.0, 5.0]);
/// t.record(0, 0.6);                 // regret 0.3 at cost 1
/// assert!((t.cost_weighted() - 0.3).abs() < 1e-12);
/// t.record(1, 0.9);                 // the best arm: regret 0
/// assert_eq!(t.accuracy_loss(), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct RegretTracker {
    true_means: Vec<f64>,
    costs: Vec<f64>,
    mu_star: f64,
    cumulative: f64,
    cost_weighted: f64,
    total_cost: f64,
    best_reward: f64,
    steps: usize,
}

impl RegretTracker {
    /// Creates a tracker from true arm means; costs default to 1.
    ///
    /// # Panics
    ///
    /// Panics if `true_means` is empty.
    pub fn new(true_means: Vec<f64>) -> Self {
        let costs = vec![1.0; true_means.len()];
        Self::with_costs(true_means, costs)
    }

    /// Creates a tracker with explicit per-arm costs.
    ///
    /// # Panics
    ///
    /// Panics if the inputs are empty, differ in length, or contain a
    /// non-positive cost.
    pub fn with_costs(true_means: Vec<f64>, costs: Vec<f64>) -> Self {
        assert!(!true_means.is_empty(), "need at least one arm");
        assert_eq!(true_means.len(), costs.len(), "one cost per arm");
        assert!(costs.iter().all(|&c| c > 0.0), "costs must be positive");
        let mu_star = vec_ops::max(&true_means).expect("non-empty");
        RegretTracker {
            true_means,
            costs,
            mu_star,
            cumulative: 0.0,
            cost_weighted: 0.0,
            total_cost: 0.0,
            best_reward: f64::NEG_INFINITY,
            steps: 0,
        }
    }

    /// Best achievable mean quality μ*.
    #[inline]
    pub fn mu_star(&self) -> f64 {
        self.mu_star
    }

    /// Records the play of `arm` with observed reward `reward` and returns
    /// the instantaneous regret of the play.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn record(&mut self, arm: usize, reward: f64) -> f64 {
        assert!(arm < self.true_means.len(), "arm index out of range");
        let r = self.mu_star - self.true_means[arm];
        self.cumulative += r;
        self.cost_weighted += self.costs[arm] * r;
        self.total_cost += self.costs[arm];
        if reward > self.best_reward {
            self.best_reward = reward;
        }
        self.steps += 1;
        r
    }

    /// Cumulative regret `R_T`.
    #[inline]
    pub fn cumulative(&self) -> f64 {
        self.cumulative
    }

    /// Cost-weighted cumulative regret `R̃_T` (Theorem 1).
    #[inline]
    pub fn cost_weighted(&self) -> f64 {
        self.cost_weighted
    }

    /// Total cost spent `Σ c_{a_t}`.
    #[inline]
    pub fn total_cost(&self) -> f64 {
        self.total_cost
    }

    /// Number of plays T.
    #[inline]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Average regret `R_T / T`, the quantity that must vanish for a
    /// regret-free policy. Zero before the first play.
    pub fn average(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.cumulative / self.steps as f64
        }
    }

    /// Accuracy loss `μ* − best reward so far`; `μ*` before the first play.
    pub fn accuracy_loss(&self) -> f64 {
        if self.best_reward == f64::NEG_INFINITY {
            self.mu_star
        } else {
            (self.mu_star - self.best_reward).max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regret_accumulates_against_the_best_arm() {
        let mut t = RegretTracker::new(vec![0.5, 1.0, 0.8]);
        assert_eq!(t.mu_star(), 1.0);
        assert_eq!(t.record(0, 0.5), 0.5);
        assert!((t.record(2, 0.8) - 0.2).abs() < 1e-12);
        assert!((t.cumulative() - 0.7).abs() < 1e-12);
        assert_eq!(t.record(1, 1.0), 0.0);
        assert!((t.cumulative() - 0.7).abs() < 1e-12);
        assert_eq!(t.steps(), 3);
        assert!((t.average() - 0.7 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cost_weighted_regret_matches_theorem_1_definition() {
        let mut t = RegretTracker::with_costs(vec![0.0, 1.0], vec![3.0, 1.0]);
        t.record(0, 0.0); // regret 1, cost 3 → contributes 3
        t.record(1, 1.0); // regret 0
        assert!((t.cost_weighted() - 3.0).abs() < 1e-12);
        assert!((t.total_cost() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_loss_tracks_best_so_far() {
        let mut t = RegretTracker::new(vec![0.3, 0.9]);
        assert_eq!(t.accuracy_loss(), 0.9);
        t.record(0, 0.3);
        assert!((t.accuracy_loss() - 0.6).abs() < 1e-12);
        t.record(1, 0.9);
        assert_eq!(t.accuracy_loss(), 0.0);
        // Accuracy loss never goes back up.
        t.record(0, 0.3);
        assert_eq!(t.accuracy_loss(), 0.0);
    }

    #[test]
    fn accuracy_loss_is_bounded_by_average_regret_times_steps() {
        // l_T ≤ r_t for the best play, so l_T ≤ R_T always once ≥ 1 play
        // with deterministic rewards equal to means.
        let mut t = RegretTracker::new(vec![0.2, 0.7, 0.5]);
        for &a in &[0usize, 2, 0, 1] {
            let means = [0.2, 0.7, 0.5];
            t.record(a, means[a]);
            assert!(t.accuracy_loss() <= t.cumulative() + 1e-12);
        }
    }

    #[test]
    fn average_is_zero_before_any_play() {
        let t = RegretTracker::new(vec![1.0]);
        assert_eq!(t.average(), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_cost_rejected() {
        let _ = RegretTracker::with_costs(vec![1.0], vec![0.0]);
    }
}
