//! Scalar Gaussian utilities: density, CDF, and sampling.
//!
//! Implemented locally (Box–Muller + an Abramowitz–Stegun erf) instead of
//! pulling `rand_distr`/`statrs`, keeping the dependency set to the
//! workspace-approved crates.

use rand::Rng;
use std::f64::consts::{PI, SQRT_2};

/// Standard normal probability density φ(z).
#[inline]
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * PI).sqrt()
}

/// Error function via the Abramowitz–Stegun 7.1.26 rational approximation
/// (absolute error < 1.5e-7, ample for acquisition functions).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution Φ(z).
#[inline]
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / SQRT_2))
}

/// Draws one standard-normal sample via Box–Muller.
pub fn sample_standard_normal(rng: &mut dyn rand::RngCore) -> f64 {
    // Avoid u1 = 0 exactly (log of zero).
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
}

/// Draws one `N(mean, std²)` sample.
#[inline]
pub fn sample_normal(mean: f64, std: f64, rng: &mut dyn rand::RngCore) -> f64 {
    mean + std * sample_standard_normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pdf_is_symmetric_and_peaks_at_zero() {
        assert!((normal_pdf(0.0) - 0.3989422804014327).abs() < 1e-12);
        assert!((normal_pdf(1.3) - normal_pdf(-1.3)).abs() < 1e-15);
        assert!(normal_pdf(0.0) > normal_pdf(0.5));
    }

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-7); // approximation error at 0 is tiny
        assert!((erf(1.0) - 0.8427007929).abs() < 2e-7);
        assert!((erf(-1.0) + 0.8427007929).abs() < 2e-7);
        assert!((erf(3.0) - 0.9999779095).abs() < 2e-7);
    }

    #[test]
    fn cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(8.0) > 0.999999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut prev = 0.0;
        let mut z = -5.0;
        while z <= 5.0 {
            let c = normal_cdf(z);
            assert!(c >= prev - 1e-12);
            prev = c;
            z += 0.1;
        }
    }

    #[test]
    fn samples_have_plausible_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "sample mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "sample variance {var}");
    }

    #[test]
    fn shifted_samples() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 10_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(3.0, 0.5, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.03);
    }
}
