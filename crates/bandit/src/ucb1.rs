//! The classic distribution-free UCB1 policy.
//!
//! §3.1 of the paper contrasts GP-UCB against the classical UCB bound
//! `R_T ≤ C·K log T`: UCB1 must pull every arm at least once before its
//! average regret can converge, whereas GP-UCB shares information across
//! arms through the kernel. UCB1 is implemented here as a baseline for the
//! ablation benches.

use crate::ArmPolicy;

/// UCB1 (Auer et al.): play each arm once, then
/// `argmax_k  x̄_k + √(2 ln t / n_k)`.
#[derive(Debug, Clone)]
pub struct Ucb1 {
    sums: Vec<f64>,
    counts: Vec<u64>,
    t: u64,
}

impl Ucb1 {
    /// Creates the policy for `num_arms` arms.
    ///
    /// # Panics
    ///
    /// Panics if `num_arms == 0`.
    pub fn new(num_arms: usize) -> Self {
        assert!(num_arms > 0, "UCB1 needs at least one arm");
        Ucb1 {
            sums: vec![0.0; num_arms],
            counts: vec![0; num_arms],
            t: 0,
        }
    }

    /// Number of completed observations.
    #[inline]
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Empirical mean of `arm`, or 0 before its first pull.
    pub fn empirical_mean(&self, arm: usize) -> f64 {
        if self.counts[arm] == 0 {
            0.0
        } else {
            self.sums[arm] / self.counts[arm] as f64
        }
    }

    /// Number of pulls of `arm`.
    #[inline]
    pub fn pulls(&self, arm: usize) -> u64 {
        self.counts[arm]
    }

    /// The UCB1 index of `arm`; infinite for unpulled arms.
    pub fn index(&self, arm: usize) -> f64 {
        if self.counts[arm] == 0 {
            return f64::INFINITY;
        }
        let bonus = (2.0 * (self.t.max(1) as f64).ln() / self.counts[arm] as f64).sqrt();
        self.empirical_mean(arm) + bonus
    }

    /// Chooses the next arm (unpulled arms first, then max index).
    pub fn select_arm(&self) -> usize {
        let indices: Vec<f64> = (0..self.sums.len()).map(|k| self.index(k)).collect();
        // argmax with infinity handling: first unpulled arm wins.
        if let Some(first_unpulled) = self.counts.iter().position(|&c| c == 0) {
            return first_unpulled;
        }
        easeml_linalg::vec_ops::argmax(&indices).expect("at least one arm")
    }
}

impl ArmPolicy for Ucb1 {
    fn num_arms(&self) -> usize {
        self.sums.len()
    }

    fn select(&mut self, _rng: &mut dyn rand::RngCore) -> usize {
        self.select_arm()
    }

    fn observe(&mut self, arm: usize, reward: f64) {
        assert!(arm < self.sums.len(), "arm index out of range");
        assert!(reward.is_finite(), "reward must be finite");
        self.sums[arm] += reward;
        self.counts[arm] += 1;
        self.t += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn plays_every_arm_once_first() {
        let mut ucb = Ucb1::new(4);
        let mut seen = Vec::new();
        for _ in 0..4 {
            let a = ucb.select_arm();
            seen.push(a);
            ArmPolicy::observe(&mut ucb, a, 0.0);
        }
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn exploits_the_best_arm_asymptotically() {
        let mut ucb = Ucb1::new(3);
        let means = [0.2, 0.8, 0.5];
        let mut rng = StdRng::seed_from_u64(3);
        let mut best_pulls = 0u64;
        for _ in 0..2000 {
            let a = ucb.select_arm();
            // Bernoulli reward.
            let r = if rng.gen::<f64>() < means[a] {
                1.0
            } else {
                0.0
            };
            ArmPolicy::observe(&mut ucb, a, r);
            if a == 1 {
                best_pulls += 1;
            }
        }
        assert!(
            best_pulls > 1400,
            "best arm pulled only {best_pulls}/2000 times"
        );
        assert!((ucb.empirical_mean(1) - 0.8).abs() < 0.1);
    }

    #[test]
    fn index_is_infinite_before_first_pull() {
        let ucb = Ucb1::new(2);
        assert!(ucb.index(0).is_infinite());
        assert_eq!(ucb.empirical_mean(0), 0.0);
        assert_eq!(ucb.pulls(0), 0);
        assert_eq!(ucb.steps(), 0);
    }

    #[test]
    fn bonus_shrinks_with_pulls() {
        let mut ucb = Ucb1::new(2);
        for _ in 0..10 {
            ArmPolicy::observe(&mut ucb, 0, 0.5);
        }
        ArmPolicy::observe(&mut ucb, 1, 0.5);
        // Same empirical mean, but arm 1 has far fewer pulls ⇒ larger index.
        assert!(ucb.index(1) > ucb.index(0));
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn zero_arms_panics() {
        let _ = Ucb1::new(0);
    }
}
