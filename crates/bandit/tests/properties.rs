//! Property-based tests for the single-tenant policies.

use easeml_bandit::{
    ArmPolicy, BetaSchedule, EpsilonGreedy, ExpectedImprovement, FixedOrder, GpBucb, GpUcb,
    ProbabilityOfImprovement, RandomArm, RegretTracker, ThompsonSampling, Ucb1,
};
use easeml_gp::{ArmPrior, GpPosterior};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn policies(k: usize) -> Vec<Box<dyn ArmPolicy>> {
    let beta = BetaSchedule::Simple {
        num_arms: k,
        delta: 0.1,
    };
    vec![
        Box::new(GpUcb::cost_oblivious(
            ArmPrior::independent(k, 1.0),
            1e-3,
            beta,
        )),
        Box::new(GpUcb::cost_aware(
            ArmPrior::independent(k, 1.0),
            1e-3,
            beta,
            (1..=k).map(|c| c as f64).collect(),
        )),
        Box::new(Ucb1::new(k)),
        Box::new(EpsilonGreedy::new(k, 0.2)),
        Box::new(ThompsonSampling::new(ArmPrior::independent(k, 1.0), 1e-3)),
        Box::new(ExpectedImprovement::new(
            ArmPrior::independent(k, 1.0),
            1e-3,
            0.01,
        )),
        Box::new(ProbabilityOfImprovement::new(
            ArmPrior::independent(k, 1.0),
            1e-3,
            0.01,
        )),
        Box::new(RandomArm::new(k)),
        Box::new(FixedOrder::new((0..k).collect())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_policy_selects_valid_arms_under_arbitrary_rewards(
        (k, seed, rewards) in (2usize..6).prop_flat_map(|k| {
            (Just(k), 0u64..1000, prop::collection::vec(0.0f64..1.0, 8..24))
        })
    ) {
        for mut p in policies(k) {
            let mut rng = StdRng::seed_from_u64(seed);
            for &r in &rewards {
                let a = p.select(&mut rng);
                prop_assert!(a < k);
                p.observe(a, r);
            }
        }
    }

    #[test]
    fn beta_schedules_are_positive_and_nondecreasing(
        (k, n, c, delta) in (1usize..50, 1usize..50, 0.1f64..20.0, 0.01f64..0.99)
    ) {
        let schedules = [
            BetaSchedule::Simple { num_arms: k, delta },
            BetaSchedule::CostAware { max_cost: c, num_arms: k, delta },
            BetaSchedule::MultiTenant { max_cost: c, num_tenants: n, max_arms: k, delta },
        ];
        for s in schedules {
            let mut prev = 0.0;
            for t in 1..64 {
                let b = s.at(t);
                prop_assert!(b > 0.0);
                prop_assert!(b >= prev);
                prev = b;
            }
        }
    }

    #[test]
    fn gp_ucb_dominates_its_posterior_mean(
        plays in prop::collection::vec((0usize..3, 0.0f64..1.0), 1..16)
    ) {
        let beta = BetaSchedule::Simple { num_arms: 3, delta: 0.1 };
        let mut ucb = GpUcb::cost_oblivious(ArmPrior::independent(3, 1.0), 1e-3, beta);
        for &(a, r) in &plays {
            ucb.observe(a, r);
            for k in 0..3 {
                // The UCB is the mean plus a non-negative width.
                prop_assert!(ucb.ucb(k) >= ucb.posterior().mean(k) - 1e-12);
                prop_assert!(ucb.exploration_width(k) >= 0.0);
            }
        }
    }

    #[test]
    fn cost_aware_width_shrinks_with_cost(
        (c_low, extra, plays) in (0.1f64..5.0, 0.1f64..10.0,
            prop::collection::vec((0usize..2, 0.0f64..1.0), 0..10))
    ) {
        let beta = BetaSchedule::Simple { num_arms: 2, delta: 0.1 };
        let c_high = c_low + extra;
        let mut ucb = GpUcb::cost_aware(
            ArmPrior::independent(2, 1.0),
            1e-3,
            beta,
            vec![c_low, c_high],
        );
        for &(a, r) in &plays {
            ucb.observe(a, r);
        }
        // Same posterior variance ⇒ the cheaper arm's width per unit of
        // posterior std is larger.
        let w0 = ucb.exploration_width(0) / ucb.posterior().std(0).max(1e-12);
        let w1 = ucb.exploration_width(1) / ucb.posterior().std(1).max(1e-12);
        prop_assert!(w0 >= w1, "cheap arm must have the larger scaled width");
    }

    #[test]
    fn regret_tracker_invariants(
        (means, plays) in (prop::collection::vec(0.0f64..1.0, 2..5))
            .prop_flat_map(|means| {
                let k = means.len();
                (Just(means), prop::collection::vec(0..k, 1..20))
            })
    ) {
        let mut t = RegretTracker::new(means.clone());
        let mu_star = means.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut cum = 0.0;
        for &a in &plays {
            let r = t.record(a, means[a]);
            prop_assert!(r >= -1e-12, "instantaneous regret must be >= 0");
            cum += r;
        }
        prop_assert!((t.cumulative() - cum).abs() < 1e-9);
        prop_assert!((t.mu_star() - mu_star).abs() < 1e-12);
        // Accuracy loss is bounded by μ* and non-negative.
        prop_assert!(t.accuracy_loss() >= 0.0);
        prop_assert!(t.accuracy_loss() <= mu_star + 1e-12);
        prop_assert!((t.average() - cum / plays.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn bucb_hallucination_never_increases_posterior_variance(
        (k, batch) in (2usize..6).prop_flat_map(|k| (Just(k), 1usize..8))
    ) {
        let beta = BetaSchedule::Simple { num_arms: k, delta: 0.1 };
        let mut p = GpBucb::new(ArmPrior::independent(k, 1.0), 1e-3, beta);
        for _ in 0..batch {
            let before: Vec<f64> = (0..k).map(|a| p.hallucinated().var(a)).collect();
            p.select_next();
            for a in 0..k {
                prop_assert!(
                    p.hallucinated().var(a) <= before[a] + 1e-12,
                    "hallucination inflated var of arm {a}"
                );
                prop_assert!(p.hallucinated().var(a) <= p.posterior().var(a) + 1e-12);
            }
        }
    }

    #[test]
    fn bucb_resolve_is_bit_identical_to_direct_observation(
        (k, rewards) in (2usize..5).prop_flat_map(|k| {
            (Just(k), prop::collection::vec(0.0f64..1.0, 1..10))
        })
    ) {
        // Interleave dispatch/resolve through GpBucb and mirror every true
        // reward into a bare posterior observed directly, in the same order.
        let beta = BetaSchedule::Simple { num_arms: k, delta: 0.1 };
        let mut p = GpBucb::new(ArmPrior::independent(k, 1.0), 1e-3, beta);
        let mut direct = GpPosterior::new(ArmPrior::independent(k, 1.0), 1e-3);
        for &r in &rewards {
            let a = p.select_next();
            p.resolve(a, r);
            direct.observe(a, r);
            for arm in 0..k {
                prop_assert_eq!(
                    p.posterior().mean(arm).to_bits(),
                    direct.mean(arm).to_bits()
                );
                prop_assert_eq!(
                    p.posterior().var(arm).to_bits(),
                    direct.var(arm).to_bits()
                );
            }
        }
    }

    #[test]
    fn bucb_full_cycle_leaves_no_pending_leakage(
        (k, batch, perm_seed, rewards) in (3usize..6).prop_flat_map(|k| {
            (Just(k), 2usize..6, 0u64..1000, prop::collection::vec(0.0f64..1.0, 6))
        })
    ) {
        use rand::Rng;
        let beta = BetaSchedule::Simple { num_arms: k, delta: 0.1 };
        let mut p = GpBucb::new(ArmPrior::independent(k, 1.0), 1e-3, beta);
        let dispatched: Vec<usize> = (0..batch).map(|_| p.select_next()).collect();
        prop_assert_eq!(p.pending(), &dispatched[..]);
        // Resolve in a random (delayed-feedback) order.
        let mut order: Vec<usize> = (0..batch).collect();
        let mut rng = StdRng::seed_from_u64(perm_seed);
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        for &i in &order {
            p.resolve(dispatched[i], rewards[i]);
        }
        prop_assert!(p.pending().is_empty(), "pending leaked: {:?}", p.pending());
        prop_assert_eq!(p.posterior().num_observations(), batch);
        // With nothing pending, the hallucinated posterior must be exactly
        // the real one — no fake observations may survive the batch.
        for arm in 0..k {
            prop_assert_eq!(
                p.hallucinated().mean(arm).to_bits(),
                p.posterior().mean(arm).to_bits()
            );
            prop_assert_eq!(
                p.hallucinated().var(arm).to_bits(),
                p.posterior().var(arm).to_bits()
            );
        }
    }

    #[test]
    fn fixed_order_visits_every_arm_exactly_once_before_repeating(
        k in 2usize..7
    ) {
        let order: Vec<usize> = (0..k).rev().collect();
        let mut p = FixedOrder::new(order.clone());
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = vec![0usize; k];
        for _ in 0..k {
            let a = p.select(&mut rng);
            seen[a] += 1;
            p.observe(a, a as f64 / k as f64);
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
        prop_assert!(p.exhausted());
        // After exhaustion, it repeats the best (the max reward arm).
        let best = k - 1;
        prop_assert_eq!(p.select(&mut rng), best);
    }
}
