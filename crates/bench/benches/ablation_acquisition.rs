//! Ablation: single-tenant acquisition functions (§4.5 lists GP-EI and
//! GP-PI as open extensions; they are implemented in `easeml-bandit` and
//! compared here against GP-UCB, Thompson sampling, UCB1, ε-greedy, and
//! random on a single-user model-selection task).
//!
//! The GP policies receive the empirical quality-vector prior built from
//! the *other* users (Appendix A), exactly as the multi-tenant system
//! would; the classical policies (UCB1, ε-greedy, random) cannot use it —
//! that asymmetry is the point of GP-based model selection.

use easeml::experiment::empirical_prior;
use easeml_bandit::{
    ArmPolicy, BetaSchedule, EpsilonGreedy, ExpectedImprovement, GpUcb, ProbabilityOfImprovement,
    RandomArm, ThompsonSampling, Ucb1,
};
use easeml_bench::{banner, reps, seed};
use easeml_data::SynConfig;
use easeml_gp::ArmPrior;
use easeml_linalg::vec_ops;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "Ablation",
        "Single-tenant acquisition functions: GP-UCB vs EI vs PI vs Thompson vs UCB1",
    );
    let dataset = SynConfig {
        num_users: 40,
        num_models: 30,
        ..SynConfig::paper(0.5, 1.0)
    }
    .generate(seed());
    let k = dataset.num_models();
    let budget = k / 6; // a handful of pulls: enough for kernel-guided search only
    let repetitions = reps().min(30);

    let names = [
        "gp-ucb",
        "gp-ei",
        "gp-pi",
        "thompson",
        "ucb1",
        "eps-greedy",
        "random",
    ];
    let mut final_losses = vec![Vec::new(); names.len()];

    for rep in 0..repetitions {
        let user = rep % dataset.num_users();
        let truth: Vec<f64> = dataset.user_qualities(user).to_vec();
        let best = vec_ops::max(&truth).unwrap();
        // The Appendix-A empirical prior from every user except this one.
        let train: Vec<usize> = (0..dataset.num_users()).filter(|&u| u != user).collect();
        let (means, cov) = empirical_prior(&dataset, &train);
        let prior = || ArmPrior::from_gram(cov.clone()).with_mean(means.clone());
        let beta = BetaSchedule::Simple {
            num_arms: k,
            delta: 0.1,
        };
        let mut policies: Vec<Box<dyn ArmPolicy>> = vec![
            Box::new(GpUcb::cost_oblivious(prior(), 1e-3, beta)),
            Box::new(ExpectedImprovement::new(prior(), 1e-3, 0.01)),
            Box::new(ProbabilityOfImprovement::new(prior(), 1e-3, 0.01)),
            Box::new(ThompsonSampling::new(prior(), 1e-3)),
            Box::new(Ucb1::new(k)),
            Box::new(EpsilonGreedy::new(k, 0.1)),
            Box::new(RandomArm::new(k)),
        ];
        for (p, losses) in policies.iter_mut().zip(final_losses.iter_mut()) {
            let mut rng = StdRng::seed_from_u64(seed() ^ rep as u64);
            let mut best_seen = 0.0f64;
            for _ in 0..budget {
                let a = p.select(&mut rng);
                p.observe(a, truth[a]);
                best_seen = best_seen.max(truth[a]);
            }
            losses.push(best - best_seen);
        }
    }

    println!(
        "mean accuracy loss after {budget} pulls over {repetitions} repetitions \
         (30 candidate models):"
    );
    let mut rows: Vec<(&str, f64)> = names
        .iter()
        .zip(&final_losses)
        .map(|(n, l)| (*n, vec_ops::mean(l)))
        .collect();
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    for (name, loss) in rows {
        println!("  {name:<12} {loss:.4}");
    }
    println!();
    println!("expected shape: the GP policies exploit the empirical kernel from the");
    println!("other 39 users; UCB1/eps-greedy/random must explore every arm blindly.");
}
