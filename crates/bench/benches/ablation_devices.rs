//! Ablation: single pooled device vs one-GPU-per-user (§5.3.2's discussion).
//!
//! Both alternatives consume the same GPU-time. The shipped design treats
//! the whole pool as one device, so every run finishes `d×` faster in
//! wall-clock; the alternative trains `d` users concurrently at full cost.
//! The paper observed the single-device option achieves lower accumulated
//! regret — it returns a model to *someone* sooner.

use easeml::prelude::*;
use easeml::sim::simulate_parallel;
use easeml_bench::{banner, reps, seed};
use easeml_data::Dataset;
use easeml_gp::ArmPrior;
use easeml_linalg::vec_ops;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "Ablation",
        "Single pooled device vs multi-device (same GPU-time, DEEPLEARNING)",
    );
    let devices = 4usize;
    let dataset = easeml_data::DatasetKind::DeepLearning.generate(seed());
    let repetitions = reps().min(25);

    // Wall-clock horizon: enough for ~3 pooled runs per user on average.
    let test_users = 10usize;
    let grid: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
    let mut pooled_curves = Vec::new();
    let mut parallel_curves = Vec::new();

    for rep in 0..repetitions {
        let mut split_rng = StdRng::seed_from_u64(seed() + rep as u64);
        let split =
            easeml_data::TrainTestSplit::random(dataset.num_users(), test_users, &mut split_rng);
        let test = dataset.select_users(&split.test_users);
        let budget = test.total_cost() * 0.10 / devices as f64; // wall-clock
        let priors: Vec<ArmPrior> = (0..test_users)
            .map(|_| ArmPrior::independent(test.num_models(), 0.02).with_mean(vec![0.8; 8]))
            .collect();
        let cfg = SimConfig {
            budget,
            cost_aware: true,
            noise_var: 1e-3,
            delta: 0.1,
            fault: None,
        };
        // Pooled: all GPUs on one model — costs divided by d, serial.
        let pooled_dataset = Dataset::new(
            test.name().to_string(),
            test.quality_matrix().clone(),
            test.cost_matrix().scaled(1.0 / devices as f64),
        );
        let mut rng = StdRng::seed_from_u64(seed() ^ rep as u64);
        let pooled = simulate(
            &pooled_dataset,
            &priors,
            SchedulerKind::EaseMl,
            &cfg,
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(seed() ^ rep as u64);
        let parallel = simulate_parallel(
            &test,
            &priors,
            SchedulerKind::EaseMl,
            &cfg,
            devices,
            &mut rng,
        );
        pooled_curves.push(pooled.resample(&grid));
        parallel_curves.push(parallel.resample(&grid));
    }

    println!(
        "{:>12} {:>18} {:>18}",
        "% wallclock", "pooled (1 device)", "one GPU per user"
    );
    for (i, f) in grid.iter().enumerate() {
        let p = vec_ops::mean(&pooled_curves.iter().map(|c| c[i]).collect::<Vec<_>>());
        let q = vec_ops::mean(&parallel_curves.iter().map(|c| c[i]).collect::<Vec<_>>());
        println!("{:>12.0} {:>18.4} {:>18.4}", f * 100.0, p, q);
    }
    println!();
    println!("expected shape: the pooled single device leads early (it returns");
    println!("someone a model sooner), matching ease.ml's shipped design choice.");
}
