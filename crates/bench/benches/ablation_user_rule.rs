//! Ablation: the line-8 rule of Algorithm 2.
//!
//! The regret bound holds for *any* rule picking from the candidate set;
//! the paper ships the max-UCB-gap rule and leaves the optimal practical
//! rule open. This bench compares the three implemented rules.

use easeml::prelude::*;
use easeml_bench::{banner, emit, reps, run, seed};
use easeml_sched::PickRule;

fn main() {
    banner(
        "Ablation",
        "Algorithm 2 line 8: max-gap vs max-sigma vs random candidate picking",
    );
    let dataset = easeml_data::DatasetKind::Syn05_10.generate(seed());
    let cfg = ExperimentConfig {
        test_users: 10,
        repetitions: reps(),
        budget: Budget::FractionOfRuns(0.5),
        ..ExperimentConfig::default()
    };
    let results = vec![
        run(&dataset, SchedulerKind::Greedy(PickRule::MaxUcbGap), &cfg),
        run(
            &dataset,
            SchedulerKind::Greedy(PickRule::MaxSigmaTilde),
            &cfg,
        ),
        run(&dataset, SchedulerKind::Greedy(PickRule::Random), &cfg),
    ];
    emit("ablation_user_rule", &results);
    let auc = |c: &[f64]| c.iter().sum::<f64>() / c.len() as f64;
    println!("mean-loss AUC (lower is better):");
    for r in &results {
        println!("  {:<22} {:.4}", r.scheduler.name(), auc(&r.mean_curve));
    }
}
