//! Multi-device scaling sweep: how makespan and regret-at-equal-cost move
//! as the fleet grows D ∈ {1, 2, 4, 8}.
//!
//! Every fleet size commits the same cost budget on the same workload, so
//! the comparison is GPU-time-fair: a bigger fleet finishes the budget in
//! less simulated time (makespan shrinks ~1/D until the per-tenant
//! dispatch rate saturates), while the delayed feedback of in-flight runs
//! costs a little statistical efficiency (regret at the shared budget
//! creeps up with D) — the classic throughput/sample-efficiency trade of
//! GP-BUCB batching. The wall-clock timings bound the engine's own
//! overhead; the `exec_scaling.perf.json` snapshot feeds
//! `scripts/bench_snapshot_diff.sh`.

use criterion::{criterion_group, criterion_main, Criterion};
use easeml::prelude::*;
use easeml_bench::{banner, exec_scaling_sweep, exec_snapshot, exec_workload};
use easeml_exec::simulate_multi_device;
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let (dataset, priors, cfg) = exec_workload();
    for devices in [1usize, 4] {
        c.bench_function(&format!("exec/fleet_run_d{devices}"), |b| {
            b.iter(|| {
                simulate_multi_device(
                    black_box(&dataset),
                    black_box(&priors),
                    SchedulerKind::Hybrid,
                    &cfg,
                    devices,
                    7,
                )
            })
        });
    }
}

fn scaling_report(_c: &mut Criterion) {
    banner("Scaling", "Multi-device execution: makespan vs fleet size");
    let rows = exec_scaling_sweep(&[1, 2, 4, 8]);
    println!(
        "{:>8} {:>12} {:>18} {:>12} {:>20}",
        "devices", "makespan", "regret@budget", "dispatches", "parallel dispatches"
    );
    for row in &rows {
        println!(
            "{:>8} {:>12.4} {:>18.4} {:>12} {:>20}",
            row.devices,
            row.makespan,
            row.regret_at_budget,
            row.dispatches,
            row.parallel_dispatches
        );
    }
    let makespan = |d: usize| {
        rows.iter()
            .find(|r| r.devices == d)
            .map(|r| r.makespan)
            .expect("sweep covers the fleet size")
    };
    assert!(
        makespan(4) < makespan(2) && makespan(2) < makespan(1),
        "makespan must strictly shrink from D=1 ({}) through D=2 ({}) to D=4 ({})",
        makespan(1),
        makespan(2),
        makespan(4),
    );
    println!("\nmakespan strictly decreasing D=1 -> D=2 -> D=4: ok");
    match exec_snapshot("exec_scaling", &rows) {
        Some(p) => println!("perf snapshot: {}", p.display()),
        None => println!("perf snapshot: skipped (filesystem unavailable)"),
    }
}

criterion_group!(benches, bench_engine, scaling_report);
criterion_main!(benches);
