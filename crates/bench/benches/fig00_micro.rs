//! Criterion micro-benchmarks of the hot paths: GP posterior updates,
//! incremental Cholesky, one scheduler round, DSL parsing, and the
//! Appendix-B generator.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use easeml::prelude::*;
use easeml_data::SynConfig;
use easeml_gp::{ArmPrior, GpPosterior, Kernel, RbfKernel};
use easeml_linalg::{Cholesky, Matrix};
use easeml_sched::PickRule;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_cholesky(c: &mut Criterion) {
    let n = 64;
    let feats: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 * 0.1]).collect();
    let mut gram = RbfKernel::new(1.0).gram(&feats);
    gram.add_diag_mut(0.01);

    c.bench_function("cholesky/factor_64", |b| {
        b.iter(|| Cholesky::factor(black_box(&gram)).unwrap())
    });

    let full = Cholesky::factor(&gram).unwrap();
    c.bench_function("cholesky/extend_63_to_64", |b| {
        let small = {
            let sub = gram.submatrix(&(0..n - 1).collect::<Vec<_>>());
            Cholesky::factor(&sub).unwrap()
        };
        let col: Vec<f64> = (0..n - 1).map(|i| gram[(n - 1, i)]).collect();
        let d = gram[(n - 1, n - 1)];
        b.iter_batched(
            || small.clone(),
            |mut chol| {
                chol.extend(black_box(&col), black_box(d)).unwrap();
                chol
            },
            BatchSize::SmallInput,
        )
    });
    black_box(full);
}

fn bench_gp_posterior(c: &mut Criterion) {
    let k = 100;
    let feats: Vec<Vec<f64>> = (0..k).map(|i| vec![(i as f64) * 0.05]).collect();
    let prior = ArmPrior::from_kernel(&RbfKernel::new(1.0), &feats);

    c.bench_function("gp/observe_50th_of_100_arms", |b| {
        let mut warm = GpPosterior::new(prior.clone(), 1e-3);
        for i in 0..49 {
            warm.observe(i % k, 0.5);
        }
        b.iter_batched(
            || warm.clone(),
            |mut gp| {
                gp.observe(black_box(50), black_box(0.6));
                gp
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_scheduler_round(c: &mut Criterion) {
    let dataset = SynConfig {
        num_users: 10,
        num_models: 20,
        ..SynConfig::paper(0.5, 1.0)
    }
    .generate(1);
    let priors: Vec<ArmPrior> = (0..10).map(|_| ArmPrior::independent(20, 0.05)).collect();

    c.bench_function("sched/greedy_full_run_10x20_50pct", |b| {
        let cfg = SimConfig {
            budget: 100.0,
            cost_aware: false,
            noise_var: 1e-3,
            delta: 0.1,
            fault: None,
        };
        let unit = dataset.unit_cost_view();
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            simulate(
                black_box(&unit),
                black_box(&priors),
                SchedulerKind::Greedy(PickRule::MaxUcbGap),
                &cfg,
                &mut rng,
            )
        })
    });
}

fn bench_dsl(c: &mut Criterion) {
    let src = "{input: {[Tensor[256, 256, 3]], []}, output: {[Tensor[1000]], []}}";
    c.bench_function("dsl/parse_and_match", |b| {
        b.iter(|| {
            let p = easeml_dsl::parse_program(black_box(src)).unwrap();
            easeml_dsl::match_templates(&p).unwrap()
        })
    });
}

fn bench_generator(c: &mut Criterion) {
    c.bench_function("data/syn_40x20", |b| {
        let cfg = SynConfig {
            num_users: 40,
            num_models: 20,
            ..SynConfig::paper(0.5, 1.0)
        };
        b.iter(|| cfg.generate(black_box(3)))
    });
    let m = {
        let feats: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64 * 0.1]).collect();
        let mut g = RbfKernel::new(1.0).gram(&feats);
        g.add_diag_mut(0.01);
        g
    };
    c.bench_function("linalg/matmul_64", |b| {
        b.iter(|| black_box(&m).matmul(black_box(&m)).unwrap())
    });
    let _ = Matrix::identity(2); // keep the import obviously used
}

criterion_group!(
    benches,
    bench_cholesky,
    bench_gp_posterior,
    bench_scheduler_round,
    bench_dsl,
    bench_generator
);
criterion_main!(benches);
