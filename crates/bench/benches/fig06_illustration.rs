//! Figure 6(b): the qualitative difference between GREEDY and ROUNDROBIN.
//!
//! A workload with two user groups — half already near their optimum, half
//! far from it — shows greedy putting its budget where the potential is,
//! while round robin spends half its rounds on users who cannot improve.

use easeml::prelude::*;
use easeml_bench::{banner, seed};
use easeml_data::Dataset;
use easeml_gp::ArmPrior;
use easeml_linalg::Matrix;
use easeml_sched::PickRule;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Two-group workload: users 0–4 have nearly flat arms (little to gain),
/// users 5–9 have one strong hidden arm (a lot to gain).
fn two_group_dataset() -> Dataset {
    let n = 10;
    let k = 8;
    let quality = Matrix::from_fn(n, k, |i, j| {
        if i < 5 {
            // Settled group: every model is ~0.88.
            0.88 + 0.005 * ((i + j) % 3) as f64
        } else {
            // Open group: model (i mod k) is great, the rest mediocre.
            if j == i % k {
                0.95
            } else {
                0.55 + 0.01 * j as f64
            }
        }
    });
    Dataset::with_unit_costs("TWO-GROUP", quality)
}

fn main() {
    banner(
        "Figure 6(b)",
        "Illustration: GREEDY vs ROUNDROBIN accuracy loss",
    );
    let dataset = two_group_dataset();
    let priors: Vec<ArmPrior> = (0..dataset.num_users())
        .map(|_| ArmPrior::independent(dataset.num_models(), 0.04).with_mean(vec![0.7; 8]))
        .collect();
    let cfg = SimConfig {
        budget: (dataset.num_users() * dataset.num_models()) as f64, // 100% of runs
        cost_aware: false,
        noise_var: 1e-4,
        delta: 0.1,
        fault: None,
    };
    let mut traces = Vec::new();
    for kind in [
        SchedulerKind::Greedy(PickRule::MaxUcbGap),
        SchedulerKind::RoundRobin,
    ] {
        let mut rng = StdRng::seed_from_u64(seed());
        traces.push((kind, simulate(&dataset, &priors, kind, &cfg, &mut rng)));
    }
    println!("{:>8} {:>14} {:>14}", "% runs", "greedy", "round-robin");
    for pct in (0..=100).step_by(5) {
        let f = pct as f64 / 100.0;
        println!(
            "{:>8} {:>14.4} {:>14.4}",
            pct,
            traces[0].1.loss_at(f * cfg.budget),
            traces[1].1.loss_at(f * cfg.budget)
        );
    }
    println!();
    println!("expected shape: greedy's loss drops faster early because it");
    println!("concentrates on the five users with remaining potential.");
}
