//! Figure 8: statistics of the six evaluation datasets.

use easeml_bench::{banner, seed};
use easeml_data::all_datasets;

fn main() {
    banner("Figure 8", "Statistics of Datasets");
    println!(
        "{:<16} {:>7} {:>8} {:>9} {:>9} {:>9} {:>10} {:>12}",
        "Dataset", "#Users", "#Models", "minQ", "meanQ", "maxQ", "maxCost", "totalCost"
    );
    for d in all_datasets(seed()) {
        let s = d.stats();
        println!(
            "{:<16} {:>7} {:>8} {:>9.3} {:>9.3} {:>9.3} {:>10.3} {:>12.1}",
            s.name,
            s.users,
            s.models,
            s.min_quality,
            s.mean_quality,
            s.max_quality,
            s.max_cost,
            s.total_cost
        );
    }
    println!();
    println!("Quality/cost provenance (per the paper's Figure 8):");
    println!("  DEEPLEARNING    quality: real-shaped surrogate   cost: real-shaped surrogate");
    println!("  179CLASSIFIER   quality: real-shaped surrogate   cost: synthetic U(0,1)");
    println!("  SYN(sM,a)       quality: synthetic               cost: synthetic");
}
