//! Figure 9: end-to-end performance of ease.ml on DEEPLEARNING against the
//! two heuristics users relied on before ease.ml (most-cited-first and
//! most-recent-first under round-robin user scheduling).
//!
//! The paper reports ease.ml up to 9.8× faster on average accuracy loss
//! (time for MOSTCITED to bring the loss from 0.1 to 0.02 vs ease.ml) and
//! 3.1× on the worst case.

use easeml::prelude::*;
use easeml_bench::{banner, emit, print_speedups, reps, run, seed};

fn main() {
    banner(
        "Figure 9",
        "End-to-end: ease.ml vs MOSTCITED vs MOSTRECENT (DEEPLEARNING, 10% of total cost)",
    );
    let dataset = easeml_data::DatasetKind::DeepLearning.generate(seed());
    let cfg = ExperimentConfig {
        test_users: 10,
        repetitions: reps(),
        budget: Budget::FractionOfCost(0.10),
        ..ExperimentConfig::default()
    };
    let results = vec![
        run(&dataset, SchedulerKind::EaseMl, &cfg),
        run(&dataset, SchedulerKind::MostCited, &cfg),
        run(&dataset, SchedulerKind::MostRecent, &cfg),
    ];
    emit("fig09", &results);

    // The paper anchors the speedup at the loss level ease.ml reaches
    // early (taking the average loss from ~0.1 down to ~0.02).
    let mean_target = easeml_bench::loss_at_pct(&results[0], 10.0, "mean");
    println!(
        "(a) average accuracy loss: speedup reaching the loss ease.ml hits at 10% \
         of budget (paper: up to 9.8x)"
    );
    print_speedups(&results, 0, mean_target, "mean");
    let worst_target = easeml_bench::loss_at_pct(&results[0], 30.0, "worst");
    println!(
        "(b) worst-case accuracy loss: speedup reaching the loss ease.ml hits at 30% \
         of budget (paper: up to 3.1x)"
    );
    print_speedups(&results, 0, worst_target, "worst");
}
