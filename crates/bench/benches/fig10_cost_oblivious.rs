//! Figure 10: the cost-oblivious multi-tenant case on all six datasets —
//! ease.ml (HYBRID) vs ROUNDROBIN vs RANDOM, all using GP-UCB for model
//! picking, budget 50% of all (user, model) runs, x-axis in % of runs.

use easeml::prelude::*;
use easeml_bench::{banner, emit, print_speedups, reps, run, seed};
use easeml_data::DatasetKind;

fn main() {
    banner(
        "Figure 10",
        "Cost-oblivious multi-tenant model selection (50% of runs, all datasets)",
    );
    for kind in DatasetKind::ALL {
        let dataset = kind.generate(seed());
        println!("--- {} ---", dataset.name());
        let cfg = ExperimentConfig {
            test_users: 10,
            repetitions: reps(),
            budget: Budget::FractionOfRuns(0.5),
            ..ExperimentConfig::default()
        };
        let results = vec![
            run(&dataset, SchedulerKind::EaseMl, &cfg),
            run(&dataset, SchedulerKind::RoundRobin, &cfg),
            run(&dataset, SchedulerKind::Random, &cfg),
        ];
        emit(&format!("fig10_{}", dataset.name()), &results);
        // The paper reports up to 1.9x in the cost-oblivious case.
        let mid = results[0].mean_curve[results[0].mean_curve.len() / 2];
        print_speedups(&results, 0, (mid * 1.2).max(1e-3), "mean");
    }
}
