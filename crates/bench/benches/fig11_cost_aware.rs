//! Figure 11: the cost-aware multi-tenant case on all six datasets — the
//! realistic scenario ease.ml is designed for. DEEPLEARNING uses its
//! real-shaped costs; the other datasets use synthetic costs. The budget is
//! a fraction of the total runtime of all (user, model) pairs and the
//! x-axis is % of total cost.

use easeml::prelude::*;
use easeml_bench::{banner, emit, print_speedups, reps, run, seed};
use easeml_data::DatasetKind;

fn main() {
    banner(
        "Figure 11",
        "Cost-aware multi-tenant model selection (25% of total cost, all datasets)",
    );
    for kind in DatasetKind::ALL {
        let dataset = kind.generate(seed());
        println!("--- {} ---", dataset.name());
        let cfg = ExperimentConfig {
            test_users: 10,
            repetitions: reps(),
            budget: Budget::FractionOfCost(0.25),
            ..ExperimentConfig::default()
        };
        let results = vec![
            run(&dataset, SchedulerKind::EaseMl, &cfg),
            run(&dataset, SchedulerKind::RoundRobin, &cfg),
            run(&dataset, SchedulerKind::Random, &cfg),
        ];
        emit(&format!("fig11_{}", dataset.name()), &results);
        let mid = results[0].mean_curve[results[0].mean_curve.len() / 2];
        print_speedups(&results, 0, (mid * 1.2).max(1e-3), "mean");
    }
}
