//! Figure 12: the impact of model correlation and model-irrelevant noise.
//!
//! The four SYN(σ_M, α) datasets form a 2×2 grid: increasing σ_M from 0.01
//! to 0.5 strengthens the model correlation (performance improves);
//! decreasing α from 1.0 to 0.1 dampens the model correlation's weight,
//! increasing the impact of model-irrelevant noise. The figure plots the
//! worst-case accuracy loss of the three schedulers on each dataset
//! (cost-oblivious, % of runs).

use easeml::prelude::*;
use easeml_bench::{banner, emit, reps, run, seed};
use easeml_data::DatasetKind;

fn main() {
    banner(
        "Figure 12",
        "Impact of model correlation (sigma_M) and model-irrelevant noise (alpha)",
    );
    // Grid layout matching the figure: rows = alpha, cols = sigma_M.
    let grid = [
        (DatasetKind::Syn001_10, "weak corr, strong influence"),
        (DatasetKind::Syn05_10, "strong corr, strong influence"),
        (
            DatasetKind::Syn001_01,
            "weak corr, weak influence (noisier)",
        ),
        (
            DatasetKind::Syn05_01,
            "strong corr, weak influence (noisier)",
        ),
    ];
    let mut summary = Vec::new();
    for (kind, desc) in grid {
        let dataset = kind.generate(seed());
        println!("--- {} ({desc}) ---", dataset.name());
        let cfg = ExperimentConfig {
            test_users: 10,
            repetitions: reps(),
            budget: Budget::FractionOfRuns(0.5),
            ..ExperimentConfig::default()
        };
        let results = vec![
            run(&dataset, SchedulerKind::EaseMl, &cfg),
            run(&dataset, SchedulerKind::RoundRobin, &cfg),
            run(&dataset, SchedulerKind::Random, &cfg),
        ];
        emit(&format!("fig12_{}", dataset.name()), &results);
        // Worst-case loss at 10% of the budget — early enough that the
        // strongly-correlated datasets have not yet fully converged.
        let idx = results[0].worst_curve.len() / 10;
        summary.push((
            dataset.name().to_string(),
            results[0].worst_curve[idx],
            results[1].worst_curve[idx],
            results[2].worst_curve[idx],
        ));
    }
    println!("worst-case accuracy loss at 10% of runs:");
    println!(
        "{:<16} {:>12} {:>12} {:>12}",
        "dataset", "ease.ml", "round-robin", "random"
    );
    for (name, e, r, a) in &summary {
        println!("{name:<16} {e:>12.4} {r:>12.4} {a:>12.4}");
    }
    println!();
    println!("expected shape: losses shrink as sigma_M grows (stronger model");
    println!("correlation) and grow as alpha shrinks (more model-irrelevant noise).");
}
