//! Figure 13 (lesion): the impact of cost-awareness on DEEPLEARNING.
//!
//! "ease.ml w/o cost" disables the cost-aware component (c_{i,j} = 1 inside
//! GP-UCB) while still spending real execution costs — the paper shows the
//! cost-aware version is significantly better because fast models exist
//! whose quality is only slightly below the best slow model.

use easeml::prelude::*;
use easeml_bench::{banner, emit, print_speedups, reps, run, seed};

fn main() {
    banner(
        "Figure 13",
        "Lesion: ease.ml with vs without cost-awareness (DEEPLEARNING, 10% of total cost)",
    );
    let dataset = easeml_data::DatasetKind::DeepLearning.generate(seed());
    let aware_cfg = ExperimentConfig {
        test_users: 10,
        repetitions: reps(),
        budget: Budget::FractionOfCost(0.10),
        ..ExperimentConfig::default()
    };
    let oblivious_cfg = ExperimentConfig {
        cost_aware_override: Some(false),
        ..aware_cfg.clone()
    };
    let aware = run(&dataset, SchedulerKind::EaseMl, &aware_cfg);
    let mut oblivious = run(&dataset, SchedulerKind::EaseMl, &oblivious_cfg);
    // Disambiguate in the printed table.
    oblivious.dataset = format!("{} w/o cost", oblivious.dataset);
    let results = vec![aware, oblivious];
    emit("fig13", &results);
    let target = easeml_bench::loss_at_pct(&results[0], 50.0, "mean");
    println!("speedup of cost-aware ease.ml reaching its own 50%-budget loss:");
    print_speedups(&results, 0, target, "mean");
}
