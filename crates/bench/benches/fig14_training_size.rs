//! Figure 14: the impact of the training-set size on the empirical kernel
//! (cost-aware DEEPLEARNING).
//!
//! The kernel of the Gaussian process is computed from the models'
//! performance on the *training* users; this lesion decreases the amount
//! of training data available to the kernel (10% / 50% / 100%) and shows
//! both the benefit of more data and the diminishing return between 50%
//! and 100%.

use easeml::prelude::*;
use easeml_bench::{banner, emit, reps, run, seed};

fn main() {
    banner(
        "Figure 14",
        "Impact of training-set size on the empirical kernel (DEEPLEARNING, cost-aware)",
    );
    let dataset = easeml_data::DatasetKind::DeepLearning.generate(seed());
    let mut results = Vec::new();
    for fraction in [0.10, 0.50, 1.00] {
        let cfg = ExperimentConfig {
            test_users: 10,
            repetitions: reps(),
            budget: Budget::FractionOfCost(0.10),
            train_fraction: fraction,
            ..ExperimentConfig::default()
        };
        let mut r = run(&dataset, SchedulerKind::EaseMl, &cfg);
        r.dataset = format!("{} ({}% train)", r.dataset, (fraction * 100.0) as u32);
        results.push(r);
    }
    emit("fig14", &results);

    let auc = |c: &[f64]| c.iter().sum::<f64>() / c.len() as f64;
    println!("mean accuracy-loss AUC by kernel training fraction:");
    for r in &results {
        println!("  {:<30} {:.4}", r.dataset, auc(&r.mean_curve));
    }
    println!();
    println!("expected shape: 10% clearly worse; 50% close to 100% (diminishing return).");
}
