//! Figure 15 (lesion): the impact of hybrid execution on 179CLASSIFIER
//! (cost-oblivious).
//!
//! GREEDY beats ROUNDROBIN early, but a crossover appears as the GP
//! estimator's modelling error starts to dominate near convergence;
//! switching to round-robin at the freeze point makes HYBRID the best of
//! the three throughout.

use easeml::prelude::*;
use easeml_bench::{banner, emit, reps, run, seed};
use easeml_sched::PickRule;

fn main() {
    banner(
        "Figure 15",
        "Lesion: HYBRID vs GREEDY vs ROUNDROBIN (179CLASSIFIER, cost-oblivious)",
    );
    let dataset = easeml_data::DatasetKind::Classifier179.generate(seed());
    let cfg = ExperimentConfig {
        test_users: 10,
        repetitions: reps(),
        budget: Budget::FractionOfRuns(0.5),
        ..ExperimentConfig::default()
    };
    let results = vec![
        run(&dataset, SchedulerKind::Hybrid, &cfg),
        run(&dataset, SchedulerKind::Greedy(PickRule::MaxUcbGap), &cfg),
        run(&dataset, SchedulerKind::RoundRobin, &cfg),
    ];
    emit("fig15", &results);

    // Log-scale flavour: print mean losses at a few checkpoints and locate
    // the greedy/round-robin crossover.
    println!("mean accuracy loss (log-scale reading):");
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "% runs", "hybrid", "greedy", "round-robin"
    );
    let grid = &results[0].grid_pct;
    for i in (0..grid.len()).step_by(grid.len() / 10) {
        println!(
            "{:>8.0} {:>14.5} {:>14.5} {:>14.5}",
            grid[i], results[0].mean_curve[i], results[1].mean_curve[i], results[2].mean_curve[i]
        );
    }
    // Crossover: the first point after which round-robin stays clearly
    // (≥10% relative) below greedy for the rest of the budget.
    let crossover = grid.iter().enumerate().find_map(|(i, &pct)| {
        let sustained = (i..grid.len())
            .all(|j| results[2].mean_curve[j] <= results[1].mean_curve[j] * 0.9 + 1e-9);
        sustained.then_some(pct)
    });
    match crossover {
        Some(pct) => println!("\ngreedy/round-robin crossover observed at ~{pct:.0}% of runs"),
        None => println!("\nno greedy/round-robin crossover within this budget"),
    }
}
