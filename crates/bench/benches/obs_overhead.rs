//! Guards the "zero-cost when disabled" claim of `easeml-obs`.
//!
//! Three variants of the same full HYBRID simulation (10 users x 20 models,
//! 50% budget, fixed seed):
//!
//! * `sim/noop_recorder_overhead` — plain [`simulate`], i.e. the default
//!   disabled handle. Compare against `sched/greedy_full_run_10x20_50pct`
//!   from `fig00_micro` for the pre-instrumentation baseline shape;
//! * `sim/noop_handle_plumbed` — [`simulate_with_recorder`] with an
//!   explicit noop handle, checking the plumbing itself costs nothing;
//! * `sim/inmemory_recorder` — a fresh [`InMemoryRecorder`] per iteration,
//!   the worst-case fully-recording path;
//! * `sim/tee_file_sink` — the live-telemetry stack: a [`TeeRecorder`]
//!   fanning out to the in-memory recorder *and* a buffered
//!   [`JsonlFileSink`], bounding the cost of streaming the trace to disk.
//!
//! The first two must be statistically indistinguishable; the last two
//! bound the price of turning recording on. After the timings, one
//! instrumented run dumps a machine-readable perf snapshot (JSONL trace +
//! per-component quantiles) under `target/experiments/`.

use criterion::{criterion_group, criterion_main, Criterion};
use easeml::prelude::*;
use easeml_data::{Dataset, SynConfig};
use easeml_gp::ArmPrior;
use easeml_obs::{InMemoryRecorder, JsonlFileSink, RecorderHandle, StreamingSink, TeeRecorder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;

fn workload() -> (Dataset, Vec<ArmPrior>, SimConfig) {
    let dataset = SynConfig {
        num_users: 10,
        num_models: 20,
        ..SynConfig::paper(0.5, 1.0)
    }
    .generate(1)
    .unit_cost_view();
    let priors: Vec<ArmPrior> = (0..10).map(|_| ArmPrior::independent(20, 0.05)).collect();
    let cfg = SimConfig {
        budget: 100.0,
        cost_aware: false,
        noise_var: 1e-3,
        delta: 0.1,
        fault: None,
    };
    (dataset, priors, cfg)
}

fn bench_overhead(c: &mut Criterion) {
    let (dataset, priors, cfg) = workload();

    c.bench_function("sim/noop_recorder_overhead", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            simulate(
                black_box(&dataset),
                black_box(&priors),
                SchedulerKind::EaseMl,
                &cfg,
                &mut rng,
            )
        })
    });

    c.bench_function("sim/noop_handle_plumbed", |b| {
        let handle = RecorderHandle::noop();
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            simulate_with_recorder(
                black_box(&dataset),
                black_box(&priors),
                SchedulerKind::EaseMl,
                &cfg,
                &mut rng,
                &handle,
            )
        })
    });

    c.bench_function("sim/inmemory_recorder", |b| {
        b.iter(|| {
            let rec = Arc::new(InMemoryRecorder::new());
            let handle = RecorderHandle::new(rec.clone());
            let mut rng = StdRng::seed_from_u64(7);
            let trace = simulate_with_recorder(
                black_box(&dataset),
                black_box(&priors),
                SchedulerKind::EaseMl,
                &cfg,
                &mut rng,
                &handle,
            );
            black_box(rec.num_events());
            trace
        })
    });

    c.bench_function("sim/tee_file_sink", |b| {
        let path =
            std::env::temp_dir().join(format!("easeml-obs-overhead-{}.jsonl", std::process::id()));
        b.iter(|| {
            let rec = Arc::new(InMemoryRecorder::new());
            let sink = Arc::new(JsonlFileSink::create(&path).expect("temp trace file"));
            let tee = Arc::new(
                TeeRecorder::new(rec.clone()).with_sink(sink.clone() as Arc<dyn StreamingSink>),
            );
            let handle = RecorderHandle::new(tee.clone());
            let mut rng = StdRng::seed_from_u64(7);
            let trace = simulate_with_recorder(
                black_box(&dataset),
                black_box(&priors),
                SchedulerKind::EaseMl,
                &cfg,
                &mut rng,
                &handle,
            );
            tee.flush();
            black_box(rec.num_events());
            trace
        });
        let _ = std::fs::remove_file(&path);
    });
}

fn perf_snapshot(_c: &mut Criterion) {
    match easeml_bench::obs_snapshot("obs_snapshot") {
        Some(p) => println!("perf snapshot: {}", p.display()),
        None => println!("perf snapshot: skipped (filesystem unavailable)"),
    }
}

criterion_group!(benches, bench_overhead, perf_snapshot);
criterion_main!(benches);
