//! Hot-path profiling gate: per-phase self time, allocation attribution,
//! and empirical scaling exponents at U ∈ {1k, 10k, 100k} tenants.
//!
//! Each tenant count runs the greedy max-UCB-gap workload for a fixed
//! number of steps under a live `Profiler` (noop recorder — the profiler
//! hooks on span enter/exit alone), with the counting allocator installed
//! so every phase row also carries allocs/bytes attributed to its self
//! windows. The run asserts the profile's structural health (≥95% of
//! `scheduler_step` wall time attributed to child phases, phase totals
//! within 5% of the measured step totals) and the paper's complexity
//! reading: `pick_user` scans all U tenants — empirically ~O(U) — while
//! `posterior_update` touches one 20-arm posterior and must stay ~O(1).
//! Rows land in `profile_scaling.perf.json` for
//! `scripts/bench_snapshot_diff.sh` to diff across commits.

use criterion::{criterion_group, criterion_main, Criterion};
use easeml_bench::{banner, profile_rows, profile_scaling_sweep, profile_snapshot};
use easeml_obs::{scaling_exponents, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::system();

const TENANT_COUNTS: [usize; 3] = [1_000, 10_000, 100_000];
const STEPS: usize = 200;

fn profile_report(_c: &mut Criterion) {
    banner(
        "Profile",
        "Hot-path profiling: per-phase self time and empirical scaling vs tenant count",
    );
    let runs = profile_scaling_sweep(&TENANT_COUNTS, STEPS);

    let rows = profile_rows(&runs);
    println!(
        "{:>8} {:>18} {:>8} {:>14} {:>14} {:>12} {:>12}",
        "users", "phase", "calls", "self ns/step", "p95 ns/call", "allocs/step", "peak bytes"
    );
    for row in &rows {
        println!(
            "{:>8} {:>18} {:>8} {:>14.0} {:>14.0} {:>12.2} {:>12}",
            row.users,
            row.phase,
            row.calls,
            row.self_ns_per_step,
            row.p95_ns,
            row.allocs_per_step,
            row.peak_bytes
        );
    }

    // Structural health: every run attributes ≥95% of scheduler_step wall
    // time to named phases, which is exactly "phase totals within 5% of
    // the measured step totals".
    for (users, profile) in &runs {
        assert_eq!(
            profile.dropped_exits, 0,
            "u={users}: profiler dropped span exits"
        );
        let (attributed, total) = profile
            .phase_coverage("scheduler_step")
            .expect("every run records scheduler steps");
        assert!(
            attributed as f64 >= 0.95 * total as f64,
            "u={users}: only {attributed} of {total} scheduler_step ns attributed (need 95%)"
        );
        let step = profile.find(&["scheduler_step"]).unwrap();
        assert!(
            step.allocs > 0,
            "u={users}: counting allocator attributed no allocations — is it installed?"
        );
    }
    println!("\nphase coverage ≥ 95% of scheduler_step wall time at every U: ok");

    // Complexity reading. The fit tolerates constant-factor noise: the
    // pick scan is ~O(U) (candidate set + argmax over all tenants), the
    // posterior update is per-tenant and must not grow with U.
    let refs: Vec<(usize, &easeml_obs::CallTreeProfile)> =
        runs.iter().map(|(u, p)| (*u, p)).collect();
    let fits = scaling_exponents(&refs);
    println!("\nempirical scaling (self ns/call vs U):");
    for fit in &fits {
        println!("  {:<18} O(U^{:.2})", fit.phase, fit.exponent);
    }
    let exponent = |phase: &str| {
        fits.iter()
            .find(|f| f.phase == phase)
            .unwrap_or_else(|| panic!("no scaling fit for {phase}"))
            .exponent
    };
    let pick = exponent("pick_user");
    assert!(
        (0.5..1.6).contains(&pick),
        "pick_user should scale ~O(U), fitted O(U^{pick:.2})"
    );
    let update = exponent("posterior_update");
    assert!(
        update < 0.5,
        "posterior_update should be ~O(1) in U, fitted O(U^{update:.2})"
    );
    println!("\npick_user ~O(U), posterior_update ~O(1): ok");

    match profile_snapshot("profile_scaling", &rows) {
        Some(p) => println!("perf snapshot: {}", p.display()),
        None => println!("perf snapshot: skipped (filesystem unavailable)"),
    }
}

criterion_group!(benches, profile_report);
criterion_main!(benches);
