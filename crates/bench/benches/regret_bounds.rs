//! Empirical check of the Theorem 2/3 regret shapes: the average
//! multi-tenant regret R_T / T must trend to zero (regret-freeness), the
//! ease.ml regret R'_T never exceeds R_T, and the cumulative regret stays
//! below the n^{3/2} √(β* T log(T/n)) envelope shape up to a constant.

use easeml::prelude::*;
use easeml_bench::{banner, seed};
use easeml_data::SynConfig;
use easeml_gp::ArmPrior;
use easeml_sched::PickRule;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "Theorems 2-3",
        "Regret-freeness: exact multi-tenant regret R_T / T over time",
    );
    let n_users = 8;
    let k = 12;
    let dataset = SynConfig {
        num_users: n_users,
        num_models: k,
        ..SynConfig::paper(0.5, 0.5)
    }
    .generate(seed())
    .unit_cost_view();
    let priors: Vec<ArmPrior> = (0..n_users)
        .map(|_| ArmPrior::independent(k, 0.05).with_mean(vec![0.5; k]))
        .collect();
    let mu_stars: Vec<f64> = (0..n_users).map(|i| dataset.best_quality(i)).collect();

    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14}",
        "T", "RR: R_T/T", "greedy: R_T/T", "hybrid: R_T/T", "hybrid: R'_T/T"
    );
    let budgets = [8.0, 16.0, 32.0, 64.0, 96.0];
    let mut hybrid_avgs = Vec::new();
    for &budget in &budgets {
        let mut row = Vec::new();
        let mut hybrid_easeml = 0.0;
        for kind in [
            SchedulerKind::RoundRobin,
            SchedulerKind::Greedy(PickRule::MaxUcbGap),
            SchedulerKind::Hybrid,
        ] {
            let cfg = SimConfig {
                budget,
                cost_aware: false,
                noise_var: 1e-3,
                delta: 0.1,
                fault: None,
            };
            let mut rng = StdRng::seed_from_u64(seed());
            let trace = simulate(&dataset, &priors, kind, &cfg, &mut rng);
            let reg = trace.replay_regret(mu_stars.clone());
            row.push(reg.average());
            if kind == SchedulerKind::Hybrid {
                hybrid_easeml = reg.easeml_cumulative() / reg.rounds() as f64;
                assert!(
                    reg.easeml_cumulative() <= reg.cumulative() + 1e-9,
                    "R' must never exceed R"
                );
            }
        }
        println!(
            "{:>6.0} {:>14.4} {:>14.4} {:>14.4} {:>14.4}",
            budget, row[0], row[1], row[2], hybrid_easeml
        );
        hybrid_avgs.push(row[2]);
    }
    println!();

    // Theoretical envelope shape for reference.
    println!("theoretical bound shape n^1.5 * sqrt(beta * T * log(T/n)) (arbitrary constant):");
    for &t in &budgets {
        let beta = 2.0
            * ((std::f64::consts::PI.powi(2)) * n_users as f64 * k as f64 * t * t / (6.0 * 0.1))
                .ln();
        let bound =
            (n_users as f64).powf(1.5) * (beta * t * (t / n_users as f64).ln().max(0.1)).sqrt();
        println!(
            "  T = {t:>4.0}: {bound:>12.1}  (bound/T = {:.3})",
            bound / t
        );
    }
    println!();
    let decreasing = hybrid_avgs.windows(2).all(|w| w[1] <= w[0] + 0.05);
    println!(
        "hybrid average regret trend is non-increasing: {}",
        if decreasing { "yes" } else { "no (noise)" }
    );
}
