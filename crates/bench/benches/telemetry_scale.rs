//! Telemetry-at-scale sweep: per-event fold cost, recorder footprint, and
//! `/metrics` body size of the aggregate-mode `TimeSeriesRecorder` at
//! U ∈ {1k, 10k, 100k} tenants.
//!
//! The point of the sketch layer is that all three columns on the right
//! are *flat* in U: the per-strategy quantile sketches, the top-K
//! offender trackers, and the exemplar reservoir are all fixed-size, so a
//! 100x tenant-count jump moves neither the recorder state nor the
//! scrape body. The run asserts exactly that, then writes
//! `telemetry_scale.perf.json` so `scripts/bench_snapshot_diff.sh` can
//! diff the per-event fold quantiles across commits like any other
//! component.

use criterion::{criterion_group, criterion_main, Criterion};
use easeml_bench::{banner, telemetry_scale_sweep, telemetry_snapshot};

fn scale_report(_c: &mut Criterion) {
    banner(
        "Telemetry",
        "Constant-memory telemetry: fold cost and state size vs tenant count",
    );
    let events = 200_000;
    let rows = telemetry_scale_sweep(&[1_000, 10_000, 100_000], events);
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12} {:>14}",
        "users", "events", "fold p50 ns", "fold p95 ns", "state bytes", "metrics bytes"
    );
    for row in &rows {
        println!(
            "{:>8} {:>10} {:>12.0} {:>12.0} {:>12} {:>14}",
            row.users,
            row.events,
            row.fold_p50_ns,
            row.fold_p95_ns,
            row.state_bytes,
            row.metrics_bytes
        );
    }
    // Boundedness is one-sided: the footprint must not *grow* with the
    // tenant count. (It may shrink — with a fixed event budget a small U
    // gives every exemplar tenant a longer curve window.)
    let (small, large) = (rows.first().unwrap(), rows.last().unwrap());
    assert!(
        large.state_bytes as f64 <= 1.5 * small.state_bytes as f64,
        "recorder state grew with U: {} bytes at U={} vs {} bytes at U={}",
        large.state_bytes,
        large.users,
        small.state_bytes,
        small.users
    );
    assert!(
        large.metrics_bytes as f64 <= 1.5 * small.metrics_bytes as f64,
        "/metrics body grew with U: {} bytes at U={} vs {} bytes at U={}",
        large.metrics_bytes,
        large.users,
        small.metrics_bytes,
        small.users
    );
    println!("\nstate and /metrics body bounded across a 100x tenant sweep: ok");
    match telemetry_snapshot("telemetry_scale", &rows) {
        Some(p) => println!("perf snapshot: {}", p.display()),
        None => println!("perf snapshot: skipped (filesystem unavailable)"),
    }
}

criterion_group!(benches, scale_report);
criterion_main!(benches);
