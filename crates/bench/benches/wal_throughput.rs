//! Write-ahead-log throughput and incremental-recovery sweep.
//!
//! Two measurements back the durability layer's performance contract:
//!
//! * **append latency** — the framed, CRC'd, group-committed write the
//!   serial hot path pays per logging site when a WAL is attached
//!   (`wal/append_ns` in the perf snapshot);
//! * **O(delta) recovery** — recovering a fixed-length run whose
//!   checkpoint was taken `delta` rounds before the crash must cost time
//!   proportional to `delta`, not to the run length. The sweep holds the
//!   run at 600 rounds and moves the checkpoint, so a recovery that
//!   re-reads history shows up as a growing per-round constant.
//!
//! Every recovery in the sweep is digest-verified against the live server
//! before it is timed, and the run asserts the per-round constant is
//! bounded across the sweep (one-sided: the fixed checkpoint-load cost
//! inflates *small* deltas, so the largest delta must not exceed 1.5x the
//! smallest). `scripts/bench_snapshot_diff.sh` re-checks the same bound
//! from the written `wal_throughput.perf.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use easeml_bench::{banner, wal_append_sweep, wal_recover_sweep, wal_snapshot};

fn wal_report(_c: &mut Criterion) {
    banner(
        "WAL",
        "Write-ahead log: append latency and O(delta) incremental recovery",
    );
    let append = wal_append_sweep(20_000);
    println!(
        "append latency over {} records: p50 {:.0} ns, p95 {:.0} ns, max {} ns",
        append.count, append.p50_ns, append.p95_ns, append.max_ns
    );

    let total = 600;
    let rows = wal_recover_sweep(total, &[32, 128, 512]);
    println!(
        "\n{:>8} {:>8} {:>10} {:>14} {:>14}",
        "delta", "rounds", "replayed", "recover ms", "ms/round"
    );
    for row in &rows {
        println!(
            "{:>8} {:>8} {:>10} {:>14.3} {:>14.6}",
            row.delta, row.total_rounds, row.replayed, row.recover_ms, row.ms_per_round
        );
    }
    let (small, large) = (rows.first().unwrap(), rows.last().unwrap());
    assert!(
        large.ms_per_round <= 1.5 * small.ms_per_round,
        "recovery is not O(delta): {:.6} ms/round at delta={} vs {:.6} ms/round at delta={}",
        large.ms_per_round,
        large.delta,
        small.ms_per_round,
        small.delta
    );
    println!("\nper-round recovery cost bounded across a 16x delta sweep: ok");
    match wal_snapshot("wal_throughput", &append, &rows) {
        Some(p) => println!("perf snapshot: {}", p.display()),
        None => println!("perf snapshot: skipped (filesystem unavailable)"),
    }
}

criterion_group!(benches, wal_report);
criterion_main!(benches);
