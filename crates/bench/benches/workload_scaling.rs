//! Open-loop workload scaling: arrival rate × tenant churn.
//!
//! The closed-loop benches measure schedulers that always have work; this
//! sweep measures the open-loop regime `easeml-workload` adds — seeded
//! Poisson job streams at rising per-tenant rates, with and without tenant
//! churn, replayed through the HYBRID scheduler on a multi-device fleet.
//! The contract under test: the engine's per-dispatched-job wall cost is
//! bounded in the arrival rate (an open-loop engine that slows down as
//! load rises would be useless as a simulator of overload), and churn only
//! removes work, never adds overhead.
//!
//! A second table drives the highest-stress cell (top rate, churn on)
//! through the three headline schedulers — GREEDY, HYBRID, and the
//! round-robin + GP-UCB baseline — for the strategy comparison the paper's
//! evaluation shape asks for.
//!
//! `scripts/bench_snapshot_diff.sh` re-checks the per-job boundedness from
//! the written `workload_scaling.perf.json` (candidate-only, one-sided:
//! absolute wall time is machine-dependent, so there is nothing to diff
//! against a baseline from another host).

use criterion::{criterion_group, criterion_main, Criterion};
use easeml_bench::{
    banner, workload_kind_comparison, workload_scaling_sweep, workload_snapshot,
    WORKLOAD_BENCH_DEVICES, WORKLOAD_BENCH_USERS,
};

/// Per-tenant Poisson rates the sweep walks, ascending.
const RATES: [f64; 3] = [1.0, 2.0, 4.0];

/// Expected jobs per tenant in every cell — the horizon is
/// `JOBS_PER_TENANT / rate`, so a higher rate means the same work packed
/// into less simulated time, not more work (GP updates scale with the
/// observation count, which would otherwise drown the open-loop overhead
/// this sweep measures).
const JOBS_PER_TENANT: f64 = 60.0;

/// In-process bound on per-job cost growth across the rate sweep — the
/// same one-sided check the snapshot-diff gate replays, with the same
/// generous factor (wall times per cell are tens of milliseconds, so
/// scheduler noise is material).
const BOUND: f64 = 2.0;

fn workload_report(_c: &mut Criterion) {
    banner(
        "WORKLOAD",
        "Open-loop workload scaling: arrival rate x tenant churn",
    );
    println!(
        "{} tenants, {} devices, ~{JOBS_PER_TENANT} jobs/tenant per cell, HYBRID\n",
        WORKLOAD_BENCH_USERS, WORKLOAD_BENCH_DEVICES
    );

    let rows = workload_scaling_sweep(&RATES, JOBS_PER_TENANT);
    println!(
        "{:>6} {:>6} {:>9} {:>8} {:>10} {:>11} {:>10} {:>13}",
        "rate", "churn", "arrivals", "served", "lifecycle", "makespan", "wall ms", "ns/served"
    );
    for row in &rows {
        println!(
            "{:>6} {:>6} {:>9} {:>8} {:>10} {:>11.2} {:>10.2} {:>13.0}",
            row.rate,
            if row.churn { "yes" } else { "no" },
            row.arrivals,
            row.served,
            row.lifecycle,
            row.makespan,
            row.wall_ms,
            row.ns_per_served,
        );
    }

    for churn in [false, true] {
        let group: Vec<_> = rows.iter().filter(|r| r.churn == churn).collect();
        let (first, last) = (group.first().unwrap(), group.last().unwrap());
        assert!(
            last.ns_per_served <= BOUND * first.ns_per_served,
            "per-job cost grows with the arrival rate (churn={churn}): \
             {:.0} ns/served at rate {} vs {:.0} ns/served at rate {}",
            last.ns_per_served,
            last.rate,
            first.ns_per_served,
            first.rate,
        );
    }
    println!("\nper-job engine cost bounded across a 4x arrival-rate sweep: ok");

    let top_rate = RATES[RATES.len() - 1];
    println!("\nstrategy comparison at rate {top_rate}, churn on:");
    println!(
        "{:>22} {:>9} {:>8} {:>11} {:>10}",
        "scheduler", "arrivals", "served", "makespan", "wall ms"
    );
    for (name, row) in workload_kind_comparison(top_rate, JOBS_PER_TENANT / top_rate) {
        println!(
            "{name:>22} {:>9} {:>8} {:>11.2} {:>10.2}",
            row.arrivals, row.served, row.makespan, row.wall_ms
        );
    }

    match workload_snapshot("workload_scaling", &rows) {
        Some(p) => println!("\nperf snapshot: {}", p.display()),
        None => println!("\nperf snapshot: skipped (filesystem unavailable)"),
    }
}

criterion_group!(benches, workload_report);
criterion_main!(benches);
