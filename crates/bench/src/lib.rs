//! Shared helpers for the figure-regeneration bench targets.
//!
//! Every bench target in `benches/` is a `harness = false` binary that runs
//! the corresponding experiment of the paper's §5 and prints the same
//! rows/series the figure plots, plus a CSV dump under
//! `target/experiments/`. Two environment variables tune the scale:
//!
//! * `EASEML_REPS` — number of repetitions per experiment (default 50, the
//!   paper's setting; lower it for quick smoke runs);
//! * `EASEML_SEED` — base RNG seed (default 20180801).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use easeml::prelude::*;
use easeml::report;
use easeml_data::Dataset;

/// Number of experiment repetitions, from `EASEML_REPS` (default 50).
pub fn reps() -> usize {
    std::env::var("EASEML_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r > 0)
        .unwrap_or(50)
}

/// Base seed, from `EASEML_SEED` (default 20180801).
pub fn seed() -> u64 {
    std::env::var("EASEML_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_180_801)
}

/// Prints the figure banner.
pub fn banner(id: &str, title: &str) {
    println!("==========================================================");
    println!("{id}: {title}");
    println!(
        "repetitions = {}, seed = {} (override with EASEML_REPS / EASEML_SEED)",
        reps(),
        seed()
    );
    println!("==========================================================");
}

/// Runs one scheduler with progress output.
pub fn run(
    dataset: &Dataset,
    scheduler: SchedulerKind,
    cfg: &ExperimentConfig,
) -> ExperimentResult {
    let start = std::time::Instant::now();
    let r = run_experiment(dataset, scheduler, cfg, seed());
    println!(
        "  {:<22} on {:<14} done in {:6.1}s  (mean rounds/rep: {:.0})",
        scheduler.name(),
        dataset.name(),
        start.elapsed().as_secs_f64(),
        r.mean_rounds
    );
    r
}

/// Prints the curves table (sampled every 10%) and dumps the CSV.
pub fn emit(id: &str, results: &[ExperimentResult]) {
    println!();
    println!("{}", report::curves_table(results, 10));
    if let Some(p) = report::dump_csv(id, results) {
        println!("csv: {}", p.display());
    }
    println!();
}

/// Prints the speedup of `fast` over each slower competitor at the loss
/// level `target`, the paper's headline metric. When a competitor never
/// reaches the target within the budget, a lower bound (`>= 100 / t_fast`)
/// is printed instead — the paper's "up to N×" reading.
pub fn print_speedups(results: &[ExperimentResult], fast_idx: usize, target: f64, metric: &str) {
    let fast = &results[fast_idx];
    let pick = |r: &ExperimentResult| -> Vec<f64> {
        match metric {
            "worst" => r.worst_curve.clone(),
            _ => r.mean_curve.clone(),
        }
    };
    let fast_curve = pick(fast);
    let t_fast = AggregatedCurves::time_to_reach(&fast.grid_pct, &fast_curve, target);
    for (i, slow) in results.iter().enumerate() {
        if i == fast_idx {
            continue;
        }
        let slow_curve = pick(slow);
        let label = format!(
            "  speedup of {} over {} at {metric} loss {target:.3}",
            fast.scheduler.name(),
            slow.scheduler.name()
        );
        match speedup_factor(&fast.grid_pct, &slow_curve, &fast_curve, target) {
            Some(s) => println!("{label}: {s:.1}x"),
            None => match t_fast {
                Some(t) if t > 0.0 => {
                    println!(
                        "{label}: >= {:.1}x (competitor never reaches it)",
                        100.0 / t
                    )
                }
                _ => println!("{label}: n/a (target not reached)"),
            },
        }
    }
}

/// The mean-loss value `fast` reaches after `pct` percent of the budget —
/// the anchor the paper uses ("taking the loss from 0.1 down to 0.02").
pub fn loss_at_pct(result: &ExperimentResult, pct: f64, metric: &str) -> f64 {
    let curve = match metric {
        "worst" => &result.worst_curve,
        _ => &result.mean_curve,
    };
    let idx = result
        .grid_pct
        .iter()
        .position(|&g| g >= pct)
        .unwrap_or(curve.len() - 1);
    curve[idx]
}

/// Runs one fully instrumented HYBRID simulation (recorder attached to the
/// scheduler and every tenant, plus the process-global timer registry that
/// covers Cholesky and posterior refreshes) and writes a machine-readable
/// performance snapshot under `target/experiments/`:
///
/// * `<id>.trace.jsonl` — the full structured-event stream;
/// * `<id>.perf.json` — per-component latency quantiles plus event totals.
///
/// Returns the perf-json path, or `None` when the filesystem is
/// unavailable.
pub fn obs_snapshot(id: &str) -> Option<std::path::PathBuf> {
    use easeml_gp::ArmPrior;
    use easeml_obs::{set_global_recorder, Component, InMemoryRecorder, Recorder, RecorderHandle};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt::Write as _;
    use std::sync::Arc;

    let dataset = easeml_data::SynConfig {
        num_users: 10,
        num_models: 20,
        ..easeml_data::SynConfig::paper(0.5, 1.0)
    }
    .generate(seed());
    let unit = dataset.unit_cost_view();
    let priors: Vec<ArmPrior> = (0..10).map(|_| ArmPrior::independent(20, 0.05)).collect();
    let cfg = SimConfig {
        budget: 100.0,
        cost_aware: false,
        noise_var: 1e-3,
        delta: 0.1,
        fault: None,
    };

    let rec = Arc::new(InMemoryRecorder::new());
    let handle = RecorderHandle::new(rec.clone());
    let previous = set_global_recorder(Some(rec.clone() as Arc<dyn Recorder>));
    let mut rng = StdRng::seed_from_u64(seed());
    let trace = simulate_with_recorder(
        &unit,
        &priors,
        SchedulerKind::EaseMl,
        &cfg,
        &mut rng,
        &handle,
    );
    set_global_recorder(previous);

    report::write_artifact(&format!("{id}.trace.jsonl"), &rec.to_jsonl()).ok()?;

    let mut json = String::from("{\n  \"components\": [\n");
    for (i, &comp) in Component::ALL.iter().enumerate() {
        let h = rec.timing(comp);
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"count\": {}, \"p50_ns\": {:.0}, \"p95_ns\": {:.0}, \"max_ns\": {}}}{}",
            comp.name(),
            h.count(),
            h.quantile_ns(0.5),
            h.quantile_ns(0.95),
            h.max_ns(),
            if i + 1 < Component::ALL.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"events\": [\n");
    let counts = rec.event_counts();
    let n = counts.len();
    for (i, (name, c)) in counts.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"count\": {c}}}{}",
            if i + 1 < n { "," } else { "" }
        );
    }
    let _ = writeln!(
        json,
        "  ],\n  \"rounds\": {},\n  \"makespan\": {:.6}\n}}",
        trace.rounds,
        rec.gauge("sim/makespan").unwrap_or(0.0)
    );
    report::write_artifact(&format!("{id}.perf.json"), &json).ok()
}

/// One row of the multi-device scaling sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecScalingRow {
    /// Fleet size D.
    pub devices: usize,
    /// Simulated makespan of the run.
    pub makespan: f64,
    /// Cumulative multi-tenant regret accrued by the time the shared
    /// budget is spent — the equal-cost comparison point across fleet
    /// sizes (every run commits the same budget; larger fleets just spend
    /// it faster).
    pub regret_at_budget: f64,
    /// Total dispatches (completed + censored).
    pub dispatches: usize,
    /// Dispatches made while other runs were in flight.
    pub parallel_dispatches: usize,
}

/// The fixed workload every exec-scaling measurement runs: 10 tenants x
/// 20 models, unit costs, 100-unit budget, HYBRID scheduling — the same
/// shape as [`obs_snapshot`], so component timings are comparable.
pub fn exec_workload() -> (Dataset, Vec<easeml_gp::ArmPrior>, SimConfig) {
    let dataset = easeml_data::SynConfig {
        num_users: 10,
        num_models: 20,
        ..easeml_data::SynConfig::paper(0.5, 1.0)
    }
    .generate(seed())
    .unit_cost_view();
    let priors = (0..10)
        .map(|_| easeml_gp::ArmPrior::independent(20, 0.05))
        .collect();
    let cfg = SimConfig {
        budget: 100.0,
        cost_aware: false,
        noise_var: 1e-3,
        delta: 0.1,
        fault: None,
    };
    (dataset, priors, cfg)
}

/// Cumulative multi-tenant regret of `trace`, truncated at `cost_cap` —
/// the equal-cost anchor of the scaling sweep.
fn regret_at_cost(trace: &SimTrace, dataset: &Dataset, cost_cap: f64) -> f64 {
    let mu_stars: Vec<f64> = (0..dataset.num_users())
        .map(|i| dataset.best_quality(i))
        .collect();
    let mut tracker = easeml_sched::MultiTenantRegret::new(mu_stars);
    let mut spent = 0.0;
    for e in &trace.events {
        if spent >= cost_cap {
            break;
        }
        tracker.record_round(e.user, e.quality, e.cost);
        spent += e.cost;
    }
    tracker.cumulative()
}

/// Runs the [`exec_workload`] through the multi-device engine at each
/// fleet size and reports makespan and regret at the shared budget.
pub fn exec_scaling_sweep(fleet_sizes: &[usize]) -> Vec<ExecScalingRow> {
    let (dataset, priors, cfg) = exec_workload();
    fleet_sizes
        .iter()
        .map(|&devices| {
            let trace = easeml_exec::simulate_multi_device(
                &dataset,
                &priors,
                SchedulerKind::Hybrid,
                &cfg,
                devices,
                seed(),
            );
            ExecScalingRow {
                devices,
                makespan: trace.makespan,
                regret_at_budget: regret_at_cost(&trace.sim, &dataset, cfg.budget),
                dispatches: trace.dispatches,
                parallel_dispatches: trace.parallel_dispatches,
            }
        })
        .collect()
}

/// Runs one fully instrumented 4-device execution plus the scaling sweep
/// and writes `<id>.perf.json` under `target/experiments/`: the same
/// per-component latency quantiles [`obs_snapshot`] emits (so
/// `scripts/bench_snapshot_diff.sh` diffs it unchanged) plus a `scaling`
/// array with per-fleet-size makespan and regret-at-equal-cost.
///
/// Returns the perf-json path, or `None` when the filesystem is
/// unavailable.
pub fn exec_snapshot(id: &str, rows: &[ExecScalingRow]) -> Option<std::path::PathBuf> {
    use easeml_obs::{Component, InMemoryRecorder, RecorderHandle};
    use std::fmt::Write as _;
    use std::sync::Arc;

    let (dataset, priors, cfg) = exec_workload();
    let rec = Arc::new(InMemoryRecorder::new());
    let handle = RecorderHandle::new(rec.clone());
    let trace = easeml_exec::simulate_multi_device_with_recorder(
        &dataset,
        &priors,
        SchedulerKind::Hybrid,
        &cfg,
        4,
        seed(),
        &handle,
    );

    let mut json = String::from("{\n  \"components\": [\n");
    for (i, &comp) in Component::ALL.iter().enumerate() {
        let h = rec.timing(comp);
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"count\": {}, \"p50_ns\": {:.0}, \"p95_ns\": {:.0}, \"max_ns\": {}}}{}",
            comp.name(),
            h.count(),
            h.quantile_ns(0.5),
            h.quantile_ns(0.95),
            h.max_ns(),
            if i + 1 < Component::ALL.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"scaling\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"devices\": {}, \"makespan\": {:.6}, \"regret_at_budget\": {:.6}, \
             \"dispatches\": {}, \"parallel_dispatches\": {}}}{}",
            row.devices,
            row.makespan,
            row.regret_at_budget,
            row.dispatches,
            row.parallel_dispatches,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(
        json,
        "  ],\n  \"rounds\": {},\n  \"makespan\": {:.6},\n  \"parallel_dispatches\": {}\n}}",
        trace.sim.rounds, trace.makespan, trace.parallel_dispatches
    );
    report::write_artifact(&format!("{id}.perf.json"), &json).ok()
}

/// One row of the telemetry-scale sweep: how the aggregate-mode recorder
/// behaves as the tenant count grows.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryScaleRow {
    /// Tenant count U of this run.
    pub users: usize,
    /// Events folded into the recorder.
    pub events: usize,
    /// Per-event fold latency samples taken.
    pub fold_count: u64,
    /// Median per-event fold latency, nanoseconds.
    pub fold_p50_ns: f64,
    /// 95th-percentile per-event fold latency, nanoseconds.
    pub fold_p95_ns: f64,
    /// Worst per-event fold latency, nanoseconds.
    pub fold_max_ns: u64,
    /// Estimated recorder state footprint after the fold, bytes. In
    /// aggregate mode this must stay bounded as U grows.
    pub state_bytes: usize,
    /// Size of the rendered `/metrics` body, bytes. Bounded families keep
    /// this independent of U.
    pub metrics_bytes: usize,
}

/// Folds a synthetic `events_per_run`-event stream over `U` tenants into
/// an aggregate-mode [`easeml_obs::TimeSeriesRecorder`] for each tenant
/// count, timing every fold and measuring the resulting state and
/// `/metrics` body sizes — the constant-memory-telemetry gate of the
/// scale work. The stream mixes `TrainingCompleted` runs (random tenant,
/// random cost/quality) with periodic `SchedulerDecision`s cycling
/// through three rule labels, so the per-strategy sketches, top-K
/// offenders, and exemplar reservoir all engage.
pub fn telemetry_scale_sweep(
    tenant_counts: &[usize],
    events_per_run: usize,
) -> Vec<TelemetryScaleRow> {
    use easeml_obs::{Event, Histogram, InMemoryRecorder, ScaleConfig, TimeSeriesRecorder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::time::Instant;

    const RULES: [&str; 3] = ["hybrid", "greedy(max-gap)", "round-robin"];
    tenant_counts
        .iter()
        .map(|&users| {
            let recorder = TimeSeriesRecorder::aggregate(ScaleConfig::default());
            recorder.set_default_target(0.95);
            let mut rng = StdRng::seed_from_u64(seed() ^ users as u64);
            let mut fold = Histogram::new();
            for i in 0..events_per_run {
                let user = rng.gen_range(0..users.max(1));
                let event = if i % 16 == 0 {
                    Event::SchedulerDecision {
                        round: i as u64,
                        user,
                        rule: RULES[(i / 16) % RULES.len()].to_string(),
                        scores: Vec::new(),
                        parent: 0,
                    }
                } else {
                    Event::TrainingCompleted {
                        user,
                        model: i % 20,
                        cost: rng.gen_range(0.5..1.5),
                        quality: rng.gen_range(0.0..1.0),
                        parent: 0,
                    }
                };
                let t = Instant::now();
                recorder.fold(&event);
                fold.record(t.elapsed().as_nanos() as u64);
            }
            let snapshot = recorder.snapshot();
            let body = easeml_obs_http::render_metrics(&InMemoryRecorder::new(), Some(&snapshot));
            TelemetryScaleRow {
                users,
                events: events_per_run,
                fold_count: fold.count(),
                fold_p50_ns: fold.quantile_ns(0.5),
                fold_p95_ns: fold.quantile_ns(0.95),
                fold_max_ns: fold.max_ns(),
                state_bytes: recorder.approx_state_bytes(),
                metrics_bytes: body.len(),
            }
        })
        .collect()
}

/// Writes the telemetry-scale rows as `<id>.perf.json` under
/// `target/experiments/`, one component row per tenant count named
/// `telemetry/fold@u=N`. The rows carry the same `count`/`p50_ns`/
/// `p95_ns`/`max_ns` keys `scripts/bench_snapshot_diff.sh` diffs, plus
/// `state_bytes`/`metrics_bytes` for the boundedness check (the differ
/// ignores keys it does not know).
///
/// Returns the perf-json path, or `None` when the filesystem is
/// unavailable.
pub fn telemetry_snapshot(id: &str, rows: &[TelemetryScaleRow]) -> Option<std::path::PathBuf> {
    use std::fmt::Write as _;

    let mut json = String::from("{\n  \"components\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"telemetry/fold@u={}\", \"count\": {}, \"p50_ns\": {:.0}, \
             \"p95_ns\": {:.0}, \"max_ns\": {}, \"state_bytes\": {}, \"metrics_bytes\": {}}}{}",
            row.users,
            row.fold_count,
            row.fold_p50_ns,
            row.fold_p95_ns,
            row.fold_max_ns,
            row.state_bytes,
            row.metrics_bytes,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    report::write_artifact(&format!("{id}.perf.json"), &json).ok()
}

/// One per-phase row of the hot-path profiling sweep at one tenant count —
/// what [`profile_snapshot`] serialises and `benches/profile_scaling.rs`
/// prints and gates on.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfilePhaseRow {
    /// Tenant count U of this run.
    pub users: usize,
    /// Span name of the phase.
    pub phase: String,
    /// Closed occurrences across the whole call tree.
    pub calls: u64,
    /// Median per-call latency, nanoseconds.
    pub p50_ns: f64,
    /// 95th-percentile per-call latency, nanoseconds.
    pub p95_ns: f64,
    /// Worst per-call latency, nanoseconds.
    pub max_ns: u64,
    /// Wall time attributed to the phase itself (children excluded).
    pub self_ns: u64,
    /// Self time per scheduler step.
    pub self_ns_per_step: f64,
    /// Heap allocations attributed to the phase's self windows (0 unless
    /// the binary installs [`easeml_obs::CountingAlloc`]).
    pub allocs: u64,
    /// Allocations per scheduler step.
    pub allocs_per_step: f64,
    /// Bytes allocated in the phase's self windows.
    pub alloc_bytes: u64,
    /// Largest single-call peak live-byte growth.
    pub peak_bytes: u64,
}

/// The fixed workload one profiling measurement runs at tenant count
/// `users`: U tenants x 20 models, unit costs, a `steps`-round budget, and
/// no faults. The sweep schedules it with the greedy max-UCB-gap rule —
/// not HYBRID, whose freeze decays into round-robin and would wash the
/// `pick_user` scaling exponent out.
pub fn profile_workload(
    users: usize,
    steps: usize,
) -> (Dataset, Vec<easeml_gp::ArmPrior>, SimConfig) {
    let dataset = easeml_data::SynConfig {
        num_users: users,
        num_models: 20,
        ..easeml_data::SynConfig::paper(0.5, 1.0)
    }
    .generate(seed())
    .unit_cost_view();
    let priors = (0..users)
        .map(|_| easeml_gp::ArmPrior::independent(20, 0.05))
        .collect();
    let cfg = SimConfig {
        budget: steps as f64,
        cost_aware: false,
        noise_var: 1e-3,
        delta: 0.1,
        fault: None,
    };
    (dataset, priors, cfg)
}

/// Runs [`profile_workload`] under a live [`easeml_obs::Profiler`] at each
/// tenant count and returns the captured call trees, ready for
/// [`easeml_obs::scaling_exponents`]. The recorder is a noop handle: the
/// profiler hooks on span enter/exit fire anyway, so the measurement
/// carries no event-buffer cost — it times exactly the simulation's own
/// work. Each run gets a fresh profiler; the previous global profiler is
/// restored afterwards.
pub fn profile_scaling_sweep(
    tenant_counts: &[usize],
    steps: usize,
) -> Vec<(usize, easeml_obs::CallTreeProfile)> {
    use easeml_obs::{set_global_profiler, Profiler, RecorderHandle};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    tenant_counts
        .iter()
        .map(|&users| {
            let (dataset, priors, cfg) = profile_workload(users, steps);
            let profiler = Arc::new(Profiler::new());
            let previous = set_global_profiler(Some(profiler.clone()));
            let mut rng = StdRng::seed_from_u64(seed() ^ users as u64);
            let _ = simulate_with_recorder(
                &dataset,
                &priors,
                SchedulerKind::Greedy(easeml_sched::PickRule::MaxUcbGap),
                &cfg,
                &mut rng,
                &RecorderHandle::noop(),
            );
            set_global_profiler(previous);
            (users, profiler.snapshot())
        })
        .collect()
}

/// Flattens the sweep's call trees into per-phase rows, normalising self
/// time and allocations by each run's `scheduler_step` count.
pub fn profile_rows(runs: &[(usize, easeml_obs::CallTreeProfile)]) -> Vec<ProfilePhaseRow> {
    let mut out = Vec::new();
    for (users, profile) in runs {
        let steps = profile
            .find(&["scheduler_step"])
            .map_or(0, |node| node.count)
            .max(1);
        for phase in profile.phase_table() {
            out.push(ProfilePhaseRow {
                users: *users,
                calls: phase.calls,
                p50_ns: phase.latency.quantile(0.5).unwrap_or(0.0),
                p95_ns: phase.latency.quantile(0.95).unwrap_or(0.0),
                max_ns: phase.latency.max().unwrap_or(0.0) as u64,
                self_ns: phase.self_ns,
                self_ns_per_step: phase.self_ns as f64 / steps as f64,
                allocs: phase.allocs,
                allocs_per_step: phase.allocs as f64 / steps as f64,
                alloc_bytes: phase.alloc_bytes,
                peak_bytes: phase.peak_bytes,
                phase: phase.name,
            });
        }
    }
    out
}

/// Writes the profiling rows as `<id>.perf.json` under
/// `target/experiments/`, one component row per (phase, tenant count)
/// named `profile/<phase>@u=N`. The rows carry the same `count`/`p50_ns`/
/// `p95_ns`/`max_ns` keys `scripts/bench_snapshot_diff.sh` diffs, plus
/// `self_ns`/`allocs` (and their per-step forms) for the per-phase budget
/// check.
///
/// Returns the perf-json path, or `None` when the filesystem is
/// unavailable.
pub fn profile_snapshot(id: &str, rows: &[ProfilePhaseRow]) -> Option<std::path::PathBuf> {
    use std::fmt::Write as _;

    let mut json = String::from("{\n  \"components\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"profile/{}@u={}\", \"count\": {}, \"p50_ns\": {:.0}, \
             \"p95_ns\": {:.0}, \"max_ns\": {}, \"self_ns\": {}, \"self_ns_per_step\": {:.0}, \
             \"allocs\": {}, \"allocs_per_step\": {:.2}, \"alloc_bytes\": {}, \
             \"peak_bytes\": {}}}{}",
            row.phase,
            row.users,
            row.calls,
            row.p50_ns,
            row.p95_ns,
            row.max_ns,
            row.self_ns,
            row.self_ns_per_step,
            row.allocs,
            row.allocs_per_step,
            row.alloc_bytes,
            row.peak_bytes,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    report::write_artifact(&format!("{id}.perf.json"), &json).ok()
}

/// Latency distribution of [`easeml_wal::WalWriter::append`] over a burst
/// of round-commit records — the write the serial hot path pays per
/// logging site when a WAL is attached.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalAppendRow {
    /// Appends measured.
    pub count: u64,
    /// Median append latency, nanoseconds.
    pub p50_ns: f64,
    /// 95th-percentile append latency, nanoseconds.
    pub p95_ns: f64,
    /// Worst append latency, nanoseconds.
    pub max_ns: u64,
}

/// One row of the incremental-recovery sweep: recover a `total_rounds`
/// run whose checkpoint was taken `delta` rounds before the end, so the
/// WAL suffix replays exactly `delta` rounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalRecoverRow {
    /// Rounds between the checkpoint and the crash (the replay suffix).
    pub delta: u64,
    /// Total rounds the original run executed.
    pub total_rounds: u64,
    /// Rounds the recovery actually replayed (must equal `delta`).
    pub replayed: u64,
    /// Wall time of [`easeml::prelude::EaseMl::recover`], milliseconds.
    pub recover_ms: f64,
    /// Recovery time per replayed round — the O(delta) constant.
    pub ms_per_round: f64,
}

/// The deterministic oracle the WAL benches run: same shape as the core
/// test suite's toy oracle (parity base quality plus a model-year bonus),
/// so the replayed trajectory is discriminative but reproducible.
fn wal_bench_oracle() -> QualityOracle {
    Box::new(|user, model: easeml_dsl::ModelId| {
        let info = model.info();
        let base = if user % 2 == 0 { 0.7 } else { 0.5 };
        Ok(TrainingOutcome {
            accuracy: (base + 0.02 * (info.year as f64 - 2010.0)).min(0.99),
            cost: info.relative_cost,
        })
    })
}

const WAL_IMAGE_PROG: &str = "{input: {[Tensor[64, 64, 3]], []}, output: {[Tensor[5]], []}}";
const WAL_TS_PROG: &str = "{input: {[Tensor[16]], [next]}, output: {[Tensor[3]], []}}";

/// Times `appends` framed record writes through a fresh
/// [`easeml_wal::WalWriter`] (group-commit fsync every 16 records, 256 KiB
/// segments) and returns the latency quantiles. The scratch directory is
/// removed afterwards.
pub fn wal_append_sweep(appends: usize) -> WalAppendRow {
    use easeml_wal::{DurableEvent, FsyncPolicy, WalOptions, WalWriter};

    let dir = std::env::temp_dir().join(format!("easeml-wal-bench-append-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("wal bench scratch dir");
    let mut writer = WalWriter::open(
        &dir,
        WalOptions {
            segment_bytes: 256 * 1024,
            fsync: FsyncPolicy::EveryN(16),
        },
    )
    .expect("open bench WAL");
    let mut hist = easeml_obs::Histogram::new();
    for round in 0..appends as u64 {
        let payload = DurableEvent::RoundCommit {
            round,
            user: round % 10,
            arm: round % 20,
            censored: false,
            digest: round.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            rng: [round; 4],
        }
        .encode();
        let start = std::time::Instant::now();
        writer.append(&payload).expect("bench append");
        hist.record(start.elapsed().as_nanos() as u64);
    }
    writer.sync().expect("bench sync");
    drop(writer);
    let _ = std::fs::remove_dir_all(&dir);
    WalAppendRow {
        count: hist.count(),
        p50_ns: hist.quantile_ns(0.5),
        p95_ns: hist.quantile_ns(0.95),
        max_ns: hist.max_ns(),
    }
}

/// For each `delta`, runs a two-tenant serial simulation for
/// `total_rounds` rounds with a WAL attached, checkpoints `delta` rounds
/// before the end, then times a full [`easeml::prelude::EaseMl::recover`]
/// from the checkpoint + WAL pair. Every recovery is digest-verified
/// against the live server before the row is returned.
pub fn wal_recover_sweep(total_rounds: u64, deltas: &[u64]) -> Vec<WalRecoverRow> {
    use easeml_wal::WalOptions;

    deltas
        .iter()
        .map(|&delta| {
            assert!(
                delta > 0 && delta < total_rounds,
                "delta must split the run"
            );
            let base = std::env::temp_dir().join(format!(
                "easeml-wal-bench-recover-{}-{delta}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&base);
            let wal_dir = base.join("wal");
            std::fs::create_dir_all(&wal_dir).expect("wal bench scratch dir");
            let ckpt = base.join("checkpoint.json");

            let mut server = EaseMl::new(wal_bench_oracle(), seed());
            server.register_user("vision-lab", WAL_IMAGE_PROG).unwrap();
            server.register_user("meteo-lab", WAL_TS_PROG).unwrap();
            server.set_durability(
                Durability::open(&wal_dir, WalOptions::default()).expect("open bench WAL"),
            );
            for _ in 0..total_rounds - delta {
                server.try_run_round().expect("bench round");
            }
            server.checkpoint_to(&ckpt).expect("bench checkpoint");
            for _ in 0..delta {
                server.try_run_round().expect("bench round");
            }
            let reference_digest = server.state_digest();
            drop(server);

            let start = std::time::Instant::now();
            let (recovered, report) =
                EaseMl::recover(&ckpt, &wal_dir, wal_bench_oracle()).expect("bench recover");
            let recover_ms = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(report.replayed_rounds, delta, "suffix length is the delta");
            assert_eq!(
                recovered.state_digest(),
                reference_digest,
                "recovery must be bit-exact before it is timed"
            );
            let _ = std::fs::remove_dir_all(&base);
            WalRecoverRow {
                delta,
                total_rounds,
                replayed: report.replayed_rounds,
                recover_ms,
                ms_per_round: recover_ms / delta as f64,
            }
        })
        .collect()
}

/// Writes the WAL rows as `<id>.perf.json` under `target/experiments/`.
/// The append row is a normal component row (`wal/append_ns`, with the
/// `count`/`p50_ns`/`p95_ns`/`max_ns` keys the differ's quantile pass
/// reads); the recovery rows are named `wal/recover_ms@delta=N` and carry
/// `delta`/`recover_ms`/`ms_per_round` — deliberately **without** a
/// `p50_ns` key, so only the boundedness pass in
/// `scripts/bench_snapshot_diff.sh` sees them (absolute recovery time is
/// machine-dependent; the per-round constant is the contract).
///
/// Returns the perf-json path, or `None` when the filesystem is
/// unavailable.
pub fn wal_snapshot(
    id: &str,
    append: &WalAppendRow,
    rows: &[WalRecoverRow],
) -> Option<std::path::PathBuf> {
    use std::fmt::Write as _;

    let mut json = String::from("{\n  \"components\": [\n");
    let _ = writeln!(
        json,
        "    {{\"name\": \"wal/append_ns\", \"count\": {}, \"p50_ns\": {:.0}, \
         \"p95_ns\": {:.0}, \"max_ns\": {}}}{}",
        append.count,
        append.p50_ns,
        append.p95_ns,
        append.max_ns,
        if rows.is_empty() { "" } else { "," }
    );
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"wal/recover_ms@delta={}\", \"delta\": {}, \"rounds\": {}, \
             \"replayed_rounds\": {}, \"recover_ms\": {:.3}, \"ms_per_round\": {:.6}}}{}",
            row.delta,
            row.delta,
            row.total_rounds,
            row.replayed,
            row.recover_ms,
            row.ms_per_round,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    report::write_artifact(&format!("{id}.perf.json"), &json).ok()
}

// ---------------------------------------------------------------------------
// Open-loop workload scaling
// ---------------------------------------------------------------------------

/// One cell of the workload-scaling sweep: a seeded open-loop replay at a
/// fixed per-tenant Poisson arrival rate, with or without tenant churn,
/// through the multi-device execution engine.
#[derive(Debug, Clone)]
pub struct WorkloadScalingRow {
    /// Per-tenant arrival rate (jobs per simulated time unit).
    pub rate: f64,
    /// Whether the script includes tenant churn (retire/rejoin).
    pub churn: bool,
    /// Scripted arrivals.
    pub arrivals: u64,
    /// Jobs actually dispatched (churn strands some arrivals).
    pub served: u64,
    /// Scripted lifecycle (retire/rejoin) events.
    pub lifecycle: u64,
    /// Simulated time of the last completion.
    pub makespan: f64,
    /// Wall time of the whole replay, milliseconds.
    pub wall_ms: f64,
    /// Wall time per dispatched job — the engine's open-loop overhead
    /// constant. Must stay bounded as the arrival rate grows.
    pub ns_per_served: f64,
}

/// Tenants every workload cell replays over.
pub const WORKLOAD_BENCH_USERS: usize = 8;

/// Devices in the workload cell's fleet.
pub const WORKLOAD_BENCH_DEVICES: usize = 4;

/// Runs one open-loop replay cell: `WORKLOAD_BENCH_USERS` tenants each
/// arriving at Poisson rate `rate` over `[0, horizon)`, on a
/// `WORKLOAD_BENCH_DEVICES`-device fleet, optionally with churn (mean
/// lifetime `horizon / 4`, mean absence `horizon / 8`). The budget is set
/// far beyond the scripted work so the replay always ends because the
/// arrivals run dry.
pub fn workload_replay_cell(
    kind: SchedulerKind,
    rate: f64,
    churn: bool,
    horizon: f64,
) -> WorkloadScalingRow {
    use easeml_exec::{ExecEngine, Fleet};
    use easeml_gp::ArmPrior;
    use easeml_obs::RecorderHandle;
    use easeml_workload::{ArrivalKind, ChurnConfig, ReplayDriver, WorkloadScript};

    let dataset = easeml_data::SynConfig {
        num_users: WORKLOAD_BENCH_USERS,
        num_models: 6,
        ..easeml_data::SynConfig::paper(0.5, 0.5)
    }
    .generate(seed());
    let priors: Vec<ArmPrior> = (0..WORKLOAD_BENCH_USERS)
        .map(|_| ArmPrior::independent(6, 0.05))
        .collect();
    let cfg = SimConfig::new(1e12);
    let churn_cfg = churn.then(|| ChurnConfig::new(horizon / 4.0, horizon / 8.0));
    let script = WorkloadScript::synthetic(
        WORKLOAD_BENCH_USERS,
        ArrivalKind::Poisson { rate },
        horizon,
        churn_cfg.as_ref(),
        seed(),
    );
    let arrivals = script.arrivals() as u64;
    let lifecycle = script.lifecycle_events() as u64;
    let driver = ReplayDriver::new(
        ExecEngine::new(
            &dataset,
            &priors,
            kind,
            &cfg,
            Fleet::uniform(WORKLOAD_BENCH_DEVICES),
            seed(),
            RecorderHandle::noop(),
        ),
        script,
    );
    let start = std::time::Instant::now();
    let trace = driver.run();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let served = trace.dispatches as u64;
    WorkloadScalingRow {
        rate,
        churn,
        arrivals,
        served,
        lifecycle,
        makespan: trace.makespan,
        wall_ms,
        ns_per_served: wall_ms * 1e6 / served.max(1) as f64,
    }
}

/// The arrival-rate × churn sweep: for each churn setting, every rate in
/// ascending order, all through the HYBRID scheduler. The horizon scales
/// inversely with the rate (`jobs_per_tenant / rate`) so every cell
/// scripts the same expected job count — GP posterior updates get more
/// expensive with the observation count, so holding the count fixed is
/// what isolates the open-loop machinery's per-job overhead from the
/// scheduler's own scaling in run length. Row order matches what
/// `scripts/bench_snapshot_diff.sh` expects: within a churn group the
/// first row is the lowest rate and the last the highest.
pub fn workload_scaling_sweep(rates: &[f64], jobs_per_tenant: f64) -> Vec<WorkloadScalingRow> {
    let mut out = Vec::new();
    for &churn in &[false, true] {
        for &rate in rates {
            let horizon = jobs_per_tenant / rate;
            out.push(workload_replay_cell(
                SchedulerKind::Hybrid,
                rate,
                churn,
                horizon,
            ));
        }
    }
    out
}

/// Runs the highest-stress cell (churn on) once per headline scheduler —
/// GREEDY, HYBRID, and the round-robin+GP-UCB baseline (the paper's B-UCB
/// shape) — for the strategy comparison table.
pub fn workload_kind_comparison(
    rate: f64,
    horizon: f64,
) -> Vec<(&'static str, WorkloadScalingRow)> {
    [
        SchedulerKind::Greedy(easeml_sched::PickRule::MaxUcbGap),
        SchedulerKind::Hybrid,
        SchedulerKind::RoundRobin,
    ]
    .into_iter()
    .map(|kind| (kind.name(), workload_replay_cell(kind, rate, true, horizon)))
    .collect()
}

/// Renders the sweep as perf-snapshot JSON. Workload rows deliberately
/// carry no `p50_ns` key: absolute wall time is machine-dependent, so the
/// quantile diff pass must not see them — only the candidate-only
/// one-sided boundedness check in `scripts/bench_snapshot_diff.sh` reads
/// `ns_per_served` across the rate sweep.
pub fn workload_snapshot_json(rows: &[WorkloadScalingRow]) -> String {
    use std::fmt::Write as _;

    let mut json = String::from("{\n  \"components\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"workload/replay@rate={},churn={}\", \"rate\": {}, \
             \"churn\": {}, \"arrivals\": {}, \"served\": {}, \"lifecycle\": {}, \
             \"makespan\": {:.4}, \"wall_ms\": {:.3}, \"ns_per_served\": {:.0}}}{}",
            row.rate,
            u8::from(row.churn),
            row.rate,
            u8::from(row.churn),
            row.arrivals,
            row.served,
            row.lifecycle,
            row.makespan,
            row.wall_ms,
            row.ns_per_served,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    json
}

/// Writes the sweep as `<id>.perf.json` under `target/experiments/`.
pub fn workload_snapshot(id: &str, rows: &[WorkloadScalingRow]) -> Option<std::path::PathBuf> {
    report::write_artifact(&format!("{id}.perf.json"), &workload_snapshot_json(rows)).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_sweeps_produce_verified_rows() {
        let append = wal_append_sweep(200);
        assert_eq!(append.count, 200);
        assert!(append.p95_ns >= append.p50_ns);

        // The sweep itself digest-verifies every recovery before
        // returning, so a passing row is a bit-exact recovery.
        let rows = wal_recover_sweep(16, &[4]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].replayed, 4);
        assert!(rows[0].recover_ms > 0.0);

        let json_path = wal_snapshot("test_wal_rows", &append, &rows);
        if let Some(p) = &json_path {
            let text = std::fs::read_to_string(p).unwrap();
            assert!(text.contains("\"wal/append_ns\""), "{text}");
            assert!(text.contains("\"wal/recover_ms@delta=4\""), "{text}");
            // The recovery rows must stay invisible to the quantile diff
            // pass, which keys on p50_ns.
            let recover_line = text
                .lines()
                .find(|l| l.contains("recover_ms@delta"))
                .unwrap();
            assert!(!recover_line.contains("p50_ns"), "{recover_line}");
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn workload_rows_have_the_gate_shape() {
        let row = workload_replay_cell(SchedulerKind::Hybrid, 2.0, true, 4.0);
        assert!(row.arrivals > 0, "a rate-2 script over 4 units must arrive");
        assert!(row.served > 0, "some arrivals must be served");
        assert!(row.ns_per_served > 0.0);

        let json = workload_snapshot_json(&[row.clone(), row]);
        // The gate keys workload rows on their name prefix and reads
        // ns_per_served; they must stay invisible to the p50_ns diff pass.
        assert!(
            json.contains("\"workload/replay@rate=2,churn=1\""),
            "{json}"
        );
        assert!(json.contains("\"ns_per_served\":"), "{json}");
        assert!(json.contains("\"lifecycle\":"), "{json}");
        assert!(!json.contains("p50_ns"), "{json}");
    }

    #[test]
    fn env_defaults() {
        // Do not set the env vars here (tests run in parallel); just check
        // the defaults are sane when unset or the parse falls back.
        assert!(reps() > 0);
        let _ = seed();
    }

    #[test]
    fn telemetry_sweep_state_is_bounded_in_tenant_count() {
        let rows = telemetry_scale_sweep(&[10, 1_000], 2_000);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.fold_count, 2_000);
            assert!(row.state_bytes > 0 && row.metrics_bytes > 0);
        }
        // Aggregate mode: a 100x tenant-count jump must not move the
        // recorder footprint or the /metrics body by more than a small
        // constant factor (exemplar identity strings and top-K labels
        // may differ slightly in length).
        let ratio = rows[1].state_bytes as f64 / rows[0].state_bytes as f64;
        assert!(
            ratio < 1.5,
            "state bytes must be ~flat across U: {} -> {} ({ratio:.2}x)",
            rows[0].state_bytes,
            rows[1].state_bytes
        );
        let body_ratio = rows[1].metrics_bytes as f64 / rows[0].metrics_bytes as f64;
        assert!(
            body_ratio < 1.5,
            "/metrics body must be ~flat across U: {} -> {} ({body_ratio:.2}x)",
            rows[0].metrics_bytes,
            rows[1].metrics_bytes
        );
    }

    #[test]
    fn profile_sweep_captures_the_step_phases() {
        // One combined test: the global profiler is process-wide state, so
        // the sweep, row flattening, and snapshot are exercised together.
        let runs = profile_scaling_sweep(&[5, 50], 40);
        assert_eq!(runs.len(), 2);
        for (users, profile) in &runs {
            let step = profile
                .find(&["scheduler_step"])
                .unwrap_or_else(|| panic!("u={users}: no scheduler_step node"));
            assert_eq!(step.count, 40, "unit costs: one step per budget unit");
            assert_eq!(profile.dropped_exits, 0);
            let (attributed, total) = profile
                .phase_coverage("scheduler_step")
                .expect("steps were profiled");
            assert!(
                attributed as f64 >= 0.95 * total as f64,
                "u={users}: phase coverage {attributed}/{total}"
            );
        }
        let rows = profile_rows(&runs);
        for phase in [
            "scheduler_step",
            "pick_user",
            "pick_arm",
            "train",
            "posterior_update",
        ] {
            assert!(
                rows.iter().any(|r| r.phase == phase && r.users == 50),
                "missing phase row {phase}"
            );
        }
        let step_row = rows
            .iter()
            .find(|r| r.phase == "scheduler_step" && r.users == 50)
            .unwrap();
        assert!(step_row.p95_ns >= step_row.p50_ns);
        assert!(step_row.self_ns_per_step > 0.0);

        let path = profile_snapshot("profile_scaling_test", &rows)
            .expect("target/experiments must be writable in tests");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"name\": \"profile/pick_user@u=50\""));
        assert!(body.contains("\"p50_ns\""), "differ keys off p50_ns lines");
        assert!(body.contains("\"self_ns_per_step\""));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn telemetry_snapshot_rows_feed_the_perf_differ() {
        let rows = telemetry_scale_sweep(&[50], 400);
        let path = telemetry_snapshot("telemetry_scale_test", &rows)
            .expect("target/experiments must be writable in tests");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"name\": \"telemetry/fold@u=50\""));
        assert!(body.contains("\"p50_ns\""), "differ keys off p50_ns lines");
        assert!(body.contains("\"state_bytes\""));
        let _ = std::fs::remove_file(path);
    }
}
