//! The crash-safe checkpoint document.
//!
//! [`CheckpointDoc`] is a plain-data snapshot of everything
//! [`EaseMl`](crate::server::EaseMl) needs to resume mid-experiment:
//! tenants' posterior sufficient statistics (their observation sequences —
//! replaying them through the same numeric path rebuilds bit-identical GP
//! state), the HYBRID picker's freeze detector, the cluster clocks and
//! history, the RNG stream position, and the fault/retry bookkeeping.
//!
//! Serialization uses the same hand-rolled JSON as the trace stack:
//! finite floats round-trip bit-exactly via Rust's shortest representation.
//! The RNG state words and the fault seed are `u64`s that can exceed 2^53,
//! so they are carried as decimal *strings* — everything else fits JSON
//! numbers losslessly.

use easeml_obs::json::{self, Json};
use serde::Serialize;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::Path;

/// Current checkpoint format version.
///
/// v2 added the decision-witness digest fields (`witness_digest`,
/// `witness_rounds`, `witness_top_k`) so the rolling digest chain survives
/// a restore and WAL replay can be verified bit-exactly against it.
///
/// v3 added the per-tenant `active` flag: with tenant churn, a retired
/// tenant's slot and GP state survive a restore but it must stay invisible
/// to every picker, so activity is part of the durable state.
pub const CHECKPOINT_VERSION: u32 = 3;

/// Why a checkpoint could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The document was written by a newer build than this one.
    NewerVersion {
        /// Version found in the document.
        found: u32,
        /// Highest version this build reads.
        supported: u32,
    },
    /// The document predates the oldest format this build reads.
    OlderVersion {
        /// Version found in the document.
        found: u32,
        /// Version this build expects.
        supported: u32,
    },
    /// The document parsed as JSON but a field is missing or mistyped.
    Malformed(String),
    /// A checkpoint *file* failed to parse — truncated or bit-rotted.
    Corrupt {
        /// Path of the offending file.
        path: String,
        /// What the parser tripped over.
        detail: String,
    },
    /// The filesystem failed underneath the checkpoint.
    Io {
        /// Path of the offending file.
        path: String,
        /// The underlying I/O error.
        detail: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NewerVersion { found, supported } => write!(
                f,
                "unsupported checkpoint version {found}: this build reads up to \
                 version {supported}; upgrade easeml to restore this checkpoint"
            ),
            Self::OlderVersion { found, supported } => write!(
                f,
                "unsupported checkpoint version {found} (expected {supported})"
            ),
            Self::Malformed(detail) => write!(f, "{detail}"),
            Self::Corrupt { path, detail } => {
                write!(f, "corrupt checkpoint {path}: {detail}")
            }
            Self::Io { path, detail } => {
                write!(f, "checkpoint I/O error at {path}: {detail}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<String> for CheckpointError {
    fn from(detail: String) -> Self {
        Self::Malformed(detail)
    }
}

/// One registered user: enough to re-register it on restore.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct UserCheckpoint {
    /// Display name.
    pub name: String,
    /// The original DSL program source.
    pub program: String,
}

/// One tenant's bandit state: the observation sequence (oldest first) that
/// rebuilds the posterior exactly, plus the quarantine mask.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantCheckpoint {
    /// `(arm, reward)` pairs in observation order.
    pub observations: Vec<(usize, f64)>,
    /// Currently quarantined (masked) arms.
    pub masked: Vec<usize>,
    /// Whether the tenant is live (false once retired).
    pub active: bool,
}

/// The HYBRID picker's freeze detector and round-robin cursor.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PickerCheckpoint {
    /// Greedy line-8 rule name (`"max-gap"` / `"max-sigma"` / `"random"`).
    pub rule: String,
    /// Freeze threshold s.
    pub patience: u64,
    /// Consecutive frozen rounds.
    pub frozen_rounds: u64,
    /// Candidate set at the previous round.
    pub prev_candidates: Vec<usize>,
    /// Best-reward sum at the previous round; serialized as `null` while
    /// still at its `-inf` initial value.
    pub prev_best_sum: f64,
    /// Whether the round-robin switch happened.
    pub switched: bool,
    /// Round-robin cursor.
    pub rr_cursor: u64,
}

/// One completed (or censored) cluster run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunCheckpoint {
    /// Tenant index.
    pub user: usize,
    /// Model index within the user's job.
    pub model: usize,
    /// Charged cost.
    pub cost: f64,
    /// Whether the run was censored (failed).
    pub censored: bool,
    /// Device that executed it.
    pub device: usize,
    /// Simulated start time.
    pub started_at: f64,
    /// Simulated finish time.
    pub finished_at: f64,
}

/// The cluster: per-device clocks plus execution history.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClusterCheckpoint {
    /// Per-device free-at clocks.
    pub device_free_at: Vec<f64>,
    /// Execution history in order.
    pub history: Vec<RunCheckpoint>,
}

/// The retry policy's knobs (mirrors [`crate::retry::RetryPolicy`]).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RetryPolicyCheckpoint {
    /// In-round retries after the first failure.
    pub max_retries: u64,
    /// Base backoff cost.
    pub backoff_cost: f64,
    /// Backoff multiplier.
    pub backoff_factor: f64,
    /// Consecutive failures before quarantine.
    pub quarantine_threshold: u64,
    /// Probation length in rounds.
    pub probation_rounds: u64,
}

/// Fault-injector configuration and attempt counters (mirrors
/// [`crate::fault::FaultInjector`]).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultCheckpoint {
    /// Seed, as a decimal string (u64 range exceeds JSON's exact doubles).
    pub seed: String,
    /// Base rates `[crash, timeout, invalid, straggler]`.
    pub rates: [f64; 4],
    /// Per-user rate overrides.
    pub user_overrides: Vec<(usize, [f64; 4])>,
    /// Per-arm rate overrides.
    pub arm_overrides: Vec<(usize, [f64; 4])>,
    /// Straggler cost multiplier.
    pub straggler_factor: f64,
    /// Fraction of cost consumed before a crash.
    pub crash_cost_fraction: f64,
    /// Timeout deadline as a multiple of cost.
    pub timeout_factor: f64,
    /// Per-(user, arm) attempt counters.
    pub attempts: Vec<(usize, usize, u64)>,
}

/// The full server checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CheckpointDoc {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// xoshiro256++ state words as decimal strings.
    pub rng_state: [String; 4],
    /// GP observation-noise variance.
    pub noise_var: f64,
    /// β-schedule failure probability δ.
    pub delta: f64,
    /// Post-warm-up picker step counter.
    pub step: u64,
    /// Warm-up progress (users served once).
    pub warmed_up: u64,
    /// Total rounds executed (warm-up + scheduled, censored included).
    pub rounds: u64,
    /// Rolling decision-witness digest, as a decimal string (full u64).
    pub witness_digest: String,
    /// Rounds folded into the witness digest.
    pub witness_rounds: u64,
    /// Witness fan-out bound K.
    pub witness_top_k: u64,
    /// Registered users in id order.
    pub users: Vec<UserCheckpoint>,
    /// Tenant bandit state, aligned with `users`.
    pub tenants: Vec<TenantCheckpoint>,
    /// HYBRID picker state.
    pub picker: PickerCheckpoint,
    /// Cluster clocks and history.
    pub cluster: ClusterCheckpoint,
    /// Retry policy knobs.
    pub retry_policy: RetryPolicyCheckpoint,
    /// Consecutive-failure counters `(user, arm, count)`.
    pub retry_counters: Vec<(usize, usize, u64)>,
    /// Scheduled quarantine releases `(round, user, arm)`.
    pub retry_releases: Vec<(u64, usize, usize)>,
    /// Fault injector, if one is attached.
    pub fault: Option<FaultCheckpoint>,
}

impl CheckpointDoc {
    /// Serializes the checkpoint to one JSON document.
    pub fn to_json(&self) -> String {
        json::to_string(self)
    }

    /// Parses a checkpoint document.
    ///
    /// # Errors
    ///
    /// Returns a typed [`CheckpointError`]: a version mismatch (with an
    /// upgrade hint when the document is from a newer build) or a
    /// malformation naming the offending field.
    pub fn from_json(input: &str) -> Result<Self, CheckpointError> {
        let doc = json::parse(input)?;
        let fields = as_object(&doc, "checkpoint")?;
        let version = get_u64(fields, "version")? as u32;
        match version.cmp(&CHECKPOINT_VERSION) {
            std::cmp::Ordering::Greater => {
                return Err(CheckpointError::NewerVersion {
                    found: version,
                    supported: CHECKPOINT_VERSION,
                })
            }
            std::cmp::Ordering::Less => {
                return Err(CheckpointError::OlderVersion {
                    found: version,
                    supported: CHECKPOINT_VERSION,
                })
            }
            std::cmp::Ordering::Equal => {}
        }
        let rng_raw = get(fields, "rng_state")?;
        let rng_vec = as_array(rng_raw, "rng_state")?;
        if rng_vec.len() != 4 {
            return Err(CheckpointError::Malformed(
                "rng_state must hold 4 words".into(),
            ));
        }
        let mut rng_state: [String; 4] = Default::default();
        for (i, word) in rng_vec.iter().enumerate() {
            rng_state[i] = as_str(word, "rng_state word")?.to_string();
        }
        let users = as_array(get(fields, "users")?, "users")?
            .iter()
            .map(|u| {
                let f = as_object(u, "user")?;
                Ok(UserCheckpoint {
                    name: get_str(f, "name")?,
                    program: get_str(f, "program")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let tenants = as_array(get(fields, "tenants")?, "tenants")?
            .iter()
            .map(|t| {
                let f = as_object(t, "tenant")?;
                let observations = as_array(get(f, "observations")?, "observations")?
                    .iter()
                    .map(|pair| parse_pair(pair, "observation"))
                    .collect::<Result<Vec<_>, String>>()?;
                let masked = parse_usize_array(get(f, "masked")?, "masked")?;
                Ok(TenantCheckpoint {
                    observations,
                    masked,
                    active: get_bool(f, "active")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let picker = {
            let f = as_object(get(fields, "picker")?, "picker")?;
            PickerCheckpoint {
                rule: get_str(f, "rule")?,
                patience: get_u64(f, "patience")?,
                frozen_rounds: get_u64(f, "frozen_rounds")?,
                prev_candidates: parse_usize_array(get(f, "prev_candidates")?, "prev_candidates")?,
                prev_best_sum: get_f64_or_neg_inf(f, "prev_best_sum")?,
                switched: get_bool(f, "switched")?,
                rr_cursor: get_u64(f, "rr_cursor")?,
            }
        };
        let cluster = {
            let f = as_object(get(fields, "cluster")?, "cluster")?;
            let device_free_at = parse_f64_array(get(f, "device_free_at")?, "device_free_at")?;
            let history = as_array(get(f, "history")?, "history")?
                .iter()
                .map(|r| {
                    let f = as_object(r, "run")?;
                    Ok(RunCheckpoint {
                        user: get_u64(f, "user")? as usize,
                        model: get_u64(f, "model")? as usize,
                        cost: get_f64(f, "cost")?,
                        censored: get_bool(f, "censored")?,
                        device: get_u64(f, "device")? as usize,
                        started_at: get_f64(f, "started_at")?,
                        finished_at: get_f64(f, "finished_at")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            ClusterCheckpoint {
                device_free_at,
                history,
            }
        };
        let retry_policy = {
            let f = as_object(get(fields, "retry_policy")?, "retry_policy")?;
            RetryPolicyCheckpoint {
                max_retries: get_u64(f, "max_retries")?,
                backoff_cost: get_f64(f, "backoff_cost")?,
                backoff_factor: get_f64(f, "backoff_factor")?,
                quarantine_threshold: get_u64(f, "quarantine_threshold")?,
                probation_rounds: get_u64(f, "probation_rounds")?,
            }
        };
        let retry_counters = as_array(get(fields, "retry_counters")?, "retry_counters")?
            .iter()
            .map(|t| parse_triple(t, "retry counter"))
            .collect::<Result<Vec<_>, String>>()?
            .into_iter()
            .map(|(a, b, c)| (a as usize, b as usize, c))
            .collect();
        let retry_releases = as_array(get(fields, "retry_releases")?, "retry_releases")?
            .iter()
            .map(|t| parse_triple(t, "retry release"))
            .collect::<Result<Vec<_>, String>>()?
            .into_iter()
            .map(|(a, b, c)| (a, b as usize, c as usize))
            .collect();
        let fault = match get(fields, "fault")? {
            Json::Null => None,
            value => {
                let f = as_object(value, "fault")?;
                let rates = parse_rates(get(f, "rates")?, "rates")?;
                let user_overrides = parse_overrides(get(f, "user_overrides")?, "user_overrides")?;
                let arm_overrides = parse_overrides(get(f, "arm_overrides")?, "arm_overrides")?;
                let attempts = as_array(get(f, "attempts")?, "attempts")?
                    .iter()
                    .map(|t| parse_triple(t, "attempt counter"))
                    .collect::<Result<Vec<_>, String>>()?
                    .into_iter()
                    .map(|(a, b, c)| (a as usize, b as usize, c))
                    .collect();
                Some(FaultCheckpoint {
                    seed: get_str(f, "seed")?,
                    rates,
                    user_overrides,
                    arm_overrides,
                    straggler_factor: get_f64(f, "straggler_factor")?,
                    crash_cost_fraction: get_f64(f, "crash_cost_fraction")?,
                    timeout_factor: get_f64(f, "timeout_factor")?,
                    attempts,
                })
            }
        };
        Ok(CheckpointDoc {
            version,
            rng_state,
            noise_var: get_f64(fields, "noise_var")?,
            delta: get_f64(fields, "delta")?,
            step: get_u64(fields, "step")?,
            warmed_up: get_u64(fields, "warmed_up")?,
            rounds: get_u64(fields, "rounds")?,
            witness_digest: get_str(fields, "witness_digest")?,
            witness_rounds: get_u64(fields, "witness_rounds")?,
            witness_top_k: get_u64(fields, "witness_top_k")?,
            users,
            tenants,
            picker,
            cluster,
            retry_policy,
            retry_counters,
            retry_releases,
            fault,
        })
    }
}

/// Encodes a `u64` losslessly for a checkpoint string field.
pub fn encode_u64(v: u64) -> String {
    v.to_string()
}

/// Decodes a checkpoint string field back into a `u64`.
///
/// # Errors
///
/// Returns a message when the string is not a decimal `u64`.
pub fn decode_u64(s: &str) -> Result<u64, String> {
    s.parse::<u64>()
        .map_err(|e| format!("bad u64 string {s:?}: {e}"))
}

/// Writes a checkpoint document to `path` crash-safely: the bytes go to a
/// sibling temp file, are fsynced, and only then renamed over the target,
/// with a final directory fsync so the rename itself is durable. A crash
/// at any point leaves either the old snapshot or the new one — never a
/// torn mix.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] naming the path on any filesystem
/// failure.
pub fn write_checkpoint_atomic(path: &Path, json: &str) -> Result<(), CheckpointError> {
    let io_err = |e: std::io::Error| CheckpointError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    };
    let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = parent {
        fs::create_dir_all(dir).map_err(io_err)?;
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut file = File::create(&tmp).map_err(io_err)?;
        file.write_all(json.as_bytes()).map_err(io_err)?;
        file.sync_all().map_err(io_err)?;
    }
    fs::rename(&tmp, path).map_err(io_err)?;
    if let Some(dir) = parent {
        // Make the rename durable; a failure here is not a torn file.
        File::open(dir).and_then(|d| d.sync_all()).map_err(io_err)?;
    }
    Ok(())
}

/// Reads and parses a checkpoint file written by [`write_checkpoint_atomic`].
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] when the file cannot be read and
/// [`CheckpointError::Corrupt`] — naming the path — when its contents do
/// not parse, e.g. after truncation. Version mismatches pass through as
/// their own typed variants.
pub fn read_checkpoint_file(path: &Path) -> Result<CheckpointDoc, CheckpointError> {
    let json = fs::read_to_string(path).map_err(|e| CheckpointError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    })?;
    CheckpointDoc::from_json(&json).map_err(|e| match e {
        CheckpointError::Malformed(detail) => CheckpointError::Corrupt {
            path: path.display().to_string(),
            detail,
        },
        other => other,
    })
}

fn get<'a>(fields: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn as_object<'a>(value: &'a Json, what: &str) -> Result<&'a [(String, Json)], String> {
    match value {
        Json::Object(fields) => Ok(fields),
        other => Err(format!("{what}: expected an object, got {other:?}")),
    }
}

fn as_array<'a>(value: &'a Json, what: &str) -> Result<&'a [Json], String> {
    match value {
        Json::Array(items) => Ok(items),
        other => Err(format!("{what}: expected an array, got {other:?}")),
    }
}

fn as_f64(value: &Json, what: &str) -> Result<f64, String> {
    match value {
        Json::Number(n) => Ok(*n),
        other => Err(format!("{what}: expected a number, got {other:?}")),
    }
}

fn as_str<'a>(value: &'a Json, what: &str) -> Result<&'a str, String> {
    match value {
        Json::String(s) => Ok(s),
        other => Err(format!("{what}: expected a string, got {other:?}")),
    }
}

fn get_f64(fields: &[(String, Json)], key: &str) -> Result<f64, String> {
    as_f64(get(fields, key)?, key)
}

fn get_f64_or_neg_inf(fields: &[(String, Json)], key: &str) -> Result<f64, String> {
    match get(fields, key)? {
        Json::Null => Ok(f64::NEG_INFINITY),
        value => as_f64(value, key),
    }
}

fn get_u64(fields: &[(String, Json)], key: &str) -> Result<u64, String> {
    let n = get_f64(fields, key)?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("field {key:?}: expected a non-negative integer"));
    }
    Ok(n as u64)
}

fn get_bool(fields: &[(String, Json)], key: &str) -> Result<bool, String> {
    match get(fields, key)? {
        Json::Bool(b) => Ok(*b),
        other => Err(format!("field {key:?}: expected a bool, got {other:?}")),
    }
}

fn get_str(fields: &[(String, Json)], key: &str) -> Result<String, String> {
    as_str(get(fields, key)?, key).map(str::to_string)
}

fn parse_usize_array(value: &Json, what: &str) -> Result<Vec<usize>, String> {
    as_array(value, what)?
        .iter()
        .map(|v| as_f64(v, what).map(|n| n as usize))
        .collect()
}

fn parse_f64_array(value: &Json, what: &str) -> Result<Vec<f64>, String> {
    as_array(value, what)?
        .iter()
        .map(|v| as_f64(v, what))
        .collect()
}

fn parse_pair(value: &Json, what: &str) -> Result<(usize, f64), String> {
    let items = as_array(value, what)?;
    if items.len() != 2 {
        return Err(format!("{what}: expected a pair"));
    }
    Ok((as_f64(&items[0], what)? as usize, as_f64(&items[1], what)?))
}

fn parse_triple(value: &Json, what: &str) -> Result<(u64, u64, u64), String> {
    let items = as_array(value, what)?;
    if items.len() != 3 {
        return Err(format!("{what}: expected a triple"));
    }
    Ok((
        as_f64(&items[0], what)? as u64,
        as_f64(&items[1], what)? as u64,
        as_f64(&items[2], what)? as u64,
    ))
}

fn parse_rates(value: &Json, what: &str) -> Result<[f64; 4], String> {
    let items = parse_f64_array(value, what)?;
    items
        .try_into()
        .map_err(|_| format!("{what}: expected 4 rates"))
}

fn parse_overrides(value: &Json, what: &str) -> Result<Vec<(usize, [f64; 4])>, String> {
    as_array(value, what)?
        .iter()
        .map(|entry| {
            let items = as_array(entry, what)?;
            if items.len() != 2 {
                return Err(format!("{what}: expected [key, rates] entries"));
            }
            Ok((
                as_f64(&items[0], what)? as usize,
                parse_rates(&items[1], what)?,
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointDoc {
        CheckpointDoc {
            version: CHECKPOINT_VERSION,
            rng_state: [
                encode_u64(u64::MAX),
                encode_u64(1),
                encode_u64(0x9e37_79b9_7f4a_7c15),
                encode_u64(42),
            ],
            noise_var: 1e-3,
            delta: 0.1,
            step: 7,
            warmed_up: 2,
            rounds: 9,
            witness_digest: encode_u64(0xcbf2_9ce4_8422_2325),
            witness_rounds: 9,
            witness_top_k: 8,
            users: vec![UserCheckpoint {
                name: "vision-lab".into(),
                program: "{input: ...}".into(),
            }],
            tenants: vec![TenantCheckpoint {
                observations: vec![(0, 0.5), (3, 0.25 + 1e-17)],
                masked: vec![3],
                active: true,
            }],
            picker: PickerCheckpoint {
                rule: "max-gap".into(),
                patience: 10,
                frozen_rounds: 2,
                prev_candidates: vec![0, 1],
                prev_best_sum: f64::NEG_INFINITY,
                switched: false,
                rr_cursor: 0,
            },
            cluster: ClusterCheckpoint {
                device_free_at: vec![4.5],
                history: vec![RunCheckpoint {
                    user: 0,
                    model: 3,
                    cost: 4.5,
                    censored: true,
                    device: 0,
                    started_at: 0.0,
                    finished_at: 4.5,
                }],
            },
            retry_policy: RetryPolicyCheckpoint {
                max_retries: 2,
                backoff_cost: 0.1,
                backoff_factor: 2.0,
                quarantine_threshold: 3,
                probation_rounds: 25,
            },
            retry_counters: vec![(0, 3, 2)],
            retry_releases: vec![(30, 0, 3)],
            fault: Some(FaultCheckpoint {
                seed: encode_u64(u64::MAX - 1),
                rates: [0.1, 0.05, 0.01, 0.2],
                user_overrides: vec![(1, [0.0, 0.0, 0.0, 0.0])],
                arm_overrides: vec![],
                straggler_factor: 3.0,
                crash_cost_fraction: 0.5,
                timeout_factor: 2.0,
                attempts: vec![(0, 3, 5)],
            }),
        }
    }

    #[test]
    fn checkpoint_round_trips_exactly() {
        let doc = sample();
        let parsed = CheckpointDoc::from_json(&doc.to_json()).unwrap();
        assert_eq!(parsed, doc);
        // The -inf sentinel travelled through null and back.
        assert_eq!(parsed.picker.prev_best_sum, f64::NEG_INFINITY);
        // Full-range u64s survive the string encoding.
        assert_eq!(decode_u64(&parsed.rng_state[0]).unwrap(), u64::MAX);
    }

    #[test]
    fn no_fault_round_trips_as_null() {
        let mut doc = sample();
        doc.fault = None;
        let json = doc.to_json();
        assert!(json.contains("\"fault\":null"), "{json}");
        assert_eq!(CheckpointDoc::from_json(&json).unwrap(), doc);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut doc = sample();
        doc.version = CHECKPOINT_VERSION + 1;
        let err = CheckpointDoc::from_json(&doc.to_json()).unwrap_err();
        assert!(
            err.to_string().contains("unsupported checkpoint version"),
            "{err}"
        );
    }

    #[test]
    fn newer_version_is_a_typed_error_with_an_upgrade_hint() {
        let mut doc = sample();
        doc.version = 99;
        let err = CheckpointDoc::from_json(&doc.to_json()).unwrap_err();
        assert_eq!(
            err,
            CheckpointError::NewerVersion {
                found: 99,
                supported: CHECKPOINT_VERSION
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("unsupported checkpoint version 99"), "{msg}");
        assert!(msg.contains("upgrade easeml"), "{msg}");
    }

    #[test]
    fn older_version_is_a_typed_error() {
        let mut doc = sample();
        doc.version = 1;
        let err = CheckpointDoc::from_json(&doc.to_json()).unwrap_err();
        assert_eq!(
            err,
            CheckpointError::OlderVersion {
                found: 1,
                supported: CHECKPOINT_VERSION
            }
        );
        assert!(
            err.to_string().contains("unsupported checkpoint version 1"),
            "{err}"
        );
    }

    #[test]
    fn garbage_is_rejected_with_field_names() {
        assert!(CheckpointDoc::from_json("not json").is_err());
        assert!(CheckpointDoc::from_json("[]").is_err());
        let err =
            CheckpointDoc::from_json(&format!("{{\"version\":{CHECKPOINT_VERSION}}}")).unwrap_err();
        assert!(err.to_string().contains("rng_state"), "{err}");
    }

    fn scratch_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "easeml-ckpt-test-{}-{tag}.json",
            std::process::id()
        ))
    }

    #[test]
    fn atomic_write_round_trips_through_the_filesystem() {
        let path = scratch_path("atomic");
        let doc = sample();
        write_checkpoint_atomic(&path, &doc.to_json()).unwrap();
        // The temp sibling must not linger after the rename.
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!std::path::Path::new(&tmp).exists());
        assert_eq!(read_checkpoint_file(&path).unwrap(), doc);
        // Overwriting in place keeps the document readable.
        write_checkpoint_atomic(&path, &doc.to_json()).unwrap();
        assert_eq!(read_checkpoint_file(&path).unwrap(), doc);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_checkpoint_file_is_rejected_with_the_path() {
        let path = scratch_path("truncated");
        let doc = sample();
        write_checkpoint_atomic(&path, &doc.to_json()).unwrap();
        // Simulate a torn write from a non-atomic writer: cut the file.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = read_checkpoint_file(&path).unwrap_err();
        match &err {
            CheckpointError::Corrupt { path: p, .. } => {
                assert!(p.contains("easeml-ckpt-test"), "{err}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        assert!(err.to_string().contains("corrupt checkpoint"), "{err}");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_checkpoint_file_is_an_io_error() {
        let err = read_checkpoint_file(Path::new("/nonexistent/easeml-nope.json")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io { .. }), "{err:?}");
    }
}
