//! The simulated GPU pool.
//!
//! Ease.ml's execution strategy "is to use all its GPUs to train a single
//! model" (§2.1, revisited in §4.5 and §5.3.2's single- vs multi-device
//! discussion), so the default cluster is a single logical device that runs
//! one training job at a time, advancing a simulated clock by each job's
//! cost. A multi-device mode is provided as the §4.5 extension: jobs are
//! placed on the earliest-free device, modelling one-GPU-per-user
//! allocation.

/// A training run to execute: `(user, model, cost)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingRun {
    /// Tenant index.
    pub user: usize,
    /// Candidate-model index within the user's job.
    pub model: usize,
    /// Execution cost in simulated time units (GPU-hours).
    pub cost: f64,
    /// Whether the run failed and is charged as a *censored* observation:
    /// it occupies the device and bills the tenant, but produced no
    /// quality observation.
    pub censored: bool,
}

impl TrainingRun {
    /// A normal (to-be-observed) run.
    pub fn new(user: usize, model: usize, cost: f64) -> Self {
        TrainingRun {
            user,
            model,
            cost,
            censored: false,
        }
    }

    /// A censored run: a failed attempt whose consumed cost still occupies
    /// the cluster and bills the tenant.
    pub fn censored(user: usize, model: usize, cost: f64) -> Self {
        TrainingRun {
            user,
            model,
            cost,
            censored: true,
        }
    }
}

/// Record of a completed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedRun {
    /// The run that was executed.
    pub run: TrainingRun,
    /// Device that executed it.
    pub device: usize,
    /// Simulated time at which the run started.
    pub started_at: f64,
    /// Simulated time at which the run finished.
    pub finished_at: f64,
}

/// The simulated cluster: a set of devices with per-device clocks.
#[derive(Debug, Clone)]
pub struct Cluster {
    device_free_at: Vec<f64>,
    history: Vec<CompletedRun>,
    recorder: easeml_obs::RecorderHandle,
}

impl Cluster {
    /// The ease.ml default: the whole GPU pool as one logical device.
    pub fn single_device() -> Self {
        Self::with_devices(1)
    }

    /// A multi-device cluster (the §4.5 extension).
    ///
    /// # Panics
    ///
    /// Panics if `devices == 0`.
    pub fn with_devices(devices: usize) -> Self {
        assert!(devices > 0, "cluster needs at least one device");
        Cluster {
            device_free_at: vec![0.0; devices],
            history: Vec::new(),
            recorder: easeml_obs::RecorderHandle::noop(),
        }
    }

    /// Attaches an observability sink: each executed run bumps the
    /// `cluster/runs` counter and refreshes the `cluster/makespan` gauge.
    pub fn set_recorder(&mut self, recorder: easeml_obs::RecorderHandle) {
        self.recorder = recorder;
    }

    /// Number of devices.
    #[inline]
    pub fn num_devices(&self) -> usize {
        self.device_free_at.len()
    }

    /// Executes a run on the earliest-free device and returns its record.
    ///
    /// # Panics
    ///
    /// Panics if the run's cost is not strictly positive and finite: a NaN
    /// cost would otherwise poison the device clocks (and the
    /// `total_cmp`-based device selection would mask it), an infinite one
    /// would wedge the device forever.
    pub fn execute(&mut self, run: TrainingRun) -> CompletedRun {
        assert!(
            run.cost.is_finite() && run.cost > 0.0,
            "training cost must be positive and finite, got {}",
            run.cost
        );
        let device = self
            .device_free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("at least one device");
        let started_at = self.device_free_at[device];
        let finished_at = started_at + run.cost;
        self.device_free_at[device] = finished_at;
        let rec = CompletedRun {
            run,
            device,
            started_at,
            finished_at,
        };
        self.history.push(rec);
        self.recorder.count("cluster/runs", 1);
        self.recorder.gauge("cluster/makespan", self.makespan());
        rec
    }

    /// The simulated wall-clock: when the last-finishing device frees up.
    pub fn makespan(&self) -> f64 {
        self.device_free_at.iter().copied().fold(0.0, f64::max)
    }

    /// Total busy time across devices (equals makespan on one device).
    pub fn total_busy_time(&self) -> f64 {
        self.history.iter().map(|r| r.run.cost).sum()
    }

    /// All completed runs in execution order.
    pub fn history(&self) -> &[CompletedRun] {
        &self.history
    }

    /// Per-device free-at clocks (for checkpointing).
    pub fn device_free_at(&self) -> &[f64] {
        &self.device_free_at
    }

    /// Rebuilds a cluster from checkpointed state: per-device clocks plus
    /// the execution history. The recorder is not part of the state.
    ///
    /// # Panics
    ///
    /// Panics if `device_free_at` is empty.
    pub fn from_state(device_free_at: Vec<f64>, history: Vec<CompletedRun>) -> Self {
        assert!(
            !device_free_at.is_empty(),
            "cluster needs at least one device"
        );
        Cluster {
            device_free_at,
            history,
            recorder: easeml_obs::RecorderHandle::noop(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(user: usize, cost: f64) -> TrainingRun {
        TrainingRun::new(user, 0, cost)
    }

    #[test]
    fn single_device_serializes_runs() {
        let mut c = Cluster::single_device();
        let a = c.execute(run(0, 2.0));
        let b = c.execute(run(1, 3.0));
        assert_eq!(a.started_at, 0.0);
        assert_eq!(a.finished_at, 2.0);
        assert_eq!(b.started_at, 2.0, "second run waits for the first");
        assert_eq!(b.finished_at, 5.0);
        assert_eq!(c.makespan(), 5.0);
        assert_eq!(c.total_busy_time(), 5.0);
        assert_eq!(c.history().len(), 2);
    }

    #[test]
    fn multi_device_runs_in_parallel() {
        let mut c = Cluster::with_devices(2);
        c.execute(run(0, 4.0));
        let b = c.execute(run(1, 1.0));
        assert_eq!(b.device, 1);
        assert_eq!(b.started_at, 0.0, "second device was free");
        assert_eq!(c.makespan(), 4.0);
        assert_eq!(c.total_busy_time(), 5.0);
        // Third job lands on the earliest-free device (device 1, free at 1).
        let d = c.execute(run(2, 1.0));
        assert_eq!(d.device, 1);
        assert_eq!(d.started_at, 1.0);
    }

    #[test]
    fn single_device_returns_first_result_sooner_than_balanced_split() {
        // §5.3.2: with equal total GPU-time, the single-device strategy
        // returns *some* model faster. Two jobs of cost 4 each:
        // single-device finishes them at t=4 and t=8; two devices both at
        // t=4 — but with all GPUs on one job (modelled as halved cost on
        // the single pooled device), the first completes at t=2.
        let mut pooled = Cluster::single_device();
        let first = pooled.execute(run(0, 2.0)); // 4 GPU-hours over 2 GPUs
        assert!(first.finished_at < 4.0);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_panics() {
        let _ = Cluster::with_devices(0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cost_run_panics() {
        let mut c = Cluster::single_device();
        c.execute(run(0, 0.0));
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn nan_cost_run_panics() {
        // Regression: a NaN cost used to flow into the device clocks via
        // the `partial_cmp().unwrap()` device-selection path and poison
        // every later makespan; now it is rejected up front.
        let mut c = Cluster::single_device();
        c.execute(run(0, f64::NAN));
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn infinite_cost_run_panics() {
        let mut c = Cluster::single_device();
        c.execute(run(0, f64::INFINITY));
    }

    #[test]
    fn censored_runs_occupy_the_device_and_bill_the_tenant() {
        let mut c = Cluster::single_device();
        c.execute(run(0, 2.0));
        let crash = c.execute(TrainingRun::censored(0, 1, 3.0));
        assert!(crash.run.censored);
        assert_eq!(crash.started_at, 2.0);
        assert_eq!(c.makespan(), 5.0);
        assert_eq!(c.total_busy_time(), 5.0);
    }

    #[test]
    fn from_state_resumes_the_clocks_and_history() {
        let mut c = Cluster::with_devices(2);
        c.execute(run(0, 4.0));
        c.execute(run(1, 1.0));
        let resumed = {
            let mut r = Cluster::from_state(c.device_free_at().to_vec(), c.history().to_vec());
            r.execute(run(2, 1.0));
            r
        };
        c.execute(run(2, 1.0));
        assert_eq!(resumed.device_free_at(), c.device_free_at());
        assert_eq!(resumed.history(), c.history());
    }
}
