//! The [`Durability`] handle: WAL appends behind a noop-by-default facade,
//! plus the replay plan recovery builds from a log suffix.
//!
//! Mirrors the observability recorder's zero-overhead pattern
//! ([`RecorderHandle`]): the handle wraps `Option<Arc<…>>`, every append
//! takes a *closure* so the disabled path neither encodes nor locks, and
//! attaching durability is one `set_durability` call on the server or exec
//! engine. Recovery is the inverse: [`EaseMl::recover`](crate::server::EaseMl::recover)
//! loads the latest checkpoint, parses the WAL suffix into per-round
//! replay plans, re-executes each round with the logged outcomes
//! substituted for the oracle, and asserts the rolling witness digest and
//! RNG words against every logged commit — bit-exact or it refuses.

use crate::fault::TrainingError;
use crate::server::TrainingOutcome;
use easeml_obs::{Component, Histogram, RecorderHandle};
use easeml_wal::{
    CrashPoint, DurableEvent, ReadRecord, WalLog, WalOptions, WalWriter, KIND_CRASH, KIND_TIMEOUT,
};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Maps a [`TrainingError`] to its WAL censor-kind code.
pub(crate) fn censor_kind(error: &TrainingError) -> u8 {
    match error {
        TrainingError::Crash { .. } => KIND_CRASH,
        TrainingError::Timeout { .. } => KIND_TIMEOUT,
        TrainingError::InvalidQuality => easeml_wal::KIND_INVALID,
    }
}

/// One logged attempt outcome, queued for substitution during replay.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ReplayAttempt {
    /// The attempt resolved with a valid observation.
    Resolved { accuracy: f64, cost: f64 },
    /// The attempt was censored with this pre-backoff charge.
    Censored { charge: f64, kind: u8 },
}

impl ReplayAttempt {
    /// Reconstructs the post-validation result the live path produced.
    pub(crate) fn into_result(self) -> Result<TrainingOutcome, (TrainingError, f64)> {
        match self {
            ReplayAttempt::Resolved { accuracy, cost } => Ok(TrainingOutcome { accuracy, cost }),
            ReplayAttempt::Censored { charge, kind } => {
                let error = match kind {
                    KIND_CRASH => TrainingError::Crash {
                        cost_consumed: charge,
                    },
                    KIND_TIMEOUT => TrainingError::Timeout { deadline: charge },
                    _ => TrainingError::InvalidQuality,
                };
                Err((error, charge))
            }
        }
    }
}

/// The commit record a replayed round is asserted against.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CommitRecord {
    pub round: u64,
    pub user: u64,
    pub arm: u64,
    pub censored: bool,
    pub digest: u64,
    pub rng: [u64; 4],
}

/// A tenant-lifecycle mutation parsed out of the WAL suffix.
///
/// Unlike quarantine/probation transitions, lifecycle changes are *not*
/// derived state: a join that postdates the checkpoint must re-register
/// the tenant before its rounds replay, and a retirement must re-hide the
/// tenant from the pickers. Both are applied idempotently — the restored
/// checkpoint may already cover them when the event's round coincides
/// with the checkpoint boundary.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum LifecycleAction {
    /// Re-register a tenant under slot `user` with `arms` candidate models.
    Join {
        user: u64,
        arms: u64,
        name: String,
        program: String,
    },
    /// Re-apply a retirement of slot `user`.
    Retire { user: u64 },
}

/// One fully-committed round parsed out of the WAL suffix.
#[derive(Debug, Clone)]
pub(crate) struct ReplayRound {
    /// Lifecycle mutations logged after the previous commit and before
    /// this round — applied first, so the round sees the tenancy it ran
    /// under.
    pub lifecycle: Vec<LifecycleAction>,
    pub attempts: VecDeque<ReplayAttempt>,
    pub commit: CommitRecord,
}

/// A parsed replay plan.
#[derive(Debug, Clone)]
pub(crate) struct ReplayPlan {
    /// Committed rounds to replay, in order.
    pub rounds: Vec<ReplayRound>,
    /// Records skipped as already covered by the checkpoint.
    pub skipped: u64,
    /// `(segment, end_offset)` of the last committed record — the
    /// truncation point that drops every uncommitted byte after it.
    pub cut: Option<(u64, u64)>,
    /// Lifecycle mutations logged after the last commit: durable tenancy
    /// changes with no round behind them yet, re-applied after replay.
    pub tail: Vec<LifecycleAction>,
}

/// Parses a serial-simulator WAL into a replay plan.
///
/// Rounds below `from_rounds` are already covered by the checkpoint and
/// are skipped; rounds at or above it must appear gap-free.
pub(crate) fn plan_replay(log: &WalLog, from_rounds: u64) -> Result<ReplayPlan, String> {
    let mut plan: Vec<ReplayRound> = Vec::new();
    let mut attempts: VecDeque<ReplayAttempt> = VecDeque::new();
    let mut lifecycle: Vec<LifecycleAction> = Vec::new();
    let mut skipped = 0u64;
    let mut cut: Option<(u64, u64)> = None;
    let mark = |rec: &ReadRecord| Some((rec.segment, rec.end_offset));
    for rec in &log.records {
        let event = DurableEvent::decode(&rec.payload)
            .map_err(|e| format!("undecodable WAL record (CRC passed): {e}"))?;
        match event {
            DurableEvent::RoundStart { round } => {
                if round >= from_rounds {
                    attempts.clear();
                } else {
                    skipped += 1;
                }
            }
            DurableEvent::ObservationResolved {
                round,
                accuracy,
                cost,
                ..
            } => {
                if round >= from_rounds {
                    attempts.push_back(ReplayAttempt::Resolved { accuracy, cost });
                } else {
                    skipped += 1;
                }
            }
            DurableEvent::ObservationCensored {
                round,
                charge,
                kind,
                ..
            } => {
                if round >= from_rounds {
                    attempts.push_back(ReplayAttempt::Censored { charge, kind });
                } else {
                    skipped += 1;
                }
            }
            // Quarantine/probation transitions are *derived* state: replay
            // recomputes them from the attempt outcomes, so they carry no
            // replay payload — they exist for reports and audits.
            DurableEvent::ArmQuarantined { .. } | DurableEvent::ProbationRelease { .. } => {}
            DurableEvent::RoundCommit {
                round,
                user,
                arm,
                censored,
                digest,
                rng,
            } => {
                if round < from_rounds {
                    skipped += 1;
                    attempts.clear();
                } else {
                    let expected = from_rounds + plan.len() as u64;
                    if round != expected {
                        return Err(format!(
                            "WAL round gap: commit for round {round}, expected {expected}"
                        ));
                    }
                    plan.push(ReplayRound {
                        lifecycle: std::mem::take(&mut lifecycle),
                        attempts: std::mem::take(&mut attempts),
                        commit: CommitRecord {
                            round,
                            user,
                            arm,
                            censored,
                            digest,
                            rng,
                        },
                    });
                }
                // Committed data always advances the cut, pre-checkpoint
                // or not — it must survive truncation.
                cut = mark(rec);
            }
            DurableEvent::CheckpointMark { .. } => {
                attempts.clear();
                cut = mark(rec);
            }
            // Lifecycle mutations are durable the moment they are logged
            // (there is no round-commit barrier behind a join), so they
            // always advance the cut; pre-checkpoint ones are already in
            // the checkpoint document and only count as skipped.
            DurableEvent::TenantJoined {
                round,
                user,
                arms,
                name,
                program,
            } => {
                if round >= from_rounds {
                    lifecycle.push(LifecycleAction::Join {
                        user,
                        arms,
                        name,
                        program,
                    });
                } else {
                    skipped += 1;
                }
                cut = mark(rec);
            }
            DurableEvent::TenantRetired { round, user } => {
                if round >= from_rounds {
                    lifecycle.push(LifecycleAction::Retire { user });
                } else {
                    skipped += 1;
                }
                cut = mark(rec);
            }
            DurableEvent::ExecDispatch { .. } | DurableEvent::ExecCompletion { .. } => {
                return Err("exec-engine records in a serial-simulator WAL".into());
            }
        }
    }
    Ok(ReplayPlan {
        rounds: plan,
        skipped,
        cut,
        tail: lifecycle,
    })
}

/// What [`EaseMl::recover`](crate::server::EaseMl::recover) did.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Rounds restored from the checkpoint document.
    pub checkpoint_rounds: u64,
    /// Committed rounds replayed from the WAL suffix.
    pub replayed_rounds: u64,
    /// WAL records skipped as already covered by the checkpoint.
    pub skipped_records: u64,
    /// Uncommitted records dropped (truncated) after the last commit.
    pub dropped_records: u64,
    /// Torn tail found in the log, if any (reason and location).
    pub torn_tail: Option<String>,
    /// Total rounds after recovery (checkpoint + replay).
    pub final_rounds: u64,
    /// Rolling witness digest after recovery, 16 hex chars.
    pub final_digest: String,
    /// Wall time spent replaying, in nanoseconds.
    pub replay_ns: u64,
}

struct DurabilityInner {
    writer: WalWriter,
    append_ns: Histogram,
    append_bytes: u64,
    replayed_records: u64,
    replay_ns: u64,
    last_checkpoint_rounds: u64,
    last_error: Option<String>,
    recorder: RecorderHandle,
}

impl DurabilityInner {
    fn note_io<T>(&mut self, result: io::Result<T>) -> Option<T> {
        match result {
            Ok(value) => Some(value),
            Err(e) => {
                self.last_error = Some(e.to_string());
                None
            }
        }
    }
}

/// Cheap, cloneable handle to an optional WAL writer.
///
/// The default handle is disabled and costs one branch per append — the
/// event closure is never invoked, nothing locks, nothing encodes — the
/// same zero-overhead contract as [`RecorderHandle::noop`]. I/O errors on
/// the hot path are recorded in the stats rather than propagated: losing
/// the WAL degrades durability, not scheduling.
#[derive(Clone, Default)]
pub struct Durability {
    inner: Option<Arc<Mutex<DurabilityInner>>>,
}

impl Durability {
    /// The disabled handle (same as `Default`).
    pub fn noop() -> Self {
        Durability { inner: None }
    }

    /// Opens (or resumes) the WAL in `dir` for appending.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the open/repair scan.
    pub fn open(dir: &Path, options: WalOptions) -> io::Result<Self> {
        let writer = WalWriter::open(dir, options)?;
        Ok(Durability {
            inner: Some(Arc::new(Mutex::new(DurabilityInner {
                writer,
                append_ns: Histogram::new(),
                append_bytes: 0,
                replayed_records: 0,
                replay_ns: 0,
                last_checkpoint_rounds: 0,
                last_error: None,
                recorder: RecorderHandle::noop(),
            }))),
        })
    }

    /// Whether a WAL is attached.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Routes append/fsync timings and counters to `recorder`.
    pub fn set_recorder(&self, recorder: RecorderHandle) {
        if let Some(inner) = &self.inner {
            inner.lock().recorder = recorder;
        }
    }

    /// Appends the event built by `make`, which is only called when a WAL
    /// is attached — pass a closure so the disabled path stays free.
    pub fn append<F: FnOnce() -> DurableEvent>(&self, make: F) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.lock();
            let payload = make().encode();
            let start = Instant::now();
            let outcome = inner.writer.append(&payload);
            let nanos = start.elapsed().as_nanos() as u64;
            if let Some(outcome) = inner.note_io(outcome) {
                inner.append_bytes += outcome.bytes;
                inner.append_ns.record(nanos);
                if let Some(recorder) = inner.recorder.recorder().cloned() {
                    recorder.record_timing(Component::WalAppend, nanos);
                    recorder.add_counter("wal/appends", 1);
                    if outcome.synced {
                        recorder.add_counter("wal/fsyncs", 1);
                    }
                }
            }
        }
    }

    /// Forces an fsync of the current segment.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.lock();
            let start = Instant::now();
            let result = inner.writer.sync();
            let nanos = start.elapsed().as_nanos() as u64;
            if inner.note_io(result).is_some() {
                if let Some(recorder) = inner.recorder.recorder().cloned() {
                    recorder.record_timing(Component::WalFsync, nanos);
                    recorder.add_counter("wal/fsyncs", 1);
                }
            }
        }
    }

    /// Checkpoint barrier: seals the current segment, deletes sealed
    /// segments made redundant by the checkpoint, then logs a
    /// [`DurableEvent::CheckpointMark`] and syncs it. Call *after* the
    /// checkpoint document is durably on disk.
    pub fn mark_checkpoint(&self, rounds: u64, digest: u64) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.lock();
            let start = Instant::now();
            let result = inner
                .writer
                .rotate()
                .and_then(|()| inner.writer.compact())
                .and_then(|removed| {
                    let payload = DurableEvent::CheckpointMark { rounds, digest }.encode();
                    inner.writer.append(&payload)?;
                    inner.writer.sync()?;
                    Ok(removed)
                });
            let nanos = start.elapsed().as_nanos() as u64;
            if let Some(removed) = inner.note_io(result) {
                inner.last_checkpoint_rounds = rounds;
                if let Some(recorder) = inner.recorder.recorder().cloned() {
                    recorder.record_timing(Component::WalFsync, nanos);
                    recorder.add_counter("wal/checkpoint-marks", 1);
                    recorder.add_counter("wal/segments-compacted", removed as u64);
                }
            }
        }
    }

    /// Folds a finished recovery into the stats (and the recorder's
    /// `wal/replay` timing), so `/durability` shows what replay cost.
    pub fn record_replay(&self, report: &RecoveryReport) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.lock();
            inner.replayed_records += report.replayed_rounds;
            inner.replay_ns += report.replay_ns;
            if let Some(recorder) = inner.recorder.recorder().cloned() {
                recorder.record_timing(Component::WalReplay, report.replay_ns);
                recorder.add_counter("wal/replayed-rounds", report.replayed_rounds);
            }
        }
    }

    /// Arms (or disarms) a deterministic crash point on the write path —
    /// test harness hook.
    pub fn set_crash_point(&self, crash: Option<CrashPoint>) {
        if let Some(inner) = &self.inner {
            inner.lock().writer.set_crash_point(crash);
        }
    }

    /// Whether an armed crash point has fired and silenced the writer.
    pub fn is_dead(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|inner| inner.lock().writer.is_dead())
    }

    /// Global bytes appended across the log's lifetime (crash-sweep hook).
    pub fn stream_offset(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.lock().writer.stream_offset())
    }

    /// Durability counters as one JSON object — the `/durability` section
    /// of the telemetry hub.
    pub fn stats_json(&self) -> String {
        let Some(inner) = &self.inner else {
            return "{\"enabled\":false}".to_string();
        };
        let inner = inner.lock();
        let last_error = match &inner.last_error {
            Some(e) => format!("{:?}", e),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"enabled\":true,\"appends\":{},\"append_bytes\":{},",
                "\"fsyncs\":{},\"rotations\":{},\"segment_index\":{},",
                "\"stream_offset\":{},\"append_p50_ns\":{},",
                "\"append_p95_ns\":{},\"append_max_ns\":{},",
                "\"replayed_rounds\":{},\"replay_ns\":{},",
                "\"last_checkpoint_rounds\":{},\"last_error\":{}}}"
            ),
            inner.writer.appends(),
            inner.append_bytes,
            inner.writer.fsyncs(),
            inner.writer.rotations(),
            inner.writer.segment_index(),
            inner.writer.stream_offset(),
            inner.append_ns.quantile_ns(0.5) as u64,
            inner.append_ns.quantile_ns(0.95) as u64,
            inner.append_ns.max_ns(),
            inner.replayed_records,
            inner.replay_ns,
            inner.last_checkpoint_rounds,
            last_error,
        )
    }
}

impl std::fmt::Debug for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Durability")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeml_wal::FsyncPolicy;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "easeml-durability-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn noop_handle_never_invokes_the_closure() {
        let d = Durability::noop();
        assert!(!d.is_enabled());
        d.append(|| panic!("closure must not run on a disabled handle"));
        d.flush();
        d.mark_checkpoint(3, 7);
        assert_eq!(d.stats_json(), "{\"enabled\":false}");
    }

    #[test]
    fn append_and_checkpoint_roundtrip_through_the_log() {
        let dir = scratch_dir("roundtrip");
        let d = Durability::open(
            &dir,
            WalOptions {
                segment_bytes: 4096,
                fsync: FsyncPolicy::Never,
            },
        )
        .unwrap();
        d.append(|| DurableEvent::RoundStart { round: 0 });
        d.append(|| DurableEvent::RoundCommit {
            round: 0,
            user: 1,
            arm: 2,
            censored: false,
            digest: 42,
            rng: [1, 2, 3, 4],
        });
        d.mark_checkpoint(1, 42);
        let log = easeml_wal::read_log(&dir).unwrap();
        // After the checkpoint barrier only the fresh segment (holding the
        // mark) remains: the earlier segment was sealed and compacted.
        assert_eq!(log.segments.len(), 1);
        assert_eq!(log.records.len(), 1);
        let event = DurableEvent::decode(&log.records[0].payload).unwrap();
        assert_eq!(
            event,
            DurableEvent::CheckpointMark {
                rounds: 1,
                digest: 42
            }
        );
        let stats = d.stats_json();
        assert!(stats.contains("\"enabled\":true"), "{stats}");
        assert!(stats.contains("\"last_checkpoint_rounds\":1"), "{stats}");
        assert!(stats.contains("\"last_error\":null"), "{stats}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_plan_splits_committed_from_uncommitted() {
        let dir = scratch_dir("plan");
        let d = Durability::open(&dir, WalOptions::default()).unwrap();
        // Round 5 commits (one censored attempt then success); round 6 has
        // a dangling attempt with no commit — lost on recovery.
        d.append(|| DurableEvent::RoundStart { round: 5 });
        d.append(|| DurableEvent::ObservationCensored {
            round: 5,
            user: 0,
            arm: 1,
            charge: 0.25,
            kind: KIND_TIMEOUT,
        });
        d.append(|| DurableEvent::ObservationResolved {
            round: 5,
            user: 0,
            arm: 2,
            accuracy: 0.75,
            cost: 1.0,
        });
        d.append(|| DurableEvent::RoundCommit {
            round: 5,
            user: 0,
            arm: 2,
            censored: false,
            digest: 99,
            rng: [4, 3, 2, 1],
        });
        d.append(|| DurableEvent::RoundStart { round: 6 });
        d.append(|| DurableEvent::ObservationResolved {
            round: 6,
            user: 1,
            arm: 0,
            accuracy: 0.5,
            cost: 2.0,
        });
        d.flush();
        let log = easeml_wal::read_log(&dir).unwrap();
        let plan = plan_replay(&log, 5).unwrap();
        assert_eq!(plan.skipped, 0);
        assert_eq!(plan.rounds.len(), 1);
        assert_eq!(plan.rounds[0].commit.round, 5);
        assert_eq!(plan.rounds[0].attempts.len(), 2);
        assert!(plan.rounds[0].lifecycle.is_empty());
        assert!(plan.tail.is_empty());
        assert_eq!(
            plan.rounds[0].attempts[0],
            ReplayAttempt::Censored {
                charge: 0.25,
                kind: KIND_TIMEOUT
            }
        );
        // The cut sits at the commit record: the round-6 records fall.
        let cut = plan.cut.unwrap();
        assert_eq!(
            (log.records[3].segment, log.records[3].end_offset),
            cut,
            "cut must be the commit's end offset"
        );
        // Replaying from round 6 instead skips round 5 as pre-checkpoint.
        let plan6 = plan_replay(&log, 6).unwrap();
        assert!(plan6.rounds.is_empty());
        assert_eq!(plan6.skipped, 4);
        // A gap (commit for a later round than expected) is rejected.
        assert!(plan_replay(&log, 4).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_plan_threads_lifecycle_events_through_rounds() {
        let dir = scratch_dir("lifecycle");
        let d = Durability::open(&dir, WalOptions::default()).unwrap();
        // A join before round 3, the round itself, then a retirement with
        // no round behind it yet — the retirement lands in the tail and
        // advances the cut past the dangling round-4 start.
        d.append(|| DurableEvent::TenantJoined {
            round: 3,
            user: 2,
            arms: 4,
            name: "tenant-c".into(),
            program: "{input: {[Tensor[8]], []}, output: {[Tensor[2]], []}}".into(),
        });
        d.append(|| DurableEvent::RoundStart { round: 3 });
        d.append(|| DurableEvent::ObservationResolved {
            round: 3,
            user: 2,
            arm: 1,
            accuracy: 0.6,
            cost: 1.0,
        });
        d.append(|| DurableEvent::RoundCommit {
            round: 3,
            user: 2,
            arm: 1,
            censored: false,
            digest: 7,
            rng: [1, 2, 3, 4],
        });
        d.append(|| DurableEvent::TenantRetired { round: 4, user: 0 });
        d.append(|| DurableEvent::RoundStart { round: 4 });
        d.flush();
        let log = easeml_wal::read_log(&dir).unwrap();
        let plan = plan_replay(&log, 3).unwrap();
        assert_eq!(plan.rounds.len(), 1);
        assert_eq!(
            plan.rounds[0].lifecycle,
            vec![LifecycleAction::Join {
                user: 2,
                arms: 4,
                name: "tenant-c".into(),
                program: "{input: {[Tensor[8]], []}, output: {[Tensor[2]], []}}".into(),
            }]
        );
        assert_eq!(plan.tail, vec![LifecycleAction::Retire { user: 0 }]);
        // The retirement is durable: the cut sits at its record, not the
        // earlier commit, so truncation only drops the dangling start.
        let cut = plan.cut.unwrap();
        assert_eq!((log.records[4].segment, log.records[4].end_offset), cut);
        // Replayed from a checkpoint past round 3, both lifecycle events
        // with pre-checkpoint rounds are skipped; the tail retirement
        // (round 4 >= 4) still applies.
        let plan4 = plan_replay(&log, 4).unwrap();
        assert!(plan4.rounds.is_empty());
        assert_eq!(plan4.tail, vec![LifecycleAction::Retire { user: 0 }]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
