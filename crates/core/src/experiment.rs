//! The repeated train/test experiment protocol (§5.2, Appendix A).
//!
//! Each repetition: randomly split the dataset's users into train/test;
//! build the empirical model-similarity prior from the training users'
//! quality vectors; tune the GP hyperparameters by maximizing the log
//! marginal likelihood of the training rows ("as in scikit-learn"); then
//! run the scheduler on the test users under the configured budget. Results
//! are resampled onto a common grid and aggregated into average and
//! worst-case accuracy-loss curves.

use crate::metrics::AggregatedCurves;
use crate::sim::{simulate, SchedulerKind, SimConfig, SimTrace};
use easeml_data::{model_quality_features, Dataset, TrainTestSplit};
use easeml_gp::{ArmPrior, TuneGrid};
use easeml_linalg::{vec_ops, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How the exploration budget of a run is expressed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Budget {
    /// Fraction of the *number of all (test user, model) pairs*: the
    /// cost-oblivious protocol (§5.3.1 runs 50% of all models; the x-axis
    /// is "% of runs"). Schedulers ignore costs and every run costs 1.
    FractionOfRuns(f64),
    /// Fraction of the *total runtime of all (test user, model) pairs*:
    /// the cost-aware protocol (§5.2 runs 10% of total runtime; the x-axis
    /// is "% of total cost"). Schedulers see real costs.
    FractionOfCost(f64),
}

impl Budget {
    fn fraction(self) -> f64 {
        match self {
            Budget::FractionOfRuns(f) | Budget::FractionOfCost(f) => f,
        }
    }
}

/// Configuration of one experiment (one dataset × one scheduler).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Number of users sampled into the test set each repetition (the
    /// paper uses 10).
    pub test_users: usize,
    /// Number of repetitions with different random splits (the paper
    /// uses 50).
    pub repetitions: usize,
    /// The exploration budget.
    pub budget: Budget,
    /// Override the cost-awareness implied by the budget kind — used by the
    /// Figure-13 lesion, which spends real costs but schedules as if
    /// `c ≡ 1`.
    pub cost_aware_override: Option<bool>,
    /// Keep only this fraction of the training users when building the
    /// kernel (Figure 14's 10% / 50% / 100% knob).
    pub train_fraction: f64,
    /// Hyperparameter grid for the LML tuner.
    pub tune_grid: TuneGrid,
    /// How many training users' rows enter the LML objective (capped for
    /// speed; the paper does not specify).
    pub tune_rows: usize,
    /// Number of points on the output grid.
    pub grid_points: usize,
    /// δ for the β schedules.
    pub delta: f64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            test_users: 10,
            repetitions: 50,
            budget: Budget::FractionOfCost(0.10),
            cost_aware_override: None,
            train_fraction: 1.0,
            tune_grid: TuneGrid {
                scales: vec![0.3, 1.0, 3.0],
                noises: vec![1e-4, 1e-3, 1e-2],
            },
            tune_rows: 4,
            grid_points: 101,
            delta: 0.1,
        }
    }
}

/// The outcome of an experiment: aggregated curves plus per-repetition
/// summaries.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Scheduler that was evaluated.
    pub scheduler: SchedulerKind,
    /// Dataset name.
    pub dataset: String,
    /// Budget percentages (0–100).
    pub grid_pct: Vec<f64>,
    /// Mean accuracy loss across repetitions at each grid point.
    pub mean_curve: Vec<f64>,
    /// Worst-case accuracy loss across repetitions at each grid point.
    pub worst_curve: Vec<f64>,
    /// Final mean loss of each repetition.
    pub final_losses: Vec<f64>,
    /// Mean number of training runs executed per repetition.
    pub mean_rounds: f64,
}

/// Builds the empirical prior for the test users of one split, following
/// the paper's Appendix A: each model's feature is its *quality vector* on
/// the training users, the prior mean is the scalar global mean quality
/// (the "μ = 0 after centering" convention), and the prior covariance is
/// the Gram matrix of the globally-centered quality vectors — "the
/// performance of a model on other users' data sets defines the similarity
/// between models" (§5.3.2).
///
/// Keeping the mean scalar is essential: per-model skill must be encoded in
/// the *covariance*, so that the value of the kernel — and hence of more
/// training users (Figure 14) — is visible to the scheduler.
pub fn empirical_prior(dataset: &Dataset, train_users: &[usize]) -> (Vec<f64>, Matrix) {
    let features = model_quality_features(dataset, train_users);
    let k = features.len();
    let t = train_users.len() as f64;
    let global_mean = vec_ops::mean(
        &features
            .iter()
            .map(|f| vec_ops::mean(f))
            .collect::<Vec<_>>(),
    );
    // Second-moment Gram about the global mean: exactly PSD, and it keeps
    // per-model mean offsets inside the covariance.
    let centered: Vec<Vec<f64>> = features
        .iter()
        .map(|f| f.iter().map(|&q| q - global_mean).collect())
        .collect();
    let mut cov = Matrix::zeros(k, k);
    for a in 0..k {
        for b in a..k {
            let v = vec_ops::dot(&centered[a], &centered[b]) / t;
            cov[(a, b)] = v;
            cov[(b, a)] = v;
        }
    }
    // Ridge so single-user splits and duplicated models stay factorable.
    let mean_diag = vec_ops::mean(&cov.diag()).max(1e-6);
    cov.add_diag_mut(1e-3 * mean_diag);
    (vec![global_mean; k], cov)
}

/// Runs the full repeated protocol for one scheduler on one dataset.
///
/// The same `seed` yields the same splits across scheduler kinds, so
/// comparisons are paired (the paper's protocol: all strategies run on the
/// same 50 random splits).
///
/// # Panics
///
/// Panics on nonsensical configurations (no test users, more test users
/// than the dataset has, zero repetitions).
pub fn run_experiment(
    dataset: &Dataset,
    scheduler: SchedulerKind,
    cfg: &ExperimentConfig,
    seed: u64,
) -> ExperimentResult {
    assert!(cfg.repetitions > 0, "need at least one repetition");
    assert!(
        cfg.test_users > 0 && cfg.test_users < dataset.num_users(),
        "test_users must leave at least one training user"
    );

    let cost_aware = cfg
        .cost_aware_override
        .unwrap_or(matches!(cfg.budget, Budget::FractionOfCost(_)));

    let mut traces: Vec<SimTrace> = Vec::with_capacity(cfg.repetitions);
    for rep in 0..cfg.repetitions {
        // One RNG for the split (shared across schedulers via the seed),
        // one for the scheduler's stochastic choices.
        let mut split_rng = StdRng::seed_from_u64(seed.wrapping_add(rep as u64));
        let mut sim_rng = StdRng::seed_from_u64(seed ^ 0x5EED_0000 ^ (rep as u64) << 16);

        let split = TrainTestSplit::random(dataset.num_users(), cfg.test_users, &mut split_rng)
            .truncate_train(cfg.train_fraction);
        let test = dataset.select_users(&split.test_users);
        let test = match cfg.budget {
            Budget::FractionOfRuns(_) => test.unit_cost_view(),
            Budget::FractionOfCost(_) => test,
        };

        let budget = match cfg.budget {
            Budget::FractionOfRuns(_) => {
                (test.num_users() * test.num_models()) as f64 * cfg.budget.fraction()
            }
            Budget::FractionOfCost(_) => test.total_cost() * cfg.budget.fraction(),
        };

        // Heuristic schedulers need no prior.
        let (priors, noise_var) = if matches!(
            scheduler,
            SchedulerKind::MostCited | SchedulerKind::MostRecent
        ) {
            (Vec::new(), 1e-3)
        } else {
            let (means, cov) = empirical_prior(dataset, &split.train_users);
            let (scale, noise) = tune_prior(dataset, &split.train_users, &means, &cov, cfg);
            let prior = ArmPrior::from_gram(cov.scaled(scale)).with_mean(means);
            (vec![prior; test.num_users()], noise)
        };

        let sim_cfg = SimConfig {
            budget,
            cost_aware,
            noise_var,
            delta: cfg.delta,
            fault: None,
        };
        traces.push(simulate(&test, &priors, scheduler, &sim_cfg, &mut sim_rng));
    }

    let agg = AggregatedCurves::from_traces(&traces, cfg.grid_points);
    ExperimentResult {
        scheduler,
        dataset: dataset.name().to_string(),
        grid_pct: agg.grid_pct,
        mean_curve: agg.mean,
        worst_curve: agg.worst,
        final_losses: traces
            .iter()
            .map(|t| vec_ops::mean(&t.final_losses))
            .collect(),
        mean_rounds: vec_ops::mean(&traces.iter().map(|t| t.rounds as f64).collect::<Vec<_>>()),
    }
}

/// Tunes (scale, noise) by summing the LML over up to `tune_rows` training
/// users' full quality rows.
fn tune_prior(
    dataset: &Dataset,
    train_users: &[usize],
    means: &[f64],
    cov: &Matrix,
    cfg: &ExperimentConfig,
) -> (f64, f64) {
    let rows = train_users.len().min(cfg.tune_rows);
    if rows == 0 {
        return (1.0, 1e-3);
    }
    // Concatenate the first `rows` users' observations; arms repeat across
    // users, which the LML handles as replicated noisy draws.
    let mut best = (1.0, 1e-3, f64::NEG_INFINITY);
    for &scale in &cfg.tune_grid.scales {
        let prior = ArmPrior::from_gram(cov.scaled(scale)).with_mean(means.to_vec());
        for &noise in &cfg.tune_grid.noises {
            let mut total = 0.0;
            for &u in &train_users[..rows] {
                let obs: Vec<(usize, f64)> = (0..dataset.num_models())
                    .map(|j| (j, dataset.quality(u, j)))
                    .collect();
                total += easeml_gp::mll::log_marginal_likelihood(&prior, noise, &obs);
            }
            if total > best.2 {
                best = (scale, noise, total);
            }
        }
    }
    (best.0, best.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeml_data::SynConfig;

    fn tiny_dataset() -> Dataset {
        SynConfig {
            num_users: 10,
            num_models: 5,
            ..SynConfig::paper(0.5, 0.5)
        }
        .generate(4)
    }

    fn quick_cfg(budget: Budget) -> ExperimentConfig {
        ExperimentConfig {
            test_users: 3,
            repetitions: 3,
            budget,
            tune_grid: TuneGrid {
                scales: vec![1.0],
                noises: vec![1e-3],
            },
            grid_points: 21,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn empirical_prior_shapes_and_psd() {
        let d = tiny_dataset();
        let (means, cov) = empirical_prior(&d, &[0, 1, 2, 3]);
        assert_eq!(means.len(), 5);
        assert_eq!(cov.shape(), (5, 5));
        assert!(cov.is_symmetric(1e-12));
        // Sample covariance + ridge is PSD: factorable with tiny jitter.
        assert!(easeml_linalg::Cholesky::factor_with_jitter(&cov, 1e-10, 8).is_ok());
        // Means are plausible qualities.
        assert!(means.iter().all(|&m| (0.0..=1.0).contains(&m)));
    }

    #[test]
    fn single_training_user_does_not_crash() {
        let d = tiny_dataset();
        let (_, cov) = empirical_prior(&d, &[7]);
        assert!(easeml_linalg::Cholesky::factor_with_jitter(&cov, 1e-10, 8).is_ok());
    }

    #[test]
    fn cost_oblivious_experiment_runs() {
        let d = tiny_dataset();
        let r = run_experiment(
            &d,
            SchedulerKind::RoundRobin,
            &quick_cfg(Budget::FractionOfRuns(0.5)),
            42,
        );
        assert_eq!(r.grid_pct.len(), 21);
        assert_eq!(r.mean_curve.len(), 21);
        assert_eq!(r.final_losses.len(), 3);
        // ~50% of 3×5 = 7.5 runs per repetition.
        assert!(
            r.mean_rounds >= 7.0 && r.mean_rounds <= 9.0,
            "{}",
            r.mean_rounds
        );
        // Curves are non-increasing.
        for w in r.mean_curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
        // Worst dominates mean.
        for (m, w) in r.mean_curve.iter().zip(&r.worst_curve) {
            assert!(w + 1e-12 >= *m);
        }
    }

    #[test]
    fn cost_aware_experiment_runs() {
        let d = tiny_dataset();
        let r = run_experiment(
            &d,
            SchedulerKind::EaseMl,
            &quick_cfg(Budget::FractionOfCost(0.3)),
            42,
        );
        assert!(r.mean_curve[0] >= r.mean_curve[r.mean_curve.len() - 1]);
        assert_eq!(r.dataset, d.name());
    }

    #[test]
    fn same_seed_is_reproducible() {
        let d = tiny_dataset();
        let cfg = quick_cfg(Budget::FractionOfRuns(0.4));
        let a = run_experiment(&d, SchedulerKind::Hybrid, &cfg, 7);
        let b = run_experiment(&d, SchedulerKind::Hybrid, &cfg, 7);
        assert_eq!(a.mean_curve, b.mean_curve);
        assert_eq!(a.final_losses, b.final_losses);
    }

    #[test]
    fn cost_override_controls_awareness() {
        // With the override, the budget stays cost-denominated but the
        // scheduler ignores costs (Fig. 13's lesion); it still runs.
        let d = tiny_dataset();
        let mut cfg = quick_cfg(Budget::FractionOfCost(0.3));
        cfg.cost_aware_override = Some(false);
        let r = run_experiment(&d, SchedulerKind::EaseMl, &cfg, 3);
        assert!(!r.mean_curve.is_empty());
    }

    #[test]
    #[should_panic(expected = "training user")]
    fn too_many_test_users_panics() {
        let d = tiny_dataset();
        let mut cfg = quick_cfg(Budget::FractionOfRuns(0.5));
        cfg.test_users = 10;
        let _ = run_experiment(&d, SchedulerKind::RoundRobin, &cfg, 1);
    }
}
