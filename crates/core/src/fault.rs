//! Fault injection for the training path.
//!
//! The paper assumes every training run returns a clean (quality, cost)
//! pair; a production multi-tenant service has to survive trainer crashes,
//! stragglers, and NaN results without corrupting the GP posterior or the
//! regret accounting. This module provides the error taxonomy
//! ([`TrainingError`]) the fallible [`QualityOracle`](crate::server::QualityOracle)
//! speaks, plus a deterministic, seeded [`FaultInjector`] that wraps any
//! oracle result with reproducible failures — usable from both the live
//! server ([`EaseMl::set_fault_injector`](crate::server::EaseMl::set_fault_injector))
//! and the simulators ([`SimConfig::fault`](crate::sim::SimConfig)).
//!
//! Determinism matters twice over: seeded chaos runs are replayable bug
//! reports, and the injector's state (per-(user, arm) attempt counters) is
//! small enough to checkpoint, so a restored experiment sees the exact same
//! fault sequence as an uninterrupted one.

use crate::server::TrainingOutcome;
use easeml_wal::splitmix64;
use std::collections::BTreeMap;

/// Why a training run failed. The cost the failed attempt consumed is
/// carried inline so the scheduler can charge it as a censored run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrainingError {
    /// The trainer died partway through, after consuming `cost_consumed`
    /// simulated GPU-hours.
    Crash {
        /// Cost consumed before the crash.
        cost_consumed: f64,
    },
    /// The run exceeded its deadline and was killed; the full deadline's
    /// worth of cost is consumed.
    Timeout {
        /// The deadline (and thus the cost consumed) in simulated hours.
        deadline: f64,
    },
    /// The trainer returned a non-finite quality or cost; nothing usable
    /// can enter the posterior.
    InvalidQuality,
}

impl TrainingError {
    /// A stable lowercase tag for traces and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            TrainingError::Crash { .. } => "crash",
            TrainingError::Timeout { .. } => "timeout",
            TrainingError::InvalidQuality => "invalid-quality",
        }
    }

    /// Simulated cost the failed attempt consumed. `InvalidQuality` reports
    /// zero here: the junk outcome's own cost (when finite) is what the
    /// server charges instead.
    pub fn cost_consumed(&self) -> f64 {
        match self {
            TrainingError::Crash { cost_consumed } => *cost_consumed,
            TrainingError::Timeout { deadline } => *deadline,
            TrainingError::InvalidQuality => 0.0,
        }
    }
}

impl std::fmt::Display for TrainingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainingError::Crash { cost_consumed } => {
                write!(f, "trainer crashed after {cost_consumed} simulated hours")
            }
            TrainingError::Timeout { deadline } => {
                write!(f, "trainer exceeded its {deadline}-hour deadline")
            }
            TrainingError::InvalidQuality => write!(f, "trainer returned an unusable quality"),
        }
    }
}

impl std::error::Error for TrainingError {}

/// Failure rates and straggler behaviour for one (user, arm) class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability a run crashes partway through.
    pub crash: f64,
    /// Probability a run times out.
    pub timeout: f64,
    /// Probability a run returns a non-finite quality.
    pub invalid: f64,
    /// Probability a surviving run straggles (costs more than budgeted).
    pub straggler: f64,
}

impl FaultRates {
    /// No faults at all.
    pub const NONE: FaultRates = FaultRates {
        crash: 0.0,
        timeout: 0.0,
        invalid: 0.0,
        straggler: 0.0,
    };
}

/// Seeded fault-injection configuration: base rates, per-user and per-arm
/// overrides, and the straggler cost multiplier.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Base failure rates applied to every (user, arm).
    pub rates: FaultRates,
    /// Per-user overrides (a flaky tenant's dataset, say).
    pub user_overrides: BTreeMap<usize, FaultRates>,
    /// Per-arm overrides (one brittle model family).
    pub arm_overrides: BTreeMap<usize, FaultRates>,
    /// Multiplier applied to a straggling run's cost (> 1 slows it down).
    pub straggler_factor: f64,
    /// Fraction of the budgeted cost consumed before a crash is detected.
    pub crash_cost_fraction: f64,
    /// Timeout deadline as a multiple of the budgeted cost.
    pub timeout_factor: f64,
}

impl FaultConfig {
    /// A quiet configuration (no faults) with the given seed; adjust the
    /// public fields to taste.
    pub fn new(seed: u64) -> Self {
        FaultConfig {
            seed,
            rates: FaultRates::NONE,
            user_overrides: BTreeMap::new(),
            arm_overrides: BTreeMap::new(),
            straggler_factor: 3.0,
            crash_cost_fraction: 0.5,
            timeout_factor: 2.0,
        }
    }

    /// Builder: sets the base crash rate.
    pub fn with_crash_rate(mut self, p: f64) -> Self {
        self.rates.crash = p;
        self
    }

    /// Builder: sets the base timeout rate.
    pub fn with_timeout_rate(mut self, p: f64) -> Self {
        self.rates.timeout = p;
        self
    }

    /// Builder: sets the base invalid-quality rate.
    pub fn with_invalid_rate(mut self, p: f64) -> Self {
        self.rates.invalid = p;
        self
    }

    /// Builder: sets the base straggler rate and cost multiplier.
    pub fn with_stragglers(mut self, p: f64, factor: f64) -> Self {
        self.rates.straggler = p;
        self.straggler_factor = factor;
        self
    }

    /// Effective rates for `(user, arm)`: an arm override beats a user
    /// override beats the base rates.
    pub fn rates_for(&self, user: usize, arm: usize) -> FaultRates {
        if let Some(r) = self.arm_overrides.get(&arm) {
            *r
        } else if let Some(r) = self.user_overrides.get(&user) {
            *r
        } else {
            self.rates
        }
    }
}

/// Deterministic, seeded fault injector.
///
/// Wraps a clean oracle outcome in the fault model: each (user, arm)
/// attempt draws from a counter-keyed hash stream (no shared RNG state), so
/// fault decisions depend only on `(seed, user, arm, attempt)` — never on
/// scheduling order — and replay exactly across checkpoint/restore.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    config: FaultConfig,
    /// Attempts made so far per (user, arm) — the only mutable state.
    attempts: BTreeMap<(usize, usize), u64>,
}

impl FaultInjector {
    /// Creates an injector from a configuration.
    pub fn new(config: FaultConfig) -> Self {
        FaultInjector {
            config,
            attempts: BTreeMap::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Attempt counters, for checkpointing.
    pub fn attempts(&self) -> &BTreeMap<(usize, usize), u64> {
        &self.attempts
    }

    /// Restores the attempt counters from a checkpoint.
    pub fn restore_attempts(&mut self, attempts: BTreeMap<(usize, usize), u64>) {
        self.attempts = attempts;
    }

    /// Number of attempts already made for `(user, arm)`.
    pub fn attempt_count(&self, user: usize, arm: usize) -> u64 {
        self.attempts.get(&(user, arm)).copied().unwrap_or(0)
    }

    /// Advance the attempt counter without drawing a fault — used when a
    /// WAL replay substitutes the logged outcome for a live attempt, so
    /// the fault stream stays aligned for rounds after the replay.
    pub fn note_attempt(&mut self, user: usize, arm: usize) {
        *self.attempts.entry((user, arm)).or_insert(0) += 1;
    }

    /// Applies the fault model to one attempt of training `(user, arm)`
    /// whose clean outcome would be `outcome`.
    ///
    /// Returns the (possibly straggler-inflated) outcome, or the injected
    /// [`TrainingError`]. An injected `InvalidQuality` surfaces as an `Ok`
    /// outcome with a NaN accuracy, exercising the server's own validation
    /// path exactly like a real misbehaving trainer would.
    pub fn apply(
        &mut self,
        user: usize,
        arm: usize,
        outcome: TrainingOutcome,
    ) -> Result<TrainingOutcome, TrainingError> {
        let attempt = {
            let slot = self.attempts.entry((user, arm)).or_insert(0);
            *slot += 1;
            *slot
        };
        let rates = self.config.rates_for(user, arm);
        let u_crash = self.unit(user, arm, attempt, 0);
        if u_crash < rates.crash {
            return Err(TrainingError::Crash {
                cost_consumed: (outcome.cost * self.config.crash_cost_fraction).max(0.0),
            });
        }
        let u_timeout = self.unit(user, arm, attempt, 1);
        if u_timeout < rates.timeout {
            return Err(TrainingError::Timeout {
                deadline: (outcome.cost * self.config.timeout_factor).max(0.0),
            });
        }
        let u_invalid = self.unit(user, arm, attempt, 2);
        if u_invalid < rates.invalid {
            return Ok(TrainingOutcome {
                accuracy: f64::NAN,
                cost: outcome.cost,
            });
        }
        let u_straggle = self.unit(user, arm, attempt, 3);
        if u_straggle < rates.straggler {
            return Ok(TrainingOutcome {
                accuracy: outcome.accuracy,
                cost: outcome.cost * self.config.straggler_factor,
            });
        }
        Ok(outcome)
    }

    /// A uniform draw in [0, 1) keyed by `(seed, user, arm, attempt, salt)`.
    fn unit(&self, user: usize, arm: usize, attempt: u64, salt: u64) -> f64 {
        let mut h = self.config.seed;
        for word in [user as u64, arm as u64, attempt, salt] {
            h = splitmix64(h ^ word.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        }
        // 53 high bits → uniform double in [0, 1).
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> TrainingOutcome {
        TrainingOutcome {
            accuracy: 0.8,
            cost: 2.0,
        }
    }

    #[test]
    fn quiet_config_passes_outcomes_through() {
        let mut inj = FaultInjector::new(FaultConfig::new(1));
        for _ in 0..20 {
            assert_eq!(inj.apply(0, 0, outcome()), Ok(outcome()));
        }
    }

    #[test]
    fn fault_stream_is_deterministic_and_order_independent() {
        let config = FaultConfig::new(42)
            .with_crash_rate(0.3)
            .with_timeout_rate(0.2);
        let mut a = FaultInjector::new(config.clone());
        let mut b = FaultInjector::new(config);
        // Same (user, arm) attempt sequence → same results, regardless of
        // how attempts of *other* keys interleave.
        let direct: Vec<_> = (0..30).map(|_| a.apply(1, 2, outcome())).collect();
        let mut interleaved = Vec::new();
        for i in 0..30 {
            let _ = b.apply(0, 0, outcome()); // unrelated traffic
            interleaved.push(b.apply(1, 2, outcome()));
            let _ = b.apply(i % 3, 5, outcome());
        }
        assert_eq!(direct, interleaved);
        assert!(
            direct.iter().any(|r| r.is_err()),
            "30 attempts at 50% combined failure rate must fail sometimes"
        );
    }

    #[test]
    fn rates_govern_failure_frequency() {
        let mut inj = FaultInjector::new(FaultConfig::new(7).with_crash_rate(0.5));
        let crashes = (0..1000)
            .filter(|_| inj.apply(0, 0, outcome()).is_err())
            .count();
        assert!(
            (350..650).contains(&crashes),
            "~500 crashes expected, got {crashes}"
        );
    }

    #[test]
    fn crash_consumes_a_fraction_and_timeout_the_deadline() {
        let mut config = FaultConfig::new(3).with_crash_rate(1.0);
        config.crash_cost_fraction = 0.25;
        let mut inj = FaultInjector::new(config);
        match inj.apply(0, 0, outcome()) {
            Err(TrainingError::Crash { cost_consumed }) => {
                assert!((cost_consumed - 0.5).abs() < 1e-12);
            }
            other => panic!("expected a crash, got {other:?}"),
        }
        let mut config = FaultConfig::new(3).with_timeout_rate(1.0);
        config.timeout_factor = 2.0;
        let mut inj = FaultInjector::new(config);
        match inj.apply(0, 0, outcome()) {
            Err(err @ TrainingError::Timeout { deadline }) => {
                assert!((deadline - 4.0).abs() < 1e-12);
                assert_eq!(err.kind(), "timeout");
                assert!((err.cost_consumed() - 4.0).abs() < 1e-12);
            }
            other => panic!("expected a timeout, got {other:?}"),
        }
    }

    #[test]
    fn invalid_quality_surfaces_as_nan_outcome() {
        let mut inj = FaultInjector::new(FaultConfig::new(5).with_invalid_rate(1.0));
        let out = inj.apply(0, 0, outcome()).unwrap();
        assert!(out.accuracy.is_nan());
        assert_eq!(out.cost, 2.0);
    }

    #[test]
    fn stragglers_inflate_cost_but_keep_quality() {
        let mut inj = FaultInjector::new(FaultConfig::new(5).with_stragglers(1.0, 4.0));
        let out = inj.apply(0, 0, outcome()).unwrap();
        assert_eq!(out.accuracy, 0.8);
        assert!((out.cost - 8.0).abs() < 1e-12);
    }

    #[test]
    fn overrides_beat_base_rates() {
        let mut config = FaultConfig::new(9).with_crash_rate(1.0);
        config.user_overrides.insert(1, FaultRates::NONE);
        config.arm_overrides.insert(2, FaultRates::NONE);
        let mut inj = FaultInjector::new(config);
        assert!(inj.apply(0, 0, outcome()).is_err(), "base rate applies");
        assert!(inj.apply(1, 0, outcome()).is_ok(), "user override applies");
        assert!(inj.apply(0, 2, outcome()).is_ok(), "arm override applies");
    }

    #[test]
    fn attempt_counters_round_trip_through_restore() {
        let config = FaultConfig::new(11).with_crash_rate(0.4);
        let mut full = FaultInjector::new(config.clone());
        let prefix: Vec<_> = (0..10).map(|_| full.apply(0, 1, outcome())).collect();
        let _ = prefix;
        let mid = full.attempts().clone();

        let mut resumed = FaultInjector::new(config);
        resumed.restore_attempts(mid);
        assert_eq!(resumed.attempt_count(0, 1), 10);
        for _ in 0..10 {
            assert_eq!(
                full.apply(0, 1, outcome()),
                resumed.apply(0, 1, outcome()),
                "restored injector must continue the same fault stream"
            );
        }
    }

    #[test]
    fn error_taxonomy_reports_kind_and_cost() {
        let crash = TrainingError::Crash { cost_consumed: 1.5 };
        assert_eq!(crash.kind(), "crash");
        assert_eq!(crash.cost_consumed(), 1.5);
        assert_eq!(TrainingError::InvalidQuality.kind(), "invalid-quality");
        assert_eq!(TrainingError::InvalidQuality.cost_consumed(), 0.0);
        assert!(crash.to_string().contains("crashed"));
    }
}
