//! Jobs: a user's declared task matched to its candidate models.

use easeml_dsl::template::{match_templates, MatchedTemplate};
use easeml_dsl::{ModelId, Program};

/// Lifecycle of a job inside the task pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Submitted, waiting for its first training run.
    Queued,
    /// At least one model has been trained; exploration continues.
    Exploring,
    /// Every candidate model has been trained.
    Complete,
}

impl JobStatus {
    /// Stable lowercase name, as exported in JSON status snapshots.
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Exploring => "exploring",
            JobStatus::Complete => "complete",
        }
    }
}

/// A user's task after schema matching: the parsed program, the matched
/// workload template, and the candidate models the scheduler explores.
#[derive(Debug, Clone)]
pub struct Job {
    user: usize,
    program: Program,
    matched: MatchedTemplate,
    /// Best (model index, accuracy) found so far.
    best: Option<(usize, f64)>,
    trained: Vec<bool>,
}

impl Job {
    /// Creates a job by template-matching the program (Figure 4).
    ///
    /// # Errors
    ///
    /// Returns `Err` with a message when no template matches (cannot happen
    /// for valid programs — the last template is fully general — but the
    /// API stays fallible for robustness).
    pub fn new(user: usize, program: Program) -> Result<Self, String> {
        let matched = match_templates(&program)
            .ok_or_else(|| format!("no template matches program {program}"))?;
        let k = matched.models.len();
        Ok(Job {
            user,
            program,
            matched,
            best: None,
            trained: vec![false; k],
        })
    }

    /// The owning user (tenant index).
    #[inline]
    pub fn user(&self) -> usize {
        self.user
    }

    /// The declared schema.
    #[inline]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Candidate models produced by template matching.
    #[inline]
    pub fn candidate_models(&self) -> &[ModelId] {
        &self.matched.models
    }

    /// The matched workload class.
    #[inline]
    pub fn workload(&self) -> easeml_dsl::WorkloadKind {
        self.matched.workload
    }

    /// Current status.
    pub fn status(&self) -> JobStatus {
        if self.trained.iter().all(|&t| t) {
            JobStatus::Complete
        } else if self.trained.iter().any(|&t| t) {
            JobStatus::Exploring
        } else {
            JobStatus::Queued
        }
    }

    /// Records a finished training run of candidate `model_idx` reaching
    /// `accuracy`. Returns `true` when this improves the user's best model.
    ///
    /// # Panics
    ///
    /// Panics if `model_idx` is out of range.
    pub fn record_result(&mut self, model_idx: usize, accuracy: f64) -> bool {
        assert!(model_idx < self.trained.len(), "model index out of range");
        self.trained[model_idx] = true;
        if self.best.is_none_or(|(_, b)| accuracy > b) {
            self.best = Some((model_idx, accuracy));
            true
        } else {
            false
        }
    }

    /// The best model so far: what `infer` serves (§2.1's "view of the best
    /// available model").
    pub fn best_model(&self) -> Option<(ModelId, f64)> {
        self.best.map(|(idx, acc)| (self.matched.models[idx], acc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeml_dsl::parse_program;

    fn image_job() -> Job {
        let p = parse_program("{input: {[Tensor[32, 32, 3]], []}, output: {[Tensor[10]], []}}")
            .unwrap();
        Job::new(0, p).unwrap()
    }

    #[test]
    fn template_matching_runs_at_creation() {
        let j = image_job();
        assert_eq!(j.candidate_models().len(), 8);
        assert_eq!(j.workload().to_string(), "Image/Tensor Classification");
        assert_eq!(j.status(), JobStatus::Queued);
        assert_eq!(j.user(), 0);
        assert!(j.best_model().is_none());
    }

    #[test]
    fn status_names_are_stable() {
        assert_eq!(JobStatus::Queued.name(), "queued");
        assert_eq!(JobStatus::Exploring.name(), "exploring");
        assert_eq!(JobStatus::Complete.name(), "complete");
    }

    #[test]
    fn lifecycle_queued_exploring_complete() {
        let mut j = image_job();
        assert!(j.record_result(0, 0.7));
        assert_eq!(j.status(), JobStatus::Exploring);
        for m in 1..8 {
            j.record_result(m, 0.5);
        }
        assert_eq!(j.status(), JobStatus::Complete);
    }

    #[test]
    fn best_model_tracks_improvements_only() {
        let mut j = image_job();
        assert!(j.record_result(3, 0.6));
        assert!(!j.record_result(1, 0.5));
        assert!(j.record_result(2, 0.9));
        let (model, acc) = j.best_model().unwrap();
        assert_eq!(model.name(), "ResNet-50");
        assert_eq!(acc, 0.9);
    }

    #[test]
    fn program_is_preserved() {
        let j = image_job();
        assert!(j.program().to_string().contains("Tensor[32, 32, 3]"));
    }
}
