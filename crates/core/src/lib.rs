//! # ease.ml — multi-tenant model selection, reproduced in Rust
//!
//! This crate is the top of the workspace reproducing *"Ease.ml: Towards
//! Multi-tenant Resource Sharing for Machine Learning Workloads"* (Li,
//! Zhong, Liu, Wu, Zhang — VLDB 2018). It assembles the platform the paper
//! describes in §2 and the evaluation machinery of §5:
//!
//! * [`user`] / [`job`] / [`storage`] — the declarative service layer:
//!   users submit a Figure-2 program, `feed` example pairs into shared
//!   storage, `refine` them, and `infer` with the best model found so far;
//! * [`cluster`] — the simulated GPU pool: ease.ml treats the whole pool as
//!   a single device (§4.5), so training runs execute one at a time,
//!   advancing a simulated clock by the run's cost;
//! * [`server`] — [`server::EaseMl`], the façade tying programs, storage,
//!   the scheduler, and the cluster together;
//! * [`sim`] — the trace-driven multi-tenant simulation over a
//!   [`easeml_data::Dataset`] (quality/cost matrix), exactly the protocol
//!   §5 evaluates;
//! * [`experiment`] — the 50-repetition train/test protocol with empirical
//!   kernels and log-marginal-likelihood hyperparameter tuning
//!   (§5.2, Appendix A);
//! * [`metrics`] / [`report`] — curve aggregation (average and worst-case
//!   accuracy loss), speedup factors, and the table/CSV writers used by the
//!   benchmark harness.
//!
//! ## Quick start
//!
//! ```
//! use easeml::prelude::*;
//!
//! // A small synthetic multi-tenant workload.
//! let dataset = easeml_data::SynConfig {
//!     num_users: 12,
//!     num_models: 6,
//!     ..easeml_data::SynConfig::paper(0.5, 0.5)
//! }
//! .generate(1);
//!
//! // Run ease.ml's HYBRID scheduler and plain round robin for comparison.
//! let cfg = ExperimentConfig {
//!     test_users: 4,
//!     repetitions: 3,
//!     budget: Budget::FractionOfRuns(0.5),
//!     ..ExperimentConfig::default()
//! };
//! let easeml = run_experiment(&dataset, SchedulerKind::EaseMl, &cfg, 7);
//! let rr = run_experiment(&dataset, SchedulerKind::RoundRobin, &cfg, 7);
//! assert_eq!(easeml.mean_curve.len(), rr.mean_curve.len());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod cluster;
pub mod durability;
pub mod experiment;
pub mod fault;
pub mod job;
pub mod metrics;
pub mod pool;
pub mod report;
pub mod retry;
pub mod server;
pub mod sim;
pub mod storage;
pub mod user;
pub mod witness;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use crate::checkpoint::{
        read_checkpoint_file, write_checkpoint_atomic, CheckpointDoc, CheckpointError,
        CHECKPOINT_VERSION,
    };
    pub use crate::cluster::{Cluster, TrainingRun};
    pub use crate::durability::{Durability, RecoveryReport};
    pub use crate::experiment::{run_experiment, Budget, ExperimentConfig, ExperimentResult};
    pub use crate::fault::{FaultConfig, FaultInjector, FaultRates, TrainingError};
    pub use crate::job::{Job, JobStatus};
    pub use crate::metrics::{speedup_factor, AggregatedCurves};
    pub use crate::pool::{Task, TaskBoard, TaskPool, TaskState};
    pub use crate::retry::{RetryPolicy, RetryState};
    pub use crate::server::{
        EaseMl, QualityOracle, RoundError, RoundOutcome, RoundResult, StatusSnapshot,
        TrainingOutcome, UserStatus,
    };
    pub use crate::sim::{
        build_tenants, cheapest_model, make_picker, simulate, simulate_parallel,
        simulate_parallel_with_recorder, simulate_with_recorder, tenant_beta, SchedulerKind,
        SimConfig, SimEvent, SimTrace,
    };
    pub use crate::storage::{Example, SharedStorage};
    pub use crate::user::UserAccount;
    pub use crate::witness::{DecisionLog, RoundWitness, DEFAULT_WITNESS_TOP_K};
}

pub use prelude::*;
