//! Curve aggregation and speedup metrics (§5.2's two performance measures).

use crate::sim::SimTrace;
use easeml_linalg::vec_ops;
use serde::Serialize;

/// The aggregate of many repeated runs, resampled onto a common grid of
/// budget percentages: the *average* accuracy loss across runs and the
/// *worst-case* accuracy loss across runs (the paper's two measures,
/// Figure 9's two panels).
#[derive(Debug, Clone, Serialize)]
pub struct AggregatedCurves {
    /// Budget percentages in `[0, 100]`.
    pub grid_pct: Vec<f64>,
    /// Mean over runs of the mean-over-users accuracy loss.
    pub mean: Vec<f64>,
    /// Max over runs of the mean-over-users accuracy loss.
    pub worst: Vec<f64>,
}

impl AggregatedCurves {
    /// Aggregates run traces onto a uniform grid with `points` samples
    /// (including both endpoints).
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty or `points < 2`.
    pub fn from_traces(traces: &[SimTrace], points: usize) -> Self {
        assert!(!traces.is_empty(), "need at least one trace");
        assert!(points >= 2, "need at least two grid points");
        let fractions: Vec<f64> = (0..points)
            .map(|i| i as f64 / (points - 1) as f64)
            .collect();
        let sampled: Vec<Vec<f64>> = traces.iter().map(|t| t.resample(&fractions)).collect();
        let mut mean = Vec::with_capacity(points);
        let mut worst = Vec::with_capacity(points);
        for g in 0..points {
            let column: Vec<f64> = sampled.iter().map(|s| s[g]).collect();
            mean.push(vec_ops::mean(&column));
            worst.push(vec_ops::max(&column).unwrap());
        }
        AggregatedCurves {
            grid_pct: fractions.iter().map(|f| f * 100.0).collect(),
            mean,
            worst,
        }
    }

    /// The first grid percentage at which `curve` (one of the two fields)
    /// drops to `target` or below; `None` if it never does.
    pub fn time_to_reach(grid_pct: &[f64], curve: &[f64], target: f64) -> Option<f64> {
        curve.iter().position(|&l| l <= target).map(|i| grid_pct[i])
    }
}

/// How many times faster `fast` reaches `target_loss` than `slow`, measured
/// on a shared grid (the paper's headline "9.8×" metric: time for the
/// baseline to reach the loss level divided by time for ease.ml).
///
/// Returns `None` when either curve never reaches the target, or the faster
/// curve reaches it at 0% (ratio undefined).
pub fn speedup_factor(
    grid_pct: &[f64],
    slow: &[f64],
    fast: &[f64],
    target_loss: f64,
) -> Option<f64> {
    let t_slow = AggregatedCurves::time_to_reach(grid_pct, slow, target_loss)?;
    let t_fast = AggregatedCurves::time_to_reach(grid_pct, fast, target_loss)?;
    if t_fast <= 0.0 {
        return None;
    }
    Some(t_slow / t_fast)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(points: Vec<(f64, f64)>) -> SimTrace {
        SimTrace {
            budget: 10.0,
            initial_loss: 1.0,
            events: vec![],
            final_losses: vec![],
            rounds: points.len(),
            points,
        }
    }

    #[test]
    fn aggregation_means_and_maxes_across_runs() {
        let a = trace(vec![(5.0, 0.4)]);
        let b = trace(vec![(5.0, 0.2)]);
        let agg = AggregatedCurves::from_traces(&[a, b], 3); // 0%, 50%, 100%
        assert_eq!(agg.grid_pct, vec![0.0, 50.0, 100.0]);
        let expect = |got: &[f64], want: &[f64]| {
            assert!(got.iter().zip(want).all(|(a, b)| (a - b).abs() < 1e-12));
        };
        expect(&agg.mean, &[1.0, 0.3, 0.3]);
        expect(&agg.worst, &[1.0, 0.4, 0.4]);
    }

    #[test]
    fn worst_dominates_mean() {
        let traces: Vec<SimTrace> = (0..5)
            .map(|i| trace(vec![(2.0, 0.1 * i as f64), (8.0, 0.05 * i as f64)]))
            .collect();
        let agg = AggregatedCurves::from_traces(&traces, 11);
        for (m, w) in agg.mean.iter().zip(&agg.worst) {
            assert!(w >= m);
        }
    }

    #[test]
    fn time_to_reach_finds_the_first_crossing() {
        let grid = vec![0.0, 25.0, 50.0, 75.0, 100.0];
        let curve = vec![1.0, 0.5, 0.2, 0.1, 0.1];
        assert_eq!(
            AggregatedCurves::time_to_reach(&grid, &curve, 0.5),
            Some(25.0)
        );
        assert_eq!(
            AggregatedCurves::time_to_reach(&grid, &curve, 0.15),
            Some(75.0)
        );
        assert_eq!(AggregatedCurves::time_to_reach(&grid, &curve, 0.01), None);
    }

    #[test]
    fn speedup_is_a_ratio_of_crossing_times() {
        let grid = vec![0.0, 10.0, 20.0, 30.0, 40.0];
        let fast = vec![1.0, 0.1, 0.1, 0.1, 0.1]; // reaches 0.1 at 10%
        let slow = vec![1.0, 0.8, 0.5, 0.3, 0.1]; // reaches 0.1 at 40%
        assert_eq!(speedup_factor(&grid, &slow, &fast, 0.1), Some(4.0));
        // Unreachable target.
        assert_eq!(speedup_factor(&grid, &slow, &fast, 0.0), None);
        // Degenerate: fast reaches at 0%.
        let instant = vec![0.05, 0.05, 0.05, 0.05, 0.05];
        assert_eq!(speedup_factor(&grid, &slow, &instant, 0.1), None);
    }

    #[test]
    fn single_point_trace_holds_initial_loss_until_the_observation() {
        // One observation at 50% of the budget: the curve sits at the
        // initial loss before it and at the observed loss from it onward;
        // the grid point landing exactly on the observation cost is
        // inclusive (`c <= cost`).
        let t = trace(vec![(5.0, 0.25)]);
        let agg = AggregatedCurves::from_traces(&[t], 3); // 0%, 50%, 100%
        assert_eq!(agg.mean, vec![1.0, 0.25, 0.25]);
        // A single run's worst-case equals its mean.
        assert_eq!(agg.worst, agg.mean);
    }

    #[test]
    fn non_monotone_cost_columns_stop_at_the_first_exceeding_point() {
        // Completions can be recorded out of cost order (parallel traces);
        // `loss_at` scans in recording order and stops at the first point
        // beyond the probe cost, so a cheap point recorded after an
        // expensive one is shadowed until the probe passes the expensive
        // point too.
        let t = trace(vec![(2.0, 0.8), (6.0, 0.3), (4.0, 0.5)]);
        assert_eq!(t.loss_at(1.0), 1.0); // before any point: initial loss
        assert_eq!(t.loss_at(2.0), 0.8); // exact boundary is inclusive
        assert_eq!(t.loss_at(5.0), 0.8); // (4.0, 0.5) shadowed by (6.0, _)
        assert_eq!(t.loss_at(10.0), 0.5); // all within budget: last wins
    }

    #[test]
    fn time_to_reach_at_exact_grid_boundaries() {
        let grid = vec![0.0, 50.0, 100.0];
        let curve = vec![1.0, 0.5, 0.2];
        // Target equal to the starting loss: reached immediately at 0%.
        assert_eq!(
            AggregatedCurves::time_to_reach(&grid, &curve, 1.0),
            Some(0.0)
        );
        // Exact equality at an interior grid point counts as reached.
        assert_eq!(
            AggregatedCurves::time_to_reach(&grid, &curve, 0.5),
            Some(50.0)
        );
        // Reached only at the very last grid point.
        assert_eq!(
            AggregatedCurves::time_to_reach(&grid, &curve, 0.2),
            Some(100.0)
        );
        // Just below the final value: never reached.
        assert_eq!(AggregatedCurves::time_to_reach(&grid, &curve, 0.199), None);
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn empty_traces_panic() {
        let _ = AggregatedCurves::from_traces(&[], 3);
    }

    #[test]
    #[should_panic(expected = "two grid points")]
    fn single_grid_point_panics() {
        let _ = AggregatedCurves::from_traces(&[trace(vec![(1.0, 0.5)])], 1);
    }
}
