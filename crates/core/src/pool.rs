//! The user-level task pool (Figure 1): schema matching generates one task
//! per candidate model, simple profiling attaches a cost estimate, and the
//! resource-allocation phase (the scheduler) consumes tasks.

use crate::job::Job;
use easeml_dsl::ModelId;

/// Lifecycle of one candidate-model training task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskState {
    /// Waiting in the pool.
    Pending,
    /// Currently on the cluster.
    Running,
    /// Finished with the given accuracy.
    Done(f64),
}

/// One task: train one candidate model for one user.
#[derive(Debug, Clone)]
pub struct Task {
    /// Owning user.
    pub user: usize,
    /// Candidate index within the user's job.
    pub model_idx: usize,
    /// The model to train.
    pub model: ModelId,
    /// Profiled cost estimate in GPU-hours ("simple profiling", Figure 1:
    /// the zoo's relative cost scaled by the user's data volume).
    pub estimated_cost: f64,
    /// Current state.
    pub state: TaskState,
}

/// The pool of tasks across all users.
///
/// # Examples
///
/// ```
/// use easeml::prelude::*;
/// use easeml_dsl::parse_program;
///
/// let prog = parse_program(
///     "{input: {[Tensor[64, 64, 3]], []}, output: {[Tensor[5]], []}}",
/// ).unwrap();
/// let job = Job::new(0, prog).unwrap();
/// let mut pool = TaskPool::new();
/// pool.submit_job(&job, 1.0); // data-volume factor from profiling
/// assert_eq!(pool.pending_count(), 8); // one task per matched CNN
/// let cheapest = pool.cheapest_pending(0).unwrap();
/// assert_eq!(cheapest.model.name(), "SqueezeNet");
/// ```
#[derive(Debug, Default)]
pub struct TaskPool {
    tasks: Vec<Task>,
}

impl TaskPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generates tasks for a job ("schema matching and task generation" +
    /// "simple profiling and submission"). `data_scale` is the user's
    /// profiling factor — e.g. example count relative to a reference size.
    ///
    /// # Panics
    ///
    /// Panics if `data_scale` is not strictly positive.
    pub fn submit_job(&mut self, job: &Job, data_scale: f64) -> usize {
        assert!(data_scale > 0.0, "data scale must be positive");
        let mut added = 0;
        for (idx, &model) in job.candidate_models().iter().enumerate() {
            self.tasks.push(Task {
                user: job.user(),
                model_idx: idx,
                model,
                estimated_cost: model.info().relative_cost * data_scale,
                state: TaskState::Pending,
            });
            added += 1;
        }
        added
    }

    /// All tasks (any state).
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Pending tasks of one user.
    pub fn pending_for(&self, user: usize) -> Vec<&Task> {
        self.tasks
            .iter()
            .filter(|t| t.user == user && t.state == TaskState::Pending)
            .collect()
    }

    /// Number of pending tasks over all users.
    pub fn pending_count(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| t.state == TaskState::Pending)
            .count()
    }

    /// Marks the pending task `(user, model_idx)` as running and returns
    /// its estimated cost; `None` when no such pending task exists.
    pub fn start(&mut self, user: usize, model_idx: usize) -> Option<f64> {
        let task = self.tasks.iter_mut().find(|t| {
            t.user == user && t.model_idx == model_idx && t.state == TaskState::Pending
        })?;
        task.state = TaskState::Running;
        Some(task.estimated_cost)
    }

    /// Marks the running task `(user, model_idx)` as done with the achieved
    /// accuracy. Returns `false` when no such running task exists.
    pub fn finish(&mut self, user: usize, model_idx: usize, accuracy: f64) -> bool {
        match self
            .tasks
            .iter_mut()
            .find(|t| t.user == user && t.model_idx == model_idx && t.state == TaskState::Running)
        {
            Some(t) => {
                t.state = TaskState::Done(accuracy);
                true
            }
            None => false,
        }
    }

    /// The cheapest pending task of a user by profiled estimate — what the
    /// cost-aware warm-up trains first.
    pub fn cheapest_pending(&self, user: usize) -> Option<&Task> {
        self.pending_for(user)
            .into_iter()
            .min_by(|a, b| a.estimated_cost.partial_cmp(&b.estimated_cost).unwrap())
    }

    /// Total profiled cost of all pending tasks — the denominator of
    /// "% of total cost" budgets when only estimates are available.
    pub fn total_pending_cost(&self) -> f64 {
        self.tasks
            .iter()
            .filter(|t| t.state == TaskState::Pending)
            .map(|t| t.estimated_cost)
            .sum()
    }
}

/// A dense users × arms state grid over [`TaskState`] — the multi-device
/// dispatcher's work representation. Unlike [`TaskPool`] it is keyed by the
/// simulator's `(user, arm)` indices rather than zoo models, and it
/// tolerates re-dispatching an arm that already ran (GP schedulers revisit
/// arms), tracking only the *current* state of each cell.
///
/// # Examples
///
/// ```
/// use easeml::prelude::*;
///
/// let mut board = TaskBoard::new(2, 3);
/// board.start(0, 1);
/// assert_eq!(board.running_count(), 1);
/// board.finish(0, 1, 0.9);
/// assert_eq!(board.state(0, 1), TaskState::Done(0.9));
/// ```
#[derive(Debug, Clone)]
pub struct TaskBoard {
    arms: usize,
    states: Vec<TaskState>,
}

impl TaskBoard {
    /// Creates a board of `users × arms` cells, all pending.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn new(users: usize, arms: usize) -> Self {
        assert!(users > 0 && arms > 0, "board dimensions must be positive");
        TaskBoard {
            arms,
            states: vec![TaskState::Pending; users * arms],
        }
    }

    /// Number of users (rows).
    pub fn num_users(&self) -> usize {
        self.states.len() / self.arms
    }

    /// Number of arms (columns).
    pub fn num_arms(&self) -> usize {
        self.arms
    }

    fn idx(&self, user: usize, arm: usize) -> usize {
        assert!(arm < self.arms, "arm {arm} out of range");
        let i = user * self.arms + arm;
        assert!(i < self.states.len(), "user {user} out of range");
        i
    }

    /// Current state of the `(user, arm)` cell.
    pub fn state(&self, user: usize, arm: usize) -> TaskState {
        self.states[self.idx(user, arm)]
    }

    /// Marks `(user, arm)` as running — also when re-dispatching an arm
    /// that already completed once.
    pub fn start(&mut self, user: usize, arm: usize) {
        let i = self.idx(user, arm);
        self.states[i] = TaskState::Running;
    }

    /// Marks a running `(user, arm)` as done with the achieved accuracy.
    pub fn finish(&mut self, user: usize, arm: usize, accuracy: f64) {
        let i = self.idx(user, arm);
        self.states[i] = TaskState::Done(accuracy);
    }

    /// Returns a censored running `(user, arm)` to pending — the run
    /// consumed budget but produced no observation, so the cell is
    /// re-eligible.
    pub fn fail(&mut self, user: usize, arm: usize) {
        let i = self.idx(user, arm);
        self.states[i] = TaskState::Pending;
    }

    /// Number of cells currently running.
    pub fn running_count(&self) -> usize {
        self.states
            .iter()
            .filter(|s| matches!(s, TaskState::Running))
            .count()
    }

    /// Number of cells that have completed at least once.
    pub fn done_count(&self) -> usize {
        self.states
            .iter()
            .filter(|s| matches!(s, TaskState::Done(_)))
            .count()
    }

    /// Arms of `user` currently running.
    pub fn running_arms(&self, user: usize) -> Vec<usize> {
        (0..self.arms)
            .filter(|&a| matches!(self.state(user, a), TaskState::Running))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeml_dsl::parse_program;

    fn image_job(user: usize) -> Job {
        let p = parse_program("{input: {[Tensor[32, 32, 3]], []}, output: {[Tensor[10]], []}}")
            .unwrap();
        Job::new(user, p).unwrap()
    }

    #[test]
    fn submission_generates_one_task_per_candidate() {
        let mut pool = TaskPool::new();
        let added = pool.submit_job(&image_job(0), 1.0);
        assert_eq!(added, 8);
        assert_eq!(pool.pending_count(), 8);
        assert_eq!(pool.pending_for(0).len(), 8);
        assert_eq!(pool.pending_for(1).len(), 0);
    }

    #[test]
    fn profiling_scales_with_data_volume() {
        let mut pool = TaskPool::new();
        pool.submit_job(&image_job(0), 1.0);
        pool.submit_job(&image_job(1), 3.0);
        let c0 = pool.pending_for(0)[0].estimated_cost;
        let c1 = pool.pending_for(1)[0].estimated_cost;
        assert!((c1 / c0 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lifecycle_pending_running_done() {
        let mut pool = TaskPool::new();
        pool.submit_job(&image_job(0), 1.0);
        let cost = pool.start(0, 2).expect("pending task exists");
        assert!(cost > 0.0);
        assert_eq!(pool.pending_count(), 7);
        // Starting the same task twice fails.
        assert!(pool.start(0, 2).is_none());
        assert!(pool.finish(0, 2, 0.91));
        assert!(!pool.finish(0, 2, 0.91), "already done");
        let done = pool
            .tasks()
            .iter()
            .find(|t| t.model_idx == 2)
            .unwrap()
            .state;
        assert_eq!(done, TaskState::Done(0.91));
    }

    #[test]
    fn cheapest_pending_is_the_profiled_minimum() {
        let mut pool = TaskPool::new();
        pool.submit_job(&image_job(0), 2.0);
        let cheapest = pool.cheapest_pending(0).unwrap();
        // SqueezeNet has the lowest relative cost in the zoo.
        assert_eq!(cheapest.model.name(), "SqueezeNet");
        assert!(pool.cheapest_pending(9).is_none());
    }

    #[test]
    fn total_pending_cost_shrinks_as_tasks_start() {
        let mut pool = TaskPool::new();
        pool.submit_job(&image_job(0), 1.0);
        let before = pool.total_pending_cost();
        let started = pool.start(0, 0).unwrap();
        assert!((pool.total_pending_cost() - (before - started)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_data_scale_panics() {
        let mut pool = TaskPool::new();
        pool.submit_job(&image_job(0), 0.0);
    }

    #[test]
    fn board_tracks_the_dispatch_lifecycle() {
        let mut b = TaskBoard::new(2, 4);
        assert_eq!(b.num_users(), 2);
        assert_eq!(b.num_arms(), 4);
        b.start(1, 3);
        b.start(1, 0);
        assert_eq!(b.running_count(), 2);
        assert_eq!(b.running_arms(1), vec![0, 3]);
        b.finish(1, 3, 0.8);
        b.fail(1, 0);
        assert_eq!(b.state(1, 3), TaskState::Done(0.8));
        assert_eq!(b.state(1, 0), TaskState::Pending, "censored cell re-arms");
        assert_eq!(b.done_count(), 1);
        // Re-dispatching a done arm is legal for GP schedulers.
        b.start(1, 3);
        assert_eq!(b.state(1, 3), TaskState::Running);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn board_rejects_out_of_range_cells() {
        let b = TaskBoard::new(1, 2);
        let _ = b.state(0, 5);
    }
}
