//! Table and series writers used by the benchmark harness.
//!
//! Every bench target prints the rows/series the corresponding paper figure
//! plots, and additionally dumps machine-readable CSV + JSON under
//! `target/experiments/` so the curves can be re-plotted.

use crate::experiment::ExperimentResult;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Renders a set of experiment results as a text table: one row per sampled
/// budget percentage, one column pair (mean, worst) per scheduler.
///
/// `sample_every` thins the grid (e.g. 10 prints every 10th point).
pub fn curves_table(results: &[ExperimentResult], sample_every: usize) -> String {
    assert!(!results.is_empty(), "no results to render");
    let sample_every = sample_every.max(1);
    let mut out = String::new();
    write!(out, "{:>8}", "% budget").unwrap();
    for r in results {
        write!(out, "  {:>22}", r.scheduler.name()).unwrap();
    }
    out.push('\n');
    write!(out, "{:>8}", "").unwrap();
    for _ in results {
        write!(out, "  {:>11}{:>11}", "mean", "worst").unwrap();
    }
    out.push('\n');
    let grid = &results[0].grid_pct;
    for (i, pct) in grid.iter().enumerate() {
        if i % sample_every != 0 && i != grid.len() - 1 {
            continue;
        }
        write!(out, "{pct:>8.1}").unwrap();
        for r in results {
            write!(out, "  {:>11.4}{:>11.4}", r.mean_curve[i], r.worst_curve[i]).unwrap();
        }
        out.push('\n');
    }
    out
}

/// Renders the results as CSV (long format: scheduler, pct, mean, worst).
pub fn curves_csv(results: &[ExperimentResult]) -> String {
    let mut out = String::from("dataset,scheduler,pct,mean_loss,worst_loss\n");
    for r in results {
        for (i, pct) in r.grid_pct.iter().enumerate() {
            writeln!(
                out,
                "{},{},{:.2},{:.6},{:.6}",
                r.dataset,
                r.scheduler.name(),
                pct,
                r.mean_curve[i],
                r.worst_curve[i]
            )
            .unwrap();
        }
    }
    out
}

/// The default output directory for experiment artifacts:
/// `<workspace target dir>/experiments`.
///
/// Benches run with the *package* directory as cwd, so a bare relative
/// `target/` would scatter artifacts under `crates/bench/target/`; this
/// resolves `CARGO_TARGET_DIR` first and otherwise walks up from the cwd to
/// the nearest existing `target/` directory (the shared workspace one).
pub fn experiments_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("CARGO_TARGET_DIR") {
        return PathBuf::from(dir).join("experiments");
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    for _ in 0..4 {
        let candidate = dir.join("target");
        if candidate.is_dir() {
            return candidate.join("experiments");
        }
        if !dir.pop() {
            break;
        }
    }
    PathBuf::from("target").join("experiments")
}

/// Writes `content` to `experiments_dir()/name`, creating the directory.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_artifact(name: &str, content: &str) -> io::Result<PathBuf> {
    let dir = experiments_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    fs::write(&path, content)?;
    Ok(path)
}

/// Writes CSV for the results under the experiment id (e.g. `fig09`),
/// returning the path. Errors are reported but do not panic — artifact
/// dumps are best-effort alongside the printed tables.
pub fn dump_csv(id: &str, results: &[ExperimentResult]) -> Option<PathBuf> {
    match write_artifact(&format!("{id}.csv"), &curves_csv(results)) {
        Ok(p) => Some(p),
        Err(e) => {
            eprintln!("warning: could not write {id}.csv: {e}");
            None
        }
    }
}

/// Returns true when the path exists and contains the given content marker
/// (test helper).
pub fn artifact_contains(path: &Path, needle: &str) -> bool {
    fs::read_to_string(path).is_ok_and(|s| s.contains(needle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SchedulerKind;

    fn result(name: SchedulerKind) -> ExperimentResult {
        ExperimentResult {
            scheduler: name,
            dataset: "TEST".into(),
            grid_pct: vec![0.0, 50.0, 100.0],
            mean_curve: vec![0.5, 0.2, 0.1],
            worst_curve: vec![0.6, 0.3, 0.15],
            final_losses: vec![0.1],
            mean_rounds: 3.0,
        }
    }

    #[test]
    fn table_contains_headers_and_values() {
        let t = curves_table(
            &[
                result(SchedulerKind::EaseMl),
                result(SchedulerKind::RoundRobin),
            ],
            1,
        );
        assert!(t.contains("hybrid"));
        assert!(t.contains("round-robin"));
        assert!(t.contains("0.2000"));
        assert!(t.contains("% budget"));
        assert_eq!(t.lines().count(), 2 + 3);
    }

    #[test]
    fn table_sampling_thins_rows_but_keeps_the_last() {
        let t = curves_table(&[result(SchedulerKind::EaseMl)], 2);
        // Grid rows: 0 and 100 (kept as last), 50 skipped.
        assert!(t.contains("\n     0.0"));
        assert!(t.contains("\n   100.0"));
        assert!(!t.contains("\n    50.0"));
    }

    #[test]
    fn csv_is_long_format() {
        let c = curves_csv(&[result(SchedulerKind::Random)]);
        let mut lines = c.lines();
        assert_eq!(
            lines.next().unwrap(),
            "dataset,scheduler,pct,mean_loss,worst_loss"
        );
        assert!(c.contains("TEST,random,0.00,0.500000,0.600000"));
        assert_eq!(c.lines().count(), 4);
    }

    #[test]
    fn artifacts_roundtrip() {
        let p = write_artifact("unit_test_artifact.txt", "hello-artifact").unwrap();
        assert!(artifact_contains(&p, "hello-artifact"));
        assert!(!artifact_contains(&p, "absent"));
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn dump_csv_writes_a_file() {
        let p = dump_csv("unit_test_fig", &[result(SchedulerKind::EaseMl)]).unwrap();
        assert!(artifact_contains(&p, "hybrid"));
        let _ = std::fs::remove_file(p);
    }
}
