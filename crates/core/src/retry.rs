//! Retry and quarantine policy for failed training runs.
//!
//! A failed run is *censored*: its consumed cost occupies the cluster and
//! bills the tenant, but no quality observation enters the GP posterior —
//! so the Theorem 1 regret decomposition stays consistent. This module
//! decides what happens *next*: bounded in-round retries with a
//! simulated-cost backoff, and per-arm quarantine once an arm keeps
//! failing. Quarantined arms are masked out of GP-UCB's argmax
//! ([`GpUcb::set_arm_masked`](easeml_bandit::GpUcb::set_arm_masked)) and
//! re-enter on probation after a fixed number of global rounds.

use std::collections::BTreeMap;

/// How failed training runs are retried and when arms are quarantined.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries allowed within one round after the first failed attempt.
    pub max_retries: u64,
    /// Simulated-cost backoff charged before the first retry.
    pub backoff_cost: f64,
    /// Multiplier applied to the backoff on each further retry.
    pub backoff_factor: f64,
    /// Consecutive failures (across rounds) after which the arm is
    /// quarantined; 0 disables quarantine.
    pub quarantine_threshold: u64,
    /// Global rounds a quarantined arm stays masked before probation.
    pub probation_rounds: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff_cost: 0.1,
            backoff_factor: 2.0,
            quarantine_threshold: 3,
            probation_rounds: 25,
        }
    }
}

impl RetryPolicy {
    /// Whether another in-round retry is allowed after `failures_this_round`
    /// failed attempts.
    pub fn allows_retry(&self, failures_this_round: u64) -> bool {
        failures_this_round <= self.max_retries
    }

    /// Simulated-cost backoff charged before retry number `retry`
    /// (1-based): `backoff_cost · backoff_factor^(retry − 1)`.
    pub fn backoff_for(&self, retry: u64) -> f64 {
        self.backoff_cost * self.backoff_factor.powi(retry.saturating_sub(1) as i32)
    }
}

/// Mutable retry/quarantine bookkeeping: consecutive-failure counters per
/// (user, arm) and the probation schedule for quarantined arms. Everything
/// here is plain data, so it checkpoints and restores exactly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RetryState {
    consecutive: BTreeMap<(usize, usize), u64>,
    /// `(release_round, user, arm)` entries, unordered.
    releases: Vec<(u64, usize, usize)>,
}

impl RetryState {
    /// Fresh, empty state.
    pub fn new() -> Self {
        RetryState::default()
    }

    /// Records a failed attempt and returns the new consecutive-failure
    /// count for `(user, arm)`.
    pub fn record_failure(&mut self, user: usize, arm: usize) -> u64 {
        let slot = self.consecutive.entry((user, arm)).or_insert(0);
        *slot += 1;
        *slot
    }

    /// Resets the consecutive-failure counter after a successful run.
    pub fn record_success(&mut self, user: usize, arm: usize) {
        self.consecutive.remove(&(user, arm));
    }

    /// Current consecutive-failure count for `(user, arm)`.
    pub fn consecutive(&self, user: usize, arm: usize) -> u64 {
        self.consecutive.get(&(user, arm)).copied().unwrap_or(0)
    }

    /// Schedules `(user, arm)` to leave quarantine at `release_round`, and
    /// resets its failure counter so probation starts from a clean slate.
    pub fn schedule_release(&mut self, release_round: u64, user: usize, arm: usize) {
        self.consecutive.remove(&(user, arm));
        self.releases.push((release_round, user, arm));
    }

    /// Removes and returns every `(user, arm)` whose release round is due
    /// (`<= current_round`).
    pub fn due_releases(&mut self, current_round: u64) -> Vec<(usize, usize)> {
        let mut due = Vec::new();
        self.releases.retain(|&(round, user, arm)| {
            if round <= current_round {
                due.push((user, arm));
                false
            } else {
                true
            }
        });
        due
    }

    /// All scheduled releases, for checkpointing.
    pub fn releases(&self) -> &[(u64, usize, usize)] {
        &self.releases
    }

    /// All consecutive-failure counters, for checkpointing.
    pub fn counters(&self) -> &BTreeMap<(usize, usize), u64> {
        &self.consecutive
    }

    /// Rebuilds state from checkpointed counters and releases.
    pub fn from_parts(
        counters: BTreeMap<(usize, usize), u64>,
        releases: Vec<(u64, usize, usize)>,
    ) -> Self {
        RetryState {
            consecutive: counters,
            releases,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_bounds_retries() {
        let p = RetryPolicy::default();
        assert!(p.allows_retry(1));
        assert!(p.allows_retry(2));
        assert!(!p.allows_retry(3), "two retries after the first failure");
    }

    #[test]
    fn backoff_grows_geometrically() {
        let p = RetryPolicy {
            backoff_cost: 0.5,
            backoff_factor: 2.0,
            ..RetryPolicy::default()
        };
        assert!((p.backoff_for(1) - 0.5).abs() < 1e-12);
        assert!((p.backoff_for(2) - 1.0).abs() < 1e-12);
        assert!((p.backoff_for(3) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn failure_counters_reset_on_success() {
        let mut s = RetryState::new();
        assert_eq!(s.record_failure(0, 1), 1);
        assert_eq!(s.record_failure(0, 1), 2);
        assert_eq!(s.consecutive(0, 1), 2);
        assert_eq!(s.consecutive(0, 2), 0, "other arms unaffected");
        s.record_success(0, 1);
        assert_eq!(s.consecutive(0, 1), 0);
    }

    #[test]
    fn releases_fire_once_their_round_is_due() {
        let mut s = RetryState::new();
        s.record_failure(0, 1);
        s.schedule_release(10, 0, 1);
        s.schedule_release(20, 2, 3);
        assert_eq!(s.consecutive(0, 1), 0, "quarantine clears the counter");
        assert!(s.due_releases(9).is_empty());
        assert_eq!(s.due_releases(10), vec![(0, 1)]);
        assert!(s.due_releases(10).is_empty(), "a release fires once");
        assert_eq!(s.due_releases(100), vec![(2, 3)]);
    }

    #[test]
    fn state_round_trips_through_parts() {
        let mut s = RetryState::new();
        s.record_failure(1, 2);
        s.schedule_release(7, 3, 4);
        let copy = RetryState::from_parts(s.counters().clone(), s.releases().to_vec());
        assert_eq!(copy, s);
    }
}
