//! The ease.ml server façade (Figure 1): programs in, best models out.
//!
//! [`EaseMl`] wires together the declarative layer (program parsing,
//! schema matching, task generation), the shared storage behind
//! `feed`/`refine`, the multi-tenant scheduler, and the simulated cluster.
//! Training outcomes come from a pluggable *quality oracle* — in production
//! this is the deep-learning subsystem; in this reproduction it is the
//! dataset's (quality, cost) matrix or any user-supplied closure.

use crate::checkpoint::{
    decode_u64, encode_u64, read_checkpoint_file, write_checkpoint_atomic, CheckpointDoc,
    ClusterCheckpoint, FaultCheckpoint, PickerCheckpoint, RetryPolicyCheckpoint, RunCheckpoint,
    TenantCheckpoint, UserCheckpoint, CHECKPOINT_VERSION,
};
use crate::cluster::{Cluster, CompletedRun, TrainingRun};
use crate::durability::{
    censor_kind, plan_replay, Durability, LifecycleAction, RecoveryReport, ReplayAttempt,
};
use crate::fault::{FaultConfig, FaultInjector, FaultRates, TrainingError};
use crate::job::{Job, JobStatus};
use crate::retry::{RetryPolicy, RetryState};
use crate::storage::SharedStorage;
use crate::user::UserAccount;
use crate::witness::{DecisionLog, RoundWitness};
use easeml_bandit::{BetaSchedule, GpUcb};
use easeml_dsl::{parse_program, ModelId, ParseError};
use easeml_gp::ArmPrior;
use easeml_obs::{Component, Event, RecorderHandle};
use easeml_sched::{Hybrid, HybridState, PickRule, Tenant, UserPicker};
use easeml_wal::{read_log, truncate_log, DurableEvent};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::collections::VecDeque;
use std::path::Path;
use std::time::Instant;

/// One user's entry in a [`StatusSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct UserStatus {
    /// Tenant index.
    pub user: usize,
    /// Display name of the user / research group.
    pub name: String,
    /// Job lifecycle state (`"queued"` / `"exploring"` / `"complete"`).
    pub status: String,
    /// Training runs completed for this user.
    pub served: usize,
    /// Cost charged to this user so far (censored runs included).
    pub cost: f64,
    /// Name of the best model found so far, if any run completed.
    pub best_model: Option<String>,
    /// Accuracy of that best model.
    pub best_accuracy: Option<f64>,
    /// Failed (censored) runs charged to this user.
    pub failed: usize,
}

/// A point-in-time view of the whole service, built by
/// [`EaseMl::status_snapshot`] and serialized by [`EaseMl::status_json`]
/// for the `/status` telemetry endpoint.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StatusSnapshot {
    /// Total simulated time (cost) the cluster has consumed.
    pub elapsed_cost: f64,
    /// Total training runs completed across all users.
    pub completed_runs: usize,
    /// Number of registered users.
    pub num_users: usize,
    /// Per-user status, in tenant-index order.
    pub users: Vec<UserStatus>,
    /// Total failed (censored) runs across all users.
    pub failed_runs: usize,
}

/// Outcome of one training run as reported by the quality oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingOutcome {
    /// Accuracy the model reached.
    pub accuracy: f64,
    /// Execution cost (simulated GPU-hours).
    pub cost: f64,
}

/// A function deciding how well candidate `model` of user `user` performs —
/// fallibly: a real trainer can crash, time out, or return junk, and the
/// oracle reports that through [`TrainingError`].
pub type QualityOracle =
    Box<dyn FnMut(usize, ModelId) -> Result<TrainingOutcome, TrainingError> + Send>;

/// Why [`EaseMl::try_run_round`] could not run a round at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundError {
    /// No users are registered; there is nothing to schedule.
    NoUsers,
    /// Every registered tenant has retired; nothing is eligible for a
    /// round until another tenant joins.
    NoActiveUsers,
}

impl std::fmt::Display for RoundError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoundError::NoUsers => write!(f, "no registered users"),
            RoundError::NoActiveUsers => write!(f, "all registered users have retired"),
        }
    }
}

impl std::error::Error for RoundError {}

/// How one scheduling round ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoundResult {
    /// A training run completed (possibly after censored retries).
    Completed(TrainingOutcome),
    /// Every attempt failed: the round is censored. The cluster clock and
    /// the user's bill advanced by `cost_consumed`, but no observation
    /// entered the posterior.
    Censored {
        /// The final attempt's error.
        error: TrainingError,
        /// Total cost charged across this round's failed attempts
        /// (including backoff).
        cost_consumed: f64,
    },
}

/// What one call to [`EaseMl::try_run_round`] did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundOutcome {
    /// The user served this round.
    pub user: usize,
    /// The last model attempted.
    pub model: ModelId,
    /// Training attempts made (1 when nothing failed).
    pub attempts: u64,
    /// Completed outcome or censored failure.
    pub result: RoundResult,
}

impl RoundOutcome {
    /// The completed outcome, if the round was not censored.
    pub fn completed(&self) -> Option<TrainingOutcome> {
        match self.result {
            RoundResult::Completed(outcome) => Some(outcome),
            RoundResult::Censored { .. } => None,
        }
    }
}

/// The ease.ml service: multiple users sharing one cluster, with automatic
/// model exploration scheduled by HYBRID (the system default).
pub struct EaseMl {
    users: Vec<UserAccount>,
    /// Original program sources, aligned with `users` — what a checkpoint
    /// stores so restore can re-register everyone identically.
    programs: Vec<String>,
    jobs: Vec<Job>,
    tenants: Vec<Tenant>,
    storage: SharedStorage,
    cluster: Mutex<Cluster>,
    picker: Mutex<Hybrid>,
    oracle: QualityOracle,
    rng: Mutex<StdRng>,
    warmed_up: Mutex<usize>,
    step: Mutex<usize>,
    /// Total rounds executed (warm-up and censored rounds included); the
    /// clock quarantine probation is measured against.
    rounds: Mutex<u64>,
    noise_var: f64,
    delta: f64,
    fault: Option<FaultInjector>,
    retry_policy: RetryPolicy,
    retry_state: RetryState,
    recorder: RecorderHandle,
    /// Decision provenance: the rolling digest + bounded witness emitter
    /// every round folds into.
    witness: Mutex<DecisionLog>,
    /// Write-ahead durability: noop by default, so the hot path pays one
    /// branch per logging site unless a WAL is attached.
    durability: Durability,
    /// Recovery substitution queue: while `Some`, `try_run_round` pops
    /// logged attempt outcomes instead of calling the oracle.
    replay: Option<VecDeque<ReplayAttempt>>,
}

impl EaseMl {
    /// Creates a server with the given quality oracle and RNG seed.
    pub fn new(oracle: QualityOracle, seed: u64) -> Self {
        EaseMl {
            users: Vec::new(),
            programs: Vec::new(),
            jobs: Vec::new(),
            tenants: Vec::new(),
            storage: SharedStorage::new(),
            cluster: Mutex::new(Cluster::single_device()),
            picker: Mutex::new(Hybrid::ease_ml()),
            oracle,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            warmed_up: Mutex::new(0),
            step: Mutex::new(0),
            rounds: Mutex::new(0),
            noise_var: 1e-3,
            delta: 0.1,
            fault: None,
            retry_policy: RetryPolicy::default(),
            retry_state: RetryState::new(),
            recorder: RecorderHandle::noop(),
            witness: Mutex::new(DecisionLog::new()),
            durability: Durability::noop(),
            replay: None,
        }
    }

    /// Rolling digest (16 hex chars) of every decision made so far — equal
    /// digests mean equal decision sequences ([`crate::witness`]).
    pub fn state_digest(&self) -> String {
        self.witness.lock().digest_hex()
    }

    /// Replaces the witness bound K (resets the digest; call before the
    /// first round).
    pub fn set_witness_top_k(&mut self, top_k: usize) {
        *self.witness.lock() = DecisionLog::with_top_k(top_k);
    }

    /// Attaches (or with `None` removes) a deterministic fault injector:
    /// every oracle success is passed through its fault model before the
    /// scheduler sees it.
    pub fn set_fault_injector(&mut self, injector: Option<FaultInjector>) {
        self.fault = injector;
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.fault.as_ref()
    }

    /// Replaces the retry/quarantine policy (defaults to
    /// [`RetryPolicy::default`]).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry_policy = policy;
    }

    /// The active retry/quarantine policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry_policy
    }

    /// Total rounds executed so far (censored rounds included).
    pub fn rounds_executed(&self) -> u64 {
        *self.rounds.lock()
    }

    /// Arms of `user` currently quarantined (masked out of GP-UCB).
    pub fn quarantined_arms(&self, user: usize) -> Vec<usize> {
        self.tenants[user].policy().masked_arms()
    }

    /// Attaches an observability sink: the HYBRID picker, every tenant's
    /// GP-UCB policy (existing and future), and the round driver emit
    /// structured events through `recorder`. The default server runs with a
    /// disabled handle and stays allocation-free.
    pub fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder.clone();
        self.picker.lock().set_recorder(recorder.clone());
        self.cluster.lock().set_recorder(recorder.clone());
        self.durability.set_recorder(recorder.clone());
        for tenant in &mut self.tenants {
            let id = tenant.id();
            tenant.policy_mut().set_recorder(recorder.clone(), id);
        }
    }

    /// Attaches write-ahead durability: every state mutation in
    /// [`EaseMl::try_run_round`] appends a [`DurableEvent`] through the
    /// handle. The default server runs with a noop handle that costs one
    /// branch per logging site.
    pub fn set_durability(&mut self, durability: Durability) {
        durability.set_recorder(self.recorder.clone());
        self.durability = durability;
    }

    /// The durability handle (noop unless attached).
    pub fn durability(&self) -> &Durability {
        &self.durability
    }

    /// Registers a user by source program: parses the DSL, matches
    /// templates, creates the job and its tenant bandit. Returns the user
    /// id.
    ///
    /// # Errors
    ///
    /// Returns the parse/validation error for malformed programs, or a
    /// string-wrapped error when template matching fails.
    pub fn register_user(&mut self, name: &str, program_src: &str) -> Result<usize, ParseError> {
        let program = parse_program(program_src)?;
        let id = self.users.len();
        let job = Job::new(id, program.clone()).map_err(|m| ParseError::new(0, m))?;
        let k = job.candidate_models().len();
        // Fresh users start from an uninformative prior; the production
        // system swaps in the empirical kernel as training logs accumulate.
        let beta = BetaSchedule::MultiTenant {
            max_cost: 1.0,
            num_tenants: (id + 1).max(1),
            max_arms: k,
            delta: self.delta,
        };
        let policy = GpUcb::cost_oblivious(ArmPrior::independent(k, 0.05), self.noise_var, beta)
            .with_recorder(self.recorder.clone(), id);
        self.tenants.push(Tenant::new(id, policy));
        self.jobs.push(job);
        self.users.push(UserAccount::new(id, name, program));
        self.programs.push(program_src.to_string());
        Ok(id)
    }

    /// Registers a tenant *mid-run*: [`EaseMl::register_user`] plus the
    /// durable and observable lifecycle events that make the join
    /// recoverable — a [`DurableEvent::TenantJoined`] carrying the program
    /// source (so a post-checkpoint join replays through the identical
    /// registration path) and an [`Event::TenantJoined`] for traces.
    ///
    /// The new tenant is served its warm-up round before the picker sees
    /// it, exactly like an initially-registered tenant.
    ///
    /// # Errors
    ///
    /// Same as [`EaseMl::register_user`].
    pub fn add_tenant(&mut self, name: &str, program_src: &str) -> Result<usize, ParseError> {
        let id = self.register_user(name, program_src)?;
        let round = *self.rounds.lock();
        let arms = self.jobs[id].candidate_models().len() as u64;
        let at = self.cluster.lock().makespan();
        self.durability.append(|| DurableEvent::TenantJoined {
            round,
            user: id as u64,
            arms,
            name: name.to_string(),
            program: program_src.to_string(),
        });
        self.recorder.emit(|| Event::TenantJoined {
            user: id,
            name: name.to_string(),
            models: arms,
            at,
            parent: easeml_obs::current_span(),
        });
        Ok(id)
    }

    /// Retires a tenant: its slot and GP state survive (indices stay
    /// stable, quarantine bookkeeping keeps ticking), but it leaves every
    /// picker's candidate set and is never served again unless re-activated
    /// by a future join under a new slot. Idempotent — retiring a retired
    /// tenant is a no-op and logs nothing.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn retire_tenant(&mut self, user: usize) {
        assert!(user < self.tenants.len(), "no such tenant: {user}");
        if !self.tenants[user].is_active() {
            return;
        }
        self.tenants[user].set_active(false);
        let round = *self.rounds.lock();
        let (serves, at) = {
            let cluster = self.cluster.lock();
            let serves = cluster
                .history()
                .iter()
                .filter(|r| r.run.user == user && !r.run.censored)
                .count() as u64;
            (serves, cluster.makespan())
        };
        self.durability.append(|| DurableEvent::TenantRetired {
            round,
            user: user as u64,
        });
        self.recorder.emit(|| Event::TenantRetired {
            user,
            serves,
            at,
            parent: easeml_obs::current_span(),
        });
    }

    /// Whether tenant `user` is active (registered and not retired).
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn is_tenant_active(&self, user: usize) -> bool {
        self.tenants[user].is_active()
    }

    /// Number of active (non-retired) tenants.
    pub fn num_active_users(&self) -> usize {
        self.tenants.iter().filter(|t| t.is_active()).count()
    }

    /// Number of registered users.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// The user's shared-storage handle for `feed`/`refine`.
    pub fn storage(&self) -> &SharedStorage {
        &self.storage
    }

    /// The user's job (status, candidate models, best model).
    pub fn job(&self, user: usize) -> &Job {
        &self.jobs[user]
    }

    /// The `infer` operator: the best model found so far for `user`, if any
    /// run has completed.
    pub fn infer(&self, user: usize) -> Option<(ModelId, f64)> {
        self.jobs[user].best_model()
    }

    /// Executes one global scheduling round: pick a user (HYBRID), pick a
    /// model (GP-UCB), train it on the cluster, record the outcome. Returns
    /// `(user, model, outcome)`.
    ///
    /// Thin wrapper over [`EaseMl::try_run_round`] that keeps running
    /// rounds until one completes — a censored (all-attempts-failed) round
    /// still advances the cluster clock, so faults slow this call down but
    /// never corrupt it.
    ///
    /// # Panics
    ///
    /// Panics if no users are registered.
    pub fn run_round(&mut self) -> (usize, ModelId, TrainingOutcome) {
        loop {
            match self.try_run_round() {
                Ok(outcome) => {
                    if let RoundResult::Completed(result) = outcome.result {
                        return (outcome.user, outcome.model, result);
                    }
                    // Censored round: schedule again until a run completes.
                }
                Err(RoundError::NoUsers) => panic!("no registered users"),
                Err(RoundError::NoActiveUsers) => panic!("all registered users have retired"),
            }
        }
    }

    /// Executes one scheduling round without panicking: pick a user, pick a
    /// model, train — retrying failed attempts per the [`RetryPolicy`] and
    /// censoring the round if every attempt fails.
    ///
    /// Failure semantics: each failed attempt's consumed cost (plus any
    /// retry backoff) is charged to the cluster and the user as a
    /// *censored* run — the clock advances, the bill grows, but nothing
    /// enters the GP posterior, so the Theorem 1 regret accounting stays
    /// consistent. Arms that keep failing are quarantined (masked out of
    /// GP-UCB's argmax) and re-enter on probation after
    /// `probation_rounds` global rounds.
    ///
    /// # Errors
    ///
    /// [`RoundError::NoUsers`] when no users are registered.
    pub fn try_run_round(&mut self) -> Result<RoundOutcome, RoundError> {
        if self.users.is_empty() {
            return Err(RoundError::NoUsers);
        }
        if !self.tenants.iter().any(Tenant::is_active) {
            return Err(RoundError::NoActiveUsers);
        }
        let _round = self.recorder.time(Component::SimRound);
        let _step_span = self.recorder.span("scheduler_step");
        let mut picker = self.picker.lock();
        let mut rng = self.rng.lock();
        let mut warmed = self.warmed_up.lock();
        let mut step = self.step.lock();
        let mut rounds = self.rounds.lock();

        // Probation: unmask arms whose quarantine has expired.
        let release_round = *rounds;
        for (user, arm) in self.retry_state.due_releases(*rounds) {
            if arm < self.tenants[user].policy().posterior().num_arms() {
                self.tenants[user].policy_mut().set_arm_masked(arm, false);
                self.durability.append(|| DurableEvent::ProbationRelease {
                    round: release_round,
                    user: user as u64,
                    arm: arm as u64,
                });
            }
        }

        // Warm-up pass (Algorithm 2 lines 1–4): serve each user once.
        // Tenants that retired before their warm-up came due are skipped
        // without a round; a mid-run join re-enters this branch because
        // `tenants` grew past the cursor. With every tenant active the
        // cursor never skips, so fixed-tenancy runs are bit-identical.
        while *warmed < self.tenants.len() && !self.tenants[*warmed].is_active() {
            *warmed += 1;
        }
        let (user, from_warmup) = if *warmed < self.tenants.len() {
            let u = *warmed;
            *warmed += 1;
            (u, true)
        } else {
            let _pick_span = self.recorder.span("pick_user");
            let _pick = self.recorder.time(Component::SchedulerPick);
            let u = picker.pick(&self.tenants, *step, &mut *rng);
            *step += 1;
            (u, false)
        };

        // Witness context: what the picker ranked, gathered only when a
        // recorder is live (the digest fold below needs none of it).
        let mut wlog = self.witness.lock();
        let witness_round = *rounds;
        let witness_live = self.recorder.is_enabled();
        let (user_scores, candidates, path) = if !witness_live {
            (Vec::new(), Vec::new(), String::new())
        } else if from_warmup {
            (Vec::new(), Vec::new(), "warm-up".to_string())
        } else {
            let _w = self.recorder.span("witness");
            (
                picker.decision_scores(&self.tenants),
                picker.last_candidates().to_vec(),
                picker.pick_path(),
            )
        };

        self.durability.append(|| DurableEvent::RoundStart {
            round: witness_round,
        });
        let mut failures: u64 = 0;
        let mut censored_cost = 0.0;
        loop {
            let attempt = failures + 1;
            // Re-select each attempt: quarantine during this round's
            // failures immediately steers retries to another arm.
            let arm_expl = witness_live.then(|| {
                let _w = self.recorder.span("witness");
                self.tenants[user].policy().explain_selection(wlog.top_k())
            });
            let model_idx = self.tenants[user].select_model();
            let model = self.jobs[user].candidate_models()[model_idx];
            // WAL replay substitutes the logged attempt outcome for the
            // oracle + injector: the attempt loop itself draws no RNG, so
            // every other branch below runs exactly as it did live. The
            // injector's per-(user, arm) attempt counter still advances —
            // it keys the fault hash for post-recovery rounds.
            let replayed = self
                .replay
                .as_mut()
                .and_then(std::collections::VecDeque::pop_front);
            let result = match replayed {
                Some(attempt) => {
                    if let Some(injector) = self.fault.as_mut() {
                        injector.note_attempt(user, model_idx);
                    }
                    attempt.into_result()
                }
                None => {
                    let raw = (self.oracle)(user, model);
                    // Inject faults into clean outcomes, then validate: a
                    // non-finite quality or non-positive cost is unusable
                    // whether injected or organic.
                    let injected = match raw {
                        Ok(outcome) => match self.fault.as_mut() {
                            Some(injector) => injector.apply(user, model_idx, outcome),
                            None => Ok(outcome),
                        },
                        Err(error) => Err(error),
                    };
                    match injected {
                        Ok(outcome) => {
                            if outcome.accuracy.is_finite()
                                && outcome.cost.is_finite()
                                && outcome.cost > 0.0
                            {
                                Ok(outcome)
                            } else {
                                let charge = if outcome.cost.is_finite() && outcome.cost > 0.0 {
                                    outcome.cost
                                } else {
                                    0.0
                                };
                                Err((TrainingError::InvalidQuality, charge))
                            }
                        }
                        Err(error) => Err((error, error.cost_consumed())),
                    }
                }
            };
            match &result {
                Ok(outcome) => {
                    let (accuracy, cost) = (outcome.accuracy, outcome.cost);
                    self.durability
                        .append(|| DurableEvent::ObservationResolved {
                            round: witness_round,
                            user: user as u64,
                            arm: model_idx as u64,
                            accuracy,
                            cost,
                        });
                }
                Err((error, charge)) => {
                    let (charge, kind) = (*charge, censor_kind(error));
                    self.durability
                        .append(|| DurableEvent::ObservationCensored {
                            round: witness_round,
                            user: user as u64,
                            arm: model_idx as u64,
                            charge,
                            kind,
                        });
                }
            }
            match result {
                Ok(outcome) => {
                    {
                        let _train = self.recorder.span("train");
                        self.cluster.lock().execute(TrainingRun::new(
                            user,
                            model_idx,
                            outcome.cost,
                        ));
                        self.recorder.emit(|| Event::TrainingCompleted {
                            user,
                            model: model_idx,
                            cost: outcome.cost,
                            quality: outcome.accuracy,
                            parent: easeml_obs::current_span(),
                        });
                    }
                    self.tenants[user].observe(model_idx, outcome.accuracy);
                    self.jobs[user].record_result(model_idx, outcome.accuracy);
                    self.retry_state.record_success(user, model_idx);
                    picker.after_observe(&self.tenants, user);
                    self.recorder.count("server/rounds", 1);
                    *rounds += 1;
                    wlog.record(
                        &self.recorder,
                        RoundWitness {
                            round: witness_round,
                            user,
                            arm: model_idx,
                            user_scores: &user_scores,
                            candidates: &candidates,
                            arm_explanation: arm_expl.as_ref(),
                            path: path.clone(),
                            fallback: String::new(),
                            censored: false,
                        },
                    );
                    if self.durability.is_enabled() {
                        let (digest, rng_words) = (wlog.digest_value(), rng.state());
                        self.durability.append(|| DurableEvent::RoundCommit {
                            round: witness_round,
                            user: user as u64,
                            arm: model_idx as u64,
                            censored: false,
                            digest,
                            rng: rng_words,
                        });
                    }
                    return Ok(RoundOutcome {
                        user,
                        model,
                        attempts: attempt,
                        result: RoundResult::Completed(outcome),
                    });
                }
                Err((error, charge)) => {
                    failures += 1;
                    let will_retry = self.retry_policy.allows_retry(failures);
                    let backoff = if will_retry {
                        self.retry_policy.backoff_for(failures)
                    } else {
                        0.0
                    };
                    let total = charge.max(0.0) + backoff;
                    {
                        // The failed attempt is still training work: the
                        // span covers both the censored charge and the
                        // TrainingFailed emit, so the event parents under
                        // `train` exactly like the success path (and like
                        // the sim's censor_run) — profiles attribute the
                        // failure to the phase that paid for it.
                        let _train = self.recorder.span("train");
                        if total > 0.0 && total.is_finite() {
                            self.cluster
                                .lock()
                                .execute(TrainingRun::censored(user, model_idx, total));
                            censored_cost += total;
                        }
                        self.recorder.emit(|| Event::TrainingFailed {
                            user,
                            model: model_idx,
                            cost: total,
                            kind: error.kind().to_string(),
                            attempt,
                            parent: easeml_obs::current_span(),
                        });
                    }
                    self.recorder.count("server/failed-runs", 1);
                    // Quarantine on repeated (cross-round) failures.
                    let consecutive = self.retry_state.record_failure(user, model_idx);
                    let threshold = self.retry_policy.quarantine_threshold;
                    if threshold > 0
                        && consecutive >= threshold
                        && !self.tenants[user].policy().is_masked(model_idx)
                    {
                        self.tenants[user]
                            .policy_mut()
                            .set_arm_masked(model_idx, true);
                        let probation = self.retry_policy.probation_rounds;
                        self.retry_state
                            .schedule_release(*rounds + probation, user, model_idx);
                        let release_round = *rounds + probation;
                        self.durability.append(|| DurableEvent::ArmQuarantined {
                            user: user as u64,
                            arm: model_idx as u64,
                            release_round,
                        });
                        self.recorder.emit(|| Event::ArmQuarantined {
                            user,
                            model: model_idx,
                            failures: consecutive,
                            probation_rounds: probation,
                            parent: easeml_obs::current_span(),
                        });
                    }
                    if will_retry {
                        self.recorder.emit(|| Event::RetryScheduled {
                            user,
                            model: model_idx,
                            attempt: attempt + 1,
                            backoff_cost: backoff,
                            parent: easeml_obs::current_span(),
                        });
                        continue;
                    }
                    self.recorder.count("server/rounds", 1);
                    *rounds += 1;
                    wlog.record(
                        &self.recorder,
                        RoundWitness {
                            round: witness_round,
                            user,
                            arm: model_idx,
                            user_scores: &user_scores,
                            candidates: &candidates,
                            arm_explanation: arm_expl.as_ref(),
                            path: path.clone(),
                            fallback: error.kind().to_string(),
                            censored: true,
                        },
                    );
                    if self.durability.is_enabled() {
                        let (digest, rng_words) = (wlog.digest_value(), rng.state());
                        self.durability.append(|| DurableEvent::RoundCommit {
                            round: witness_round,
                            user: user as u64,
                            arm: model_idx as u64,
                            censored: true,
                            digest,
                            rng: rng_words,
                        });
                    }
                    return Ok(RoundOutcome {
                        user,
                        model,
                        attempts: attempt,
                        result: RoundResult::Censored {
                            error,
                            cost_consumed: censored_cost,
                        },
                    });
                }
            }
        }
    }

    /// Serializes the full server state to a JSON checkpoint document.
    ///
    /// The checkpoint carries the posterior *sufficient statistics* (each
    /// tenant's observation sequence — replaying it through the same
    /// numeric path rebuilds bit-identical GP state), the HYBRID freeze
    /// detector, the cluster clocks and history, per-job bests (derived
    /// from the replayed observations), the RNG stream position, and the
    /// fault/retry bookkeeping. [`EaseMl::restore`] resumes from it with
    /// the exact same remaining decision sequence as an uninterrupted run.
    pub fn checkpoint(&self) -> String {
        let rng_words = self.rng.lock().state();
        let tenants = self
            .tenants
            .iter()
            .map(|t| TenantCheckpoint {
                observations: t.policy().posterior().observations().collect(),
                masked: t.policy().masked_arms(),
                active: t.is_active(),
            })
            .collect();
        let users = self
            .users
            .iter()
            .zip(&self.programs)
            .map(|(account, program)| UserCheckpoint {
                name: account.name().to_string(),
                program: program.clone(),
            })
            .collect();
        let picker = {
            let state = self.picker.lock().export_state();
            PickerCheckpoint {
                rule: state.rule.name().to_string(),
                patience: state.patience as u64,
                frozen_rounds: state.frozen_rounds as u64,
                prev_candidates: state.prev_candidates,
                prev_best_sum: state.prev_best_sum,
                switched: state.switched,
                rr_cursor: state.rr_cursor as u64,
            }
        };
        let cluster = {
            let c = self.cluster.lock();
            ClusterCheckpoint {
                device_free_at: c.device_free_at().to_vec(),
                history: c
                    .history()
                    .iter()
                    .map(|r| RunCheckpoint {
                        user: r.run.user,
                        model: r.run.model,
                        cost: r.run.cost,
                        censored: r.run.censored,
                        device: r.device,
                        started_at: r.started_at,
                        finished_at: r.finished_at,
                    })
                    .collect(),
            }
        };
        let fault = self.fault.as_ref().map(|injector| {
            let config = injector.config();
            let flatten =
                |rates: &FaultRates| [rates.crash, rates.timeout, rates.invalid, rates.straggler];
            FaultCheckpoint {
                seed: encode_u64(config.seed),
                rates: flatten(&config.rates),
                user_overrides: config
                    .user_overrides
                    .iter()
                    .map(|(&k, r)| (k, flatten(r)))
                    .collect(),
                arm_overrides: config
                    .arm_overrides
                    .iter()
                    .map(|(&k, r)| (k, flatten(r)))
                    .collect(),
                straggler_factor: config.straggler_factor,
                crash_cost_fraction: config.crash_cost_fraction,
                timeout_factor: config.timeout_factor,
                attempts: injector
                    .attempts()
                    .iter()
                    .map(|(&(user, arm), &n)| (user, arm, n))
                    .collect(),
            }
        });
        let rounds = *self.rounds.lock();
        let (witness_digest, witness_rounds, witness_top_k) = {
            let wlog = self.witness.lock();
            (
                encode_u64(wlog.digest_value()),
                wlog.rounds(),
                wlog.top_k() as u64,
            )
        };
        let doc = CheckpointDoc {
            version: CHECKPOINT_VERSION,
            rng_state: [
                encode_u64(rng_words[0]),
                encode_u64(rng_words[1]),
                encode_u64(rng_words[2]),
                encode_u64(rng_words[3]),
            ],
            noise_var: self.noise_var,
            delta: self.delta,
            step: *self.step.lock() as u64,
            warmed_up: *self.warmed_up.lock() as u64,
            rounds,
            witness_digest,
            witness_rounds,
            witness_top_k,
            users,
            tenants,
            picker,
            cluster,
            retry_policy: RetryPolicyCheckpoint {
                max_retries: self.retry_policy.max_retries,
                backoff_cost: self.retry_policy.backoff_cost,
                backoff_factor: self.retry_policy.backoff_factor,
                quarantine_threshold: self.retry_policy.quarantine_threshold,
                probation_rounds: self.retry_policy.probation_rounds,
            },
            retry_counters: self
                .retry_state
                .counters()
                .iter()
                .map(|(&(user, arm), &n)| (user, arm, n))
                .collect(),
            retry_releases: self.retry_state.releases().to_vec(),
            fault,
        };
        let json = doc.to_json();
        self.recorder.emit(|| Event::CheckpointWritten {
            rounds,
            users: self.users.len() as u64,
            bytes: json.len() as u64,
            parent: easeml_obs::current_span(),
        });
        json
    }

    /// Rebuilds a server from a checkpoint produced by
    /// [`EaseMl::checkpoint`], resuming the experiment exactly: the GP
    /// posteriors are replayed observation-by-observation (bit-identical
    /// f64 state), the RNG continues its stream, and the fault injector's
    /// attempt counters pick up where they left off — so the remaining
    /// decision sequence matches an uninterrupted run.
    ///
    /// The recorder is not part of the checkpoint; attach one with
    /// [`EaseMl::set_recorder`] after restoring.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed or inconsistent field.
    pub fn restore(json: &str, oracle: QualityOracle) -> Result<Self, String> {
        let doc = CheckpointDoc::from_json(json).map_err(|e| e.to_string())?;
        let mut server = EaseMl::new(oracle, 0);
        server.noise_var = doc.noise_var;
        server.delta = doc.delta;
        // Re-register every user from its original program: id order makes
        // the β-schedules identical to the original registration sequence.
        for user in &doc.users {
            server
                .register_user(&user.name, &user.program)
                .map_err(|e| format!("restoring user {:?}: {e}", user.name))?;
        }
        if doc.tenants.len() != server.tenants.len() {
            return Err(format!(
                "checkpoint holds {} tenant states for {} users",
                doc.tenants.len(),
                server.tenants.len()
            ));
        }
        // Replay the observation sequences: same inputs through the same
        // numeric path rebuild bit-identical posterior state and job bests.
        for (idx, tenant_ckpt) in doc.tenants.iter().enumerate() {
            let num_arms = server.tenants[idx].policy().posterior().num_arms();
            for &(arm, reward) in &tenant_ckpt.observations {
                if arm >= num_arms {
                    return Err(format!("tenant {idx}: observation arm {arm} out of range"));
                }
                server.tenants[idx].observe(arm, reward);
                server.jobs[idx].record_result(arm, reward);
            }
            for &arm in &tenant_ckpt.masked {
                if arm >= num_arms {
                    return Err(format!("tenant {idx}: masked arm {arm} out of range"));
                }
                server.tenants[idx].policy_mut().set_arm_masked(arm, true);
            }
            server.tenants[idx].set_active(tenant_ckpt.active);
        }
        let rule = PickRule::from_name(&doc.picker.rule)
            .ok_or_else(|| format!("unknown picker rule {:?}", doc.picker.rule))?;
        if doc.picker.patience == 0 {
            return Err("picker patience must be positive".into());
        }
        server.picker = Mutex::new(Hybrid::from_state(HybridState {
            rule,
            patience: doc.picker.patience as usize,
            frozen_rounds: doc.picker.frozen_rounds as usize,
            prev_candidates: doc.picker.prev_candidates.clone(),
            prev_best_sum: doc.picker.prev_best_sum,
            switched: doc.picker.switched,
            rr_cursor: doc.picker.rr_cursor as usize,
        }));
        if doc.cluster.device_free_at.is_empty() {
            return Err("cluster checkpoint has no devices".into());
        }
        let history = doc
            .cluster
            .history
            .iter()
            .map(|r| CompletedRun {
                run: TrainingRun {
                    user: r.user,
                    model: r.model,
                    cost: r.cost,
                    censored: r.censored,
                },
                device: r.device,
                started_at: r.started_at,
                finished_at: r.finished_at,
            })
            .collect();
        server.cluster = Mutex::new(Cluster::from_state(
            doc.cluster.device_free_at.clone(),
            history,
        ));
        let mut rng_words = [0u64; 4];
        for (i, word) in doc.rng_state.iter().enumerate() {
            rng_words[i] = decode_u64(word)?;
        }
        server.rng = Mutex::new(StdRng::from_state(rng_words));
        server.warmed_up = Mutex::new(doc.warmed_up as usize);
        server.step = Mutex::new(doc.step as usize);
        server.rounds = Mutex::new(doc.rounds);
        // Continue the rolling digest chain instead of restarting it, so a
        // restored run's digest matches the uninterrupted run's at every
        // subsequent round (the bit-exactness oracle recovery asserts on).
        server.witness = Mutex::new(DecisionLog::from_state(
            doc.witness_top_k as usize,
            decode_u64(&doc.witness_digest)?,
            doc.witness_rounds,
        ));
        server.retry_policy = RetryPolicy {
            max_retries: doc.retry_policy.max_retries,
            backoff_cost: doc.retry_policy.backoff_cost,
            backoff_factor: doc.retry_policy.backoff_factor,
            quarantine_threshold: doc.retry_policy.quarantine_threshold,
            probation_rounds: doc.retry_policy.probation_rounds,
        };
        server.retry_state = RetryState::from_parts(
            doc.retry_counters
                .iter()
                .map(|&(user, arm, n)| ((user, arm), n))
                .collect(),
            doc.retry_releases.clone(),
        );
        if let Some(fault) = &doc.fault {
            let unflatten = |rates: &[f64; 4]| FaultRates {
                crash: rates[0],
                timeout: rates[1],
                invalid: rates[2],
                straggler: rates[3],
            };
            let mut config = FaultConfig::new(decode_u64(&fault.seed)?);
            config.rates = unflatten(&fault.rates);
            config.user_overrides = fault
                .user_overrides
                .iter()
                .map(|(k, r)| (*k, unflatten(r)))
                .collect();
            config.arm_overrides = fault
                .arm_overrides
                .iter()
                .map(|(k, r)| (*k, unflatten(r)))
                .collect();
            config.straggler_factor = fault.straggler_factor;
            config.crash_cost_fraction = fault.crash_cost_fraction;
            config.timeout_factor = fault.timeout_factor;
            let mut injector = FaultInjector::new(config);
            injector.restore_attempts(
                fault
                    .attempts
                    .iter()
                    .map(|&(user, arm, n)| ((user, arm), n))
                    .collect(),
            );
            server.fault = Some(injector);
        }
        Ok(server)
    }

    /// Writes a checkpoint to `path` atomically (temp file + rename +
    /// fsync), then — when a WAL is attached — seals and compacts the log
    /// behind a [`DurableEvent::CheckpointMark`]. The WAL suffix after the
    /// mark is exactly the delta a recovery must replay.
    ///
    /// # Errors
    ///
    /// Filesystem errors from the atomic write; WAL errors are recorded in
    /// [`Durability::stats_json`] instead of propagated.
    pub fn checkpoint_to(&self, path: &Path) -> Result<(), String> {
        let json = self.checkpoint();
        write_checkpoint_atomic(path, &json).map_err(|e| e.to_string())?;
        let rounds = *self.rounds.lock();
        let digest = self.witness.lock().digest_value();
        self.durability.mark_checkpoint(rounds, digest);
        Ok(())
    }

    /// Re-applies one logged tenant-lifecycle mutation during recovery.
    ///
    /// Joins are deduplicated by slot against the restored checkpoint: a
    /// join the checkpoint already covers is validated (the slot must hold
    /// the same number of candidate models) and skipped; a join one past
    /// the end re-registers through the identical [`EaseMl::register_user`]
    /// path. Retirements are idempotent.
    fn apply_lifecycle(&mut self, action: LifecycleAction) -> Result<(), String> {
        match action {
            LifecycleAction::Join {
                user,
                arms,
                name,
                program,
            } => {
                let user = user as usize;
                if user < self.users.len() {
                    let have = self.jobs[user].candidate_models().len() as u64;
                    if have != arms {
                        return Err(format!(
                            "logged join for tenant {user} declares {arms} models, \
                             checkpoint slot holds {have}"
                        ));
                    }
                    return Ok(());
                }
                if user != self.users.len() {
                    return Err(format!(
                        "logged join for tenant {user} skips slots ({} registered)",
                        self.users.len()
                    ));
                }
                let id = self
                    .register_user(&name, &program)
                    .map_err(|e| format!("re-registering tenant {user} ({name:?}): {e}"))?;
                let have = self.jobs[id].candidate_models().len() as u64;
                if have != arms {
                    return Err(format!(
                        "re-registered tenant {user} matched {have} models, log says {arms}"
                    ));
                }
                Ok(())
            }
            LifecycleAction::Retire { user } => {
                let user = user as usize;
                if user >= self.tenants.len() {
                    return Err(format!("logged retirement for unknown tenant {user}"));
                }
                self.tenants[user].set_active(false);
                Ok(())
            }
        }
    }

    /// Rebuilds a server from the checkpoint at `checkpoint_path` plus the
    /// WAL in `wal_dir`: restore, then replay every committed round logged
    /// after the checkpoint by substituting its logged attempt outcomes
    /// for the oracle — O(delta) work, independent of total history.
    ///
    /// Replay is asserted **bit-exact**: after each round the rolling
    /// witness digest and the RNG words must equal the values the original
    /// process logged in that round's [`DurableEvent::RoundCommit`]. Any
    /// divergence is an error, never a silent approximation. Records after
    /// the last commit (a round that was in flight when the process died)
    /// are counted, reported, and physically truncated — an uncommitted
    /// round is never resurrected.
    ///
    /// The returned server has no WAL attached; call
    /// [`EaseMl::set_durability`] (typically on the same `wal_dir`, which
    /// the truncation left consistent) to resume logging.
    ///
    /// # Errors
    ///
    /// Unreadable/corrupt checkpoint, unreadable WAL, undecodable records,
    /// round gaps between checkpoint and log, or any replay divergence.
    pub fn recover(
        checkpoint_path: &Path,
        wal_dir: &Path,
        oracle: QualityOracle,
    ) -> Result<(Self, RecoveryReport), String> {
        let start = Instant::now();
        let doc = read_checkpoint_file(checkpoint_path).map_err(|e| e.to_string())?;
        let mut server = EaseMl::restore(&doc.to_json(), oracle)?;
        let from_rounds = server.rounds_executed();
        let log =
            read_log(wal_dir).map_err(|e| format!("reading WAL {}: {e}", wal_dir.display()))?;
        let plan = plan_replay(&log, from_rounds)?;
        let cut = plan.cut;
        let dropped = log
            .records
            .iter()
            .filter(|r| cut.is_none_or(|c| (r.segment, r.end_offset) > c))
            .count() as u64;
        let replayed = plan.rounds.len() as u64;
        for round in plan.rounds {
            for action in round.lifecycle {
                server.apply_lifecycle(action)?;
            }
            let expected = round.commit;
            server.replay = Some(round.attempts);
            let outcome = server
                .try_run_round()
                .map_err(|e| format!("replaying round {}: {e:?}", expected.round))?;
            let leftover = server.replay.take().is_some_and(|queue| !queue.is_empty());
            if leftover {
                return Err(format!(
                    "round {}: logged attempts left unconsumed by replay",
                    expected.round
                ));
            }
            let digest = server.witness.lock().digest_value();
            if digest != expected.digest {
                return Err(format!(
                    "round {}: replay digest {digest:016x} != logged {:016x}",
                    expected.round, expected.digest
                ));
            }
            if server.rng.lock().state() != expected.rng {
                return Err(format!(
                    "round {}: replay RNG state diverged from the log",
                    expected.round
                ));
            }
            let censored = matches!(outcome.result, RoundResult::Censored { .. });
            if outcome.user as u64 != expected.user || censored != expected.censored {
                return Err(format!(
                    "round {}: replay outcome (user {}, censored {censored}) != logged \
                     (user {}, censored {})",
                    expected.round, outcome.user, expected.user, expected.censored
                ));
            }
        }
        // Tenancy changes logged after the last commit are durable even
        // without a round behind them — re-apply before resuming.
        for action in plan.tail {
            server.apply_lifecycle(action)?;
        }
        truncate_log(wal_dir, cut).map_err(|e| format!("truncating WAL suffix: {e}"))?;
        let report = RecoveryReport {
            checkpoint_rounds: from_rounds,
            replayed_rounds: replayed,
            skipped_records: plan.skipped,
            dropped_records: dropped,
            torn_tail: log.torn.as_ref().map(|t| {
                format!(
                    "{} in segment {} at offset {}",
                    t.reason.name(),
                    t.segment,
                    t.offset
                )
            }),
            final_rounds: server.rounds_executed(),
            final_digest: server.state_digest(),
            replay_ns: start.elapsed().as_nanos() as u64,
        };
        Ok((server, report))
    }

    /// Runs rounds until the simulated cluster has consumed `budget` cost.
    /// Returns the number of rounds executed.
    pub fn run_until(&mut self, budget: f64) -> usize {
        let mut rounds = 0;
        while self.cluster.lock().makespan() < budget {
            self.run_round();
            rounds += 1;
        }
        rounds
    }

    /// Total simulated time consumed so far.
    pub fn elapsed(&self) -> f64 {
        self.cluster.lock().makespan()
    }

    /// Job statuses of all users (for dashboards).
    pub fn statuses(&self) -> Vec<JobStatus> {
        self.jobs.iter().map(Job::status).collect()
    }

    /// A point-in-time view of every user's job: status, served runs, cost
    /// consumed, and current best model.
    pub fn status_snapshot(&self) -> StatusSnapshot {
        let cluster = self.cluster.lock();
        let elapsed_cost = cluster.makespan();
        let history = cluster.history();
        let users = self
            .users
            .iter()
            .zip(&self.jobs)
            .map(|(account, job)| {
                let best = job.best_model();
                let runs = history.iter().filter(|r| r.run.user == account.id());
                UserStatus {
                    user: account.id(),
                    name: account.name().to_string(),
                    status: job.status().name().to_string(),
                    served: runs.clone().filter(|r| !r.run.censored).count(),
                    cost: runs.clone().map(|r| r.run.cost).sum(),
                    best_model: best.map(|(model, _)| model.name().to_string()),
                    best_accuracy: best.map(|(_, accuracy)| accuracy),
                    failed: runs.filter(|r| r.run.censored).count(),
                }
            })
            .collect();
        StatusSnapshot {
            elapsed_cost,
            completed_runs: history.iter().filter(|r| !r.run.censored).count(),
            num_users: self.users.len(),
            users,
            failed_runs: history.iter().filter(|r| r.run.censored).count(),
        }
    }

    /// The status snapshot as compact JSON — what a telemetry hub serves
    /// at `/status`.
    pub fn status_json(&self) -> String {
        easeml_obs::json::to_string(&self.status_snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IMAGE_PROG: &str = "{input: {[Tensor[64, 64, 3]], []}, output: {[Tensor[5]], []}}";
    const TS_PROG: &str = "{input: {[Tensor[16]], [next]}, output: {[Tensor[3]], []}}";

    /// Oracle: model quality depends on user parity and the model's zoo
    /// cost (a deterministic, discriminative toy).
    fn toy_oracle() -> QualityOracle {
        Box::new(|user, model| {
            let info = model.info();
            let base = if user % 2 == 0 { 0.7 } else { 0.5 };
            Ok(TrainingOutcome {
                accuracy: (base + 0.02 * (info.year as f64 - 2010.0)).min(0.99),
                cost: info.relative_cost,
            })
        })
    }

    #[test]
    fn register_parses_and_matches() {
        let mut s = EaseMl::new(toy_oracle(), 1);
        let u0 = s.register_user("vision-lab", IMAGE_PROG).unwrap();
        let u1 = s.register_user("meteo-lab", TS_PROG).unwrap();
        assert_eq!((u0, u1), (0, 1));
        assert_eq!(s.num_users(), 2);
        assert_eq!(s.job(0).candidate_models().len(), 8);
        assert_eq!(s.job(1).candidate_models().len(), 4);
        assert_eq!(s.infer(0), None);
    }

    #[test]
    fn malformed_program_is_rejected() {
        let mut s = EaseMl::new(toy_oracle(), 1);
        assert!(s.register_user("broken", "{input: }").is_err());
        assert_eq!(s.num_users(), 0);
    }

    #[test]
    fn rounds_explore_and_infer_improves() {
        let mut s = EaseMl::new(toy_oracle(), 2);
        s.register_user("a", IMAGE_PROG).unwrap();
        s.register_user("b", TS_PROG).unwrap();
        let (user, _model, outcome) = s.run_round();
        assert_eq!(user, 0, "warm-up serves user 0 first");
        assert!(outcome.accuracy > 0.0);
        let (user, _, _) = s.run_round();
        assert_eq!(user, 1, "warm-up serves user 1 second");
        // After warm-up both users have a model to infer with.
        assert!(s.infer(0).is_some());
        assert!(s.infer(1).is_some());
        // Keep exploring; accuracy of the best model never drops.
        let best_before = s.infer(0).unwrap().1;
        for _ in 0..20 {
            s.run_round();
        }
        assert!(s.infer(0).unwrap().1 >= best_before);
        assert!(s.elapsed() > 0.0);
    }

    #[test]
    fn run_until_respects_budget() {
        let mut s = EaseMl::new(toy_oracle(), 3);
        s.register_user("a", IMAGE_PROG).unwrap();
        let rounds = s.run_until(10.0);
        assert!(rounds > 0);
        assert!(s.elapsed() >= 10.0);
        // Statuses reflect progress.
        assert_ne!(s.statuses()[0], JobStatus::Queued);
    }

    #[test]
    fn recorder_observes_server_rounds() {
        use easeml_obs::InMemoryRecorder;
        use std::sync::Arc;
        let mut s = EaseMl::new(toy_oracle(), 6);
        s.register_user("a", IMAGE_PROG).unwrap();
        let rec = Arc::new(InMemoryRecorder::new());
        s.set_recorder(RecorderHandle::new(rec.clone()));
        s.register_user("b", TS_PROG).unwrap(); // after attach: still wired
        for _ in 0..12 {
            s.run_round();
        }
        assert_eq!(rec.counter("server/rounds"), 12);
        // The cluster executed one run per round and tracks its clock.
        assert_eq!(rec.counter("cluster/runs"), 12);
        assert_eq!(rec.gauge("cluster/makespan"), Some(s.elapsed()));
        let counts = rec.event_counts();
        assert_eq!(counts.get("TrainingCompleted"), Some(&12));
        // Both tenants' policies report their pulls, including the one
        // registered after the recorder was attached.
        assert_eq!(counts.get("ArmChosen"), Some(&12));
        assert_eq!(counts.get("PosteriorUpdated"), Some(&12));
        let users: std::collections::BTreeSet<usize> =
            rec.events().iter().filter_map(|e| e.user()).collect();
        assert!(users.contains(&0) && users.contains(&1));
        // Post-warm-up rounds go through HYBRID, which logs its decision.
        assert!(counts.get("SchedulerDecision").copied().unwrap_or(0) >= 10);
        assert_eq!(rec.timing(Component::SimRound).count(), 12);

        // The causal span tree: every round is one scheduler_step root, and
        // every other span recorded during the round nests (transitively)
        // under one. Starts and ends pair off exactly.
        let events = rec.events();
        let mut parents = std::collections::HashMap::new();
        let mut open = Vec::new();
        let mut roots = 0usize;
        for e in &events {
            match e {
                Event::SpanStart {
                    span, parent, name, ..
                } => {
                    parents.insert(*span, (*parent, name.clone()));
                    open.push(*span);
                    if *parent == 0 {
                        roots += 1;
                        assert_eq!(name, "scheduler_step", "only step spans are roots");
                    }
                }
                Event::SpanEnd { span, .. } => {
                    assert_eq!(open.pop(), Some(*span), "spans close LIFO");
                }
                other => {
                    // Causal events recorded mid-round point at an open span.
                    if let Some(p) = open.last() {
                        assert_eq!(other.parent(), *p, "{other:?}");
                    }
                }
            }
        }
        assert!(open.is_empty(), "all spans closed");
        assert_eq!(roots, 12, "one scheduler_step per round");
        let names: std::collections::BTreeSet<&str> =
            parents.values().map(|(_, name)| name.as_str()).collect();
        for expected in [
            "scheduler_step",
            "pick_user",
            "pick_arm",
            "train",
            "posterior_update",
        ] {
            assert!(names.contains(expected), "missing span {expected}");
        }
    }

    #[test]
    fn status_snapshot_tracks_progress_and_serializes() {
        let mut s = EaseMl::new(toy_oracle(), 7);
        s.register_user("vision-lab", IMAGE_PROG).unwrap();
        s.register_user("meteo-lab", TS_PROG).unwrap();

        let snap = s.status_snapshot();
        assert_eq!(snap.num_users, 2);
        assert_eq!(snap.completed_runs, 0);
        assert_eq!(snap.elapsed_cost, 0.0);
        assert_eq!(snap.users[0].status, "queued");
        assert_eq!(snap.users[0].best_model, None);

        for _ in 0..8 {
            s.run_round();
        }
        let snap = s.status_snapshot();
        assert_eq!(snap.completed_runs, 8);
        assert!((snap.elapsed_cost - s.elapsed()).abs() < 1e-12);
        assert_eq!(snap.users.len(), 2);
        assert_eq!(snap.users[0].name, "vision-lab");
        assert_eq!(snap.users[0].status, "exploring");
        assert!(snap.users[0].best_model.is_some());
        assert!(snap.users[0].best_accuracy.unwrap() > 0.0);
        // Per-user served/cost reconcile with the global totals.
        let served: usize = snap.users.iter().map(|u| u.served).sum();
        assert_eq!(served, 8);
        let cost: f64 = snap.users.iter().map(|u| u.cost).sum();
        assert!((cost - snap.elapsed_cost).abs() < 1e-9);

        // The JSON form carries the fields the /status endpoint promises.
        let json = s.status_json();
        assert!(json.starts_with("{\"elapsed_cost\":"), "{json}");
        assert!(json.contains("\"users\":["), "{json}");
        assert!(json.contains("\"name\":\"vision-lab\""), "{json}");
        assert!(json.contains("\"status\":\"exploring\""), "{json}");
    }

    #[test]
    fn feed_and_refine_through_the_server() {
        let mut s = EaseMl::new(toy_oracle(), 4);
        let u = s.register_user("a", IMAGE_PROG).unwrap();
        s.storage().feed(u, vec![(vec![0.0; 4], vec![1.0])]);
        assert_eq!(s.storage().count(u), 1);
        assert!(s.storage().refine(u, 0, false));
        assert_eq!(s.storage().enabled_count(u), 0);
    }

    #[test]
    #[should_panic(expected = "no registered users")]
    fn round_without_users_panics() {
        let mut s = EaseMl::new(toy_oracle(), 5);
        s.run_round();
    }

    #[test]
    fn try_run_round_without_users_reports_no_users() {
        let mut s = EaseMl::new(toy_oracle(), 5);
        assert_eq!(s.try_run_round(), Err(RoundError::NoUsers));
    }

    #[test]
    fn crashing_arm_is_censored_and_quarantined() {
        use easeml_obs::InMemoryRecorder;
        use std::sync::Arc;
        let mut s = EaseMl::new(toy_oracle(), 8);
        s.register_user("a", IMAGE_PROG).unwrap();
        let rec = Arc::new(InMemoryRecorder::new());
        s.set_recorder(RecorderHandle::new(rec.clone()));
        // Arm 0 (the first argmax choice on a flat prior) always crashes.
        let mut config = FaultConfig::new(13);
        config.arm_overrides.insert(
            0,
            FaultRates {
                crash: 1.0,
                ..FaultRates::NONE
            },
        );
        s.set_fault_injector(Some(FaultInjector::new(config)));

        let out = s.try_run_round().unwrap();
        assert_eq!(out.user, 0, "warm-up serves user 0");
        assert_eq!(out.attempts, 3, "one attempt plus two retries");
        assert!(out.completed().is_none());
        match out.result {
            RoundResult::Censored {
                error,
                cost_consumed,
            } => {
                assert_eq!(error.kind(), "crash");
                assert!(cost_consumed > 0.0, "crashes and backoff bill the user");
            }
            other => panic!("expected a censored round, got {other:?}"),
        }
        assert_eq!(s.quarantined_arms(0), vec![0]);

        // Censored rounds advance the clock and the bill, but never the
        // posterior or the job's best model.
        let snap = s.status_snapshot();
        assert_eq!(snap.completed_runs, 0);
        assert_eq!(snap.failed_runs, 3);
        assert_eq!(snap.users[0].served, 0);
        assert_eq!(snap.users[0].failed, 3);
        assert!(snap.users[0].cost > 0.0);
        assert!((snap.users[0].cost - snap.elapsed_cost).abs() < 1e-12);
        assert!(s.infer(0).is_none());

        // The next round steers around the quarantined arm and completes.
        let out = s.try_run_round().unwrap();
        assert_eq!(out.attempts, 1);
        assert!(out.completed().is_some());
        assert!(s.infer(0).is_some());

        let counts = rec.event_counts();
        assert_eq!(counts.get("TrainingFailed"), Some(&3));
        assert_eq!(counts.get("RetryScheduled"), Some(&2));
        assert_eq!(counts.get("ArmQuarantined"), Some(&1));
        assert_eq!(counts.get("TrainingCompleted"), Some(&1));
    }

    #[test]
    fn quarantined_arms_reenter_on_probation() {
        use easeml_obs::InMemoryRecorder;
        use std::sync::Arc;
        let mut s = EaseMl::new(toy_oracle(), 9);
        s.register_user("a", IMAGE_PROG).unwrap();
        let rec = Arc::new(InMemoryRecorder::new());
        s.set_recorder(RecorderHandle::new(rec.clone()));
        s.set_retry_policy(RetryPolicy {
            probation_rounds: 2,
            ..RetryPolicy::default()
        });
        let mut config = FaultConfig::new(13);
        config.arm_overrides.insert(
            0,
            FaultRates {
                crash: 1.0,
                ..FaultRates::NONE
            },
        );
        s.set_fault_injector(Some(FaultInjector::new(config)));

        // Round 1 quarantines arm 0; round 2 completes on another arm.
        s.try_run_round().unwrap();
        assert_eq!(s.quarantined_arms(0), vec![0]);
        s.try_run_round().unwrap();
        assert_eq!(s.quarantined_arms(0), vec![0], "probation not due yet");
        // Round 3: probation releases arm 0 before scheduling. Either the
        // picker avoids it (mask now empty) or selects it again — in which
        // case it crashes and is re-quarantined, emitting a second
        // ArmQuarantined. Both outcomes prove the release fired.
        s.try_run_round().unwrap();
        let requarantined = rec.event_counts().get("ArmQuarantined") == Some(&2);
        assert!(
            requarantined || s.quarantined_arms(0).is_empty(),
            "arm 0 was never released from quarantine"
        );
    }

    #[test]
    fn run_round_skips_censored_rounds() {
        let mut s = EaseMl::new(toy_oracle(), 10);
        s.register_user("a", IMAGE_PROG).unwrap();
        let config = FaultConfig::new(21).with_crash_rate(0.3);
        s.set_fault_injector(Some(FaultInjector::new(config)));
        // run_round always hands back a completed outcome, riding over any
        // censored rounds in between.
        for _ in 0..20 {
            let (_, _, outcome) = s.run_round();
            assert!(outcome.accuracy.is_finite());
        }
        let snap = s.status_snapshot();
        assert_eq!(snap.completed_runs, 20);
    }

    #[test]
    fn checkpoint_restore_reproduces_the_remaining_trajectory() {
        let make = || {
            let mut s = EaseMl::new(toy_oracle(), 42);
            s.register_user("vision-lab", IMAGE_PROG).unwrap();
            s.register_user("meteo-lab", TS_PROG).unwrap();
            let config = FaultConfig::new(99)
                .with_crash_rate(0.25)
                .with_stragglers(0.2, 2.5);
            s.set_fault_injector(Some(FaultInjector::new(config)));
            s
        };
        // Uninterrupted reference: 30 rounds.
        let mut reference = make();
        let all: Vec<RoundOutcome> = (0..30)
            .map(|_| reference.try_run_round().unwrap())
            .collect();

        // Interrupted run: 12 rounds, checkpoint, "crash", restore, resume.
        let mut first = make();
        for _ in 0..12 {
            first.try_run_round().unwrap();
        }
        let ckpt = first.checkpoint();
        drop(first);
        let mut resumed = EaseMl::restore(&ckpt, toy_oracle()).unwrap();
        assert_eq!(resumed.rounds_executed(), 12);
        let tail: Vec<RoundOutcome> = (0..18).map(|_| resumed.try_run_round().unwrap()).collect();

        // The resumed trajectory is *exactly* the uninterrupted one.
        assert_eq!(&all[12..], &tail[..]);
        assert_eq!(
            resumed.elapsed().to_bits(),
            reference.elapsed().to_bits(),
            "cluster clocks agree to the bit"
        );
        assert_eq!(resumed.status_snapshot(), reference.status_snapshot());
        assert_eq!(
            resumed.checkpoint(),
            reference.checkpoint(),
            "checkpoints of equal states are byte-identical"
        );
    }

    #[test]
    fn retired_tenants_are_never_served_and_joins_get_warmup() {
        let mut s = EaseMl::new(toy_oracle(), 11);
        s.register_user("a", IMAGE_PROG).unwrap();
        s.register_user("b", TS_PROG).unwrap();
        for _ in 0..10 {
            s.try_run_round().unwrap();
        }
        s.retire_tenant(0);
        assert!(!s.is_tenant_active(0));
        assert_eq!(s.num_active_users(), 1);
        for _ in 0..15 {
            let out = s.try_run_round().unwrap();
            assert_ne!(out.user, 0, "retired tenant was served");
        }
        // A mid-run join is warm-up-served on its very next round.
        let id = s.add_tenant("c", IMAGE_PROG).unwrap();
        assert_eq!(id, 2);
        let out = s.try_run_round().unwrap();
        assert_eq!(out.user, id, "joined tenant must get its warm-up round");
        for _ in 0..15 {
            assert_ne!(s.try_run_round().unwrap().user, 0);
        }
        // Retiring everyone leaves nothing to schedule.
        s.retire_tenant(1);
        s.retire_tenant(2);
        assert_eq!(s.try_run_round(), Err(RoundError::NoActiveUsers));
        // Retirement is idempotent.
        s.retire_tenant(1);
        assert_eq!(s.num_active_users(), 0);
    }

    #[test]
    fn checkpoint_preserves_tenant_activity() {
        let mut s = EaseMl::new(toy_oracle(), 12);
        s.register_user("a", IMAGE_PROG).unwrap();
        s.register_user("b", TS_PROG).unwrap();
        for _ in 0..6 {
            s.try_run_round().unwrap();
        }
        s.retire_tenant(1);
        let ckpt = s.checkpoint();
        let mut restored = EaseMl::restore(&ckpt, toy_oracle()).unwrap();
        assert!(restored.is_tenant_active(0));
        assert!(!restored.is_tenant_active(1));
        // Both continue identically: the retired tenant stays invisible.
        let a: Vec<usize> = (0..10).map(|_| s.try_run_round().unwrap().user).collect();
        let b: Vec<usize> = (0..10)
            .map(|_| restored.try_run_round().unwrap().user)
            .collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|&u| u != 1));
    }

    #[test]
    fn recovery_replays_post_checkpoint_joins_and_retirements() {
        use easeml_wal::WalOptions;
        let dir = std::env::temp_dir().join(format!(
            "easeml-server-lifecycle-recovery-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt_path = dir.join("ckpt.json");
        let wal_dir = dir.join("wal");

        let mut s = EaseMl::new(toy_oracle(), 13);
        s.set_durability(Durability::open(&wal_dir, WalOptions::default()).unwrap());
        s.register_user("a", IMAGE_PROG).unwrap();
        s.register_user("b", TS_PROG).unwrap();
        for _ in 0..5 {
            s.try_run_round().unwrap();
        }
        s.checkpoint_to(&ckpt_path).unwrap();
        // Post-checkpoint: a join, rounds, a retirement, more rounds — all
        // of it only in the WAL suffix.
        s.add_tenant("c", IMAGE_PROG).unwrap();
        for _ in 0..4 {
            s.try_run_round().unwrap();
        }
        s.retire_tenant(0);
        for _ in 0..4 {
            s.try_run_round().unwrap();
        }
        let live_digest = s.state_digest();
        let live_rounds = s.rounds_executed();
        drop(s);

        let (mut recovered, report) = EaseMl::recover(&ckpt_path, &wal_dir, toy_oracle()).unwrap();
        assert_eq!(report.checkpoint_rounds, 5);
        assert_eq!(report.replayed_rounds, 8);
        assert_eq!(recovered.rounds_executed(), live_rounds);
        assert_eq!(recovered.state_digest(), live_digest);
        assert_eq!(recovered.num_users(), 3);
        assert!(!recovered.is_tenant_active(0), "retirement must replay");
        assert!(recovered.is_tenant_active(2), "join must replay");
        // The recovered server schedules on: tenant 0 stays invisible.
        for _ in 0..10 {
            assert_ne!(recovered.try_run_round().unwrap().user, 0);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restore_rejects_malformed_documents() {
        assert!(EaseMl::restore("not json", toy_oracle()).is_err());
        assert!(EaseMl::restore("{\"version\":1}", toy_oracle()).is_err());
        let err = match EaseMl::restore("{\"version\":99}", toy_oracle()) {
            Err(err) => err,
            Ok(_) => panic!("version 99 must be rejected"),
        };
        assert!(err.contains("unsupported checkpoint version"), "{err}");
    }
}
