//! The ease.ml server façade (Figure 1): programs in, best models out.
//!
//! [`EaseMl`] wires together the declarative layer (program parsing,
//! schema matching, task generation), the shared storage behind
//! `feed`/`refine`, the multi-tenant scheduler, and the simulated cluster.
//! Training outcomes come from a pluggable *quality oracle* — in production
//! this is the deep-learning subsystem; in this reproduction it is the
//! dataset's (quality, cost) matrix or any user-supplied closure.

use crate::cluster::{Cluster, TrainingRun};
use crate::job::{Job, JobStatus};
use crate::storage::SharedStorage;
use crate::user::UserAccount;
use easeml_bandit::{BetaSchedule, GpUcb};
use easeml_dsl::{parse_program, ModelId, ParseError};
use easeml_gp::ArmPrior;
use easeml_obs::{Component, Event, RecorderHandle};
use easeml_sched::{Hybrid, Tenant, UserPicker};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// One user's entry in a [`StatusSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct UserStatus {
    /// Tenant index.
    pub user: usize,
    /// Display name of the user / research group.
    pub name: String,
    /// Job lifecycle state (`"queued"` / `"exploring"` / `"complete"`).
    pub status: String,
    /// Training runs completed for this user.
    pub served: usize,
    /// Cost charged to this user so far.
    pub cost: f64,
    /// Name of the best model found so far, if any run completed.
    pub best_model: Option<String>,
    /// Accuracy of that best model.
    pub best_accuracy: Option<f64>,
}

/// A point-in-time view of the whole service, built by
/// [`EaseMl::status_snapshot`] and serialized by [`EaseMl::status_json`]
/// for the `/status` telemetry endpoint.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StatusSnapshot {
    /// Total simulated time (cost) the cluster has consumed.
    pub elapsed_cost: f64,
    /// Total training runs completed across all users.
    pub completed_runs: usize,
    /// Number of registered users.
    pub num_users: usize,
    /// Per-user status, in tenant-index order.
    pub users: Vec<UserStatus>,
}

/// Outcome of one training run as reported by the quality oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingOutcome {
    /// Accuracy the model reached.
    pub accuracy: f64,
    /// Execution cost (simulated GPU-hours).
    pub cost: f64,
}

/// A function deciding how well candidate `model` of user `user` performs.
pub type QualityOracle = Box<dyn Fn(usize, ModelId) -> TrainingOutcome + Send>;

/// The ease.ml service: multiple users sharing one cluster, with automatic
/// model exploration scheduled by HYBRID (the system default).
pub struct EaseMl {
    users: Vec<UserAccount>,
    jobs: Vec<Job>,
    tenants: Vec<Tenant>,
    storage: SharedStorage,
    cluster: Mutex<Cluster>,
    picker: Mutex<Hybrid>,
    oracle: QualityOracle,
    rng: Mutex<StdRng>,
    warmed_up: Mutex<usize>,
    step: Mutex<usize>,
    noise_var: f64,
    delta: f64,
    recorder: RecorderHandle,
}

impl EaseMl {
    /// Creates a server with the given quality oracle and RNG seed.
    pub fn new(oracle: QualityOracle, seed: u64) -> Self {
        EaseMl {
            users: Vec::new(),
            jobs: Vec::new(),
            tenants: Vec::new(),
            storage: SharedStorage::new(),
            cluster: Mutex::new(Cluster::single_device()),
            picker: Mutex::new(Hybrid::ease_ml()),
            oracle,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            warmed_up: Mutex::new(0),
            step: Mutex::new(0),
            noise_var: 1e-3,
            delta: 0.1,
            recorder: RecorderHandle::noop(),
        }
    }

    /// Attaches an observability sink: the HYBRID picker, every tenant's
    /// GP-UCB policy (existing and future), and the round driver emit
    /// structured events through `recorder`. The default server runs with a
    /// disabled handle and stays allocation-free.
    pub fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder.clone();
        self.picker.lock().set_recorder(recorder.clone());
        self.cluster.lock().set_recorder(recorder.clone());
        for tenant in &mut self.tenants {
            let id = tenant.id();
            tenant.policy_mut().set_recorder(recorder.clone(), id);
        }
    }

    /// Registers a user by source program: parses the DSL, matches
    /// templates, creates the job and its tenant bandit. Returns the user
    /// id.
    ///
    /// # Errors
    ///
    /// Returns the parse/validation error for malformed programs, or a
    /// string-wrapped error when template matching fails.
    pub fn register_user(&mut self, name: &str, program_src: &str) -> Result<usize, ParseError> {
        let program = parse_program(program_src)?;
        let id = self.users.len();
        let job = Job::new(id, program.clone()).map_err(|m| ParseError::new(0, m))?;
        let k = job.candidate_models().len();
        // Fresh users start from an uninformative prior; the production
        // system swaps in the empirical kernel as training logs accumulate.
        let beta = BetaSchedule::MultiTenant {
            max_cost: 1.0,
            num_tenants: (id + 1).max(1),
            max_arms: k,
            delta: self.delta,
        };
        let policy = GpUcb::cost_oblivious(ArmPrior::independent(k, 0.05), self.noise_var, beta)
            .with_recorder(self.recorder.clone(), id);
        self.tenants.push(Tenant::new(id, policy));
        self.jobs.push(job);
        self.users.push(UserAccount::new(id, name, program));
        Ok(id)
    }

    /// Number of registered users.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// The user's shared-storage handle for `feed`/`refine`.
    pub fn storage(&self) -> &SharedStorage {
        &self.storage
    }

    /// The user's job (status, candidate models, best model).
    pub fn job(&self, user: usize) -> &Job {
        &self.jobs[user]
    }

    /// The `infer` operator: the best model found so far for `user`, if any
    /// run has completed.
    pub fn infer(&self, user: usize) -> Option<(ModelId, f64)> {
        self.jobs[user].best_model()
    }

    /// Executes one global scheduling round: pick a user (HYBRID), pick a
    /// model (GP-UCB), train it on the cluster, record the outcome. Returns
    /// `(user, model, outcome)`.
    ///
    /// # Panics
    ///
    /// Panics if no users are registered.
    pub fn run_round(&mut self) -> (usize, ModelId, TrainingOutcome) {
        assert!(!self.users.is_empty(), "no registered users");
        let _round = self.recorder.time(Component::SimRound);
        let _step_span = self.recorder.span("scheduler_step");
        let mut picker = self.picker.lock();
        let mut rng = self.rng.lock();
        let mut warmed = self.warmed_up.lock();
        let mut step = self.step.lock();

        // Warm-up pass (Algorithm 2 lines 1–4): serve each user once.
        let user = if *warmed < self.tenants.len() {
            let u = *warmed;
            *warmed += 1;
            u
        } else {
            let _pick_span = self.recorder.span("pick_user");
            let _pick = self.recorder.time(Component::SchedulerPick);
            let u = picker.pick(&self.tenants, *step, &mut *rng);
            *step += 1;
            u
        };

        let model_idx = self.tenants[user].select_model();
        let model = self.jobs[user].candidate_models()[model_idx];
        let outcome = (self.oracle)(user, model);
        {
            let _train = self.recorder.span("train");
            self.cluster.lock().execute(TrainingRun {
                user,
                model: model_idx,
                cost: outcome.cost,
            });
            self.recorder.emit(|| Event::TrainingCompleted {
                user,
                model: model_idx,
                cost: outcome.cost,
                quality: outcome.accuracy,
                parent: easeml_obs::current_span(),
            });
        }
        self.tenants[user].observe(model_idx, outcome.accuracy);
        self.jobs[user].record_result(model_idx, outcome.accuracy);
        picker.after_observe(&self.tenants, user);
        self.recorder.count("server/rounds", 1);
        (user, model, outcome)
    }

    /// Runs rounds until the simulated cluster has consumed `budget` cost.
    /// Returns the number of rounds executed.
    pub fn run_until(&mut self, budget: f64) -> usize {
        let mut rounds = 0;
        while self.cluster.lock().makespan() < budget {
            self.run_round();
            rounds += 1;
        }
        rounds
    }

    /// Total simulated time consumed so far.
    pub fn elapsed(&self) -> f64 {
        self.cluster.lock().makespan()
    }

    /// Job statuses of all users (for dashboards).
    pub fn statuses(&self) -> Vec<JobStatus> {
        self.jobs.iter().map(Job::status).collect()
    }

    /// A point-in-time view of every user's job: status, served runs, cost
    /// consumed, and current best model.
    pub fn status_snapshot(&self) -> StatusSnapshot {
        let cluster = self.cluster.lock();
        let elapsed_cost = cluster.makespan();
        let history = cluster.history();
        let users = self
            .users
            .iter()
            .zip(&self.jobs)
            .map(|(account, job)| {
                let best = job.best_model();
                let runs = history.iter().filter(|r| r.run.user == account.id());
                UserStatus {
                    user: account.id(),
                    name: account.name().to_string(),
                    status: job.status().name().to_string(),
                    served: runs.clone().count(),
                    cost: runs.map(|r| r.run.cost).sum(),
                    best_model: best.map(|(model, _)| model.name().to_string()),
                    best_accuracy: best.map(|(_, accuracy)| accuracy),
                }
            })
            .collect();
        StatusSnapshot {
            elapsed_cost,
            completed_runs: history.len(),
            num_users: self.users.len(),
            users,
        }
    }

    /// The status snapshot as compact JSON — what a telemetry hub serves
    /// at `/status`.
    pub fn status_json(&self) -> String {
        easeml_obs::json::to_string(&self.status_snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IMAGE_PROG: &str = "{input: {[Tensor[64, 64, 3]], []}, output: {[Tensor[5]], []}}";
    const TS_PROG: &str = "{input: {[Tensor[16]], [next]}, output: {[Tensor[3]], []}}";

    /// Oracle: model quality depends on user parity and the model's zoo
    /// cost (a deterministic, discriminative toy).
    fn toy_oracle() -> QualityOracle {
        Box::new(|user, model| {
            let info = model.info();
            let base = if user % 2 == 0 { 0.7 } else { 0.5 };
            TrainingOutcome {
                accuracy: (base + 0.02 * (info.year as f64 - 2010.0)).min(0.99),
                cost: info.relative_cost,
            }
        })
    }

    #[test]
    fn register_parses_and_matches() {
        let mut s = EaseMl::new(toy_oracle(), 1);
        let u0 = s.register_user("vision-lab", IMAGE_PROG).unwrap();
        let u1 = s.register_user("meteo-lab", TS_PROG).unwrap();
        assert_eq!((u0, u1), (0, 1));
        assert_eq!(s.num_users(), 2);
        assert_eq!(s.job(0).candidate_models().len(), 8);
        assert_eq!(s.job(1).candidate_models().len(), 4);
        assert_eq!(s.infer(0), None);
    }

    #[test]
    fn malformed_program_is_rejected() {
        let mut s = EaseMl::new(toy_oracle(), 1);
        assert!(s.register_user("broken", "{input: }").is_err());
        assert_eq!(s.num_users(), 0);
    }

    #[test]
    fn rounds_explore_and_infer_improves() {
        let mut s = EaseMl::new(toy_oracle(), 2);
        s.register_user("a", IMAGE_PROG).unwrap();
        s.register_user("b", TS_PROG).unwrap();
        let (user, _model, outcome) = s.run_round();
        assert_eq!(user, 0, "warm-up serves user 0 first");
        assert!(outcome.accuracy > 0.0);
        let (user, _, _) = s.run_round();
        assert_eq!(user, 1, "warm-up serves user 1 second");
        // After warm-up both users have a model to infer with.
        assert!(s.infer(0).is_some());
        assert!(s.infer(1).is_some());
        // Keep exploring; accuracy of the best model never drops.
        let best_before = s.infer(0).unwrap().1;
        for _ in 0..20 {
            s.run_round();
        }
        assert!(s.infer(0).unwrap().1 >= best_before);
        assert!(s.elapsed() > 0.0);
    }

    #[test]
    fn run_until_respects_budget() {
        let mut s = EaseMl::new(toy_oracle(), 3);
        s.register_user("a", IMAGE_PROG).unwrap();
        let rounds = s.run_until(10.0);
        assert!(rounds > 0);
        assert!(s.elapsed() >= 10.0);
        // Statuses reflect progress.
        assert_ne!(s.statuses()[0], JobStatus::Queued);
    }

    #[test]
    fn recorder_observes_server_rounds() {
        use easeml_obs::InMemoryRecorder;
        use std::sync::Arc;
        let mut s = EaseMl::new(toy_oracle(), 6);
        s.register_user("a", IMAGE_PROG).unwrap();
        let rec = Arc::new(InMemoryRecorder::new());
        s.set_recorder(RecorderHandle::new(rec.clone()));
        s.register_user("b", TS_PROG).unwrap(); // after attach: still wired
        for _ in 0..12 {
            s.run_round();
        }
        assert_eq!(rec.counter("server/rounds"), 12);
        // The cluster executed one run per round and tracks its clock.
        assert_eq!(rec.counter("cluster/runs"), 12);
        assert_eq!(rec.gauge("cluster/makespan"), Some(s.elapsed()));
        let counts = rec.event_counts();
        assert_eq!(counts.get("TrainingCompleted"), Some(&12));
        // Both tenants' policies report their pulls, including the one
        // registered after the recorder was attached.
        assert_eq!(counts.get("ArmChosen"), Some(&12));
        assert_eq!(counts.get("PosteriorUpdated"), Some(&12));
        let users: std::collections::BTreeSet<usize> =
            rec.events().iter().filter_map(|e| e.user()).collect();
        assert!(users.contains(&0) && users.contains(&1));
        // Post-warm-up rounds go through HYBRID, which logs its decision.
        assert!(counts.get("SchedulerDecision").copied().unwrap_or(0) >= 10);
        assert_eq!(rec.timing(Component::SimRound).count(), 12);

        // The causal span tree: every round is one scheduler_step root, and
        // every other span recorded during the round nests (transitively)
        // under one. Starts and ends pair off exactly.
        let events = rec.events();
        let mut parents = std::collections::HashMap::new();
        let mut open = Vec::new();
        let mut roots = 0usize;
        for e in &events {
            match e {
                Event::SpanStart {
                    span, parent, name, ..
                } => {
                    parents.insert(*span, (*parent, name.clone()));
                    open.push(*span);
                    if *parent == 0 {
                        roots += 1;
                        assert_eq!(name, "scheduler_step", "only step spans are roots");
                    }
                }
                Event::SpanEnd { span, .. } => {
                    assert_eq!(open.pop(), Some(*span), "spans close LIFO");
                }
                other => {
                    // Causal events recorded mid-round point at an open span.
                    if let Some(p) = open.last() {
                        assert_eq!(other.parent(), *p, "{other:?}");
                    }
                }
            }
        }
        assert!(open.is_empty(), "all spans closed");
        assert_eq!(roots, 12, "one scheduler_step per round");
        let names: std::collections::BTreeSet<&str> =
            parents.values().map(|(_, name)| name.as_str()).collect();
        for expected in [
            "scheduler_step",
            "pick_user",
            "pick_arm",
            "train",
            "posterior_update",
        ] {
            assert!(names.contains(expected), "missing span {expected}");
        }
    }

    #[test]
    fn status_snapshot_tracks_progress_and_serializes() {
        let mut s = EaseMl::new(toy_oracle(), 7);
        s.register_user("vision-lab", IMAGE_PROG).unwrap();
        s.register_user("meteo-lab", TS_PROG).unwrap();

        let snap = s.status_snapshot();
        assert_eq!(snap.num_users, 2);
        assert_eq!(snap.completed_runs, 0);
        assert_eq!(snap.elapsed_cost, 0.0);
        assert_eq!(snap.users[0].status, "queued");
        assert_eq!(snap.users[0].best_model, None);

        for _ in 0..8 {
            s.run_round();
        }
        let snap = s.status_snapshot();
        assert_eq!(snap.completed_runs, 8);
        assert!((snap.elapsed_cost - s.elapsed()).abs() < 1e-12);
        assert_eq!(snap.users.len(), 2);
        assert_eq!(snap.users[0].name, "vision-lab");
        assert_eq!(snap.users[0].status, "exploring");
        assert!(snap.users[0].best_model.is_some());
        assert!(snap.users[0].best_accuracy.unwrap() > 0.0);
        // Per-user served/cost reconcile with the global totals.
        let served: usize = snap.users.iter().map(|u| u.served).sum();
        assert_eq!(served, 8);
        let cost: f64 = snap.users.iter().map(|u| u.cost).sum();
        assert!((cost - snap.elapsed_cost).abs() < 1e-9);

        // The JSON form carries the fields the /status endpoint promises.
        let json = s.status_json();
        assert!(json.starts_with("{\"elapsed_cost\":"), "{json}");
        assert!(json.contains("\"users\":["), "{json}");
        assert!(json.contains("\"name\":\"vision-lab\""), "{json}");
        assert!(json.contains("\"status\":\"exploring\""), "{json}");
    }

    #[test]
    fn feed_and_refine_through_the_server() {
        let mut s = EaseMl::new(toy_oracle(), 4);
        let u = s.register_user("a", IMAGE_PROG).unwrap();
        s.storage().feed(u, vec![(vec![0.0; 4], vec![1.0])]);
        assert_eq!(s.storage().count(u), 1);
        assert!(s.storage().refine(u, 0, false));
        assert_eq!(s.storage().enabled_count(u), 0);
    }

    #[test]
    #[should_panic(expected = "no registered users")]
    fn round_without_users_panics() {
        let mut s = EaseMl::new(toy_oracle(), 5);
        s.run_round();
    }
}
