//! The trace-driven multi-tenant simulation (§5's evaluation protocol).
//!
//! A simulation replays a [`Dataset`]'s (quality, cost) matrix: at every
//! global round the scheduler picks a user, the user's model-picking policy
//! picks a model, the simulated cluster "trains" it — consuming the pair's
//! cost and revealing the pair's quality — and the accuracy losses of all
//! users are recorded. This is exactly how the paper evaluates ease.ml
//! against its baselines: the schedulers only ever see (reward, cost)
//! observations, never the hidden matrix.

use crate::cluster::{Cluster, TrainingRun};
use crate::fault::{FaultConfig, FaultInjector};
use crate::witness::{DecisionLog, RoundWitness};
use easeml_bandit::policies::FixedOrder;
use easeml_bandit::{ArmPolicy, BetaSchedule, GpUcb};
use easeml_data::Dataset;
use easeml_dsl::zoo::{most_cited_order, most_recent_order, IMAGE_CLASSIFIERS};
use easeml_gp::ArmPrior;
use easeml_linalg::vec_ops;
use easeml_obs::{Component, Event, RecorderHandle};
use easeml_sched::{Fcfs, Greedy, Hybrid, PickRule, RandomPicker, RoundRobin, Tenant, UserPicker};

/// Which multi-tenant scheduler to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Round-robin users; each user trains the most-cited network first
    /// (§5.2 heuristic; requires the 8-model DEEPLEARNING zoo).
    MostCited,
    /// Round-robin users; most recently published network first (§5.2).
    MostRecent,
    /// First-come-first-served users, GP-UCB models (§4.1 strawman).
    Fcfs,
    /// Round-robin users, GP-UCB models (§4.2).
    RoundRobin,
    /// Random users, GP-UCB models (§5.3 baseline).
    Random,
    /// GREEDY users (Algorithm 2) with the given line-8 rule.
    Greedy(PickRule),
    /// HYBRID (§4.4) with the paper's settings.
    Hybrid,
    /// Ease.ml's shipped configuration — an alias for [`SchedulerKind::Hybrid`].
    EaseMl,
}

impl SchedulerKind {
    /// Canonical strategy name, used consistently by reports, recorded
    /// `SchedulerDecision` events, and the figure regeneration harness.
    /// GP-backed kinds match [`UserPicker::name`] of the picker they run,
    /// so a trace joins against a report row by string equality.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::MostCited => "most-cited",
            SchedulerKind::MostRecent => "most-recent",
            SchedulerKind::Fcfs => "fcfs",
            SchedulerKind::RoundRobin => "round-robin",
            SchedulerKind::Random => "random",
            SchedulerKind::Greedy(PickRule::MaxUcbGap) => "greedy(max-gap)",
            SchedulerKind::Greedy(PickRule::MaxSigmaTilde) => "greedy(max-sigma)",
            SchedulerKind::Greedy(PickRule::Random) => "greedy(random)",
            SchedulerKind::Hybrid | SchedulerKind::EaseMl => "hybrid",
        }
    }

    fn is_heuristic(self) -> bool {
        matches!(self, SchedulerKind::MostCited | SchedulerKind::MostRecent)
    }
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Absolute cost budget: the simulation stops once the cumulative cost
    /// reaches it. With unit costs this is simply the number of runs.
    pub budget: f64,
    /// Whether the model-picking policies divide exploration by cost
    /// (§3.2). Budget accounting always uses the dataset's real costs.
    pub cost_aware: bool,
    /// Observation-noise variance for the GP posteriors.
    pub noise_var: f64,
    /// Failure probability δ of the β schedules.
    pub delta: f64,
    /// Optional fault injection: when set, every GP-scheduler training run
    /// passes through a seeded [`FaultInjector`] built from this
    /// configuration. Failed runs are *censored* — their consumed cost
    /// advances the budget clock but no observation enters the posterior.
    pub fault: Option<FaultConfig>,
}

impl SimConfig {
    /// The default configuration: cost-aware arm selection (the paper's
    /// §3.2 twist), observation noise variance `1e-3` (matching the
    /// synthetic workload's quality-noise scale), confidence δ = 0.1, and
    /// no fault injection.
    pub fn new(budget: f64) -> Self {
        SimConfig {
            budget,
            cost_aware: true,
            noise_var: 1e-3,
            delta: 0.1,
            fault: None,
        }
    }
}

/// The loss trajectory of one simulated run.
///
/// Following the paper's plots (every strategy's Figure-9 curve starts at
/// the same ≈0.1 loss), the mandatory first pass that trains one model per
/// user is performed *outside* the budget: `initial_loss` is the mean loss
/// after that warm-up pass, and `points` only record budgeted rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct SimTrace {
    /// The configured budget.
    pub budget: f64,
    /// Mean accuracy loss after the budget-free warm-up pass (one model per
    /// user, chosen by the strategy itself).
    pub initial_loss: f64,
    /// `(cumulative cost, mean accuracy loss over users)` after every
    /// completed training run, in order.
    pub points: Vec<(f64, f64)>,
    /// One event per budgeted round, in completion order — enough to replay
    /// the §4.1 multi-tenant regret exactly.
    pub events: Vec<SimEvent>,
    /// Per-user accuracy losses at the end of the run.
    pub final_losses: Vec<f64>,
    /// Total rounds executed.
    pub rounds: usize,
}

/// One completed training run inside a simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimEvent {
    /// The served user.
    pub user: usize,
    /// The trained model.
    pub model: usize,
    /// The run's cost.
    pub cost: f64,
    /// The revealed quality.
    pub quality: f64,
}

impl SimTrace {
    /// Replays the trace through the §4.1 multi-tenant regret tracker.
    ///
    /// # Panics
    ///
    /// Panics if `mu_stars.len()` does not cover every user in the events.
    pub fn replay_regret(&self, mu_stars: Vec<f64>) -> easeml_sched::MultiTenantRegret {
        let mut tracker = easeml_sched::MultiTenantRegret::new(mu_stars);
        for e in &self.events {
            tracker.record_round(e.user, e.quality, e.cost);
        }
        tracker
    }
}

impl SimTrace {
    /// Mean loss once the cumulative cost reaches `cost` (step
    /// interpolation; `initial_loss` before the first point).
    pub fn loss_at(&self, cost: f64) -> f64 {
        let mut last = self.initial_loss;
        for &(c, l) in &self.points {
            if c <= cost {
                last = l;
            } else {
                break;
            }
        }
        last
    }

    /// Resamples the trace onto a grid of budget fractions in `[0, 1]`.
    pub fn resample(&self, fractions: &[f64]) -> Vec<f64> {
        fractions
            .iter()
            .map(|&f| self.loss_at(f * self.budget))
            .collect()
    }
}

/// Per-user loss bookkeeping shared by both simulation paths.
struct LossTracker {
    best_possible: Vec<f64>,
    best_seen: Vec<f64>,
}

impl LossTracker {
    fn new(dataset: &Dataset) -> Self {
        LossTracker {
            best_possible: (0..dataset.num_users())
                .map(|i| dataset.best_quality(i))
                .collect(),
            best_seen: vec![0.0; dataset.num_users()],
        }
    }

    fn observe(&mut self, user: usize, quality: f64) {
        if quality > self.best_seen[user] {
            self.best_seen[user] = quality;
        }
    }

    fn losses(&self) -> Vec<f64> {
        self.best_possible
            .iter()
            .zip(&self.best_seen)
            .map(|(b, s)| (b - s).max(0.0))
            .collect()
    }

    fn mean_loss(&self) -> f64 {
        vec_ops::mean(&self.losses())
    }
}

/// Runs one multi-tenant simulation.
///
/// `dataset` must contain exactly the users to serve (select the test split
/// first); `priors` holds one GP prior per user (ignored by the heuristic
/// schedulers). The RNG drives the stochastic pickers; everything else is
/// deterministic.
///
/// # Examples
///
/// ```
/// use easeml::prelude::*;
/// use easeml_gp::ArmPrior;
/// use rand::SeedableRng;
///
/// let dataset = easeml_data::SynConfig {
///     num_users: 4,
///     num_models: 3,
///     ..easeml_data::SynConfig::paper(0.5, 0.5)
/// }
/// .generate(1);
/// let priors: Vec<ArmPrior> =
///     (0..4).map(|_| ArmPrior::independent(3, 0.05)).collect();
/// let cfg = SimConfig::new(dataset.total_cost() * 0.3);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let trace = simulate(&dataset, &priors, SchedulerKind::EaseMl, &cfg, &mut rng);
/// // Losses never increase as the budget is consumed.
/// assert!(trace.points.last().unwrap().1 <= trace.initial_loss);
/// ```
///
/// # Panics
///
/// Panics if `priors.len()` does not match the number of users (for GP
/// schedulers), if a heuristic scheduler is used on a dataset that is not
/// zoo-shaped (8 models), or on non-positive budget.
pub fn simulate(
    dataset: &Dataset,
    priors: &[ArmPrior],
    kind: SchedulerKind,
    cfg: &SimConfig,
    rng: &mut dyn rand::RngCore,
) -> SimTrace {
    simulate_with_recorder(dataset, priors, kind, cfg, rng, &RecorderHandle::noop())
}

/// [`simulate`] with an observability sink attached: the picker, every
/// tenant's GP-UCB policy, and the driver itself emit structured events
/// through `recorder`. The recorded `TrainingCompleted` events mirror the
/// returned [`SimTrace::events`] one-to-one, in order, so a JSONL trace
/// replays the run exactly. Passing [`RecorderHandle::noop`] (what
/// [`simulate`] does) keeps the hot path allocation-free.
///
/// # Panics
///
/// Same contract as [`simulate`].
pub fn simulate_with_recorder(
    dataset: &Dataset,
    priors: &[ArmPrior],
    kind: SchedulerKind,
    cfg: &SimConfig,
    rng: &mut dyn rand::RngCore,
    recorder: &RecorderHandle,
) -> SimTrace {
    assert!(cfg.budget > 0.0, "budget must be positive");
    if kind.is_heuristic() {
        simulate_heuristic(dataset, kind, cfg, recorder)
    } else {
        assert_eq!(
            priors.len(),
            dataset.num_users(),
            "one prior per user is required"
        );
        simulate_gp(dataset, priors, kind, cfg, rng, recorder)
    }
}

/// The §5.2 heuristics: round-robin users, fixed model order per user.
fn simulate_heuristic(
    dataset: &Dataset,
    kind: SchedulerKind,
    cfg: &SimConfig,
    recorder: &RecorderHandle,
) -> SimTrace {
    assert_eq!(
        dataset.num_models(),
        IMAGE_CLASSIFIERS.len(),
        "MOSTCITED/MOSTRECENT model the DEEPLEARNING zoo and need 8 models"
    );
    let order = match kind {
        SchedulerKind::MostCited => most_cited_order(&IMAGE_CLASSIFIERS),
        SchedulerKind::MostRecent => most_recent_order(&IMAGE_CLASSIFIERS),
        _ => unreachable!("not a heuristic scheduler"),
    };
    let n = dataset.num_users();
    let mut policies: Vec<FixedOrder> = (0..n).map(|_| FixedOrder::new(order.clone())).collect();
    let mut losses = LossTracker::new(dataset);
    let mut cluster = Cluster::single_device();
    let mut points = Vec::new();
    let mut dummy_rng = rand::rngs::mock::StepRng::new(0, 1);

    // Budget-free, scheduler-independent warm-up pass (see SimTrace docs):
    // each user starts with her cheapest model already trained.
    for user in 0..n {
        let model = cheapest_model(dataset, user);
        let quality = dataset.quality(user, model);
        policies[user].observe(model, quality);
        losses.observe(user, quality);
    }
    let initial_loss = losses.mean_loss();

    let mut step = 0usize;
    let mut events = Vec::new();
    while cluster.makespan() < cfg.budget {
        let _round = recorder.time(Component::SimRound);
        let _step_span = recorder.span("scheduler_step");
        let user = {
            let _pick = recorder.span("pick_user");
            let user = step % n;
            recorder.emit(|| Event::SchedulerDecision {
                round: step as u64,
                user,
                rule: kind.name().to_string(),
                scores: Vec::new(),
                parent: easeml_obs::current_span(),
            });
            user
        };
        let model = policies[user].select(&mut dummy_rng);
        let quality = dataset.quality(user, model);
        let cost = dataset.cost(user, model);
        {
            let _train = recorder.span("train");
            cluster.execute(TrainingRun::new(user, model, cost));
            recorder.emit(|| Event::TrainingCompleted {
                user,
                model,
                cost,
                quality,
                parent: easeml_obs::current_span(),
            });
        }
        policies[user].observe(model, quality);
        losses.observe(user, quality);
        points.push((cluster.makespan(), losses.mean_loss()));
        events.push(SimEvent {
            user,
            model,
            cost,
            quality,
        });
        recorder.count("sim/rounds", 1);
        step += 1;
    }
    recorder.gauge("sim/makespan", cluster.makespan());
    recorder.gauge("sim/mean-loss", losses.mean_loss());
    SimTrace {
        budget: cfg.budget,
        initial_loss,
        points,
        events,
        final_losses: losses.losses(),
        rounds: step,
    }
}

/// The user's cheapest model (lowest index on ties) — the neutral warm-up
/// choice every strategy starts from.
///
/// # Panics
///
/// Panics on an empty dataset.
pub fn cheapest_model(dataset: &Dataset, user: usize) -> usize {
    vec_ops::argmin(dataset.user_costs(user)).expect("non-empty dataset")
}

/// The multi-tenant β schedule every tenant policy runs under (the §4
/// exploration coefficient): `c* = max cost` when cost-aware, else 1.
pub fn tenant_beta(dataset: &Dataset, cfg: &SimConfig) -> BetaSchedule {
    let c_star = if cfg.cost_aware {
        dataset
            .cost_matrix()
            .as_slice()
            .iter()
            .copied()
            .fold(0.0, f64::max)
    } else {
        1.0
    };
    BetaSchedule::MultiTenant {
        max_cost: c_star,
        num_tenants: dataset.num_users(),
        max_arms: dataset.num_models(),
        delta: cfg.delta,
    }
}

/// Builds one [`Tenant`] per user with the multi-tenant β schedule derived
/// from `cfg` — the shared setup of the serial, parallel, and multi-device
/// simulators.
pub fn build_tenants(
    dataset: &Dataset,
    priors: &[ArmPrior],
    cfg: &SimConfig,
    recorder: &RecorderHandle,
) -> Vec<Tenant> {
    let n = dataset.num_users();
    let beta = tenant_beta(dataset, cfg);
    (0..n)
        .map(|i| {
            let policy = if cfg.cost_aware {
                GpUcb::cost_aware(
                    priors[i].clone(),
                    cfg.noise_var,
                    beta,
                    dataset.user_costs(i).to_vec(),
                )
            } else {
                GpUcb::cost_oblivious(priors[i].clone(), cfg.noise_var, beta)
            };
            Tenant::new(i, policy.with_recorder(recorder.clone(), i))
        })
        .collect()
}

/// Instantiates the user-picking strategy for a GP scheduler kind, with the
/// recorder attached.
///
/// # Panics
///
/// Panics on the heuristic kinds ([`SchedulerKind::MostCited`],
/// [`SchedulerKind::MostRecent`]) — those are simulated separately and have
/// no picker.
pub fn make_picker(kind: SchedulerKind, recorder: &RecorderHandle) -> Box<dyn UserPicker> {
    let mut picker: Box<dyn UserPicker> = match kind {
        SchedulerKind::Fcfs => Box::new(Fcfs::default()),
        SchedulerKind::RoundRobin => Box::new(RoundRobin::default()),
        SchedulerKind::Random => Box::new(RandomPicker::default()),
        SchedulerKind::Greedy(rule) => Box::new(Greedy::new(rule)),
        SchedulerKind::Hybrid | SchedulerKind::EaseMl => Box::new(Hybrid::ease_ml()),
        SchedulerKind::MostCited | SchedulerKind::MostRecent => {
            unreachable!("heuristics are simulated separately")
        }
    };
    picker.set_recorder(recorder.clone());
    picker
}

/// Charges a failed run's consumed cost to the cluster as a censored run
/// and emits the `TrainingFailed` event. Zero (or non-finite) charges skip
/// the cluster — there is nothing billable — but are still traced.
fn censor_run(
    cluster: &mut Cluster,
    recorder: &RecorderHandle,
    user: usize,
    model: usize,
    charge: f64,
    kind: &str,
) {
    let _train = recorder.span("train");
    if charge > 0.0 && charge.is_finite() {
        cluster.execute(TrainingRun::censored(user, model, charge));
    }
    recorder.emit(|| Event::TrainingFailed {
        user,
        model,
        cost: charge.max(0.0),
        kind: kind.to_string(),
        attempt: 1,
        parent: easeml_obs::current_span(),
    });
    recorder.count("sim/failed-rounds", 1);
}

/// GP-UCB model picking with the chosen user picker.
fn simulate_gp(
    dataset: &Dataset,
    priors: &[ArmPrior],
    kind: SchedulerKind,
    cfg: &SimConfig,
    rng: &mut dyn rand::RngCore,
    recorder: &RecorderHandle,
) -> SimTrace {
    let n = dataset.num_users();
    let mut tenants = build_tenants(dataset, priors, cfg, recorder);
    let mut picker = make_picker(kind, recorder);
    let mut losses = LossTracker::new(dataset);
    let mut cluster = Cluster::single_device();
    let mut points = Vec::new();
    let mut rounds = 0usize;
    let mut injector = cfg.fault.clone().map(FaultInjector::new);
    let mut wlog = DecisionLog::new();

    let mut events = Vec::new();
    // Serves one round. Returns whether the run completed: a fault-injected
    // failure (or NaN quality) is censored — its consumed cost advances the
    // cluster clock but nothing enters the posterior or the trace points.
    // Every round, censored or not, folds its decision into `wlog` and
    // (with a live recorder) commits a witness chain; `wctx` carries what
    // the picker ranked.
    let serve = |user: usize,
                 step: usize,
                 wctx: (&[f64], &[usize], &str),
                 wlog: &mut DecisionLog,
                 tenants: &mut Vec<Tenant>,
                 cluster: &mut Cluster,
                 losses: &mut LossTracker,
                 points: &mut Vec<(f64, f64)>,
                 events: &mut Vec<SimEvent>,
                 injector: &mut Option<FaultInjector>|
     -> bool {
        let (user_scores, candidates, path) = wctx;
        let arm_expl = recorder.is_enabled().then(|| {
            let _w = recorder.span("witness");
            tenants[user].policy().explain_selection(wlog.top_k())
        });
        let model = tenants[user].select_model();
        let witness = |arm_margin_source: Option<&easeml_bandit::ArmExplanation>,
                       wlog: &mut DecisionLog,
                       fallback: &str,
                       censored: bool| {
            wlog.record(
                recorder,
                RoundWitness {
                    round: step as u64,
                    user,
                    arm: model,
                    user_scores,
                    candidates,
                    arm_explanation: arm_margin_source,
                    path: path.to_string(),
                    fallback: fallback.to_string(),
                    censored,
                },
            );
        };
        let clean = crate::server::TrainingOutcome {
            accuracy: dataset.quality(user, model),
            cost: dataset.cost(user, model),
        };
        let outcome = match injector.as_mut() {
            Some(inj) => inj.apply(user, model, clean),
            None => Ok(clean),
        };
        let (quality, cost) = match outcome {
            Ok(out) if out.accuracy.is_finite() => (out.accuracy, out.cost),
            Ok(out) => {
                // Injected invalid quality: censor, charging the full cost.
                censor_run(cluster, recorder, user, model, out.cost, "invalid-quality");
                witness(arm_expl.as_ref(), wlog, "invalid-quality", true);
                return false;
            }
            Err(error) => {
                censor_run(
                    cluster,
                    recorder,
                    user,
                    model,
                    error.cost_consumed(),
                    error.kind(),
                );
                witness(arm_expl.as_ref(), wlog, error.kind(), true);
                return false;
            }
        };
        {
            let _train = recorder.span("train");
            cluster.execute(TrainingRun::new(user, model, cost));
            recorder.emit(|| Event::TrainingCompleted {
                user,
                model,
                cost,
                quality,
                parent: easeml_obs::current_span(),
            });
        }
        tenants[user].observe(model, quality);
        losses.observe(user, quality);
        points.push((cluster.makespan(), losses.mean_loss()));
        events.push(SimEvent {
            user,
            model,
            cost,
            quality,
        });
        recorder.count("sim/rounds", 1);
        witness(arm_expl.as_ref(), wlog, "", false);
        true
    };

    // Budget-free, scheduler-independent warm-up pass (Algorithm 2
    // lines 1–4, applied uniformly; see SimTrace docs): each user starts
    // with her cheapest model already trained — no cost charged, no point
    // recorded, and the same starting state for every strategy.
    for user in 0..n {
        let model = cheapest_model(dataset, user);
        let quality = dataset.quality(user, model);
        tenants[user].observe(model, quality);
        losses.observe(user, quality);
        picker.after_observe(&tenants, user);
    }
    let initial_loss = losses.mean_loss();

    let mut step = 0usize;
    while cluster.makespan() < cfg.budget {
        let _round = recorder.time(Component::SimRound);
        let _step_span = recorder.span("scheduler_step");
        let user = {
            let _pick_span = recorder.span("pick_user");
            let _pick = recorder.time(Component::SchedulerPick);
            picker.pick(&tenants, step, rng)
        };
        let (user_scores, candidates, path) = if recorder.is_enabled() {
            let _w = recorder.span("witness");
            (
                picker.decision_scores(&tenants),
                picker.last_candidates().to_vec(),
                picker.pick_path(),
            )
        } else {
            (Vec::new(), Vec::new(), String::new())
        };
        if serve(
            user,
            step,
            (&user_scores, &candidates, &path),
            &mut wlog,
            &mut tenants,
            &mut cluster,
            &mut losses,
            &mut points,
            &mut events,
            &mut injector,
        ) {
            picker.after_observe(&tenants, user);
            rounds += 1;
        }
        step += 1;
    }
    recorder.gauge("sim/makespan", cluster.makespan());
    recorder.gauge("sim/mean-loss", losses.mean_loss());

    SimTrace {
        budget: cfg.budget,
        initial_loss,
        points,
        events,
        final_losses: losses.losses(),
        rounds,
    }
}

/// The §4.5 / §5.3.2 multi-device extension: `devices` training runs execute
/// concurrently (at most one outstanding run per user), and each run takes
/// its full cost in wall-clock time. `cfg.budget` is interpreted as the
/// *wall-clock* horizon — no new run is dispatched after it.
///
/// Contrast with [`simulate`], which models ease.ml's shipped design: the
/// whole GPU pool as a single device. To compare the two fairly (same total
/// GPU-time), scale the single-device run's costs by `1 / devices` — all
/// GPUs speed up one model — as the `ablation_devices` bench does.
///
/// With `devices = 1` this is behaviourally identical to [`simulate`].
///
/// # Panics
///
/// Same contract as [`simulate`] plus `devices > 0`. Heuristic scheduler
/// kinds are not supported here.
pub fn simulate_parallel(
    dataset: &Dataset,
    priors: &[ArmPrior],
    kind: SchedulerKind,
    cfg: &SimConfig,
    devices: usize,
    rng: &mut dyn rand::RngCore,
) -> SimTrace {
    simulate_parallel_with_recorder(
        dataset,
        priors,
        kind,
        cfg,
        devices,
        rng,
        &RecorderHandle::noop(),
    )
}

/// [`simulate_parallel`] with an observability sink attached — the
/// multi-device counterpart of [`simulate_with_recorder`]. Events are
/// recorded at *completion* time, so the `TrainingCompleted` stream mirrors
/// [`SimTrace::events`] in completion order.
///
/// # Panics
///
/// Same contract as [`simulate_parallel`].
pub fn simulate_parallel_with_recorder(
    dataset: &Dataset,
    priors: &[ArmPrior],
    kind: SchedulerKind,
    cfg: &SimConfig,
    devices: usize,
    rng: &mut dyn rand::RngCore,
    recorder: &RecorderHandle,
) -> SimTrace {
    assert!(cfg.budget > 0.0, "budget must be positive");
    assert!(devices > 0, "need at least one device");
    assert!(
        !kind.is_heuristic(),
        "heuristic schedulers are single-device only"
    );
    assert_eq!(
        priors.len(),
        dataset.num_users(),
        "one prior per user is required"
    );
    let n = dataset.num_users();
    let mut tenants = build_tenants(dataset, priors, cfg, recorder);
    let mut picker = make_picker(kind, recorder);
    let mut losses = LossTracker::new(dataset);

    // Free warm-up, identical to the serial path.
    for user in 0..n {
        let model = cheapest_model(dataset, user);
        tenants[user].observe(model, dataset.quality(user, model));
        losses.observe(user, dataset.quality(user, model));
        picker.after_observe(&tenants, user);
    }
    let initial_loss = losses.mean_loss();

    // Event loop: (finish_time, user, model) per in-flight run; devices
    // dispatch greedily whenever free, skipping users already running.
    let mut in_flight: Vec<(f64, usize, usize)> = Vec::new(); // (finish, user, model)
    let mut busy_user = vec![false; n];
    let mut points = Vec::new();
    let mut events = Vec::new();
    let mut rounds = 0usize;
    let mut step = 0usize;
    let mut now = 0.0f64;

    let dispatch = |now: f64,
                    tenants: &[Tenant],
                    busy_user: &mut Vec<bool>,
                    in_flight: &mut Vec<(f64, usize, usize)>,
                    picker: &mut Box<dyn UserPicker>,
                    step: &mut usize,
                    rng: &mut dyn rand::RngCore|
     -> bool {
        if busy_user.iter().all(|&b| b) {
            return false;
        }
        // Ask the picker until it names a free user (bounded retries), then
        // fall back to the first free user.
        let mut user = None;
        let _pick_span = recorder.span("pick_user");
        let _pick = recorder.time(Component::SchedulerPick);
        for _ in 0..4 * busy_user.len() {
            let u = picker.pick(tenants, *step, rng);
            *step += 1;
            if !busy_user[u] {
                user = Some(u);
                break;
            }
        }
        drop(_pick);
        drop(_pick_span);
        let user = user.unwrap_or_else(|| busy_user.iter().position(|&b| !b).unwrap());
        let model = tenants[user].select_model();
        let cost = dataset.cost(user, model);
        busy_user[user] = true;
        in_flight.push((now + cost, user, model));
        true
    };

    // Fill the devices initially.
    for _ in 0..devices.min(n) {
        if !dispatch(
            now,
            &tenants,
            &mut busy_user,
            &mut in_flight,
            &mut picker,
            &mut step,
            rng,
        ) {
            break;
        }
    }

    while !in_flight.is_empty() {
        // Pop the earliest completion.
        let idx = in_flight
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        let (finish, user, model) = in_flight.swap_remove(idx);
        now = finish;
        busy_user[user] = false;
        let quality = dataset.quality(user, model);
        {
            // Completion processing is one causal step: the posterior
            // update and the completion record nest under it.
            let _step_span = recorder.span("scheduler_step");
            recorder.emit(|| Event::TrainingCompleted {
                user,
                model,
                cost: dataset.cost(user, model),
                quality,
                parent: easeml_obs::current_span(),
            });
            tenants[user].observe(model, quality);
        }
        losses.observe(user, quality);
        picker.after_observe(&tenants, user);
        points.push((finish, losses.mean_loss()));
        let cost = dataset.cost(user, model);
        events.push(SimEvent {
            user,
            model,
            cost,
            quality,
        });
        recorder.count("sim/rounds", 1);
        rounds += 1;
        if now < cfg.budget {
            dispatch(
                now,
                &tenants,
                &mut busy_user,
                &mut in_flight,
                &mut picker,
                &mut step,
                rng,
            );
        }
    }
    recorder.gauge("sim/makespan", now);
    recorder.gauge("sim/mean-loss", losses.mean_loss());

    SimTrace {
        budget: cfg.budget,
        initial_loss,
        points,
        events,
        final_losses: losses.losses(),
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeml_data::SynConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_dataset() -> Dataset {
        SynConfig {
            num_users: 5,
            num_models: 4,
            ..SynConfig::paper(0.5, 0.5)
        }
        .generate(3)
    }

    fn flat_priors(dataset: &Dataset) -> Vec<ArmPrior> {
        (0..dataset.num_users())
            .map(|_| ArmPrior::independent(dataset.num_models(), 0.05))
            .collect()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn gp_schedulers_respect_the_budget_and_record_points() {
        let d = small_dataset();
        let priors = flat_priors(&d);
        for kind in [
            SchedulerKind::Fcfs,
            SchedulerKind::RoundRobin,
            SchedulerKind::Random,
            SchedulerKind::Greedy(PickRule::MaxUcbGap),
            SchedulerKind::Hybrid,
            SchedulerKind::EaseMl,
        ] {
            let cfg = SimConfig {
                budget: 6.0,
                cost_aware: true,
                noise_var: 1e-3,
                delta: 0.1,
                fault: None,
            };
            let t = simulate(&d, &priors, kind, &cfg, &mut rng());
            assert!(!t.points.is_empty(), "{}", kind.name());
            assert_eq!(t.points.len(), t.rounds);
            // The loop stops within one run of the budget.
            let last_cost = t.points.last().unwrap().0;
            assert!(
                last_cost >= 6.0,
                "{} stopped early at {last_cost}",
                kind.name()
            );
            // Costs increase monotonically; losses never increase.
            for w in t.points.windows(2) {
                assert!(w[1].0 > w[0].0);
                assert!(w[1].1 <= w[0].1 + 1e-12);
            }
            assert_eq!(t.final_losses.len(), 5);
        }
    }

    #[test]
    fn recorder_trace_replays_sim_events_exactly() {
        use easeml_obs::InMemoryRecorder;
        use std::sync::Arc;
        let d = small_dataset();
        let priors = flat_priors(&d);
        let cfg = SimConfig::new(12.0);
        let rec = Arc::new(InMemoryRecorder::new());
        let handle = RecorderHandle::new(rec.clone());
        let trace = simulate_with_recorder(
            &d,
            &priors,
            SchedulerKind::EaseMl,
            &cfg,
            &mut rng(),
            &handle,
        );

        // Recording must not perturb the run: same seed, same trace.
        let plain = simulate(&d, &priors, SchedulerKind::EaseMl, &cfg, &mut rng());
        assert_eq!(trace.events, plain.events);
        assert_eq!(trace.points, plain.points);

        // The TrainingCompleted stream mirrors SimTrace::events one-to-one.
        let completed: Vec<SimEvent> = rec
            .events()
            .iter()
            .filter_map(|e| match *e {
                Event::TrainingCompleted {
                    user,
                    model,
                    cost,
                    quality,
                    ..
                } => Some(SimEvent {
                    user,
                    model,
                    cost,
                    quality,
                }),
                _ => None,
            })
            .collect();
        assert_eq!(completed, trace.events);

        // Every decision carries the canonical strategy name, one per
        // budgeted round, and the bandit layer reported its arm pulls.
        let counts = rec.event_counts();
        assert_eq!(
            counts.get("SchedulerDecision"),
            Some(&trace.rounds),
            "one decision per budgeted round"
        );
        assert!(rec.events().iter().all(|e| match e {
            Event::SchedulerDecision { rule, .. } => rule == SchedulerKind::EaseMl.name(),
            _ => true,
        }));
        assert!(counts.get("ArmChosen").copied().unwrap_or(0) >= trace.rounds);
        assert_eq!(rec.counter("sim/rounds"), trace.rounds as u64);
        assert_eq!(
            rec.gauge("sim/mean-loss"),
            Some(vec_ops::mean(&trace.final_losses))
        );

        // And the JSONL export round-trips the whole trace. Compare the
        // re-serialized forms: the NaN margins a non-scoring round's
        // DecisionWitness carries (NaN != NaN under PartialEq) still
        // round-trip through their `null` serialization.
        let parsed: Vec<String> = rec
            .to_jsonl()
            .lines()
            .map(|l| Event::from_json(l).unwrap().to_json())
            .collect();
        let expected: Vec<String> = rec.events().iter().map(Event::to_json).collect();
        assert_eq!(parsed, expected);
    }

    #[test]
    fn witness_chain_commits_every_round_with_a_deterministic_digest() {
        use crate::fault::FaultConfig;
        use easeml_obs::InMemoryRecorder;
        use std::sync::Arc;
        let d = small_dataset();
        let priors = flat_priors(&d);
        let cfg = SimConfig {
            budget: 14.0,
            cost_aware: true,
            noise_var: 1e-3,
            delta: 0.1,
            fault: Some(FaultConfig::new(5).with_crash_rate(0.3)),
        };
        let run = || {
            let rec = Arc::new(InMemoryRecorder::new());
            let handle = RecorderHandle::new(rec.clone());
            let trace = simulate_with_recorder(
                &d,
                &priors,
                SchedulerKind::EaseMl,
                &cfg,
                &mut rng(),
                &handle,
            );
            (rec, trace)
        };
        let (rec, trace) = run();
        let witnesses: Vec<(u64, bool, String)> = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::DecisionWitness {
                    round,
                    censored,
                    digest,
                    ..
                } => Some((*round, *censored, digest.clone())),
                _ => None,
            })
            .collect();
        let censored = witnesses.iter().filter(|w| w.1).count();
        assert!(censored > 0, "fault injection should censor some rounds");
        // One witness per step — completed and censored alike — with
        // consecutive round numbers.
        assert_eq!(witnesses.len(), trace.rounds + censored);
        for (i, w) in witnesses.iter().enumerate() {
            assert_eq!(w.0, i as u64, "witness rounds are the step counter");
        }
        // Censored witnesses name the failure; healthy ones don't.
        for e in rec.events().iter() {
            if let Event::DecisionWitness {
                censored, fallback, ..
            } = e
            {
                assert_eq!(*censored, !fallback.is_empty(), "{e:?}");
            }
        }
        // Same seed, same scenario: bit-identical digest trajectory.
        let (rec2, _) = run();
        let digests2: Vec<String> = rec2
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::DecisionWitness { digest, .. } => Some(digest.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(
            witnesses.iter().map(|w| w.2.clone()).collect::<Vec<_>>(),
            digests2
        );
        // The obs-side fold sees only committed (untorn) witnesses.
        let records = easeml_obs::witness_records(&rec.events());
        assert_eq!(records.len(), witnesses.len());
        assert!(records.iter().all(|r| !r.top_arms.is_empty()));
    }

    #[test]
    fn parallel_recorder_mirrors_completion_order() {
        use easeml_obs::InMemoryRecorder;
        use std::sync::Arc;
        let d = small_dataset();
        let priors = flat_priors(&d);
        let cfg = SimConfig::new(8.0);
        let rec = Arc::new(InMemoryRecorder::new());
        let handle = RecorderHandle::new(rec.clone());
        let trace = simulate_parallel_with_recorder(
            &d,
            &priors,
            SchedulerKind::RoundRobin,
            &cfg,
            3,
            &mut rng(),
            &handle,
        );
        let completed: Vec<SimEvent> = rec
            .events()
            .iter()
            .filter_map(|e| match *e {
                Event::TrainingCompleted {
                    user,
                    model,
                    cost,
                    quality,
                    ..
                } => Some(SimEvent {
                    user,
                    model,
                    cost,
                    quality,
                }),
                _ => None,
            })
            .collect();
        assert_eq!(completed, trace.events);
    }

    #[test]
    fn heuristic_recorder_mirrors_events() {
        use easeml_obs::InMemoryRecorder;
        use std::sync::Arc;
        let d = easeml_data::deeplearning::generate(1).select_users(&[0, 1, 2]);
        let cfg = SimConfig::new(d.total_cost() * 0.25);
        let rec = Arc::new(InMemoryRecorder::new());
        let handle = RecorderHandle::new(rec.clone());
        let trace =
            simulate_with_recorder(&d, &[], SchedulerKind::MostCited, &cfg, &mut rng(), &handle);
        let counts = rec.event_counts();
        assert_eq!(counts.get("TrainingCompleted"), Some(&trace.rounds));
        assert_eq!(counts.get("SchedulerDecision"), Some(&trace.rounds));
        assert_eq!(rec.timing(Component::SimRound).count(), trace.rounds as u64);
    }

    #[test]
    fn unit_cost_simulation_counts_runs() {
        let d = small_dataset().unit_cost_view();
        let priors = flat_priors(&d);
        let cfg = SimConfig {
            budget: 10.0, // 10 runs
            cost_aware: false,
            noise_var: 1e-3,
            delta: 0.1,
            fault: None,
        };
        let t = simulate(&d, &priors, SchedulerKind::RoundRobin, &cfg, &mut rng());
        assert_eq!(t.rounds, 10);
        assert_eq!(t.points.last().unwrap().0, 10.0);
    }

    #[test]
    fn round_robin_serves_users_evenly() {
        // Weak model influence keeps every quality strictly positive, so
        // "served at least once" is visible as a loss strictly below a*.
        let d = SynConfig {
            num_users: 5,
            num_models: 4,
            ..SynConfig::paper(0.5, 0.1)
        }
        .generate(3)
        .unit_cost_view();
        let priors = flat_priors(&d);
        let cfg = SimConfig {
            budget: 15.0,
            cost_aware: false,
            noise_var: 1e-3,
            delta: 0.1,
            fault: None,
        };
        let t = simulate(&d, &priors, SchedulerKind::RoundRobin, &cfg, &mut rng());
        // 15 unit-cost runs over 5 users: each user's loss must have had a
        // chance to drop: final losses are all below the per-user maximum.
        assert_eq!(t.rounds, 15);
        for (i, &l) in t.final_losses.iter().enumerate() {
            assert!(l < d.best_quality(i), "user {i} never served");
        }
    }

    #[test]
    fn heuristics_run_on_zoo_shaped_datasets() {
        let d = easeml_data::deeplearning::generate(1).select_users(&[0, 1, 2]);
        let cfg = SimConfig {
            budget: d.total_cost() * 0.5,
            cost_aware: true,
            noise_var: 1e-3,
            delta: 0.1,
            fault: None,
        };
        for kind in [SchedulerKind::MostCited, SchedulerKind::MostRecent] {
            let t = simulate(&d, &[], kind, &cfg, &mut rng());
            assert!(!t.points.is_empty());
            // The warm-up pass trains one model per user, so the initial
            // loss is the gap to the best model, well below a*.
            assert!(t.initial_loss < 0.5, "warm-up pass should cap the loss");
            assert!(t.initial_loss > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "8 models")]
    fn heuristics_reject_non_zoo_datasets() {
        let d = small_dataset();
        let cfg = SimConfig::new(5.0);
        let _ = simulate(&d, &[], SchedulerKind::MostCited, &cfg, &mut rng());
    }

    #[test]
    fn parallel_with_one_device_matches_serial() {
        let d = small_dataset();
        let priors = flat_priors(&d);
        let cfg = SimConfig {
            budget: 8.0,
            cost_aware: true,
            noise_var: 1e-3,
            delta: 0.1,
            fault: None,
        };
        // Round robin is deterministic, so the two paths must agree
        // point for point (the serial loop admits one final overshooting
        // run; compare the common prefix).
        let serial = simulate(&d, &priors, SchedulerKind::RoundRobin, &cfg, &mut rng());
        let parallel =
            simulate_parallel(&d, &priors, SchedulerKind::RoundRobin, &cfg, 1, &mut rng());
        assert_eq!(serial.initial_loss, parallel.initial_loss);
        let common = serial.points.len().min(parallel.points.len());
        assert!(common > 0);
        for i in 0..common {
            assert!((serial.points[i].0 - parallel.points[i].0).abs() < 1e-12);
            assert!((serial.points[i].1 - parallel.points[i].1).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_devices_overlap_runs() {
        let d = small_dataset();
        let priors = flat_priors(&d);
        let cfg = SimConfig {
            budget: 6.0,
            cost_aware: true,
            noise_var: 1e-3,
            delta: 0.1,
            fault: None,
        };
        let t1 = simulate_parallel(&d, &priors, SchedulerKind::RoundRobin, &cfg, 1, &mut rng());
        let t3 = simulate_parallel(&d, &priors, SchedulerKind::RoundRobin, &cfg, 3, &mut rng());
        // More devices complete more runs within the same wall-clock.
        assert!(
            t3.rounds > t1.rounds,
            "3 devices: {} runs vs 1 device: {} runs",
            t3.rounds,
            t1.rounds
        );
        // No user ever has two outstanding runs: completions per user are
        // spaced by at least that user's minimum cost — verified implicitly
        // by the busy flag; here check the trace is time-ordered.
        for w in t3.points.windows(2) {
            assert!(w[1].0 >= w[0].0 - 1e-12);
        }
    }

    #[test]
    fn pooled_single_device_reaches_low_loss_sooner_in_wall_clock() {
        // §5.3.2: same GPU-time, but the pooled single device (costs / d)
        // returns models faster, so its loss curve leads early on.
        let d = small_dataset();
        let priors = flat_priors(&d);
        let devices = 4usize;
        let budget = 4.0;
        let pooled_dataset = {
            let q = d.quality_matrix().clone();
            let c = d.cost_matrix().scaled(1.0 / devices as f64);
            Dataset::new(d.name().to_string(), q, c)
        };
        let cfg = SimConfig {
            budget,
            cost_aware: true,
            noise_var: 1e-3,
            delta: 0.1,
            fault: None,
        };
        let pooled = simulate(
            &pooled_dataset,
            &priors,
            SchedulerKind::RoundRobin,
            &cfg,
            &mut rng(),
        );
        let parallel = simulate_parallel(
            &d,
            &priors,
            SchedulerKind::RoundRobin,
            &cfg,
            devices,
            &mut rng(),
        );
        // Early in the horizon, the pooled strategy's loss is no worse.
        let early = 0.25 * budget;
        assert!(
            pooled.loss_at(early) <= parallel.loss_at(early) + 1e-9,
            "pooled {:.4} vs parallel {:.4}",
            pooled.loss_at(early),
            parallel.loss_at(early)
        );
    }

    #[test]
    fn events_record_every_budgeted_round_and_replay_regret() {
        let d = small_dataset();
        let priors = flat_priors(&d);
        let cfg = SimConfig {
            budget: 8.0,
            cost_aware: true,
            noise_var: 1e-3,
            delta: 0.1,
            fault: None,
        };
        let t = simulate(&d, &priors, SchedulerKind::Hybrid, &cfg, &mut rng());
        assert_eq!(t.events.len(), t.rounds);
        for e in &t.events {
            assert!(e.user < d.num_users());
            assert!(e.model < d.num_models());
            assert_eq!(e.quality, d.quality(e.user, e.model));
            assert_eq!(e.cost, d.cost(e.user, e.model));
        }
        // The replayed regret tracker agrees on total cost and dominates
        // the ease.ml regret variant.
        let mu_stars: Vec<f64> = (0..d.num_users()).map(|i| d.best_quality(i)).collect();
        let reg = t.replay_regret(mu_stars);
        assert_eq!(reg.rounds(), t.rounds);
        let total: f64 = t.events.iter().map(|e| e.cost).sum();
        assert!((reg.total_cost() - total).abs() < 1e-9);
        assert!(reg.easeml_cumulative() <= reg.cumulative() + 1e-9);
    }

    #[test]
    fn trace_resampling_is_a_step_function() {
        let t = SimTrace {
            budget: 10.0,
            initial_loss: 1.0,
            points: vec![(2.0, 0.5), (6.0, 0.2)],
            events: vec![],
            final_losses: vec![0.2],
            rounds: 2,
        };
        assert_eq!(t.loss_at(0.0), 1.0);
        assert_eq!(t.loss_at(1.9), 1.0);
        assert_eq!(t.loss_at(2.0), 0.5);
        assert_eq!(t.loss_at(5.9), 0.5);
        assert_eq!(t.loss_at(6.0), 0.2);
        assert_eq!(t.loss_at(100.0), 0.2);
        assert_eq!(
            t.resample(&[0.0, 0.5, 1.0]),
            vec![1.0, 0.5, 0.2] // at 0%, 50% (cost 5), 100% (cost 10)
        );
    }

    #[test]
    fn informative_prior_beats_flat_prior_for_greedy() {
        // Build a dataset with strong model correlation and give one
        // simulation the true covariance: it should reach low loss with
        // less cost than an independent prior on average.
        let d = SynConfig {
            num_users: 6,
            num_models: 12,
            ..SynConfig::paper(1.0, 1.0)
        }
        .generate(9);
        let feats: Vec<Vec<f64>> =
            easeml_data::model_quality_features(&d, &(0..3).collect::<Vec<_>>());
        let test = d.select_users(&[3, 4, 5]);
        let informed: Vec<ArmPrior> = (0..3)
            .map(|_| {
                ArmPrior::from_kernel(&easeml_gp::RbfKernel::new(0.5), &feats)
                    .scaled(0.05)
                    .with_mean(feats.iter().map(|f| vec_ops::mean(f)).collect())
            })
            .collect();
        let flat: Vec<ArmPrior> = (0..3).map(|_| ArmPrior::independent(12, 0.05)).collect();
        let cfg = SimConfig {
            budget: 12.0,
            cost_aware: false,
            noise_var: 1e-3,
            delta: 0.1,
            fault: None,
        };
        let d_unit = test.unit_cost_view();
        let mut informed_final = 0.0;
        let mut flat_final = 0.0;
        for seed in 0..8 {
            let mut r = StdRng::seed_from_u64(seed);
            informed_final += simulate(&d_unit, &informed, SchedulerKind::Hybrid, &cfg, &mut r)
                .final_losses
                .iter()
                .sum::<f64>();
            let mut r = StdRng::seed_from_u64(seed);
            flat_final += simulate(&d_unit, &flat, SchedulerKind::Hybrid, &cfg, &mut r)
                .final_losses
                .iter()
                .sum::<f64>();
        }
        assert!(
            informed_final <= flat_final + 0.3,
            "informed prior should not be much worse: {informed_final:.3} vs {flat_final:.3}"
        );
    }
}
