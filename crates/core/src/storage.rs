//! The centralized shared storage behind `feed` / `refine` (§2.1).
//!
//! Every `feed` invocation ships input/output pairs to the ease.ml server,
//! which stores them centrally; `refine` lets the user review all pairs ever
//! fed and toggle noisy ones off (weak-supervision cleaning) without
//! deleting them. The store here is an in-memory, thread-safe simulation of
//! that component — tensors are flat `f64` buffers.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One training example: an (input, output) tensor pair with an enabled
/// flag the `refine` operator can toggle.
#[derive(Debug, Clone, PartialEq)]
pub struct Example {
    /// Flattened input tensor.
    pub input: Vec<f64>,
    /// Flattened output tensor.
    pub output: Vec<f64>,
    /// Whether the example participates in training (toggled by `refine`).
    pub enabled: bool,
}

/// Thread-safe shared storage of training examples, keyed by user.
#[derive(Debug, Default)]
pub struct SharedStorage {
    examples: RwLock<HashMap<usize, Vec<Example>>>,
    feed_count: AtomicUsize,
}

impl SharedStorage {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The `feed` operator: appends input/output pairs for `user` and
    /// returns how many examples that user now has. All pairs arrive
    /// enabled.
    pub fn feed(
        &self,
        user: usize,
        pairs: impl IntoIterator<Item = (Vec<f64>, Vec<f64>)>,
    ) -> usize {
        let mut map = self.examples.write();
        let entry = map.entry(user).or_default();
        let mut added = 0;
        for (input, output) in pairs {
            entry.push(Example {
                input,
                output,
                enabled: true,
            });
            added += 1;
        }
        self.feed_count.fetch_add(added, Ordering::Relaxed);
        entry.len()
    }

    /// Number of examples stored for `user` (enabled or not).
    pub fn count(&self, user: usize) -> usize {
        self.examples.read().get(&user).map_or(0, Vec::len)
    }

    /// Number of *enabled* examples for `user`.
    pub fn enabled_count(&self, user: usize) -> usize {
        self.examples
            .read()
            .get(&user)
            .map_or(0, |v| v.iter().filter(|e| e.enabled).count())
    }

    /// The `refine` operator: sets the enabled flag of one example.
    /// Returns `false` when the index does not exist.
    pub fn refine(&self, user: usize, index: usize, enabled: bool) -> bool {
        let mut map = self.examples.write();
        match map.get_mut(&user).and_then(|v| v.get_mut(index)) {
            Some(e) => {
                e.enabled = enabled;
                true
            }
            None => false,
        }
    }

    /// Snapshot of a user's examples (for `refine` UIs and training).
    pub fn examples(&self, user: usize) -> Vec<Example> {
        self.examples.read().get(&user).cloned().unwrap_or_default()
    }

    /// Snapshot of only the enabled examples (what training sees).
    pub fn enabled_examples(&self, user: usize) -> Vec<Example> {
        self.examples
            .read()
            .get(&user)
            .map(|v| v.iter().filter(|e| e.enabled).cloned().collect())
            .unwrap_or_default()
    }

    /// Total number of examples ever fed across all users.
    pub fn total_fed(&self) -> usize {
        self.feed_count.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feed_appends_and_counts() {
        let s = SharedStorage::new();
        assert_eq!(s.count(0), 0);
        let n = s.feed(0, vec![(vec![1.0], vec![0.0]), (vec![2.0], vec![1.0])]);
        assert_eq!(n, 2);
        let n = s.feed(0, vec![(vec![3.0], vec![1.0])]);
        assert_eq!(n, 3);
        assert_eq!(s.count(0), 3);
        assert_eq!(s.count(1), 0);
        assert_eq!(s.total_fed(), 3);
    }

    #[test]
    fn refine_toggles_examples() {
        let s = SharedStorage::new();
        s.feed(7, vec![(vec![1.0], vec![0.0]), (vec![2.0], vec![1.0])]);
        assert_eq!(s.enabled_count(7), 2);
        assert!(s.refine(7, 0, false));
        assert_eq!(s.enabled_count(7), 1);
        assert_eq!(s.count(7), 2, "refine never deletes");
        assert_eq!(s.enabled_examples(7).len(), 1);
        assert_eq!(s.enabled_examples(7)[0].input, vec![2.0]);
        // Re-enable.
        assert!(s.refine(7, 0, true));
        assert_eq!(s.enabled_count(7), 2);
    }

    #[test]
    fn refine_out_of_range_is_a_soft_failure() {
        let s = SharedStorage::new();
        assert!(!s.refine(0, 0, false));
        s.feed(0, vec![(vec![1.0], vec![0.0])]);
        assert!(!s.refine(0, 5, false));
    }

    #[test]
    fn per_user_isolation() {
        let s = SharedStorage::new();
        s.feed(0, vec![(vec![1.0], vec![0.0])]);
        s.feed(1, vec![(vec![9.0], vec![1.0])]);
        assert_eq!(s.examples(0)[0].input, vec![1.0]);
        assert_eq!(s.examples(1)[0].input, vec![9.0]);
    }

    #[test]
    fn concurrent_feeds_are_safe() {
        use std::sync::Arc;
        let s = Arc::new(SharedStorage::new());
        let handles: Vec<_> = (0..8)
            .map(|u| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        s.feed(u % 2, vec![(vec![i as f64], vec![0.0])]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.total_fed(), 800);
        assert_eq!(s.count(0) + s.count(1), 800);
    }
}
