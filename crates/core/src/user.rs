//! User accounts of the ease.ml service.

use easeml_dsl::Program;

/// A registered ease.ml user: a research group with a declared machine
/// learning task.
#[derive(Debug, Clone)]
pub struct UserAccount {
    id: usize,
    name: String,
    program: Program,
}

impl UserAccount {
    /// Creates an account from a parsed program.
    pub fn new(id: usize, name: impl Into<String>, program: Program) -> Self {
        UserAccount {
            id,
            name: name.into(),
            program,
        }
    }

    /// The account's numeric identifier (tenant index).
    #[inline]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Display name of the user / research group.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared input/output schema.
    #[inline]
    pub fn program(&self) -> &Program {
        &self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeml_dsl::parse_program;

    #[test]
    fn account_holds_program() {
        let p =
            parse_program("{input: {[Tensor[8, 8, 3]], []}, output: {[Tensor[2]], []}}").unwrap();
        let u = UserAccount::new(3, "astro", p.clone());
        assert_eq!(u.id(), 3);
        assert_eq!(u.name(), "astro");
        assert_eq!(u.program(), &p);
    }
}
