//! Decision provenance: per-round witnesses and the rolling state digest.
//!
//! Every scheduling round — server, serial sim, or multi-device exec —
//! folds its decision `(round, user, arm, censored)` into a rolling
//! FNV-1a digest and, when a recorder is attached, emits a bounded
//! witness: the top-K candidate users with the scores the picker ranked,
//! the top-K candidate arms with their posterior state, the winning
//! margins, and the decision path taken. The digest makes two runs
//! comparable round-by-round (`easeml-trace replay-diff` binary-searches
//! the first divergence on it); the witness events make any single round
//! explainable after the fact (`easeml-trace explain --round N`).
//!
//! Witness size is O(K) per round regardless of tenant or model count:
//! only the top-K users and arms are emitted, never the full score
//! vectors. The digest fold is O(1) and always on — it costs four
//! multiply-xor steps per round even with no recorder attached.

use easeml_bandit::ArmExplanation;
use easeml_obs::{top_k_indices, Event, RecorderHandle, RollingDigest};

/// Default bound on witness fan-out: at most this many `UserScored` and
/// `ArmScored` events per round.
pub const DEFAULT_WITNESS_TOP_K: usize = 8;

/// Everything one round's decision hinged on, handed to
/// [`DecisionLog::record`] by the capture site. Score slices are borrowed
/// — the log only reads the top K of them.
#[derive(Debug)]
pub struct RoundWitness<'a> {
    /// Global round index (warm-up and censored rounds count).
    pub round: u64,
    /// The served user.
    pub user: usize,
    /// The arm (model index) the round settled on — for a censored round,
    /// the last attempted arm.
    pub arm: usize,
    /// Per-tenant scores the picker ranked, indexed by user; empty for
    /// non-scoring strategies (round robin, FCFS, warm-up).
    pub user_scores: &'a [f64],
    /// The picker's candidate set `V_t`; empty when not candidate-driven.
    pub candidates: &'a [usize],
    /// The served tenant's arm-selection why-chain, when captured.
    pub arm_explanation: Option<&'a ArmExplanation>,
    /// Decision-path label (e.g. `"hybrid:greedy(max-gap)"`, `"warm-up"`).
    pub path: String,
    /// Failure kind for a censored round; empty on healthy rounds.
    pub fallback: String,
    /// Whether the round was censored (all attempts failed).
    pub censored: bool,
}

/// The per-run provenance accumulator: a rolling digest of every decision
/// plus the bounded-K witness emitter.
///
/// The digest folds only what the scheduler *decided* — round, user, arm,
/// censored — never posterior values or timings, so a serial sim and a
/// D=1 exec run of the same scenario produce identical digests. Its
/// rolling (prefix) property is what makes binary search for the first
/// divergent round sound: digests agree at round r iff every decision up
/// to and including r agrees.
#[derive(Debug, Clone)]
pub struct DecisionLog {
    digest: RollingDigest,
    top_k: usize,
    rounds: u64,
}

impl Default for DecisionLog {
    fn default() -> Self {
        Self::new()
    }
}

impl DecisionLog {
    /// A fresh log with [`DEFAULT_WITNESS_TOP_K`].
    pub fn new() -> Self {
        Self::with_top_k(DEFAULT_WITNESS_TOP_K)
    }

    /// A fresh log with a custom witness bound (clamped to ≥ 1).
    pub fn with_top_k(top_k: usize) -> Self {
        DecisionLog {
            digest: RollingDigest::new(),
            top_k: top_k.max(1),
            rounds: 0,
        }
    }

    /// Rebuild a log from checkpointed state so the rolling digest chain
    /// continues across a restore instead of restarting from the offset.
    pub fn from_state(top_k: usize, digest: u64, rounds: u64) -> Self {
        DecisionLog {
            digest: RollingDigest::from_value(digest),
            top_k: top_k.max(1),
            rounds,
        }
    }

    /// The witness fan-out bound K.
    pub fn top_k(&self) -> usize {
        self.top_k
    }

    /// Rounds folded so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Current digest value.
    pub fn digest_value(&self) -> u64 {
        self.digest.value()
    }

    /// Current digest as the 16-hex-char form carried by
    /// [`Event::DecisionWitness`].
    pub fn digest_hex(&self) -> String {
        self.digest.hex()
    }

    /// Folds one round into the digest and, when `recorder` is live, emits
    /// its witness chain: `UserScored*`, `ArmScored*`, then the
    /// `DecisionWitness` commit marker (always last, so readers can treat
    /// a round without its marker as torn and skip it).
    ///
    /// The emission runs under its own `witness` span, so profilers
    /// attribute its cost as a child phase of `scheduler_step` rather than
    /// the step's self-time.
    pub fn record(&mut self, recorder: &RecorderHandle, w: RoundWitness<'_>) {
        self.digest.absorb_u64(w.round);
        self.digest.absorb_u64(w.user as u64);
        self.digest.absorb_u64(w.arm as u64);
        self.digest.absorb_u64(u64::from(w.censored));
        self.rounds += 1;
        if !recorder.is_enabled() {
            return;
        }
        let _span = recorder.span("witness");
        for (rank, &u) in top_k_indices(w.user_scores, self.top_k).iter().enumerate() {
            let score = w.user_scores[u];
            let candidate = w.candidates.contains(&u);
            recorder.emit(|| Event::UserScored {
                round: w.round,
                user: u,
                score,
                rank: rank as u64,
                candidate,
                parent: easeml_obs::current_span(),
            });
        }
        if let Some(expl) = w.arm_explanation {
            for (rank, s) in expl.top.iter().take(self.top_k).enumerate() {
                recorder.emit(|| Event::ArmScored {
                    round: w.round,
                    user: w.user,
                    arm: s.arm,
                    mean: s.mean,
                    sigma: s.sigma,
                    ucb: s.ucb,
                    rank: rank as u64,
                    masked: s.masked,
                    parent: easeml_obs::current_span(),
                });
            }
        }
        let user_margin = chosen_margin(w.user_scores, w.user);
        let arm_margin = w.arm_explanation.map_or(f64::NAN, |e| e.margin);
        let digest = self.digest.hex();
        recorder.emit(|| Event::DecisionWitness {
            round: w.round,
            user: w.user,
            arm: w.arm,
            user_margin,
            arm_margin,
            path: w.path,
            fallback: w.fallback,
            censored: w.censored,
            candidates: w.candidates.len() as u64,
            digest,
            parent: easeml_obs::current_span(),
        });
    }
}

/// Gap between the chosen index's score and the best *other* score — how
/// decisively the chosen user won. `NaN` when the strategy did not score
/// (empty slice), there is no runner-up, or the choice fell outside the
/// scored range.
fn chosen_margin(scores: &[f64], chosen: usize) -> f64 {
    if scores.len() < 2 || chosen >= scores.len() {
        return f64::NAN;
    }
    let best_other = scores
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != chosen)
        .map(|(_, &s)| s)
        .fold(f64::NEG_INFINITY, f64::max);
    scores[chosen] - best_other
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeml_obs::InMemoryRecorder;
    use std::sync::Arc;

    fn witness<'a>(round: u64, user: usize, arm: usize, scores: &'a [f64]) -> RoundWitness<'a> {
        RoundWitness {
            round,
            user,
            arm,
            user_scores: scores,
            candidates: &[],
            arm_explanation: None,
            path: "test".to_string(),
            fallback: String::new(),
            censored: false,
        }
    }

    #[test]
    fn digest_is_deterministic_and_order_sensitive() {
        let mut a = DecisionLog::new();
        let mut b = DecisionLog::new();
        let noop = RecorderHandle::noop();
        for r in 0..5 {
            a.record(&noop, witness(r, r as usize % 3, 1, &[]));
            b.record(&noop, witness(r, r as usize % 3, 1, &[]));
        }
        assert_eq!(a.digest_value(), b.digest_value());
        assert_eq!(a.rounds(), 5);
        // A different decision at any round moves the digest.
        let mut c = DecisionLog::new();
        for r in 0..5 {
            let user = if r == 3 { 2 } else { r as usize % 3 };
            c.record(&noop, witness(r, user, 1, &[]));
        }
        assert_ne!(a.digest_value(), c.digest_value());
    }

    #[test]
    fn record_emits_a_bounded_committed_chain() {
        let rec = Arc::new(InMemoryRecorder::new());
        let handle = RecorderHandle::new(rec.clone());
        let mut log = DecisionLog::with_top_k(2);
        let scores = [0.1, 0.9, 0.5, 0.3];
        let mut w = witness(7, 1, 4, &scores);
        w.candidates = &[1, 2];
        log.record(&handle, w);
        let events = rec.events();
        // Bounded: 2 UserScored (not 4), then the commit marker, inside a
        // witness span.
        let users: Vec<(usize, u64, bool)> = events
            .iter()
            .filter_map(|e| match *e {
                Event::UserScored {
                    user,
                    rank,
                    candidate,
                    ..
                } => Some((user, rank, candidate)),
                _ => None,
            })
            .collect();
        assert_eq!(users, vec![(1, 0, true), (2, 1, true)]);
        match events.iter().rev().nth(1) {
            Some(Event::DecisionWitness {
                round: 7,
                user: 1,
                arm: 4,
                user_margin,
                candidates: 2,
                digest,
                ..
            }) => {
                assert!((*user_margin - 0.4).abs() < 1e-12);
                assert_eq!(digest, &log.digest_hex());
            }
            other => panic!("expected trailing DecisionWitness, got {other:?}"),
        }
        assert!(matches!(
            events.first(),
            Some(Event::SpanStart { name, .. }) if name == "witness"
        ));
        assert!(matches!(events.last(), Some(Event::SpanEnd { .. })));
    }

    #[test]
    fn margins_degrade_to_nan_without_scores() {
        assert!(chosen_margin(&[], 0).is_nan());
        assert!(chosen_margin(&[1.0], 0).is_nan());
        assert!(chosen_margin(&[1.0, 2.0], 5).is_nan());
        assert_eq!(chosen_margin(&[1.0, 3.0], 1), 2.0);
        // A losing choice has a negative margin — visible in explain.
        assert_eq!(chosen_margin(&[1.0, 3.0], 0), -2.0);
    }

    #[test]
    fn noop_recorder_still_advances_the_digest() {
        let mut log = DecisionLog::new();
        let before = log.digest_value();
        log.record(&RecorderHandle::noop(), witness(0, 0, 0, &[]));
        assert_ne!(log.digest_value(), before);
        assert_eq!(log.rounds(), 1);
    }
}
