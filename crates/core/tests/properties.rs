//! Property-based tests for the simulation engine and experiment harness.

use easeml::fault::{FaultConfig, FaultInjector};
use easeml::prelude::*;
use easeml::server::{EaseMl, QualityOracle, TrainingOutcome};
use easeml::sim::simulate_parallel;
use easeml_data::{Dataset, SynConfig};
use easeml_gp::ArmPrior;
use easeml_obs::{InMemoryRecorder, RecorderHandle};
use easeml_sched::PickRule;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::Arc;

fn dataset(users: usize, models: usize, seed: u64) -> Dataset {
    SynConfig {
        num_users: users,
        num_models: models,
        ..SynConfig::paper(0.5, 0.5)
    }
    .generate(seed)
}

fn priors(users: usize, models: usize) -> Vec<ArmPrior> {
    (0..users)
        .map(|_| ArmPrior::independent(models, 0.05))
        .collect()
}

fn gp_scheduler() -> impl Strategy<Value = SchedulerKind> {
    prop::sample::select(vec![
        SchedulerKind::Fcfs,
        SchedulerKind::RoundRobin,
        SchedulerKind::Random,
        SchedulerKind::Greedy(PickRule::MaxUcbGap),
        SchedulerKind::Greedy(PickRule::MaxSigmaTilde),
        SchedulerKind::Greedy(PickRule::Random),
        SchedulerKind::Hybrid,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulation_invariants_hold_for_every_scheduler(
        (kind, seed, budget) in (gp_scheduler(), 0u64..200, 2.0f64..20.0)
    ) {
        let d = dataset(4, 3, seed);
        let p = priors(4, 3);
        let cfg = SimConfig {
            budget,
            cost_aware: true,
            noise_var: 1e-3,
            delta: 0.1,
            fault: None,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let t = simulate(&d, &p, kind, &cfg, &mut rng);

        // Budget is respected up to exactly one overshooting run.
        prop_assert!(!t.points.is_empty());
        let last = t.points.last().unwrap().0;
        prop_assert!(last >= budget);
        if t.points.len() >= 2 {
            prop_assert!(t.points[t.points.len() - 2].0 < budget);
        }
        // Costs strictly increase; losses never increase; all finite.
        for w in t.points.windows(2) {
            prop_assert!(w[1].0 > w[0].0);
            prop_assert!(w[1].1 <= w[0].1 + 1e-12);
        }
        for &(c, l) in &t.points {
            prop_assert!(c.is_finite() && l.is_finite() && l >= 0.0);
        }
        // Final losses are bounded by each user's best quality.
        for (i, &l) in t.final_losses.iter().enumerate() {
            prop_assert!(l >= 0.0 && l <= d.best_quality(i) + 1e-12);
        }
        // The trace's last mean loss equals the mean of final losses.
        let mean_final: f64 =
            t.final_losses.iter().sum::<f64>() / t.final_losses.len() as f64;
        prop_assert!((t.points.last().unwrap().1 - mean_final).abs() < 1e-12);
    }

    #[test]
    fn resampling_is_monotone_in_the_fraction(
        (kind, seed) in (gp_scheduler(), 0u64..100)
    ) {
        let d = dataset(4, 3, seed);
        let p = priors(4, 3);
        let cfg = SimConfig {
            budget: 8.0,
            cost_aware: false,
            noise_var: 1e-3,
            delta: 0.1,
            fault: None,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let t = simulate(&d.unit_cost_view(), &p, kind, &cfg, &mut rng);
        let grid: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
        let curve = t.resample(&grid);
        for w in curve.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-12, "loss increased along the grid");
        }
        prop_assert!(curve[0] <= t.initial_loss + 1e-12);
    }

    #[test]
    fn parallel_simulation_invariants(
        (devices, seed) in (1usize..5, 0u64..100)
    ) {
        let d = dataset(5, 3, seed);
        let p = priors(5, 3);
        let cfg = SimConfig {
            budget: 6.0,
            cost_aware: true,
            noise_var: 1e-3,
            delta: 0.1,
            fault: None,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let t = simulate_parallel(&d, &p, SchedulerKind::RoundRobin, &cfg, devices, &mut rng);
        // Completions are time-ordered with non-increasing losses.
        for w in t.points.windows(2) {
            prop_assert!(w[1].0 >= w[0].0 - 1e-12);
            prop_assert!(w[1].1 <= w[0].1 + 1e-12);
        }
        prop_assert_eq!(t.points.len(), t.rounds);
    }

    /// Under injected faults, cost accounting stays closed: every unit of
    /// simulated time the cluster spent — completed or censored — is
    /// charged to exactly one tenant, and the Theorem 1 regret
    /// decomposition recovered from the recorded trace still sums to its
    /// undecomposed total.
    #[test]
    fn fault_injection_preserves_cost_accounting_and_regret_consistency(
        (seed, crash, rounds) in (0u64..40, 0.05f64..0.45, 4usize..16)
    ) {
        let oracle: QualityOracle = Box::new(|user, model| {
            let info = model.info();
            Ok(TrainingOutcome {
                accuracy: (0.5 + 0.03 * user as f64
                    + 0.01 * (info.year as f64 - 2010.0))
                    .min(0.95),
                cost: info.relative_cost,
            })
        });
        let mut server = EaseMl::new(oracle, seed);
        server.set_fault_injector(Some(FaultInjector::new(
            FaultConfig::new(seed.wrapping_mul(2_654_435_761).wrapping_add(1))
                .with_crash_rate(crash)
                .with_timeout_rate(0.05)
                .with_stragglers(0.15, 2.5),
        )));
        let recorder = Arc::new(InMemoryRecorder::new());
        server.set_recorder(RecorderHandle::new(recorder.clone()));
        server
            .register_user(
                "vision",
                "{input: {[Tensor[64, 64, 3]], []}, output: {[Tensor[5]], []}}",
            )
            .unwrap();
        server
            .register_user(
                "meteo",
                "{input: {[Tensor[16]], [next]}, output: {[Tensor[3]], []}}",
            )
            .unwrap();
        for _ in 0..rounds {
            server.run_round();
        }

        // Per-user charged cost (censored runs included) sums to the
        // cluster makespan: nothing the cluster executed is unattributed.
        let snap = server.status_snapshot();
        let charged: f64 = snap.users.iter().map(|u| u.cost).sum();
        prop_assert!(
            (charged - server.elapsed()).abs() <= 1e-9 * (1.0 + charged),
            "per-user cost {charged} vs makespan {}",
            server.elapsed()
        );
        prop_assert_eq!(
            snap.users.iter().map(|u| u.failed).sum::<usize>(),
            snap.failed_runs
        );
        prop_assert_eq!(snap.completed_runs, rounds);

        // The recorded trace replays to a consistent Theorem 1 split.
        let events = recorder.events_since(0);
        let report = easeml_trace::regret_report(&events, &BTreeMap::new());
        prop_assert!(report.is_consistent(1e-9), "{:?}", report);
        prop_assert_eq!(report.rounds, rounds as u64);
        prop_assert!(
            (report.clock - server.elapsed()).abs() <= 1e-9 * (1.0 + report.clock),
            "trace clock {} vs makespan {}",
            report.clock,
            server.elapsed()
        );
    }

    #[test]
    fn experiments_are_deterministic_and_well_formed(
        (seed, reps) in (0u64..50, 1usize..4)
    ) {
        let d = dataset(8, 4, seed);
        let cfg = ExperimentConfig {
            test_users: 3,
            repetitions: reps,
            budget: Budget::FractionOfRuns(0.5),
            grid_points: 11,
            tune_grid: easeml_gp::TuneGrid {
                scales: vec![1.0],
                noises: vec![1e-3],
            },
            ..ExperimentConfig::default()
        };
        let a = run_experiment(&d, SchedulerKind::Hybrid, &cfg, seed);
        let b = run_experiment(&d, SchedulerKind::Hybrid, &cfg, seed);
        prop_assert_eq!(&a.mean_curve, &b.mean_curve);
        prop_assert_eq!(a.final_losses.len(), reps);
        prop_assert_eq!(a.grid_pct.len(), 11);
        for (m, w) in a.mean_curve.iter().zip(&a.worst_curve) {
            prop_assert!(w + 1e-12 >= *m, "worst must dominate mean");
            prop_assert!(m.is_finite() && *m >= 0.0);
        }
    }
}
