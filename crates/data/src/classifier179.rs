//! A seeded surrogate for the 179CLASSIFIER dataset.
//!
//! The paper's 179CLASSIFIER holds the accuracies of 179 classifiers over
//! 121 UCI datasets from Delgado et al., "Do we need hundreds of classifiers
//! to solve real world classification problems?" (JMLR 2014), with synthetic
//! `U(0, 1)` costs. The accuracy tables are not bundled here, so this module
//! generates a surrogate preserving the regime the paper's Figure 15
//! crossover depends on: *many classifier families with only moderate
//! cross-family correlation and heavy task-dependent noise* — much weaker
//! structure than DEEPLEARNING's eight sibling CNNs.
//!
//! The surrogate groups the 179 models into families (RF, SVM, boosting,
//! neural nets, …) with family-level skill, within-family correlation, and
//! per-(task, model) noise; a small fraction of (task, model) pairs fail
//! badly, as the original benchmark's non-converging runs do.

use crate::dataset::Dataset;
use crate::dist;
use easeml_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of users (UCI datasets) — matches Figure 8.
pub const NUM_USERS: usize = 121;

/// Number of models (classifier variants) — matches Figure 8.
pub const NUM_MODELS: usize = 179;

/// Classifier family sizes, loosely following Delgado et al.'s taxonomy
/// (random forests, SVMs, boosting, bagging, neural nets, decision trees,
/// rule-based, discriminant analysis, nearest neighbours, Bayesian, GLM,
/// PLSR, logistic/multinomial, marginal/other). Sizes sum to 179.
const FAMILY_SIZES: [usize; 14] = [20, 22, 18, 14, 21, 12, 10, 17, 8, 6, 9, 6, 8, 8];

/// Family skill offsets: random forests and SVM variants lead the
/// benchmark, marginal families trail far behind (Delgado et al.'s
/// headline finding).
const FAMILY_SKILL: [f64; 14] = [
    0.06, 0.05, 0.03, 0.02, 0.01, -0.02, -0.04, -0.01, -0.03, -0.05, -0.06, -0.08, -0.04, -0.12,
];

/// Generates the surrogate 179CLASSIFIER dataset deterministically from
/// `seed`.
pub fn generate(seed: u64) -> Dataset {
    assert_eq!(FAMILY_SIZES.iter().sum::<usize>(), NUM_MODELS);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x179C_1A55);

    // Per-model family index and within-family idiosyncrasy.
    let mut family = Vec::with_capacity(NUM_MODELS);
    for (f, &size) in FAMILY_SIZES.iter().enumerate() {
        family.extend(std::iter::repeat_n(f, size));
    }
    let model_quirk: Vec<f64> = (0..NUM_MODELS)
        .map(|_| dist::normal(0.0, 0.03, &mut rng))
        .collect();

    let mut quality = Matrix::zeros(NUM_USERS, NUM_MODELS);
    let mut cost = Matrix::zeros(NUM_USERS, NUM_MODELS);
    for i in 0..NUM_USERS {
        // UCI tasks range from nearly separable (0.99) to very hard (0.5).
        let base = dist::normal(0.78, 0.13, &mut rng).clamp(0.40, 0.97);
        // Each task slightly re-ranks the families.
        let task_family_tilt: Vec<f64> = (0..FAMILY_SIZES.len())
            .map(|_| dist::normal(0.0, 0.025, &mut rng))
            .collect();
        for j in 0..NUM_MODELS {
            let f = family[j];
            let noise = dist::normal(0.0, 0.035, &mut rng);
            let mut q = base + FAMILY_SKILL[f] + task_family_tilt[f] + model_quirk[j] + noise;
            // ~2% of runs fail badly (non-convergence, bad defaults).
            if rng.gen::<f64>() < 0.02 {
                q -= dist::uniform(0.2, 0.5, &mut rng);
            }
            quality[(i, j)] = q.clamp(0.02, 0.995);
            // Paper: synthetic costs from U(0, 1).
            cost[(i, j)] = dist::uniform(f64::EPSILON, 1.0, &mut rng);
        }
    }
    Dataset::new("179CLASSIFIER", quality, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeml_linalg::vec_ops;

    #[test]
    fn matches_figure_8_shape() {
        let d = generate(0);
        assert_eq!(d.num_users(), 121);
        assert_eq!(d.num_models(), 179);
        assert_eq!(d.name(), "179CLASSIFIER");
    }

    #[test]
    fn deterministic_per_seed() {
        assert!(generate(9)
            .quality_matrix()
            .approx_eq(generate(9).quality_matrix(), 0.0));
    }

    #[test]
    fn random_forest_family_leads_on_average() {
        // Family 0 (first 20 models) has the highest skill; family 13 (last
        // 8 models) the lowest.
        let d = generate(1);
        let avg = |range: std::ops::Range<usize>| {
            let mut acc = 0.0;
            let mut n = 0;
            for i in 0..d.num_users() {
                for j in range.clone() {
                    acc += d.quality(i, j);
                    n += 1;
                }
            }
            acc / n as f64
        };
        let rf = avg(0..20);
        let marginal = avg(171..179);
        assert!(
            rf > marginal + 0.1,
            "family separation too weak: {rf:.3} vs {marginal:.3}"
        );
    }

    #[test]
    fn model_correlation_is_weaker_than_deeplearning() {
        // Average pairwise correlation of model columns should be clearly
        // below the DEEPLEARNING surrogate's: the benchmark spans wildly
        // different families and noisy tasks. (Both are dominated by the
        // per-user baseline, so compare after removing per-user means.)
        let corr = |d: &Dataset| {
            let n = d.num_users();
            let m = d.num_models();
            // Center each user row.
            let mut centered = vec![vec![0.0; m]; n];
            for i in 0..n {
                let mu = vec_ops::mean(d.user_qualities(i));
                for j in 0..m {
                    centered[i][j] = d.quality(i, j) - mu;
                }
            }
            // Mean |corr| over 200 random-ish column pairs.
            let mut acc = 0.0;
            let mut cnt = 0;
            for a in (0..m).step_by((m / 10).max(1)) {
                for b in ((a + 1)..m).step_by((m / 10).max(1)) {
                    let ca: Vec<f64> = (0..n).map(|i| centered[i][a]).collect();
                    let cb: Vec<f64> = (0..n).map(|i| centered[i][b]).collect();
                    let sa = vec_ops::std_dev(&ca);
                    let sb = vec_ops::std_dev(&cb);
                    if sa > 0.0 && sb > 0.0 {
                        let cov = ca.iter().zip(&cb).map(|(x, y)| x * y).sum::<f64>() / n as f64;
                        acc += (cov / (sa * sb)).abs();
                        cnt += 1;
                    }
                }
            }
            acc / cnt as f64
        };
        let c179 = corr(&generate(2));
        let cdl = corr(&crate::deeplearning::generate(2));
        assert!(
            c179 < cdl,
            "179CLASSIFIER correlation {c179:.3} should be below DEEPLEARNING {cdl:.3}"
        );
    }

    #[test]
    fn costs_are_uniform_01() {
        let d = generate(3);
        let c = d.cost_matrix().as_slice();
        assert!(c.iter().all(|&x| x > 0.0 && x < 1.0));
        assert!((vec_ops::mean(c) - 0.5).abs() < 0.02);
    }

    #[test]
    fn some_catastrophic_failures_exist() {
        let d = generate(4);
        let n_bad = d
            .quality_matrix()
            .as_slice()
            .iter()
            .filter(|&&q| q < 0.35)
            .count();
        assert!(n_bad > 100, "expected some failed runs, found {n_bad}");
    }
}
