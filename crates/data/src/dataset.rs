//! The (quality, cost) matrix pair every experiment runs over.

use easeml_linalg::{vec_ops, Matrix};
use serde::Serialize;

/// A multi-tenant workload: `num_users` user tasks, `num_models` candidate
/// models, and for every (user, model) pair the accuracy the model reaches
/// and the cost (execution time) of training it.
///
/// This is the canonical view of Figure 7 in the paper: a partially hidden
/// matrix whose cells the scheduler reveals one training run at a time.
#[derive(Debug, Clone)]
pub struct Dataset {
    name: String,
    quality: Matrix,
    cost: Matrix,
}

/// Summary statistics of a dataset, one row of the paper's Figure 8 table.
#[derive(Debug, Clone, Serialize)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of users.
    pub users: usize,
    /// Number of models.
    pub models: usize,
    /// Minimum quality over all cells.
    pub min_quality: f64,
    /// Maximum quality over all cells.
    pub max_quality: f64,
    /// Mean quality over all cells.
    pub mean_quality: f64,
    /// Minimum cost over all cells.
    pub min_cost: f64,
    /// Maximum cost over all cells.
    pub max_cost: f64,
    /// Total cost of training every (user, model) pair once.
    pub total_cost: f64,
}

impl Dataset {
    /// Creates a dataset from matching quality and cost matrices
    /// (users × models).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ, the matrices are empty, any quality is
    /// outside `[0, 1]`, or any cost is not strictly positive.
    pub fn new(name: impl Into<String>, quality: Matrix, cost: Matrix) -> Self {
        assert_eq!(
            quality.shape(),
            cost.shape(),
            "quality and cost matrices must have matching shapes"
        );
        assert!(
            quality.rows() > 0 && quality.cols() > 0,
            "dataset must be non-empty"
        );
        assert!(
            quality.as_slice().iter().all(|&q| (0.0..=1.0).contains(&q)),
            "qualities must lie in [0, 1]"
        );
        assert!(
            cost.as_slice().iter().all(|&c| c > 0.0 && c.is_finite()),
            "costs must be positive and finite"
        );
        Dataset {
            name: name.into(),
            quality,
            cost,
        }
    }

    /// Creates a dataset with all costs equal to 1 (the cost-oblivious
    /// setting, where "cost" is simply the number of runs).
    pub fn with_unit_costs(name: impl Into<String>, quality: Matrix) -> Self {
        let cost = Matrix::filled(quality.rows(), quality.cols(), 1.0);
        Self::new(name, quality, cost)
    }

    /// Dataset name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of users (rows).
    #[inline]
    pub fn num_users(&self) -> usize {
        self.quality.rows()
    }

    /// Number of models (columns).
    #[inline]
    pub fn num_models(&self) -> usize {
        self.quality.cols()
    }

    /// Accuracy reached by `model` on `user`'s task.
    #[inline]
    pub fn quality(&self, user: usize, model: usize) -> f64 {
        self.quality[(user, model)]
    }

    /// Cost (execution time) of training `model` on `user`'s data.
    #[inline]
    pub fn cost(&self, user: usize, model: usize) -> f64 {
        self.cost[(user, model)]
    }

    /// The full quality matrix.
    #[inline]
    pub fn quality_matrix(&self) -> &Matrix {
        &self.quality
    }

    /// The full cost matrix.
    #[inline]
    pub fn cost_matrix(&self) -> &Matrix {
        &self.cost
    }

    /// The quality row of one user over all models.
    pub fn user_qualities(&self, user: usize) -> &[f64] {
        self.quality.row(user)
    }

    /// The cost row of one user over all models.
    pub fn user_costs(&self, user: usize) -> &[f64] {
        self.cost.row(user)
    }

    /// Best achievable accuracy `a*_i` for a user (the max over models).
    pub fn best_quality(&self, user: usize) -> f64 {
        vec_ops::max(self.user_qualities(user)).expect("non-empty dataset")
    }

    /// Total cost of training every (user, model) pair once — the paper's
    /// "total runtime of all models" used to express budgets as percentages.
    pub fn total_cost(&self) -> f64 {
        self.cost.as_slice().iter().sum()
    }

    /// A copy of this dataset restricted to the given users (e.g. the test
    /// split), preserving model order.
    ///
    /// # Panics
    ///
    /// Panics if `users` is empty or contains an out-of-range index.
    pub fn select_users(&self, users: &[usize]) -> Dataset {
        assert!(!users.is_empty(), "user selection must be non-empty");
        let m = self.num_models();
        let quality = Matrix::from_fn(users.len(), m, |i, j| self.quality[(users[i], j)]);
        let cost = Matrix::from_fn(users.len(), m, |i, j| self.cost[(users[i], j)]);
        Dataset {
            name: self.name.clone(),
            quality,
            cost,
        }
    }

    /// A copy of this dataset with all costs replaced by 1 — used by the
    /// cost-awareness lesion study (Fig. 13 sets `c_{i,j} = 1`).
    pub fn unit_cost_view(&self) -> Dataset {
        Dataset {
            name: format!("{} (unit costs)", self.name),
            quality: self.quality.clone(),
            cost: Matrix::filled(self.quality.rows(), self.quality.cols(), 1.0),
        }
    }

    /// Figure-8-style summary statistics.
    pub fn stats(&self) -> DatasetStats {
        let q = self.quality.as_slice();
        let c = self.cost.as_slice();
        DatasetStats {
            name: self.name.clone(),
            users: self.num_users(),
            models: self.num_models(),
            min_quality: vec_ops::min(q).unwrap(),
            max_quality: vec_ops::max(q).unwrap(),
            mean_quality: vec_ops::mean(q),
            min_cost: vec_ops::min(c).unwrap(),
            max_cost: vec_ops::max(c).unwrap(),
            total_cost: self.total_cost(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let q = Matrix::from_rows(&[&[0.9, 0.5], &[0.3, 0.7]]);
        let c = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 4.0]]);
        Dataset::new("tiny", q, c)
    }

    #[test]
    fn accessors() {
        let d = tiny();
        assert_eq!(d.name(), "tiny");
        assert_eq!(d.num_users(), 2);
        assert_eq!(d.num_models(), 2);
        assert_eq!(d.quality(0, 0), 0.9);
        assert_eq!(d.cost(1, 1), 4.0);
        assert_eq!(d.user_qualities(1), &[0.3, 0.7]);
        assert_eq!(d.user_costs(0), &[2.0, 1.0]);
        assert_eq!(d.best_quality(0), 0.9);
        assert_eq!(d.best_quality(1), 0.7);
        assert_eq!(d.total_cost(), 8.0);
    }

    #[test]
    fn unit_costs_constructor_and_view() {
        let q = Matrix::from_rows(&[&[0.9, 0.5]]);
        let d = Dataset::with_unit_costs("u", q);
        assert_eq!(d.cost(0, 1), 1.0);
        let d2 = tiny().unit_cost_view();
        assert_eq!(d2.cost(1, 1), 1.0);
        assert_eq!(d2.quality(1, 1), 0.7);
        assert!(d2.name().contains("unit costs"));
    }

    #[test]
    fn select_users_preserves_rows() {
        let d = tiny().select_users(&[1]);
        assert_eq!(d.num_users(), 1);
        assert_eq!(d.quality(0, 0), 0.3);
        assert_eq!(d.cost(0, 1), 4.0);
    }

    #[test]
    fn stats_are_consistent() {
        let s = tiny().stats();
        assert_eq!(s.users, 2);
        assert_eq!(s.models, 2);
        assert_eq!(s.min_quality, 0.3);
        assert_eq!(s.max_quality, 0.9);
        assert!((s.mean_quality - 0.6).abs() < 1e-12);
        assert_eq!(s.max_cost, 4.0);
        assert_eq!(s.total_cost, 8.0);
    }

    #[test]
    #[should_panic(expected = "matching shapes")]
    fn mismatched_shapes_panic() {
        let _ = Dataset::new("x", Matrix::zeros(2, 2), Matrix::filled(2, 3, 1.0));
    }

    #[test]
    #[should_panic(expected = "[0, 1]")]
    fn out_of_range_quality_panics() {
        let q = Matrix::from_rows(&[&[1.5]]);
        let _ = Dataset::new("x", q, Matrix::filled(1, 1, 1.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cost_panics() {
        let q = Matrix::from_rows(&[&[0.5]]);
        let _ = Dataset::new("x", q, Matrix::zeros(1, 1));
    }
}
