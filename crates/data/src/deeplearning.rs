//! A seeded surrogate for the paper's DEEPLEARNING dataset.
//!
//! The original is a proprietary log of 22 ease.ml users running image
//! classification over eight CNN architectures, each trained for 100 epochs
//! with an Adam optimizer under a 4-point learning-rate grid (§5.1). The
//! logs are not public, so this module generates a surrogate that matches
//! the distributional properties the paper's experiments depend on
//! (documented in `DESIGN.md`):
//!
//! * **strong model correlation** — architectures rank similarly across
//!   image datasets, with per-architecture skill offsets taken from their
//!   well-known ImageNet-era relative accuracies;
//! * **heterogeneous per-user difficulty** — some tasks saturate near 0.99,
//!   others stall below 0.7;
//! * **costs spanning an order of magnitude** — SqueezeNet/AlexNet train in
//!   a fraction of VGG-16/ResNet-50 time, scaled by a per-user data-size
//!   factor. Crucially (for Fig. 13) fast models are often almost as good as
//!   the slow best model.

use crate::dataset::Dataset;
use crate::dist;
use easeml_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The eight architectures ease.ml matches for image classification, in the
/// order the paper lists them (§5.1).
pub const ARCHITECTURES: [&str; 8] = [
    "NIN",
    "GoogLeNet",
    "ResNet-50",
    "AlexNet",
    "BN-AlexNet",
    "ResNet-18",
    "VGG-16",
    "SqueezeNet",
];

/// Mild intrinsic accuracy offsets of the architectures (vs. the per-user
/// baseline): the deeper nets lead slightly on average, but see `DEPTH`.
const SKILL: [f64; 8] = [-0.015, 0.010, 0.020, -0.025, -0.010, 0.010, 0.015, -0.020];

/// "Depth" coordinate of each architecture in `[-1, 1]`. Which end of this
/// axis wins is *task-dependent*: per-user depth affinity below makes deep
/// nets win on large/complex datasets and shallow nets win (or tie) on
/// small ones — the property that lets a cost-aware scheduler serve many
/// users well with cheap models (the Figure-13 effect), and that the real
/// ease.ml log exhibits ("much simpler networks already overfit on his
/// data set", §1).
const DEPTH: [f64; 8] = [-0.2, 0.5, 1.0, -1.0, -0.6, 0.3, 0.9, -0.8];

/// Mean training cost of each architecture in GPU-hours for the full
/// 100-epoch × 4-learning-rate grid, spanning roughly an order of magnitude.
const COST_HOURS: [f64; 8] = [2.0, 6.0, 10.0, 1.2, 2.2, 4.0, 12.0, 1.0];

/// Number of users in the surrogate (matching Figure 8).
pub const NUM_USERS: usize = 22;

/// Generates the surrogate DEEPLEARNING dataset deterministically from
/// `seed`.
pub fn generate(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEE9_1EA8);
    let k = ARCHITECTURES.len();

    let mut quality = Matrix::zeros(NUM_USERS, k);
    let mut cost = Matrix::zeros(NUM_USERS, k);
    for i in 0..NUM_USERS {
        // Per-user task difficulty: most tasks are comfortably learnable,
        // a few are very easy (≈0.99 reachable) or quite hard.
        let base = dist::normal(0.82, 0.09, &mut rng).clamp(0.50, 0.94);
        // Depth affinity: positive favours deep nets, negative shallow
        // ones. Slightly positive on average, often near zero or negative.
        let affinity = dist::normal(0.015, 0.04, &mut rng);
        // Per-user dataset-size factor scales every model's cost.
        let size_factor = dist::log_uniform(0.3, 3.0, &mut rng);
        for j in 0..k {
            let noise = dist::normal(0.0, 0.012, &mut rng);
            quality[(i, j)] = (base + SKILL[j] + affinity * DEPTH[j] + noise).clamp(0.05, 0.98);
            let jitter = dist::log_uniform(0.8, 1.25, &mut rng);
            cost[(i, j)] = COST_HOURS[j] * size_factor * jitter;
        }
    }
    Dataset::new("DEEPLEARNING", quality, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeml_linalg::vec_ops;

    #[test]
    fn matches_figure_8_shape() {
        let d = generate(0);
        assert_eq!(d.num_users(), 22);
        assert_eq!(d.num_models(), 8);
        assert_eq!(d.name(), "DEEPLEARNING");
    }

    #[test]
    fn deterministic_per_seed() {
        assert!(generate(5)
            .quality_matrix()
            .approx_eq(generate(5).quality_matrix(), 0.0));
        assert!(!generate(5)
            .quality_matrix()
            .approx_eq(generate(6).quality_matrix(), 1e-9));
    }

    #[test]
    fn model_ranking_is_strongly_correlated_across_users() {
        // ResNet-50 (index 2) should beat AlexNet (index 3) for most users.
        // Aggregated over several seeds so the assertion probes the
        // generator's distribution rather than one RNG stream: per-user
        // depth affinity intentionally flips the ranking for a minority of
        // tasks (the Figure-13 effect), so per-seed counts wobble.
        let (mut wins, mut total) = (0usize, 0usize);
        for seed in 0..8 {
            let d = generate(seed);
            wins += (0..d.num_users())
                .filter(|&i| d.quality(i, 2) > d.quality(i, 3))
                .count();
            total += d.num_users();
        }
        let rate = wins as f64 / total as f64;
        assert!(
            rate > 0.72,
            "ResNet-50 beat AlexNet on only {wins}/{total} users"
        );
    }

    #[test]
    fn costs_span_an_order_of_magnitude() {
        let d = generate(2);
        for i in 0..d.num_users() {
            let c = d.user_costs(i);
            let ratio = vec_ops::max(c).unwrap() / vec_ops::min(c).unwrap();
            assert!(ratio > 4.0, "user {i} cost ratio {ratio:.1} too flat");
        }
    }

    #[test]
    fn fast_models_are_often_nearly_as_good() {
        // The Fig.-13 effect needs cheap models whose quality is close to
        // the best: measure the average gap between the best model and the
        // best among the three cheapest architectures.
        let d = generate(3);
        let cheap = [3usize, 7, 0]; // AlexNet, SqueezeNet, NIN
        let mut total_gap = 0.0;
        for i in 0..d.num_users() {
            let best = d.best_quality(i);
            let best_cheap = cheap
                .iter()
                .map(|&j| d.quality(i, j))
                .fold(f64::NEG_INFINITY, f64::max);
            total_gap += best - best_cheap;
        }
        let avg_gap = total_gap / d.num_users() as f64;
        assert!(
            avg_gap < 0.15,
            "cheap models too weak: avg gap {avg_gap:.3}"
        );
    }

    #[test]
    fn per_user_difficulty_varies() {
        let d = generate(4);
        let bests: Vec<f64> = (0..d.num_users()).map(|i| d.best_quality(i)).collect();
        assert!(vec_ops::max(&bests).unwrap() - vec_ops::min(&bests).unwrap() > 0.1);
    }
}
