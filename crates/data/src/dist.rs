//! Deterministic sampling distributions built on `rand`'s uniform source.
//!
//! Normal variates use the Box–Muller transform; multivariate normals use a
//! Cholesky factor of the covariance. Implemented locally so the workspace
//! stays within its approved dependency set (no `rand_distr`).

use easeml_linalg::{Cholesky, Matrix};
use rand::Rng;
use std::f64::consts::PI;

/// Draws one standard-normal sample via Box–Muller.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
}

/// Draws one `N(mean, std²)` sample.
///
/// # Panics
///
/// Panics if `std < 0`.
pub fn normal(mean: f64, std: f64, rng: &mut impl Rng) -> f64 {
    assert!(std >= 0.0, "standard deviation must be non-negative");
    mean + std * standard_normal(rng)
}

/// Draws a sample from the multivariate normal `N(0, cov)` by coloring a
/// standard-normal vector with the Cholesky factor of `cov`. Mildly
/// indefinite covariances are handled with jitter escalation.
///
/// # Panics
///
/// Panics if `cov` is not square or cannot be factored even with jitter.
pub fn multivariate_normal(cov: &Matrix, rng: &mut impl Rng) -> Vec<f64> {
    assert!(cov.is_square(), "covariance must be square");
    let n = cov.rows();
    if n == 0 {
        return Vec::new();
    }
    let (chol, _) = Cholesky::factor_with_jitter(cov, 1e-10, 12)
        .expect("covariance must be (nearly) positive semi-definite");
    let z: Vec<f64> = (0..n).map(|_| standard_normal(rng)).collect();
    let l = chol.l();
    (0..n)
        .map(|i| easeml_linalg::vec_ops::dot(&l.row(i)[..=i], &z[..=i]))
        .collect()
}

/// Draws from `U(lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform(lo: f64, hi: f64, rng: &mut impl Rng) -> f64 {
    assert!(lo < hi, "uniform range must be non-empty");
    rng.gen_range(lo..hi)
}

/// Draws from a log-uniform distribution on `[lo, hi]` (both > 0): the
/// logarithm is uniform. Useful for costs spanning orders of magnitude.
///
/// # Panics
///
/// Panics if `lo <= 0` or `lo >= hi`.
pub fn log_uniform(lo: f64, hi: f64, rng: &mut impl Rng) -> f64 {
    assert!(lo > 0.0 && lo < hi, "log-uniform needs 0 < lo < hi");
    (uniform(lo.ln(), hi.ln(), rng)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeml_linalg::vec_ops;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng(1);
        let xs: Vec<f64> = (0..20_000).map(|_| standard_normal(&mut r)).collect();
        assert!(vec_ops::mean(&xs).abs() < 0.03);
        assert!((vec_ops::variance(&xs) - 1.0).abs() < 0.05);
    }

    #[test]
    fn normal_shift_and_scale() {
        let mut r = rng(2);
        let xs: Vec<f64> = (0..20_000).map(|_| normal(2.0, 0.5, &mut r)).collect();
        assert!((vec_ops::mean(&xs) - 2.0).abs() < 0.02);
        assert!((vec_ops::std_dev(&xs) - 0.5).abs() < 0.02);
        // Zero std is a point mass.
        assert_eq!(normal(3.0, 0.0, &mut r), 3.0);
    }

    #[test]
    fn mvn_respects_covariance() {
        let cov = Matrix::from_rows(&[&[1.0, 0.8], &[0.8, 1.0]]);
        let mut r = rng(3);
        let n = 20_000;
        let samples: Vec<Vec<f64>> = (0..n).map(|_| multivariate_normal(&cov, &mut r)).collect();
        let xs: Vec<f64> = samples.iter().map(|s| s[0]).collect();
        let ys: Vec<f64> = samples.iter().map(|s| s[1]).collect();
        let mx = vec_ops::mean(&xs);
        let my = vec_ops::mean(&ys);
        let cov_xy = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x - mx) * (y - my))
            .sum::<f64>()
            / n as f64;
        assert!((cov_xy - 0.8).abs() < 0.05, "empirical cov {cov_xy}");
        assert!((vec_ops::variance(&xs) - 1.0).abs() < 0.05);
    }

    #[test]
    fn mvn_handles_rank_deficient_covariance() {
        // Perfectly correlated pair: PSD but singular.
        let cov = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let mut r = rng(4);
        let s = multivariate_normal(&cov, &mut r);
        assert!((s[0] - s[1]).abs() < 1e-3, "components must nearly match");
    }

    #[test]
    fn mvn_empty() {
        let mut r = rng(5);
        assert!(multivariate_normal(&Matrix::zeros(0, 0), &mut r).is_empty());
    }

    #[test]
    fn uniform_bounds() {
        let mut r = rng(6);
        for _ in 0..1000 {
            let x = uniform(2.0, 3.0, &mut r);
            assert!((2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn log_uniform_spans_decades() {
        let mut r = rng(7);
        let xs: Vec<f64> = (0..5000)
            .map(|_| log_uniform(0.01, 100.0, &mut r))
            .collect();
        assert!(xs.iter().all(|&x| (0.01..=100.0).contains(&x)));
        // Roughly half the mass below the geometric mean (1.0).
        let below = xs.iter().filter(|&&x| x < 1.0).count();
        assert!((below as f64 / 5000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn determinism_from_seed() {
        let a: Vec<f64> = {
            let mut r = rng(9);
            (0..10).map(|_| standard_normal(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng(9);
            (0..10).map(|_| standard_normal(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_uniform_range_panics() {
        let mut r = rng(10);
        let _ = uniform(1.0, 1.0, &mut r);
    }
}
