//! CSV interchange for datasets.
//!
//! Real deployments would replay their own training logs instead of the
//! bundled surrogates; this module defines the long-format CSV the harness
//! reads and writes: one row per (user, model) cell with its quality and
//! cost.

use crate::dataset::Dataset;
use easeml_linalg::Matrix;
use std::fmt::Write as _;

/// Serializes a dataset to long-format CSV:
/// `user,model,quality,cost` with a header row.
pub fn to_csv(dataset: &Dataset) -> String {
    let mut out = String::from("user,model,quality,cost\n");
    for i in 0..dataset.num_users() {
        for j in 0..dataset.num_models() {
            writeln!(
                out,
                "{i},{j},{},{}",
                dataset.quality(i, j),
                dataset.cost(i, j)
            )
            .unwrap();
        }
    }
    out
}

/// Parse error for [`from_csv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line number of the problem.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "csv error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

/// Deserializes a dataset from the long-format CSV produced by [`to_csv`].
/// The cell set must be dense (every (user, model) pair present exactly
/// once); users and models must be 0-based contiguous indices.
///
/// # Errors
///
/// Returns a [`CsvError`] naming the offending line for malformed rows,
/// duplicate cells, missing cells, or out-of-range values.
pub fn from_csv(name: &str, csv: &str) -> Result<Dataset, CsvError> {
    let mut cells: Vec<(usize, usize, f64, f64)> = Vec::new();
    let mut max_user = 0usize;
    let mut max_model = 0usize;
    for (idx, line) in csv.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.trim();
        if line.is_empty() || (idx == 0 && line.starts_with("user")) {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(CsvError {
                line: line_no,
                message: format!("expected 4 fields, found {}", fields.len()),
            });
        }
        let parse_int = |s: &str, what: &str| {
            s.parse::<usize>().map_err(|_| CsvError {
                line: line_no,
                message: format!("invalid {what} `{s}`"),
            })
        };
        let parse_float = |s: &str, what: &str| {
            s.parse::<f64>().map_err(|_| CsvError {
                line: line_no,
                message: format!("invalid {what} `{s}`"),
            })
        };
        let user = parse_int(fields[0], "user index")?;
        let model = parse_int(fields[1], "model index")?;
        let quality = parse_float(fields[2], "quality")?;
        let cost = parse_float(fields[3], "cost")?;
        if !(0.0..=1.0).contains(&quality) {
            return Err(CsvError {
                line: line_no,
                message: format!("quality {quality} outside [0, 1]"),
            });
        }
        if cost <= 0.0 || !cost.is_finite() {
            return Err(CsvError {
                line: line_no,
                message: format!("cost {cost} must be positive and finite"),
            });
        }
        max_user = max_user.max(user);
        max_model = max_model.max(model);
        cells.push((user, model, quality, cost));
    }
    if cells.is_empty() {
        return Err(CsvError {
            line: 1,
            message: "no data rows".into(),
        });
    }
    let users = max_user + 1;
    let models = max_model + 1;
    if cells.len() != users * models {
        return Err(CsvError {
            line: csv.lines().count(),
            message: format!(
                "expected a dense {users}x{models} grid ({} cells), found {}",
                users * models,
                cells.len()
            ),
        });
    }
    let mut quality = Matrix::zeros(users, models);
    let mut cost = Matrix::zeros(users, models);
    let mut seen = vec![false; users * models];
    for (u, m, q, c) in cells {
        let flat = u * models + m;
        if seen[flat] {
            return Err(CsvError {
                line: 0,
                message: format!("duplicate cell ({u}, {m})"),
            });
        }
        seen[flat] = true;
        quality[(u, m)] = q;
        cost[(u, m)] = c;
    }
    Ok(Dataset::new(name, quality, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SynConfig;

    #[test]
    fn roundtrip_preserves_every_cell() {
        let d = SynConfig {
            num_users: 4,
            num_models: 3,
            ..SynConfig::paper(0.5, 0.5)
        }
        .generate(9);
        let csv = to_csv(&d);
        let back = from_csv(d.name(), &csv).unwrap();
        assert_eq!(back.num_users(), 4);
        assert_eq!(back.num_models(), 3);
        for i in 0..4 {
            for j in 0..3 {
                assert!((back.quality(i, j) - d.quality(i, j)).abs() < 1e-12);
                assert!((back.cost(i, j) - d.cost(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn header_and_blank_lines_are_tolerated() {
        let csv = "user,model,quality,cost\n0,0,0.5,1.0\n\n0,1,0.6,2.0\n";
        let d = from_csv("t", csv).unwrap();
        assert_eq!(d.num_users(), 1);
        assert_eq!(d.num_models(), 2);
        assert_eq!(d.quality(0, 1), 0.6);
    }

    #[test]
    fn malformed_rows_are_reported_with_line_numbers() {
        let e = from_csv("t", "user,model,quality,cost\n0,0,0.5\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("4 fields"));

        let e = from_csv("t", "0,zero,0.5,1.0\n").unwrap_err();
        assert!(e.message.contains("model index"));

        let e = from_csv("t", "0,0,1.5,1.0\n").unwrap_err();
        assert!(e.message.contains("outside"));

        let e = from_csv("t", "0,0,0.5,0.0\n").unwrap_err();
        assert!(e.message.contains("positive"));
    }

    #[test]
    fn sparse_grids_are_rejected() {
        // 2 users × 2 models but only 3 cells.
        let csv = "0,0,0.5,1.0\n0,1,0.5,1.0\n1,0,0.5,1.0\n1,1,0.5,1.0\n";
        assert!(from_csv("t", csv).is_ok());
        let sparse = "0,0,0.5,1.0\n0,1,0.5,1.0\n1,1,0.5,1.0\n";
        let e = from_csv("t", sparse).unwrap_err();
        assert!(e.message.contains("dense"));
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(from_csv("t", "").is_err());
        assert!(from_csv("t", "user,model,quality,cost\n").is_err());
    }

    #[test]
    fn duplicate_cells_are_rejected() {
        let csv = "0,0,0.5,1.0\n0,0,0.6,1.0\n";
        let e = from_csv("t", csv).unwrap_err();
        // Dense check fires first (2 cells for a 1x1 grid).
        assert!(e.message.contains("dense") || e.message.contains("duplicate"));
    }
}
