//! Workload datasets for the ease.ml reproduction (paper §5.1, Appendix B).
//!
//! Every experiment in the paper runs over a *(quality, cost)* matrix: one
//! row per user (dataset), one column per candidate model, with each cell
//! holding the accuracy the model reaches on that user's task and the time
//! it takes to train. This crate provides:
//!
//! * [`Dataset`] — the matrix pair plus metadata and derived statistics;
//! * [`synthetic`] — the Appendix-B generative model (baseline groups,
//!   correlated model groups with hidden features, user groups, white noise)
//!   and the simplified §5.1 `SYN(σ_M, α)` generator;
//! * [`deeplearning`] — a seeded surrogate for the paper's DEEPLEARNING log
//!   (22 image-classification users × 8 CNN architectures, real-shaped
//!   qualities and costs);
//! * [`classifier179`] — a seeded surrogate for the 179CLASSIFIER benchmark
//!   of Delgado et al. (121 UCI users × 179 classifier models, uniform
//!   synthetic costs);
//! * [`split`] — train/test user splits and the Appendix-A "quality vector"
//!   featurization of models on training users;
//! * [`dist`] — deterministic scalar and multivariate normal sampling
//!   (Box–Muller + Cholesky), so the workspace does not need `rand_distr`;
//! * [`presets`] — the exact six datasets of Figure 8.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod classifier179;
pub mod dataset;
pub mod deeplearning;
pub mod dist;
pub mod io;
pub mod presets;
pub mod split;
pub mod synthetic;

pub use dataset::Dataset;
pub use presets::{all_datasets, DatasetKind};
pub use split::{model_quality_features, TrainTestSplit};
pub use synthetic::{SynConfig, SyntheticFullConfig};
