//! The six evaluation datasets of Figure 8.

use crate::classifier179;
use crate::dataset::Dataset;
use crate::deeplearning;
use crate::synthetic::SynConfig;

/// Identifier of one of the paper's six evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// 22 image-classification users × 8 CNNs, real-shaped quality and cost.
    DeepLearning,
    /// 121 UCI users × 179 classifiers, synthetic `U(0,1)` cost.
    Classifier179,
    /// `SYN(0.01, 0.1)`: weak model correlation, weak model influence.
    Syn001_01,
    /// `SYN(0.01, 1.0)`: weak model correlation, strong model influence.
    Syn001_10,
    /// `SYN(0.5, 0.1)`: strong model correlation, weak model influence.
    Syn05_01,
    /// `SYN(0.5, 1.0)`: strong model correlation, strong model influence.
    Syn05_10,
}

impl DatasetKind {
    /// All six kinds in the paper's Figure-8 order.
    pub const ALL: [DatasetKind; 6] = [
        DatasetKind::DeepLearning,
        DatasetKind::Classifier179,
        DatasetKind::Syn001_01,
        DatasetKind::Syn001_10,
        DatasetKind::Syn05_01,
        DatasetKind::Syn05_10,
    ];

    /// The dataset's display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::DeepLearning => "DEEPLEARNING",
            DatasetKind::Classifier179 => "179CLASSIFIER",
            DatasetKind::Syn001_01 => "SYN(0.01,0.1)",
            DatasetKind::Syn001_10 => "SYN(0.01,1.0)",
            DatasetKind::Syn05_01 => "SYN(0.5,0.1)",
            DatasetKind::Syn05_10 => "SYN(0.5,1.0)",
        }
    }

    /// Generates the dataset deterministically from `seed`.
    pub fn generate(self, seed: u64) -> Dataset {
        match self {
            DatasetKind::DeepLearning => deeplearning::generate(seed),
            DatasetKind::Classifier179 => classifier179::generate(seed),
            DatasetKind::Syn001_01 => SynConfig::paper(0.01, 0.1).generate(seed),
            DatasetKind::Syn001_10 => SynConfig::paper(0.01, 1.0).generate(seed),
            DatasetKind::Syn05_01 => SynConfig::paper(0.5, 0.1).generate(seed),
            DatasetKind::Syn05_10 => SynConfig::paper(0.5, 1.0).generate(seed),
        }
    }
}

/// Generates all six Figure-8 datasets from one seed.
pub fn all_datasets(seed: u64) -> Vec<Dataset> {
    DatasetKind::ALL.iter().map(|k| k.generate(seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_8_shapes() {
        let expected = [
            ("DEEPLEARNING", 22, 8),
            ("179CLASSIFIER", 121, 179),
            ("SYN(0.01,0.1)", 200, 100),
            ("SYN(0.01,1.0)", 200, 100),
            ("SYN(0.5,0.1)", 200, 100),
            ("SYN(0.5,1.0)", 200, 100),
        ];
        for (kind, (name, users, models)) in DatasetKind::ALL.iter().zip(expected) {
            let d = kind.generate(1);
            assert_eq!(d.name(), name);
            assert_eq!(d.num_users(), users, "{name}");
            assert_eq!(d.num_models(), models, "{name}");
            assert_eq!(kind.name(), name);
        }
    }

    #[test]
    fn all_datasets_yields_six() {
        let ds = all_datasets(7);
        assert_eq!(ds.len(), 6);
        // All names are distinct.
        let names: std::collections::HashSet<_> = ds.iter().map(|d| d.name()).collect();
        assert_eq!(names.len(), 6);
    }
}
