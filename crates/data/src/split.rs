//! Train/test user splits and the Appendix-A model featurization.
//!
//! The paper's protocol (§5.2, Appendix A): randomly split the users into a
//! training set and a testing set; evaluate every model on every *training*
//! user to form per-model "quality vectors"; use those vectors as the
//! feature representation from which the GP kernel is computed; then run the
//! schedulers on the *testing* users only. Each experiment repeats this with
//! 50 random splits.

use crate::dataset::Dataset;
use rand::seq::SliceRandom;
use rand::Rng;

/// A partition of a dataset's users into training and testing sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainTestSplit {
    /// Users whose (model, quality) outcomes are visible for kernel
    /// construction.
    pub train_users: Vec<usize>,
    /// Users the scheduler is evaluated on.
    pub test_users: Vec<usize>,
}

impl TrainTestSplit {
    /// Draws a uniformly random split with `test_count` testing users.
    ///
    /// # Panics
    ///
    /// Panics if `test_count` is zero or ≥ `num_users` (at least one
    /// training user is required for the kernel).
    pub fn random(num_users: usize, test_count: usize, rng: &mut impl Rng) -> Self {
        assert!(test_count > 0, "need at least one test user");
        assert!(
            test_count < num_users,
            "need at least one training user ({test_count} test of {num_users})"
        );
        let mut ids: Vec<usize> = (0..num_users).collect();
        ids.shuffle(rng);
        let test_users = ids[..test_count].to_vec();
        let mut train_users = ids[test_count..].to_vec();
        train_users.sort_unstable();
        TrainTestSplit {
            train_users,
            test_users,
        }
    }

    /// Keeps only the first `fraction` (0, 1] of the training users —
    /// the Figure-14 "training-set size" knob.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    pub fn truncate_train(&self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        let keep = ((self.train_users.len() as f64 * fraction).round() as usize).max(1);
        TrainTestSplit {
            train_users: self.train_users[..keep.min(self.train_users.len())].to_vec(),
            test_users: self.test_users.clone(),
        }
    }
}

/// Builds the Appendix-A quality-vector features: one vector per model,
/// indexed by the training users, holding the model's accuracy on each.
/// These are the inputs to the GP kernel ("the performance of a model on
/// other users' data sets defines the similarity between models", §5.3.2).
///
/// # Panics
///
/// Panics if `train_users` is empty or contains an out-of-range index.
pub fn model_quality_features(dataset: &Dataset, train_users: &[usize]) -> Vec<Vec<f64>> {
    assert!(!train_users.is_empty(), "need at least one training user");
    assert!(
        train_users.iter().all(|&u| u < dataset.num_users()),
        "training user index out of range"
    );
    (0..dataset.num_models())
        .map(|j| train_users.iter().map(|&u| dataset.quality(u, j)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeml_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn split_partitions_users() {
        let s = TrainTestSplit::random(20, 5, &mut rng());
        assert_eq!(s.test_users.len(), 5);
        assert_eq!(s.train_users.len(), 15);
        let mut all: Vec<usize> = s.train_users.iter().chain(&s.test_users).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn different_rng_states_give_different_splits() {
        let mut r = rng();
        let a = TrainTestSplit::random(50, 10, &mut r);
        let b = TrainTestSplit::random(50, 10, &mut r);
        assert_ne!(a, b);
    }

    #[test]
    fn truncate_train_keeps_fraction() {
        let s = TrainTestSplit {
            train_users: (0..10).collect(),
            test_users: vec![10, 11],
        };
        assert_eq!(s.truncate_train(0.5).train_users.len(), 5);
        assert_eq!(s.truncate_train(1.0).train_users.len(), 10);
        // Tiny fractions still keep at least one user.
        assert_eq!(s.truncate_train(0.01).train_users.len(), 1);
        assert_eq!(s.truncate_train(0.5).test_users, vec![10, 11]);
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn zero_fraction_panics() {
        let s = TrainTestSplit {
            train_users: vec![0],
            test_users: vec![1],
        };
        let _ = s.truncate_train(0.0);
    }

    #[test]
    fn features_are_indexed_by_training_users() {
        let q = Matrix::from_rows(&[&[0.1, 0.2], &[0.3, 0.4], &[0.5, 0.6]]);
        let d = Dataset::with_unit_costs("t", q);
        let feats = model_quality_features(&d, &[0, 2]);
        assert_eq!(feats.len(), 2); // one per model
        assert_eq!(feats[0], vec![0.1, 0.5]);
        assert_eq!(feats[1], vec![0.2, 0.6]);
    }

    #[test]
    #[should_panic(expected = "at least one training user")]
    fn empty_train_users_panics() {
        let q = Matrix::from_rows(&[&[0.1]]);
        let d = Dataset::with_unit_costs("t", q);
        let _ = model_quality_features(&d, &[]);
    }

    #[test]
    #[should_panic(expected = "at least one training user")]
    fn split_needs_a_training_user() {
        let _ = TrainTestSplit::random(5, 5, &mut rng());
    }
}
