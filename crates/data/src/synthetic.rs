//! The paper's synthetic data generators.
//!
//! Two generative models are implemented:
//!
//! * [`SynConfig`] — the simplified §5.1 model used for the `SYN(σ_M, α)`
//!   experiment datasets: user baselines `b_i ~ N(μ_b, σ_b²)`, hidden model
//!   features `f(j) ~ U(0, 1)` inducing the covariance
//!   `Σ_M[j,j'] = exp(−(f(j)−f(j'))²/σ_M²)`, per-user model fluctuations
//!   `[m_1..m_K] ~ N(0, Σ_M)`, and quality `x_{ij} = b_i + α·m_j` clamped to
//!   `[0, 1]`.
//! * [`SyntheticFullConfig`] — the full Appendix-B model with baseline
//!   groups, a *shared* model-group fluctuation, user groups, and white
//!   noise: `x_{ij} = b_i + m_j + u_i + ε_{ij}`, clamped to `[0, 1]`.

use crate::dataset::Dataset;
use crate::dist;
use easeml_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds the RBF covariance over hidden scalar features with the paper's
/// convention `Σ[i,j] = exp(−(f_i − f_j)² / σ²)`.
fn hidden_feature_cov(features: &[f64], sigma: f64) -> Matrix {
    assert!(sigma > 0.0, "correlation bandwidth must be positive");
    let n = features.len();
    Matrix::from_fn(n, n, |i, j| {
        let d = features[i] - features[j];
        (-d * d / (sigma * sigma)).exp()
    })
}

/// Configuration of the simplified §5.1 generator behind the `SYN(σ_M, α)`
/// datasets.
///
/// # Examples
///
/// ```
/// use easeml_data::SynConfig;
///
/// // A small workload with strong model correlation.
/// let dataset = SynConfig {
///     num_users: 6,
///     num_models: 4,
///     ..SynConfig::paper(0.5, 1.0)
/// }
/// .generate(42);
/// assert_eq!(dataset.num_users(), 6);
/// assert!(dataset.quality(0, 0) >= 0.0 && dataset.quality(0, 0) <= 1.0);
/// // The same seed regenerates the same matrix.
/// assert_eq!(
///     dataset.quality(3, 2),
///     SynConfig { num_users: 6, num_models: 4, ..SynConfig::paper(0.5, 1.0) }
///         .generate(42)
///         .quality(3, 2),
/// );
/// ```
#[derive(Debug, Clone)]
pub struct SynConfig {
    /// Number of users N.
    pub num_users: usize,
    /// Number of models K.
    pub num_models: usize,
    /// Strength of the model correlation σ_M (larger ⇒ stronger
    /// correlation).
    pub sigma_m: f64,
    /// Weight α of the model fluctuation in the final quality.
    pub alpha: f64,
    /// Mean of the user baseline quality distribution.
    pub baseline_mean: f64,
    /// Standard deviation of the user baseline quality distribution.
    pub baseline_std: f64,
    /// Cost range `(lo, hi)` for the synthetic `U(lo, hi)` costs.
    pub cost_range: (f64, f64),
}

impl SynConfig {
    /// The `SYN(σ_M, α)` instantiation of Figure 8: 200 users, 100 models,
    /// baselines around 0.5, uniform costs in `(0, 1]`.
    pub fn paper(sigma_m: f64, alpha: f64) -> Self {
        SynConfig {
            num_users: 200,
            num_models: 100,
            sigma_m,
            alpha,
            baseline_mean: 0.5,
            baseline_std: 0.15,
            cost_range: (0.05, 1.0),
        }
    }

    /// Generates the dataset deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero users/models, non-positive
    /// σ_M, empty cost range).
    pub fn generate(&self, seed: u64) -> Dataset {
        assert!(self.num_users > 0 && self.num_models > 0);
        let mut rng = StdRng::seed_from_u64(seed);

        // Hidden model features and their covariance (Appendix B.1.2).
        let features: Vec<f64> = (0..self.num_models).map(|_| rng.gen::<f64>()).collect();
        let cov_m = hidden_feature_cov(&features, self.sigma_m);

        // User baselines.
        let baselines: Vec<f64> = (0..self.num_users)
            .map(|_| dist::normal(self.baseline_mean, self.baseline_std, &mut rng))
            .collect();

        let mut quality = Matrix::zeros(self.num_users, self.num_models);
        for i in 0..self.num_users {
            // §5.1: "We sample for each user i: [m1, ..., mK] ~ N(0, ΣM)".
            let m = dist::multivariate_normal(&cov_m, &mut rng);
            for j in 0..self.num_models {
                quality[(i, j)] = (baselines[i] + self.alpha * m[j]).clamp(0.0, 1.0);
            }
        }

        let (lo, hi) = self.cost_range;
        let cost = Matrix::from_fn(self.num_users, self.num_models, |_, _| {
            dist::uniform(lo, hi, &mut rng)
        });

        let name = format!("SYN({},{:.1})", self.sigma_m, self.alpha);
        Dataset::new(name, quality, cost)
    }
}

/// Configuration of one baseline group `(μ_b, σ_b)` (Appendix B.1.1).
#[derive(Debug, Clone, Copy)]
pub struct BaselineGroup {
    /// Expected quality of the group.
    pub mean: f64,
    /// Within-group variation.
    pub std: f64,
    /// Number of users drawn from this group (per user group).
    pub users_per_user_group: usize,
}

/// The full Appendix-B generative model:
/// `x_{ij} = b_i + m_j + u_i + ε_{ij}` clamped to `[0, 1]`, with
///
/// * `b_i` drawn from the user's baseline group;
/// * `[m_j]` a *single shared* draw from `N(0, Σ_M)` per model group;
/// * `[u_i]` a draw from `N(0, Σ_U)` per user group, correlating users with
///   similar hidden features;
/// * `ε_{ij} ~ N(0, σ_W²)` i.i.d. white noise.
#[derive(Debug, Clone)]
pub struct SyntheticFullConfig {
    /// Baseline groups B (the paper instantiates `{(0.75, σ_B), (0.25, σ_B)}`).
    pub baseline_groups: Vec<BaselineGroup>,
    /// Model-group correlation bandwidths; each group contributes
    /// `models_per_group` models.
    pub model_group_sigmas: Vec<f64>,
    /// Number of models in each model group (the paper's `p_M(*) = 100`).
    pub models_per_group: usize,
    /// User-group correlation bandwidths.
    pub user_group_sigmas: Vec<f64>,
    /// Amplitude of the model-group fluctuation (`m_j` is drawn from
    /// `N(0, Σ_M)` and multiplied by this; Appendix B leaves the scale
    /// unspecified, and it must stay well below the baseline separation for
    /// group structure to survive the `[0, 1]` clamp).
    pub model_amplitude: f64,
    /// Amplitude of the user-group fluctuation.
    pub user_amplitude: f64,
    /// White-noise standard deviation σ_W.
    pub sigma_w: f64,
    /// Cost range for synthetic `U(lo, hi)` costs.
    pub cost_range: (f64, f64),
}

impl SyntheticFullConfig {
    /// The Appendix-B.2 instantiation: two baseline groups at 0.75 / 0.25,
    /// one model group of 100 models, one user group, 50 users per
    /// (baseline, user-group) combination.
    pub fn paper(sigma_b: f64, sigma_m: f64, sigma_u: f64, sigma_w: f64) -> Self {
        SyntheticFullConfig {
            baseline_groups: vec![
                BaselineGroup {
                    mean: 0.75,
                    std: sigma_b,
                    users_per_user_group: 50,
                },
                BaselineGroup {
                    mean: 0.25,
                    std: sigma_b,
                    users_per_user_group: 50,
                },
            ],
            model_group_sigmas: vec![sigma_m],
            models_per_group: 100,
            user_group_sigmas: vec![sigma_u],
            model_amplitude: 0.1,
            user_amplitude: 0.05,
            sigma_w,
            cost_range: (0.05, 1.0),
        }
    }

    /// Total number of users the configuration generates.
    pub fn num_users(&self) -> usize {
        self.baseline_groups
            .iter()
            .map(|g| g.users_per_user_group * self.user_group_sigmas.len())
            .sum()
    }

    /// Total number of models the configuration generates.
    pub fn num_models(&self) -> usize {
        self.model_group_sigmas.len() * self.models_per_group
    }

    /// Generates the dataset deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations.
    pub fn generate(&self, seed: u64) -> Dataset {
        assert!(!self.baseline_groups.is_empty(), "need a baseline group");
        assert!(!self.model_group_sigmas.is_empty(), "need a model group");
        assert!(!self.user_group_sigmas.is_empty(), "need a user group");
        assert!(self.models_per_group > 0);
        assert!(self.sigma_w >= 0.0);
        let mut rng = StdRng::seed_from_u64(seed);

        // --- Models: shared fluctuation m_j per model group (B.1.2). ---
        let mut model_fluct = Vec::with_capacity(self.num_models());
        for &sigma_m in &self.model_group_sigmas {
            let feats: Vec<f64> = (0..self.models_per_group)
                .map(|_| rng.gen::<f64>())
                .collect();
            let cov = hidden_feature_cov(&feats, sigma_m);
            model_fluct.extend(
                dist::multivariate_normal(&cov, &mut rng)
                    .into_iter()
                    .map(|m| self.model_amplitude * m),
            );
        }

        // --- Users: baseline + user-group fluctuation (B.1.1, B.1.3). ---
        let mut baselines = Vec::new();
        let mut user_fluct = Vec::new();
        for group in &self.baseline_groups {
            for &sigma_u in &self.user_group_sigmas {
                let count = group.users_per_user_group;
                let feats: Vec<f64> = (0..count).map(|_| rng.gen::<f64>()).collect();
                let cov = hidden_feature_cov(&feats, sigma_u);
                let u = dist::multivariate_normal(&cov, &mut rng);
                for k in 0..count {
                    baselines.push(dist::normal(group.mean, group.std, &mut rng));
                    user_fluct.push(self.user_amplitude * u[k]);
                }
            }
        }

        let n = baselines.len();
        let m = model_fluct.len();
        let mut quality = Matrix::zeros(n, m);
        for i in 0..n {
            for j in 0..m {
                let x = baselines[i]
                    + model_fluct[j]
                    + user_fluct[i]
                    + dist::normal(0.0, self.sigma_w, &mut rng);
                quality[(i, j)] = x.clamp(0.0, 1.0);
            }
        }

        let (lo, hi) = self.cost_range;
        let cost = Matrix::from_fn(n, m, |_, _| dist::uniform(lo, hi, &mut rng));
        Dataset::new("SYN-full", quality, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeml_linalg::vec_ops;

    #[test]
    fn syn_generator_shapes_and_bounds() {
        let cfg = SynConfig {
            num_users: 20,
            num_models: 10,
            sigma_m: 0.5,
            alpha: 1.0,
            baseline_mean: 0.5,
            baseline_std: 0.15,
            cost_range: (0.1, 1.0),
        };
        let d = cfg.generate(7);
        assert_eq!(d.num_users(), 20);
        assert_eq!(d.num_models(), 10);
        for i in 0..20 {
            for j in 0..10 {
                assert!((0.0..=1.0).contains(&d.quality(i, j)));
                assert!(d.cost(i, j) >= 0.1 && d.cost(i, j) < 1.0);
            }
        }
    }

    #[test]
    fn syn_generator_is_deterministic() {
        let cfg = SynConfig::paper(0.5, 0.1);
        let a = cfg.generate(42);
        let b = cfg.generate(42);
        assert!(a.quality_matrix().approx_eq(b.quality_matrix(), 0.0));
        assert!(a.cost_matrix().approx_eq(b.cost_matrix(), 0.0));
        let c = cfg.generate(43);
        assert!(!a.quality_matrix().approx_eq(c.quality_matrix(), 1e-9));
    }

    #[test]
    fn paper_presets_match_figure_8_shape() {
        let d = SynConfig::paper(0.01, 0.1).generate(1);
        assert_eq!(d.num_users(), 200);
        assert_eq!(d.num_models(), 100);
        assert_eq!(d.name(), "SYN(0.01,0.1)");
    }

    #[test]
    fn larger_sigma_m_means_stronger_model_correlation() {
        // With σ_M large, per-user model fluctuations are nearly constant
        // across models, so the within-user variance of qualities shrinks.
        let weak = SynConfig {
            alpha: 1.0,
            ..SynConfig::paper(0.01, 1.0)
        }
        .generate(5);
        let strong = SynConfig {
            alpha: 1.0,
            ..SynConfig::paper(5.0, 1.0)
        }
        .generate(5);
        let avg_within_user_var = |d: &Dataset| {
            let mut acc = 0.0;
            for i in 0..d.num_users() {
                acc += vec_ops::variance(d.user_qualities(i));
            }
            acc / d.num_users() as f64
        };
        assert!(
            avg_within_user_var(&strong) < avg_within_user_var(&weak),
            "strong correlation should flatten within-user quality"
        );
    }

    #[test]
    fn alpha_scales_model_influence() {
        let small = SynConfig::paper(0.5, 0.1).generate(5);
        let large = SynConfig::paper(0.5, 1.0).generate(5);
        let avg_var = |d: &Dataset| {
            (0..d.num_users())
                .map(|i| vec_ops::variance(d.user_qualities(i)))
                .sum::<f64>()
                / d.num_users() as f64
        };
        assert!(avg_var(&large) > avg_var(&small));
    }

    #[test]
    fn full_generator_counts_and_baseline_groups() {
        let cfg = SyntheticFullConfig::paper(0.05, 0.5, 0.5, 0.02);
        assert_eq!(cfg.num_users(), 100);
        assert_eq!(cfg.num_models(), 100);
        let d = cfg.generate(11);
        assert_eq!(d.num_users(), 100);
        assert_eq!(d.num_models(), 100);
        // First 50 users come from the easy (0.75) group, last 50 from the
        // hard (0.25) group: their mean qualities must separate.
        let mean_user = |d: &Dataset, i: usize| vec_ops::mean(d.user_qualities(i));
        let easy: f64 = (0..50).map(|i| mean_user(&d, i)).sum::<f64>() / 50.0;
        let hard: f64 = (50..100).map(|i| mean_user(&d, i)).sum::<f64>() / 50.0;
        assert!(
            easy > hard + 0.2,
            "baseline groups must separate: easy {easy:.3} vs hard {hard:.3}"
        );
    }

    #[test]
    fn full_generator_white_noise_widens_scatter() {
        let quiet = SyntheticFullConfig::paper(0.01, 0.5, 0.5, 0.0).generate(3);
        let noisy = SyntheticFullConfig::paper(0.01, 0.5, 0.5, 0.2).generate(3);
        // Compare mean within-user variance; white noise adds to it.
        let avg_var = |d: &Dataset| {
            (0..d.num_users())
                .map(|i| vec_ops::variance(d.user_qualities(i)))
                .sum::<f64>()
                / d.num_users() as f64
        };
        assert!(avg_var(&noisy) > avg_var(&quiet));
    }

    #[test]
    fn hidden_feature_cov_structure() {
        let cov = hidden_feature_cov(&[0.0, 0.1, 0.9], 0.3);
        assert_eq!(cov[(0, 0)], 1.0);
        assert!(cov[(0, 1)] > cov[(0, 2)], "closer features correlate more");
        assert!(cov.is_symmetric(0.0));
    }
}
