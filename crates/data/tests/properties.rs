//! Property-based tests for the dataset layer: generator invariants, split
//! invariants, and featurization consistency.

use easeml_data::synthetic::{BaselineGroup, SyntheticFullConfig};
use easeml_data::{model_quality_features, SynConfig, TrainTestSplit};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn syn_config() -> impl Strategy<Value = SynConfig> {
    (
        2usize..12,
        2usize..10,
        0.01f64..2.0,
        0.05f64..1.5,
        0.2f64..0.8,
        0.01f64..0.3,
    )
        .prop_map(|(users, models, sigma_m, alpha, mean, std)| SynConfig {
            num_users: users,
            num_models: models,
            sigma_m,
            alpha,
            baseline_mean: mean,
            baseline_std: std,
            cost_range: (0.05, 1.0),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn syn_generator_respects_bounds((cfg, seed) in (syn_config(), 0u64..500)) {
        let d = cfg.generate(seed);
        prop_assert_eq!(d.num_users(), cfg.num_users);
        prop_assert_eq!(d.num_models(), cfg.num_models);
        for q in d.quality_matrix().as_slice() {
            prop_assert!((0.0..=1.0).contains(q));
        }
        for c in d.cost_matrix().as_slice() {
            prop_assert!(*c >= cfg.cost_range.0 && *c < cfg.cost_range.1);
        }
        // best_quality is the row max.
        for i in 0..d.num_users() {
            let row_max = d
                .user_qualities(i)
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(d.best_quality(i), row_max);
        }
    }

    #[test]
    fn syn_generator_is_deterministic((cfg, seed) in (syn_config(), 0u64..100)) {
        let a = cfg.generate(seed);
        let b = cfg.generate(seed);
        prop_assert!(a.quality_matrix().approx_eq(b.quality_matrix(), 0.0));
        prop_assert!(a.cost_matrix().approx_eq(b.cost_matrix(), 0.0));
    }

    #[test]
    fn full_generator_respects_bounds(
        (sigma_b, sigma_m, sigma_w, seed) in
            (0.01f64..0.2, 0.05f64..2.0, 0.0f64..0.1, 0u64..100)
    ) {
        let mut cfg = SyntheticFullConfig::paper(sigma_b, sigma_m, 0.5, sigma_w);
        // Shrink for test speed.
        cfg.models_per_group = 8;
        for g in &mut cfg.baseline_groups {
            g.users_per_user_group = 5;
        }
        let d = cfg.generate(seed);
        prop_assert_eq!(d.num_users(), cfg.num_users());
        prop_assert_eq!(d.num_models(), cfg.num_models());
        for q in d.quality_matrix().as_slice() {
            prop_assert!((0.0..=1.0).contains(q));
        }
    }

    #[test]
    fn full_generator_group_counts_add_up(
        (a, b, groups) in (1usize..10, 1usize..10, 1usize..4)
    ) {
        let cfg = SyntheticFullConfig {
            baseline_groups: vec![
                BaselineGroup { mean: 0.7, std: 0.05, users_per_user_group: a },
                BaselineGroup { mean: 0.3, std: 0.05, users_per_user_group: b },
            ],
            model_group_sigmas: vec![0.5; groups],
            models_per_group: 6,
            user_group_sigmas: vec![0.4, 0.8],
            model_amplitude: 0.1,
            user_amplitude: 0.05,
            sigma_w: 0.02,
            cost_range: (0.1, 1.0),
        };
        prop_assert_eq!(cfg.num_users(), 2 * (a + b));
        prop_assert_eq!(cfg.num_models(), 6 * groups);
        let d = cfg.generate(3);
        prop_assert_eq!(d.num_users(), 2 * (a + b));
    }

    #[test]
    fn splits_partition_and_truncation_shrinks(
        (n, test, frac, seed) in (4usize..40, 1usize..3, 0.05f64..1.0, 0u64..100)
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = TrainTestSplit::random(n, test, &mut rng);
        prop_assert_eq!(s.test_users.len(), test);
        prop_assert_eq!(s.train_users.len(), n - test);
        let mut all: Vec<usize> = s.train_users.iter().chain(&s.test_users).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());

        let t = s.truncate_train(frac);
        prop_assert!(!t.train_users.is_empty());
        prop_assert!(t.train_users.len() <= s.train_users.len());
        prop_assert_eq!(t.test_users, s.test_users);
        // Truncated set is a prefix of the original training set.
        prop_assert_eq!(&s.train_users[..t.train_users.len()], &t.train_users[..]);
    }

    #[test]
    fn quality_features_match_the_matrix(
        seed in 0u64..50
    ) {
        let d = SynConfig {
            num_users: 8,
            num_models: 5,
            ..SynConfig::paper(0.5, 0.5)
        }
        .generate(seed);
        let train = vec![1usize, 3, 6];
        let feats = model_quality_features(&d, &train);
        prop_assert_eq!(feats.len(), 5);
        for (j, f) in feats.iter().enumerate() {
            prop_assert_eq!(f.len(), 3);
            for (slot, &u) in f.iter().zip(&train) {
                prop_assert_eq!(*slot, d.quality(u, j));
            }
        }
    }

    #[test]
    fn select_users_preserves_cells(seed in 0u64..50) {
        let d = SynConfig {
            num_users: 6,
            num_models: 4,
            ..SynConfig::paper(0.5, 0.5)
        }
        .generate(seed);
        let sel = d.select_users(&[5, 0, 2]);
        prop_assert_eq!(sel.num_users(), 3);
        for (new_i, &old_i) in [5usize, 0, 2].iter().enumerate() {
            for j in 0..4 {
                prop_assert_eq!(sel.quality(new_i, j), d.quality(old_i, j));
                prop_assert_eq!(sel.cost(new_i, j), d.cost(old_i, j));
            }
        }
    }
}
