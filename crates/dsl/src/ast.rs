//! Abstract syntax of ease.ml programs (Figure 2).

use crate::error::ParseError;
use serde::Serialize;
use std::fmt;

/// A constant-sized tensor field, optionally named
/// (`field1 :: Tensor[256, 256, 3]` or just `Tensor[10]`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TensorField {
    /// Optional field name (must match `[a-z0-9_]+` when present).
    pub name: Option<String>,
    /// Tensor dimensions; all strictly positive.
    pub dims: Vec<u64>,
}

impl TensorField {
    /// An anonymous tensor field.
    pub fn anon(dims: Vec<u64>) -> Self {
        TensorField { name: None, dims }
    }

    /// A named tensor field.
    pub fn named(name: impl Into<String>, dims: Vec<u64>) -> Self {
        TensorField {
            name: Some(name.into()),
            dims,
        }
    }

    /// The tensor's rank (number of dimensions).
    #[inline]
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of scalar elements.
    pub fn num_elements(&self) -> u64 {
        self.dims.iter().product()
    }
}

impl fmt::Display for TensorField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(name) = &self.name {
            write!(f, "{name} :: ")?;
        }
        write!(f, "Tensor[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

/// An ease.ml data type: a list of constant-sized tensor fields (the
/// non-recursive component) plus a list of named recursive fields pointing
/// to objects of the same type (chains for time series, two children for
/// trees, …).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct DataType {
    /// Non-recursive (tensor) fields.
    pub tensors: Vec<TensorField>,
    /// Recursive field names.
    pub recursive: Vec<String>,
}

impl DataType {
    /// A purely tensor-shaped type (no recursion).
    pub fn flat(tensors: Vec<TensorField>) -> Self {
        DataType {
            tensors,
            recursive: Vec::new(),
        }
    }

    /// Whether the type has recursive structure.
    #[inline]
    pub fn is_recursive(&self) -> bool {
        !self.recursive.is_empty()
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{[")?;
        for (i, t) in self.tensors.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "], [")?;
        for (i, r) in self.recursive.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "]}}")
    }
}

/// A full ease.ml program: the declared input and output types.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Program {
    /// Shape of input objects.
    pub input: DataType,
    /// Shape of output objects.
    pub output: DataType,
}

impl Program {
    /// Validates structural invariants beyond what the grammar enforces:
    ///
    /// * every tensor has at least one dimension, all strictly positive;
    /// * field names match `[a-z0-9_]+` and must not start with a digit;
    /// * names (tensor and recursive together) are unique within each type;
    /// * each type has at least one field of some kind (a completely empty
    ///   object approximates nothing).
    ///
    /// The grammar's DAG restriction (no object reuse) is inherent in the
    /// syntax — recursion is only by name to the same type — so no extra
    /// check is needed here.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] (offset 0) describing the first violation.
    pub fn validate(&self) -> Result<(), ParseError> {
        for (side, dt) in [("input", &self.input), ("output", &self.output)] {
            if dt.tensors.is_empty() && dt.recursive.is_empty() {
                return Err(ParseError::new(0, format!("{side} type is empty")));
            }
            let mut names = std::collections::HashSet::new();
            for t in &dt.tensors {
                if t.dims.is_empty() {
                    return Err(ParseError::new(
                        0,
                        format!("{side} tensor has no dimensions"),
                    ));
                }
                if t.dims.contains(&0) {
                    return Err(ParseError::new(
                        0,
                        format!("{side} tensor has a zero dimension"),
                    ));
                }
                if let Some(name) = &t.name {
                    validate_field_name(side, name)?;
                    if !names.insert(name.clone()) {
                        return Err(ParseError::new(
                            0,
                            format!("duplicate field name `{name}` in {side}"),
                        ));
                    }
                }
            }
            for r in &dt.recursive {
                validate_field_name(side, r)?;
                if !names.insert(r.clone()) {
                    return Err(ParseError::new(
                        0,
                        format!("duplicate field name `{r}` in {side}"),
                    ));
                }
            }
        }
        Ok(())
    }
}

fn validate_field_name(side: &str, name: &str) -> Result<(), ParseError> {
    let ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        && !name.starts_with(|c: char| c.is_ascii_digit());
    if ok {
        Ok(())
    } else {
        Err(ParseError::new(
            0,
            format!("invalid field name `{name}` in {side} (expected [a-z_][a-z0-9_]*)"),
        ))
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{input: {}, output: {}}}", self.input, self.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image_classification() -> Program {
        Program {
            input: DataType::flat(vec![TensorField::anon(vec![256, 256, 3])]),
            output: DataType::flat(vec![TensorField::anon(vec![1000])]),
        }
    }

    #[test]
    fn tensor_field_basics() {
        let t = TensorField::named("field1", vec![256, 256, 3]);
        assert_eq!(t.rank(), 3);
        assert_eq!(t.num_elements(), 256 * 256 * 3);
        assert_eq!(t.to_string(), "field1 :: Tensor[256, 256, 3]");
        assert_eq!(TensorField::anon(vec![10]).to_string(), "Tensor[10]");
    }

    #[test]
    fn display_roundtrips_shape() {
        let p = image_classification();
        assert_eq!(
            p.to_string(),
            "{input: {[Tensor[256, 256, 3]], []}, output: {[Tensor[1000]], []}}"
        );
    }

    #[test]
    fn valid_program_passes() {
        assert!(image_classification().validate().is_ok());
        // Time series: 1-D tensor + recursive pointer.
        let ts = Program {
            input: DataType {
                tensors: vec![TensorField::anon(vec![10])],
                recursive: vec!["next".into()],
            },
            output: DataType {
                tensors: vec![TensorField::anon(vec![10])],
                recursive: vec!["next".into()],
            },
        };
        assert!(ts.validate().is_ok());
        assert!(ts.input.is_recursive());
    }

    #[test]
    fn zero_dimension_rejected() {
        let p = Program {
            input: DataType::flat(vec![TensorField::anon(vec![0])]),
            output: DataType::flat(vec![TensorField::anon(vec![1])]),
        };
        assert!(p.validate().unwrap_err().message.contains("zero dimension"));
    }

    #[test]
    fn empty_dims_rejected() {
        let p = Program {
            input: DataType::flat(vec![TensorField::anon(vec![])]),
            output: DataType::flat(vec![TensorField::anon(vec![1])]),
        };
        assert!(p.validate().unwrap_err().message.contains("no dimensions"));
    }

    #[test]
    fn empty_type_rejected() {
        let p = Program {
            input: DataType::flat(vec![]),
            output: DataType::flat(vec![TensorField::anon(vec![1])]),
        };
        assert!(p.validate().unwrap_err().message.contains("empty"));
    }

    #[test]
    fn bad_field_names_rejected() {
        for bad in ["Next", "1st", "", "with space", "ün"] {
            let p = Program {
                input: DataType {
                    tensors: vec![TensorField::anon(vec![2])],
                    recursive: vec![bad.to_string()],
                },
                output: DataType::flat(vec![TensorField::anon(vec![1])]),
            };
            assert!(
                p.validate().is_err(),
                "field name `{bad}` should be rejected"
            );
        }
    }

    #[test]
    fn duplicate_names_rejected() {
        let p = Program {
            input: DataType {
                tensors: vec![TensorField::named("a", vec![2])],
                recursive: vec!["a".into()],
            },
            output: DataType::flat(vec![TensorField::anon(vec![1])]),
        };
        assert!(p.validate().unwrap_err().message.contains("duplicate"));
    }
}
