//! Code generation (§2.1, Figure 3): from a parsed program to the
//! system-data types and the user-facing artifacts.
//!
//! Given an input program, ease.ml generates (1) system-data types — shown
//! in the paper in Julia format — that the rest of the system understands,
//! and (2) three binaries (`feed`, `refine`, `infer`) plus a Python library
//! through which all user operations flow to the central server. This
//! module reproduces the translation: the Julia type text, and manifests
//! describing the generated artifacts (identifier + server endpoint baked
//! in, as the paper describes).

use crate::ast::{DataType, Program};
use std::fmt::Write as _;

/// Capitalizes the side name for a Julia type (`input` → `Input`).
fn type_name(side: &str) -> String {
    let mut c = side.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

/// Renders one data type as the paper's Julia-format system type:
///
/// ```text
/// type Input
///     field1 :: Tensor[256, 256, 3]
///     next :: Nullable{Input}
/// end
/// ```
///
/// Anonymous tensor fields are given the positional names `field1…fieldN`;
/// recursive fields become `Nullable{TypeName}` pointers.
pub fn julia_type(side: &str, dt: &DataType) -> String {
    let name = type_name(side);
    let mut out = String::new();
    writeln!(out, "type {name}").unwrap();
    for (i, t) in dt.tensors.iter().enumerate() {
        let field_name = t.name.clone().unwrap_or_else(|| format!("field{}", i + 1));
        let dims = t
            .dims
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        writeln!(out, "    {field_name} :: Tensor[{dims}]").unwrap();
    }
    for r in &dt.recursive {
        writeln!(out, "    {r} :: Nullable{{{name}}}").unwrap();
    }
    out.push_str("end\n");
    out
}

/// Renders both system-data types of a program.
pub fn julia_types(prog: &Program) -> String {
    format!(
        "{}\n{}",
        julia_type("input", &prog.input),
        julia_type("output", &prog.output)
    )
}

/// One generated user-facing artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// File name of the binary / library.
    pub name: String,
    /// What the artifact does.
    pub description: String,
}

/// A code-generation manifest: the unique application identifier, the
/// server endpoint baked into every artifact, and the artifact list
/// (three binaries + the Python library, per §2.1).
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Unique identifier of the generated application.
    pub app_id: String,
    /// Server endpoint all operations are sent to.
    pub server: String,
    /// Generated artifacts.
    pub artifacts: Vec<Artifact>,
}

/// Generates the artifact manifest for an application.
///
/// The `app_id` should be unique per (user, program); the paper bakes a
/// unique identifier and the server IP into each binary.
pub fn generate_manifest(app_name: &str, server: &str) -> Manifest {
    let mk = |suffix: &str, description: &str| Artifact {
        name: if suffix.is_empty() {
            app_name.to_string()
        } else {
            format!("{app_name}.{suffix}")
        },
        description: description.to_string(),
    };
    Manifest {
        app_id: app_name.to_string(),
        server: server.to_string(),
        artifacts: vec![
            mk(
                "feed",
                "takes input/output pairs and ships them to the shared storage",
            ),
            mk(
                "refine",
                "lists all fed pairs and toggles noisy examples on/off",
            ),
            mk(
                "infer",
                "maps an input object to an output object with the best model so far",
            ),
            mk(
                "py",
                "Python library exposing feed/refine/infer programmatically",
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn julia_type_matches_figure_3_image_example() {
        let p = parse_program("{input: {[Tensor[256, 256, 3]], []}, output: {[Tensor[1000]], []}}")
            .unwrap();
        let t = julia_type("input", &p.input);
        assert_eq!(t, "type Input\n    field1 :: Tensor[256, 256, 3]\nend\n");
        let t = julia_type("output", &p.output);
        assert!(t.contains("type Output"));
        assert!(t.contains("field1 :: Tensor[1000]"));
    }

    #[test]
    fn julia_type_matches_figure_3_time_series_example() {
        let p = parse_program("{input: {[Tensor[10]], [next]}, output: {[Tensor[10]], [next]}}")
            .unwrap();
        let t = julia_type("input", &p.input);
        assert!(t.contains("field1 :: Tensor[10]"));
        assert!(t.contains("next :: Nullable{Input}"));
        let t = julia_type("output", &p.output);
        assert!(t.contains("next :: Nullable{Output}"));
    }

    #[test]
    fn named_fields_keep_their_names() {
        let p = parse_program(
            "{input: {[img :: Tensor[8, 8], meta :: Tensor[4]], []}, output: {[Tensor[2]], []}}",
        )
        .unwrap();
        let t = julia_type("input", &p.input);
        assert!(t.contains("img :: Tensor[8, 8]"));
        assert!(t.contains("meta :: Tensor[4]"));
        assert!(!t.contains("field1"));
    }

    #[test]
    fn julia_types_renders_both_sides() {
        let p = parse_program("{input: {[Tensor[4]], []}, output: {[Tensor[2]], []}}").unwrap();
        let both = julia_types(&p);
        assert!(both.contains("type Input"));
        assert!(both.contains("type Output"));
    }

    #[test]
    fn manifest_has_three_binaries_and_a_library() {
        let m = generate_manifest("myapp", "10.0.0.1:9000");
        assert_eq!(m.app_id, "myapp");
        assert_eq!(m.server, "10.0.0.1:9000");
        assert_eq!(m.artifacts.len(), 4);
        let names: Vec<&str> = m.artifacts.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["myapp.feed", "myapp.refine", "myapp.infer", "myapp.py"]
        );
        assert!(m.artifacts[2].description.contains("best model"));
    }
}
