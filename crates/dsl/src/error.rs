//! Parse and validation errors for the ease.ml DSL.

use std::fmt;

/// An error produced while lexing, parsing, or validating a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the source where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Creates an error at the given byte offset.
    pub fn new(offset: usize, message: impl Into<String>) -> Self {
        ParseError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_offset_and_message() {
        let e = ParseError::new(12, "expected ']'");
        assert_eq!(e.to_string(), "parse error at byte 12: expected ']'");
    }

    #[test]
    fn errors_compare_by_value() {
        assert_eq!(ParseError::new(1, "x"), ParseError::new(1, "x"));
        assert_ne!(ParseError::new(1, "x"), ParseError::new(2, "x"));
    }
}
