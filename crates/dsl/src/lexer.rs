//! Tokenizer for the Figure-2 grammar.

use crate::error::ParseError;

/// A lexical token with its byte offset in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Byte offset of the token's first character.
    pub offset: usize,
    /// The token kind and payload.
    pub kind: TokenKind,
}

/// Token kinds of the DSL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `:`
    Colon,
    /// `::`
    DoubleColon,
    /// `,`
    Comma,
    /// An identifier or keyword (`input`, `output`, `Tensor`, field names).
    Ident(String),
    /// An unsigned integer literal.
    Int(u64),
}

/// Tokenizes `src`, skipping ASCII whitespace.
///
/// # Errors
///
/// Returns a [`ParseError`] on unexpected characters or integer overflow.
pub fn tokenize(src: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let offset = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '{' => {
                tokens.push(Token {
                    offset,
                    kind: TokenKind::LBrace,
                });
                i += 1;
            }
            '}' => {
                tokens.push(Token {
                    offset,
                    kind: TokenKind::RBrace,
                });
                i += 1;
            }
            '[' => {
                tokens.push(Token {
                    offset,
                    kind: TokenKind::LBracket,
                });
                i += 1;
            }
            ']' => {
                tokens.push(Token {
                    offset,
                    kind: TokenKind::RBracket,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    offset,
                    kind: TokenKind::Comma,
                });
                i += 1;
            }
            ':' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b':' {
                    tokens.push(Token {
                        offset,
                        kind: TokenKind::DoubleColon,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        offset,
                        kind: TokenKind::Colon,
                    });
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let value: u64 = text.parse().map_err(|_| {
                    ParseError::new(start, format!("integer literal `{text}` overflows u64"))
                })?;
                tokens.push(Token {
                    offset,
                    kind: TokenKind::Int(value),
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token {
                    offset,
                    kind: TokenKind::Ident(src[start..i].to_string()),
                });
            }
            other => {
                return Err(ParseError::new(
                    offset,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn punctuation_and_double_colon() {
        assert_eq!(
            kinds("{}[],:::"),
            vec![
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::LBracket,
                TokenKind::RBracket,
                TokenKind::Comma,
                TokenKind::DoubleColon,
                TokenKind::Colon,
            ]
        );
    }

    #[test]
    fn idents_and_ints() {
        assert_eq!(
            kinds("input Tensor field_1 42"),
            vec![
                TokenKind::Ident("input".into()),
                TokenKind::Ident("Tensor".into()),
                TokenKind::Ident("field_1".into()),
                TokenKind::Int(42),
            ]
        );
    }

    #[test]
    fn whitespace_is_skipped_and_offsets_recorded() {
        let toks = tokenize("  {\n\tinput").unwrap();
        assert_eq!(toks[0].offset, 2);
        assert_eq!(toks[1].offset, 5);
    }

    #[test]
    fn full_example_tokenizes() {
        let toks =
            tokenize("{input: {[Tensor[256, 256, 3]], []}, output: {[Tensor[3]], []}}").unwrap();
        assert!(toks.len() > 20);
    }

    #[test]
    fn unexpected_character_errors() {
        let e = tokenize("{input: $}").unwrap_err();
        assert_eq!(e.offset, 8);
        assert!(e.message.contains('$'));
    }

    #[test]
    fn integer_overflow_errors() {
        let e = tokenize("99999999999999999999999999").unwrap_err();
        assert!(e.message.contains("overflows"));
    }

    #[test]
    fn empty_source() {
        assert!(tokenize("").unwrap().is_empty());
        assert!(tokenize("   \n ").unwrap().is_empty());
    }
}
