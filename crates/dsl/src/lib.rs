//! The ease.ml declarative language (paper §2).
//!
//! Ease.ml users think of machine learning as an arbitrary function
//! approximator: they declare only the *shape* of the input and output
//! objects, plus example pairs. This crate implements the language layer:
//!
//! * [`lexer`] / [`parser`] — the Figure-2 grammar
//!   (`prog ::= {input: data_type, output: data_type}` with recursive and
//!   non-recursive fields);
//! * [`ast`] — programs, data types, tensor fields, and their validation
//!   (dimensions positive, field names well-formed, the no-object-reuse /
//!   DAG restriction §2.1 describes);
//! * [`template`] — the Figure-4 template matcher that maps a program to its
//!   consistent candidate models, trying templates from most specific to
//!   most general with `*` tail wildcards;
//! * [`zoo`] — the model zoo with publication year and citation metadata,
//!   from which the MOSTCITED / MOSTRECENT user heuristics of §5.2 derive
//!   their orderings;
//! * [`normalize`] — the Figure-5 automatic-normalization family
//!   `f_k(x) = −x^{2k} + x^k`, each `k` spawning one extra candidate model
//!   for wide-dynamic-range image-shaped data (the astrophysics use case).
//!
//! # Examples
//!
//! ```
//! use easeml_dsl::{parse_program, template::match_templates};
//!
//! // The paper's image-classification example (Figure 3).
//! let prog = parse_program(
//!     "{input: {[Tensor[256, 256, 3]], []}, output: {[Tensor[1000]], []}}",
//! ).unwrap();
//! let matched = match_templates(&prog).expect("a template matches");
//! assert_eq!(matched.workload.to_string(), "Image/Tensor Classification");
//! assert_eq!(matched.models.len(), 8);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod codegen;
pub mod error;
pub mod lexer;
pub mod loader;
pub mod normalize;
pub mod parser;
pub mod template;
pub mod zoo;

pub use ast::{DataType, Program, TensorField};
pub use error::ParseError;
pub use parser::parse_program;
pub use template::{match_templates, MatchedTemplate, WorkloadKind};
pub use zoo::{ModelId, ModelInfo};
