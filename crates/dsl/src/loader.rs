//! Default loaders for the `feed` operator (§2.1): parsing piped
//! input/output pairs into flat tensors validated against the program's
//! declared shapes.
//!
//! The paper's users pipe example pairs into the generated `feed` binary
//! (`find -name "*jpg" dog_imgs | ./feed -input - -output "dog"`). This
//! module implements the text-format loader: one example per line,
//! whitespace-separated numbers for the input tensor, a `|` separator, and
//! either numbers for the output tensor or a label name resolved through a
//! label dictionary (the `lam - -s " dog"` idiom).

use crate::ast::{DataType, Program};
use crate::error::ParseError;
use std::collections::HashMap;

/// A parsed example pair: flat input and output tensors.
#[derive(Debug, Clone, PartialEq)]
pub struct ExamplePair {
    /// Flattened input tensor (row-major over all tensor fields).
    pub input: Vec<f64>,
    /// Flattened output tensor.
    pub output: Vec<f64>,
}

/// Total number of scalars a flat (non-recursive) data type expects.
fn flat_len(dt: &DataType) -> u64 {
    dt.tensors.iter().map(|t| t.num_elements()).sum()
}

/// Parses numbers from a whitespace-separated field list.
fn parse_numbers(s: &str, line: usize) -> Result<Vec<f64>, ParseError> {
    s.split_whitespace()
        .map(|tok| {
            tok.parse::<f64>()
                .map_err(|_| ParseError::new(line, format!("invalid number `{tok}` in example")))
        })
        .collect()
}

/// A loader bound to a program's shapes plus an optional label dictionary
/// mapping class names to one-hot output vectors.
///
/// # Examples
///
/// ```
/// use easeml_dsl::{parse_program, loader::Loader};
///
/// let prog = parse_program(
///     "{input: {[Tensor[2]], []}, output: {[Tensor[2]], []}}",
/// ).unwrap();
/// let loader = Loader::new(&prog).unwrap().with_label("dog", 0);
/// let pair = loader.parse_line("0.5 0.25 | dog", 1).unwrap();
/// assert_eq!(pair.input, vec![0.5, 0.25]);
/// assert_eq!(pair.output, vec![1.0, 0.0]);
/// ```
#[derive(Debug, Clone)]
pub struct Loader {
    input_len: usize,
    output_len: usize,
    labels: HashMap<String, usize>,
}

impl Loader {
    /// Creates a loader for a program with non-recursive input and output
    /// (the common case for piped examples; recursive objects arrive via
    /// the programmatic API instead).
    ///
    /// # Errors
    ///
    /// Returns an error when either side is recursive.
    pub fn new(prog: &Program) -> Result<Self, ParseError> {
        if prog.input.is_recursive() || prog.output.is_recursive() {
            return Err(ParseError::new(
                0,
                "the text loader supports non-recursive programs only",
            ));
        }
        Ok(Loader {
            input_len: flat_len(&prog.input) as usize,
            output_len: flat_len(&prog.output) as usize,
            labels: HashMap::new(),
        })
    }

    /// Registers a class label resolving to a one-hot output at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the output tensor.
    pub fn with_label(mut self, name: impl Into<String>, index: usize) -> Self {
        assert!(index < self.output_len, "label index outside the output");
        self.labels.insert(name.into(), index);
        self
    }

    /// Expected flat input length.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Expected flat output length.
    pub fn output_len(&self) -> usize {
        self.output_len
    }

    /// Parses one piped line: `<numbers> | <numbers or label>`.
    ///
    /// # Errors
    ///
    /// Reports the 1-based `line` number on malformed input, wrong tensor
    /// sizes, or unknown labels.
    pub fn parse_line(&self, text: &str, line: usize) -> Result<ExamplePair, ParseError> {
        let (lhs, rhs) = text.split_once('|').ok_or_else(|| {
            ParseError::new(line, "expected `<input> | <output>` with a `|` separator")
        })?;
        let input = parse_numbers(lhs, line)?;
        if input.len() != self.input_len {
            return Err(ParseError::new(
                line,
                format!(
                    "input has {} values, the declared shape needs {}",
                    input.len(),
                    self.input_len
                ),
            ));
        }
        let rhs = rhs.trim();
        let output = if let Some(&idx) = self.labels.get(rhs) {
            let mut one_hot = vec![0.0; self.output_len];
            one_hot[idx] = 1.0;
            one_hot
        } else {
            let nums = parse_numbers(rhs, line)?;
            if nums.len() != self.output_len {
                return Err(ParseError::new(
                    line,
                    format!(
                        "output has {} values (or an unknown label `{rhs}`), \
                         the declared shape needs {}",
                        nums.len(),
                        self.output_len
                    ),
                ));
            }
            nums
        };
        Ok(ExamplePair { input, output })
    }

    /// Parses a whole piped stream, one example per non-empty line.
    ///
    /// # Errors
    ///
    /// Stops at the first malformed line.
    pub fn parse_stream(&self, text: &str) -> Result<Vec<ExamplePair>, ParseError> {
        let mut out = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            out.push(self.parse_line(line, idx + 1)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn classifier_loader() -> Loader {
        let prog =
            parse_program("{input: {[Tensor[2, 2]], []}, output: {[Tensor[2]], []}}").unwrap();
        Loader::new(&prog)
            .unwrap()
            .with_label("dog", 0)
            .with_label("cat", 1)
    }

    #[test]
    fn numeric_pairs_parse() {
        let l = classifier_loader();
        assert_eq!(l.input_len(), 4);
        assert_eq!(l.output_len(), 2);
        let p = l.parse_line("0.1 0.2 0.3 0.4 | 1 0", 1).unwrap();
        assert_eq!(p.input, vec![0.1, 0.2, 0.3, 0.4]);
        assert_eq!(p.output, vec![1.0, 0.0]);
    }

    #[test]
    fn labels_resolve_to_one_hot() {
        let l = classifier_loader();
        let p = l.parse_line("0 0 0 0 | dog", 1).unwrap();
        assert_eq!(p.output, vec![1.0, 0.0]);
        let p = l.parse_line("0 0 0 0 | cat", 1).unwrap();
        assert_eq!(p.output, vec![0.0, 1.0]);
    }

    #[test]
    fn stream_parses_multiple_lines_and_skips_blanks() {
        let l = classifier_loader();
        let pairs = l.parse_stream("1 2 3 4 | dog\n\n5 6 7 8 | cat\n").unwrap();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[1].input, vec![5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let l = classifier_loader();
        let e = l.parse_stream("1 2 3 4 | dog\n1 2 3 | cat").unwrap_err();
        assert_eq!(e.offset, 2);
        assert!(e.message.contains("needs 4"));

        let e = l.parse_line("1 2 3 4 | wolf", 7).unwrap_err();
        assert_eq!(e.offset, 7);
        assert!(e.message.contains("wolf"));

        let e = l.parse_line("1 2 3 4", 3).unwrap_err();
        assert!(e.message.contains('|'));

        let e = l.parse_line("1 2 x 4 | dog", 3).unwrap_err();
        assert!(e.message.contains('x'));
    }

    #[test]
    fn multi_field_inputs_flatten() {
        let prog = parse_program(
            "{input: {[Tensor[2], meta :: Tensor[3]], []}, output: {[Tensor[1]], []}}",
        )
        .unwrap();
        let l = Loader::new(&prog).unwrap();
        assert_eq!(l.input_len(), 5);
        let p = l.parse_line("1 2 3 4 5 | 0.5", 1).unwrap();
        assert_eq!(p.input.len(), 5);
        assert_eq!(p.output, vec![0.5]);
    }

    #[test]
    fn recursive_programs_are_rejected() {
        let prog =
            parse_program("{input: {[Tensor[2]], [next]}, output: {[Tensor[1]], []}}").unwrap();
        assert!(Loader::new(&prog).is_err());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_label_panics() {
        let _ = classifier_loader().with_label("bird", 5);
    }
}
