//! Automatic input normalization (Figure 5).
//!
//! Data from scientific users often has an image-like *shape* but a dynamic
//! range spanning many orders of magnitude (the paper cites astrophysics
//! and proteomics applications where it varies by ten orders). Feeding such
//! data to image models directly yields unusable quality, so ease.ml
//! normalizes inputs with the one-parameter family
//!
//! ```text
//! f_k(x) = −x^{2k} + x^k,   k ∈ (0, 1]
//! ```
//!
//! applied after rescaling raw values into `[0, 1]`. Each `k`, combined
//! with each consistent model, yields one additional candidate model.

use crate::zoo::ModelId;

/// One normalization function `f_k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normalization {
    /// The exponent parameter k.
    pub k: f64,
}

impl Normalization {
    /// Creates `f_k`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < k ≤ 1` (larger k inverts the emphasis and exceeds
    /// the family the paper plots).
    pub fn new(k: f64) -> Self {
        assert!(
            k > 0.0 && k <= 1.0,
            "normalization exponent must be in (0, 1]"
        );
        Normalization { k }
    }

    /// Evaluates `f_k(x) = −x^{2k} + x^k` for `x ∈ [0, 1]`.
    ///
    /// The output is in `[0, 1/4]`; callers typically rescale by 4 to use
    /// the full unit range (see [`Normalization::apply_unit`]).
    #[inline]
    pub fn apply(&self, x: f64) -> f64 {
        let xk = x.clamp(0.0, 1.0).powf(self.k);
        -xk * xk + xk
    }

    /// Evaluates `4 · f_k(x)`, rescaled so the peak value is 1.
    #[inline]
    pub fn apply_unit(&self, x: f64) -> f64 {
        4.0 * self.apply(x)
    }

    /// Normalizes a whole buffer in place (raw values are first min-max
    /// rescaled to `[0, 1]`, then passed through `4·f_k`).
    pub fn normalize_buffer(&self, data: &mut [f64]) {
        if data.is_empty() {
            return;
        }
        let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = hi - lo;
        for v in data.iter_mut() {
            let unit = if span > 0.0 { (*v - lo) / span } else { 0.0 };
            *v = self.apply_unit(unit);
        }
    }
}

/// The default normalization family ease.ml tries, matching the k values
/// plotted in Figure 5.
pub const DEFAULT_KS: [f64; 4] = [0.2, 0.4, 0.6, 0.8];

/// A candidate model expanded with an optional normalization: the Cartesian
/// product of consistent models and normalization functions, plus each bare
/// model (identity preprocessing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalizedCandidate {
    /// The underlying model.
    pub model: ModelId,
    /// The normalization applied to the input, if any.
    pub normalization: Option<Normalization>,
}

impl NormalizedCandidate {
    /// A human-readable label, e.g. `ResNet-50 (k=0.4)`.
    pub fn label(&self) -> String {
        match self.normalization {
            Some(n) => format!("{} (k={})", self.model.name(), n.k),
            None => self.model.name().to_string(),
        }
    }
}

/// Expands consistent models with the normalization family: each model is
/// paired with identity preprocessing and with every `f_k` in `ks`
/// ("each normalization function in this family, together with a consistent
/// model, generates one candidate model", §2.1).
pub fn expand_with_normalizations(models: &[ModelId], ks: &[f64]) -> Vec<NormalizedCandidate> {
    let mut out = Vec::with_capacity(models.len() * (1 + ks.len()));
    for &model in models {
        out.push(NormalizedCandidate {
            model,
            normalization: None,
        });
        for &k in ks {
            out.push(NormalizedCandidate {
                model,
                normalization: Some(Normalization::new(k)),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::IMAGE_CLASSIFIERS;

    #[test]
    fn f_k_endpoints_are_zero() {
        for &k in &DEFAULT_KS {
            let n = Normalization::new(k);
            assert!(n.apply(0.0).abs() < 1e-12);
            assert!(n.apply(1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn f_k_peaks_at_one_quarter() {
        // f_k(x) = −u² + u with u = x^k maximizes at u = 1/2, value 1/4.
        let n = Normalization::new(0.5);
        let peak_x = 0.5f64.powf(1.0 / 0.5); // u = 1/2 ⇒ x = (1/2)^{1/k}
        assert!((n.apply(peak_x) - 0.25).abs() < 1e-12);
        assert!((n.apply_unit(peak_x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smaller_k_emphasizes_small_values() {
        // For small x, a smaller k gives a larger normalized value — the
        // point of the feature for high-dynamic-range data.
        let x = 1e-6;
        let lo_k = Normalization::new(0.2).apply(x);
        let hi_k = Normalization::new(0.8).apply(x);
        assert!(lo_k > hi_k * 10.0, "{lo_k} vs {hi_k}");
    }

    #[test]
    fn output_range_is_bounded() {
        for &k in &DEFAULT_KS {
            let n = Normalization::new(k);
            let mut x = 0.0;
            while x <= 1.0 {
                let y = n.apply(x);
                assert!((0.0..=0.25 + 1e-12).contains(&y), "f_{k}({x}) = {y}");
                x += 0.01;
            }
        }
    }

    #[test]
    fn buffer_normalization_handles_wide_dynamic_range() {
        // Astrophysics-style data: values across 10 orders of magnitude.
        let mut data = vec![1e-10, 1e-5, 1e-2, 0.5, 1.0, 1e4, 1e10];
        Normalization::new(0.2).normalize_buffer(&mut data);
        assert!(data.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Small-but-nonzero values are now clearly visible (not ~0).
        assert!(data[3] > 0.01, "midrange value crushed: {}", data[3]);
    }

    #[test]
    fn buffer_normalization_edge_cases() {
        let mut empty: Vec<f64> = vec![];
        Normalization::new(0.4).normalize_buffer(&mut empty);
        let mut constant = vec![5.0, 5.0];
        Normalization::new(0.4).normalize_buffer(&mut constant);
        assert_eq!(constant, vec![0.0, 0.0]); // degenerate span maps to 0
    }

    #[test]
    fn expansion_counts_and_labels() {
        let cands = expand_with_normalizations(&IMAGE_CLASSIFIERS, &DEFAULT_KS);
        assert_eq!(cands.len(), 8 * 5);
        assert_eq!(cands[0].label(), "NIN");
        assert_eq!(cands[1].label(), "NIN (k=0.2)");
        // Clamping out-of-range raw inputs.
        let n = Normalization::new(0.4);
        assert_eq!(n.apply(-3.0), n.apply(0.0));
        assert_eq!(n.apply(7.0), n.apply(1.0));
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn out_of_range_k_panics() {
        let _ = Normalization::new(1.5);
    }
}
