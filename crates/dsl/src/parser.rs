//! Recursive-descent parser for the Figure-2 grammar.
//!
//! ```text
//! prog         ::= '{' 'input' ':' data_type ',' 'output' ':' data_type '}'
//! data_type    ::= '{' '[' nonrec_field* ']' ',' '[' rec_field* ']' '}'
//! nonrec_field ::= 'Tensor' '[' int+ ']' | field_name '::' 'Tensor' '[' int+ ']'
//! rec_field    ::= field_name
//! ```

use crate::ast::{DataType, Program, TensorField};
use crate::error::ParseError;
use crate::lexer::{tokenize, Token, TokenKind};

/// Parses and validates a full ease.ml program.
///
/// # Errors
///
/// Returns a [`ParseError`] with the byte offset of the first problem, from
/// either the grammar or [`Program::validate`].
///
/// # Examples
///
/// ```
/// use easeml_dsl::parse_program;
///
/// let p = parse_program(
///     "{input: {[Tensor[10]], [next]}, output: {[Tensor[10]], [next]}}",
/// ).unwrap();
/// assert!(p.input.is_recursive());
/// assert_eq!(p.input.recursive, vec!["next".to_string()]);
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens: &tokens,
        pos: 0,
        src_len: src.len(),
    };
    let prog = p.program()?;
    p.expect_eof()?;
    prog.validate()?;
    Ok(prog)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    src_len: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn offset(&self) -> usize {
        self.tokens.get(self.pos).map_or(self.src_len, |t| t.offset)
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        self.pos += 1;
        t
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        let offset = self.offset();
        match self.bump() {
            Some(t) if &t.kind == kind => Ok(()),
            Some(t) => Err(ParseError::new(
                t.offset,
                format!("expected {what}, found {:?}", t.kind),
            )),
            None => Err(ParseError::new(
                offset,
                format!("expected {what}, found end of input"),
            )),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let offset = self.offset();
        match self.bump() {
            Some(Token {
                kind: TokenKind::Ident(s),
                ..
            }) if s == kw => Ok(()),
            Some(t) => Err(ParseError::new(
                t.offset,
                format!("expected keyword `{kw}`, found {:?}", t.kind),
            )),
            None => Err(ParseError::new(
                offset,
                format!("expected keyword `{kw}`, found end of input"),
            )),
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        match self.tokens.get(self.pos) {
            None => Ok(()),
            Some(t) => Err(ParseError::new(
                t.offset,
                format!("unexpected trailing input: {:?}", t.kind),
            )),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        self.expect(&TokenKind::LBrace, "`{`")?;
        self.expect_keyword("input")?;
        self.expect(&TokenKind::Colon, "`:`")?;
        let input = self.data_type()?;
        self.expect(&TokenKind::Comma, "`,`")?;
        self.expect_keyword("output")?;
        self.expect(&TokenKind::Colon, "`:`")?;
        let output = self.data_type()?;
        self.expect(&TokenKind::RBrace, "`}`")?;
        Ok(Program { input, output })
    }

    fn data_type(&mut self) -> Result<DataType, ParseError> {
        self.expect(&TokenKind::LBrace, "`{`")?;
        self.expect(&TokenKind::LBracket, "`[`")?;
        let mut tensors = Vec::new();
        if self.peek() != Some(&TokenKind::RBracket) {
            loop {
                tensors.push(self.nonrec_field()?);
                if self.peek() == Some(&TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RBracket, "`]`")?;
        self.expect(&TokenKind::Comma, "`,`")?;
        self.expect(&TokenKind::LBracket, "`[`")?;
        let mut recursive = Vec::new();
        if self.peek() != Some(&TokenKind::RBracket) {
            loop {
                recursive.push(self.field_name()?);
                if self.peek() == Some(&TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RBracket, "`]`")?;
        self.expect(&TokenKind::RBrace, "`}`")?;
        Ok(DataType { tensors, recursive })
    }

    fn nonrec_field(&mut self) -> Result<TensorField, ParseError> {
        // Either `Tensor[dims]` or `name :: Tensor[dims]`.
        let offset = self.offset();
        match self.bump() {
            Some(Token {
                kind: TokenKind::Ident(s),
                ..
            }) if s == "Tensor" => {
                let dims = self.dims()?;
                Ok(TensorField::anon(dims))
            }
            Some(Token {
                kind: TokenKind::Ident(s),
                ..
            }) => {
                let name = s.clone();
                self.expect(&TokenKind::DoubleColon, "`::`")?;
                self.expect_keyword("Tensor")?;
                let dims = self.dims()?;
                Ok(TensorField::named(name, dims))
            }
            Some(t) => Err(ParseError::new(
                t.offset,
                format!("expected tensor field, found {:?}", t.kind),
            )),
            None => Err(ParseError::new(
                offset,
                "expected tensor field, found end of input",
            )),
        }
    }

    fn dims(&mut self) -> Result<Vec<u64>, ParseError> {
        self.expect(&TokenKind::LBracket, "`[`")?;
        let mut dims = Vec::new();
        loop {
            let offset = self.offset();
            match self.bump() {
                Some(Token {
                    kind: TokenKind::Int(v),
                    ..
                }) => dims.push(*v),
                Some(t) => {
                    return Err(ParseError::new(
                        t.offset,
                        format!("expected dimension, found {:?}", t.kind),
                    ))
                }
                None => {
                    return Err(ParseError::new(
                        offset,
                        "expected dimension, found end of input",
                    ))
                }
            }
            if self.peek() == Some(&TokenKind::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&TokenKind::RBracket, "`]`")?;
        Ok(dims)
    }

    fn field_name(&mut self) -> Result<String, ParseError> {
        let offset = self.offset();
        match self.bump() {
            Some(Token {
                kind: TokenKind::Ident(s),
                ..
            }) => Ok(s.clone()),
            Some(t) => Err(ParseError::new(
                t.offset,
                format!("expected field name, found {:?}", t.kind),
            )),
            None => Err(ParseError::new(
                offset,
                "expected field name, found end of input",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::TensorField;

    #[test]
    fn parses_the_papers_image_classification_example() {
        let p = parse_program("{input: {[Tensor[256, 256, 3]], []}, output: {[Tensor[1000]], []}}")
            .unwrap();
        assert_eq!(p.input.tensors, vec![TensorField::anon(vec![256, 256, 3])]);
        assert!(p.input.recursive.is_empty());
        assert_eq!(p.output.tensors[0].dims, vec![1000]);
    }

    #[test]
    fn parses_the_papers_time_series_example() {
        let p = parse_program("{input: {[Tensor[10]], [next]}, output: {[Tensor[10]], [next]}}")
            .unwrap();
        assert_eq!(p.input.recursive, vec!["next"]);
        assert_eq!(p.output.recursive, vec!["next"]);
    }

    #[test]
    fn parses_named_tensor_fields() {
        let p =
            parse_program("{input: {[field1 :: Tensor[28, 28]], []}, output: {[Tensor[10]], []}}")
                .unwrap();
        assert_eq!(p.input.tensors[0].name.as_deref(), Some("field1"));
        assert_eq!(p.input.tensors[0].dims, vec![28, 28]);
    }

    #[test]
    fn parses_trees_with_two_recursive_fields() {
        let p = parse_program("{input: {[Tensor[64]], [left, right]}, output: {[Tensor[2]], []}}")
            .unwrap();
        assert_eq!(p.input.recursive, vec!["left", "right"]);
    }

    #[test]
    fn parses_multiple_tensor_fields() {
        let p = parse_program(
            "{input: {[Tensor[8], meta :: Tensor[4]], []}, output: {[Tensor[2]], []}}",
        )
        .unwrap();
        assert_eq!(p.input.tensors.len(), 2);
    }

    #[test]
    fn display_parse_roundtrip() {
        let src = "{input: {[Tensor[256, 256, 3]], []}, output: {[Tensor[3]], []}}";
        let p = parse_program(src).unwrap();
        let p2 = parse_program(&p.to_string()).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn error_offsets_point_at_the_problem() {
        let e = parse_program("{input: {[Tensor[256]], []}, output: }").unwrap_err();
        assert_eq!(e.offset, 37);
        let e = parse_program("{output: {[Tensor[1]], []}}").unwrap_err();
        assert!(e.message.contains("input"));
    }

    #[test]
    fn truncated_input_is_an_error() {
        for src in [
            "",
            "{",
            "{input:",
            "{input: {[Tensor[1]], []}",
            "{input: {[Tensor[1]], []}, output: {[Tensor[1]], []}",
            "{input: {[Tensor[1], ], []}, output: {[Tensor[1]], []}}",
        ] {
            assert!(parse_program(src).is_err(), "should fail: {src}");
        }
    }

    #[test]
    fn trailing_tokens_are_rejected() {
        let e = parse_program("{input: {[Tensor[1]], []}, output: {[Tensor[1]], []}} extra")
            .unwrap_err();
        assert!(e.message.contains("trailing"));
    }

    #[test]
    fn validation_is_applied() {
        // Zero dimension survives the grammar but not validation.
        let e = parse_program("{input: {[Tensor[0]], []}, output: {[Tensor[1]], []}}").unwrap_err();
        assert!(e.message.contains("zero dimension"));
    }

    #[test]
    fn empty_tensor_and_recursive_lists_parse() {
        // Grammatically valid; validation rejects the empty input type.
        let e = parse_program("{input: {[], []}, output: {[Tensor[1]], []}}").unwrap_err();
        assert!(e.message.contains("empty"));
    }
}
