//! Template matching for candidate-model generation (Figure 4).
//!
//! Given a parsed program, ease.ml matches the (input, output) type pair
//! against a fixed list of templates, from the most specific to the most
//! general, and returns the consistent candidate models of the first match.
//! `*` in a template matches an arbitrary "tail" of the corresponding list.

use crate::ast::{DataType, Program};
use crate::zoo::ModelId;
use std::fmt;

/// The workload class a template identifies (Figure 4's middle column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// `Tensor[A,B,C] → Tensor[D]`.
    ImageClassification,
    /// `Tensor[A,B,C] → Tensor[D,E,F]`.
    ImageRecovery,
    /// `{Tensor[A], *; rec a} → Tensor[D]`.
    TimeSeriesClassification,
    /// `{Tensor[A], *; rec a} → {Tensor[B], *; rec b}`.
    TimeSeriesTranslation,
    /// `{Tensor[A], *; rec a, c} → Tensor[B]`.
    TreeClassification,
    /// `{*; *} → Tensor[B]`.
    GeneralClassification,
    /// `{*; *} → {*; *}`.
    GeneralAutoEncoder,
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WorkloadKind::ImageClassification => "Image/Tensor Classification",
            WorkloadKind::ImageRecovery => "Image/Tensor Recovery",
            WorkloadKind::TimeSeriesClassification => "Time Series Classification",
            WorkloadKind::TimeSeriesTranslation => "Time Series Translation",
            WorkloadKind::TreeClassification => "Tree Classification",
            WorkloadKind::GeneralClassification => "General Classification",
            WorkloadKind::GeneralAutoEncoder => "General Auto-encoder",
        };
        f.write_str(s)
    }
}

/// Pattern over one side (input or output) of a template.
#[derive(Debug, Clone)]
struct SidePattern {
    /// Required ranks of the leading tensor fields.
    tensor_ranks: Vec<usize>,
    /// Whether additional tensor fields are allowed after the required ones
    /// (the `*` tail). When the rank list is empty and this is true, the
    /// side is fully wildcarded.
    tensor_tail: bool,
    /// Required number of recursive fields; `None` means any number
    /// (the `[*]` wildcard).
    rec_count: Option<usize>,
}

impl SidePattern {
    fn matches(&self, dt: &DataType) -> bool {
        if dt.tensors.len() < self.tensor_ranks.len() {
            return false;
        }
        if !self.tensor_tail && dt.tensors.len() != self.tensor_ranks.len() {
            return false;
        }
        for (field, &rank) in dt.tensors.iter().zip(&self.tensor_ranks) {
            if field.rank() != rank {
                return false;
            }
        }
        match self.rec_count {
            Some(n) => dt.recursive.len() == n,
            None => true,
        }
    }
}

/// One row of Figure 4.
#[derive(Debug, Clone)]
struct Template {
    workload: WorkloadKind,
    input: SidePattern,
    output: SidePattern,
    models: &'static [ModelId],
}

/// A successful template match: the workload class and its consistent
/// candidate models.
#[derive(Debug, Clone)]
pub struct MatchedTemplate {
    /// Which template row matched.
    pub workload: WorkloadKind,
    /// The consistent candidate models, in zoo order.
    pub models: Vec<ModelId>,
}

fn exact(tensor_ranks: Vec<usize>, rec_count: usize) -> SidePattern {
    SidePattern {
        tensor_ranks,
        tensor_tail: false,
        rec_count: Some(rec_count),
    }
}

fn with_tail(tensor_ranks: Vec<usize>, rec_count: usize) -> SidePattern {
    SidePattern {
        tensor_ranks,
        tensor_tail: true,
        rec_count: Some(rec_count),
    }
}

fn wildcard() -> SidePattern {
    SidePattern {
        tensor_ranks: vec![],
        tensor_tail: true,
        rec_count: None,
    }
}

fn templates() -> Vec<Template> {
    use ModelId::*;
    vec![
        // Input: {[Tensor[A,B,C]], []}, Output: {[Tensor[D]], []}
        Template {
            workload: WorkloadKind::ImageClassification,
            input: exact(vec![3], 0),
            output: exact(vec![1], 0),
            models: &crate::zoo::IMAGE_CLASSIFIERS,
        },
        // Input: {[Tensor[A,B,C]], []}, Output: {[Tensor[D,E,F]], []}
        Template {
            workload: WorkloadKind::ImageRecovery,
            input: exact(vec![3], 0),
            output: exact(vec![3], 0),
            models: &[AutoEncoder, Gan, Pix2Pix],
        },
        // Input: {[Tensor[A], *], [a]}, Output: {[Tensor[D]], []}
        Template {
            workload: WorkloadKind::TimeSeriesClassification,
            input: with_tail(vec![1], 1),
            output: exact(vec![1], 0),
            models: &[Rnn, Lstm, BiLstm, Gru],
        },
        // Input: {[Tensor[A], *], [a]}, Output: {[Tensor[B], *], [b]}
        Template {
            workload: WorkloadKind::TimeSeriesTranslation,
            input: with_tail(vec![1], 1),
            output: with_tail(vec![1], 1),
            models: &[Seq2Seq],
        },
        // Input: {[Tensor[A], *], [a, c]}, Output: {[Tensor[B]], []}
        Template {
            workload: WorkloadKind::TreeClassification,
            input: with_tail(vec![1], 2),
            output: exact(vec![1], 0),
            models: &[TreeRnn, TreeKernelSvm],
        },
        // Input: {[*], [*]}, Output: {[Tensor[B]], []}
        Template {
            workload: WorkloadKind::GeneralClassification,
            input: wildcard(),
            output: exact(vec![1], 0),
            models: &[BitLevelRnn],
        },
        // Input: {[*], [*]}, Output: {[*], [*]}
        Template {
            workload: WorkloadKind::GeneralAutoEncoder,
            input: wildcard(),
            output: wildcard(),
            models: &[BitLevelAutoEncoder],
        },
    ]
}

/// Matches a program against the Figure-4 templates in top-to-bottom order
/// (most specific first) and returns the first hit. The final template is
/// fully general, so every valid program matches *something*; the `Option`
/// is retained for API robustness.
pub fn match_templates(prog: &Program) -> Option<MatchedTemplate> {
    templates()
        .into_iter()
        .find(|t| t.input.matches(&prog.input) && t.output.matches(&prog.output))
        .map(|t| MatchedTemplate {
            workload: t.workload,
            models: t.models.to_vec(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn matched(src: &str) -> MatchedTemplate {
        match_templates(&parse_program(src).unwrap()).expect("some template matches")
    }

    #[test]
    fn image_classification_matches_eight_cnns() {
        let m = matched("{input: {[Tensor[256, 256, 3]], []}, output: {[Tensor[3]], []}}");
        assert_eq!(m.workload, WorkloadKind::ImageClassification);
        assert_eq!(m.models.len(), 8);
        assert!(m.models.contains(&ModelId::ResNet50));
    }

    #[test]
    fn image_recovery() {
        let m = matched("{input: {[Tensor[64, 64, 3]], []}, output: {[Tensor[64, 64, 3]], []}}");
        assert_eq!(m.workload, WorkloadKind::ImageRecovery);
        assert_eq!(
            m.models,
            vec![ModelId::AutoEncoder, ModelId::Gan, ModelId::Pix2Pix]
        );
    }

    #[test]
    fn time_series_classification() {
        let m = matched("{input: {[Tensor[10]], [next]}, output: {[Tensor[4]], []}}");
        assert_eq!(m.workload, WorkloadKind::TimeSeriesClassification);
        assert_eq!(m.models.len(), 4);
    }

    #[test]
    fn time_series_translation() {
        let m = matched("{input: {[Tensor[10]], [next]}, output: {[Tensor[10]], [next]}}");
        assert_eq!(m.workload, WorkloadKind::TimeSeriesTranslation);
        assert_eq!(m.models, vec![ModelId::Seq2Seq]);
    }

    #[test]
    fn tree_classification() {
        let m = matched("{input: {[Tensor[64]], [left, right]}, output: {[Tensor[2]], []}}");
        assert_eq!(m.workload, WorkloadKind::TreeClassification);
        assert_eq!(m.models, vec![ModelId::TreeRnn, ModelId::TreeKernelSvm]);
    }

    #[test]
    fn general_classification_catches_odd_inputs() {
        // 2-D input tensor with recursion fits no specific template but
        // produces a flat class vector: bit-level RNN.
        let m = matched("{input: {[Tensor[5, 5]], [next]}, output: {[Tensor[2]], []}}");
        assert_eq!(m.workload, WorkloadKind::GeneralClassification);
        assert_eq!(m.models, vec![ModelId::BitLevelRnn]);
    }

    #[test]
    fn general_autoencoder_is_the_fallback_of_last_resort() {
        let m = matched("{input: {[Tensor[5, 5]], [next]}, output: {[Tensor[2, 2]], [next]}}");
        assert_eq!(m.workload, WorkloadKind::GeneralAutoEncoder);
        assert_eq!(m.models, vec![ModelId::BitLevelAutoEncoder]);
    }

    #[test]
    fn order_is_most_specific_first() {
        // A 1-D → 1-D flat program could match general classification, but
        // no recursive fields means it is NOT time-series; the general
        // classification row catches it before the auto-encoder row.
        let m = matched("{input: {[Tensor[100]], []}, output: {[Tensor[10]], []}}");
        assert_eq!(m.workload, WorkloadKind::GeneralClassification);
    }

    #[test]
    fn tail_wildcard_allows_extra_tensors() {
        // Time series with an extra per-step metadata tensor still matches
        // the `[Tensor[A], *]` input pattern.
        let m = matched(
            "{input: {[Tensor[10], meta :: Tensor[3]], [next]}, output: {[Tensor[4]], []}}",
        );
        assert_eq!(m.workload, WorkloadKind::TimeSeriesClassification);
    }

    #[test]
    fn workload_display_names() {
        assert_eq!(
            WorkloadKind::ImageClassification.to_string(),
            "Image/Tensor Classification"
        );
        assert_eq!(
            WorkloadKind::GeneralAutoEncoder.to_string(),
            "General Auto-encoder"
        );
    }
}
