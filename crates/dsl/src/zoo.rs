//! The model zoo: every candidate model ease.ml can match, with the
//! metadata the §5.2 user heuristics need.
//!
//! Citation counts are order-of-magnitude Google-Scholar figures as of the
//! paper's writing (2017); only the induced *ordering* matters to the
//! MOSTCITED heuristic, and the publication year ordering to MOSTRECENT.

use serde::Serialize;

/// Identifier of a model in the zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum ModelId {
    /// Network-in-Network (Lin et al. 2013).
    Nin,
    /// GoogLeNet / Inception v1 (Szegedy et al. 2014).
    GoogLeNet,
    /// ResNet-50 (He et al. 2015).
    ResNet50,
    /// AlexNet (Krizhevsky et al. 2012).
    AlexNet,
    /// AlexNet with batch normalization (2015 variant).
    BnAlexNet,
    /// ResNet-18 (He et al. 2015).
    ResNet18,
    /// VGG-16 (Simonyan & Zisserman 2014).
    Vgg16,
    /// SqueezeNet (Iandola et al. 2016).
    SqueezeNet,
    /// Convolutional auto-encoder.
    AutoEncoder,
    /// Generative adversarial network (Goodfellow et al. 2014).
    Gan,
    /// pix2pix image-to-image translation (Isola et al. 2016).
    Pix2Pix,
    /// Vanilla recurrent network.
    Rnn,
    /// Long short-term memory (Hochreiter & Schmidhuber 1997).
    Lstm,
    /// Bidirectional LSTM.
    BiLstm,
    /// Gated recurrent unit (Cho et al. 2014).
    Gru,
    /// Sequence-to-sequence with attention (Sutskever et al. 2014).
    Seq2Seq,
    /// Recursive tree-structured network (Socher et al. 2011).
    TreeRnn,
    /// Tree-kernel support vector machine.
    TreeKernelSvm,
    /// Bit-level RNN fallback for arbitrary structures.
    BitLevelRnn,
    /// Bit-level auto-encoder fallback.
    BitLevelAutoEncoder,
}

/// Static metadata of a zoo model.
#[derive(Debug, Clone, Serialize)]
pub struct ModelInfo {
    /// The identifier.
    pub id: ModelId,
    /// Display name as the paper writes it.
    pub name: &'static str,
    /// Publication year.
    pub year: u32,
    /// Approximate Google-Scholar citation count circa 2017.
    pub citations: u32,
    /// Relative training cost (1.0 = AlexNet-class), for simulations that
    /// have no measured costs.
    pub relative_cost: f64,
}

/// The eight image-classification architectures, in the order §5.1 lists
/// them for the DEEPLEARNING service.
pub const IMAGE_CLASSIFIERS: [ModelId; 8] = [
    ModelId::Nin,
    ModelId::GoogLeNet,
    ModelId::ResNet50,
    ModelId::AlexNet,
    ModelId::BnAlexNet,
    ModelId::ResNet18,
    ModelId::Vgg16,
    ModelId::SqueezeNet,
];

impl ModelId {
    /// Looks up the model's static metadata.
    pub fn info(self) -> ModelInfo {
        // (id, name, year, citations-2017, relative cost)
        let (name, year, citations, relative_cost) = match self {
            ModelId::Nin => ("NIN", 2013, 2200, 1.7),
            ModelId::GoogLeNet => ("GoogLeNet", 2014, 10500, 5.0),
            ModelId::ResNet50 => ("ResNet-50", 2015, 14000, 8.3),
            ModelId::AlexNet => ("AlexNet", 2012, 21000, 1.0),
            ModelId::BnAlexNet => ("BN-AlexNet", 2015, 6000, 1.8),
            ModelId::ResNet18 => ("ResNet-18", 2015, 14000, 3.3),
            ModelId::Vgg16 => ("VGG-16", 2014, 12500, 10.0),
            ModelId::SqueezeNet => ("SqueezeNet", 2016, 1100, 0.8),
            ModelId::AutoEncoder => ("Auto-encoder", 2006, 9000, 2.0),
            ModelId::Gan => ("GAN", 2014, 5000, 6.0),
            ModelId::Pix2Pix => ("pix2pix", 2016, 900, 7.0),
            ModelId::Rnn => ("RNN", 1990, 8000, 1.5),
            ModelId::Lstm => ("LSTM", 1997, 9500, 2.5),
            ModelId::BiLstm => ("bi-LSTM", 2005, 3000, 3.0),
            ModelId::Gru => ("GRU", 2014, 4800, 2.2),
            ModelId::Seq2Seq => ("seq2seq", 2014, 4500, 4.0),
            ModelId::TreeRnn => ("Tree-RNN", 2011, 1800, 3.5),
            ModelId::TreeKernelSvm => ("Tree kernel SVM", 2002, 1500, 1.2),
            ModelId::BitLevelRnn => ("Bit-level RNN", 2016, 50, 5.0),
            ModelId::BitLevelAutoEncoder => ("Bit-level Auto-encoder", 2016, 40, 5.5),
        };
        ModelInfo {
            id: self,
            name,
            year,
            citations,
            relative_cost,
        }
    }

    /// Display name shortcut.
    pub fn name(self) -> &'static str {
        self.info().name
    }
}

/// Orders the given models by descending citation count — the MOSTCITED user
/// heuristic ("most cited network first", §5.2). Ties break by zoo order.
pub fn most_cited_order(models: &[ModelId]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..models.len()).collect();
    idx.sort_by_key(|&i| std::cmp::Reverse(models[i].info().citations));
    idx
}

/// Orders the given models by descending publication year — the MOSTRECENT
/// heuristic ("most recently published network first", §5.2). Ties break by
/// citations (the better-known recent model is tried first).
pub fn most_recent_order(models: &[ModelId]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..models.len()).collect();
    idx.sort_by_key(|&i| {
        let info = models[i].info();
        std::cmp::Reverse((info.year, info.citations))
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_classifier_count_matches_the_paper() {
        assert_eq!(IMAGE_CLASSIFIERS.len(), 8);
        let names: Vec<&str> = IMAGE_CLASSIFIERS.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "NIN",
                "GoogLeNet",
                "ResNet-50",
                "AlexNet",
                "BN-AlexNet",
                "ResNet-18",
                "VGG-16",
                "SqueezeNet"
            ]
        );
    }

    #[test]
    fn most_cited_starts_with_alexnet() {
        let order = most_cited_order(&IMAGE_CLASSIFIERS);
        assert_eq!(IMAGE_CLASSIFIERS[order[0]], ModelId::AlexNet);
        // SqueezeNet has the fewest citations among the eight.
        assert_eq!(
            IMAGE_CLASSIFIERS[*order.last().unwrap()],
            ModelId::SqueezeNet
        );
        // The result is a permutation.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn most_recent_starts_with_squeezenet() {
        let order = most_recent_order(&IMAGE_CLASSIFIERS);
        assert_eq!(IMAGE_CLASSIFIERS[order[0]], ModelId::SqueezeNet); // 2016
        assert_eq!(IMAGE_CLASSIFIERS[*order.last().unwrap()], ModelId::AlexNet);
        // 2012
    }

    #[test]
    fn citations_and_years_are_plausible() {
        for m in IMAGE_CLASSIFIERS {
            let info = m.info();
            assert!(info.year >= 2012 && info.year <= 2016, "{}", info.name);
            assert!(info.citations > 0);
            assert!(info.relative_cost > 0.0);
        }
    }

    #[test]
    fn orders_differ() {
        assert_ne!(
            most_cited_order(&IMAGE_CLASSIFIERS),
            most_recent_order(&IMAGE_CLASSIFIERS)
        );
    }

    #[test]
    fn empty_model_list() {
        assert!(most_cited_order(&[]).is_empty());
        assert!(most_recent_order(&[]).is_empty());
    }
}
