//! Property-based tests for the DSL: the parser must never panic, valid
//! programs must round-trip, and template matching must be total.

use easeml_dsl::ast::{DataType, Program, TensorField};
use easeml_dsl::{match_templates, parse_program};
use proptest::prelude::*;

/// Strategy for syntactically valid field names.
fn field_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}"
}

fn tensor_field() -> impl Strategy<Value = TensorField> {
    (
        prop::option::of(field_name()),
        prop::collection::vec(1u64..512, 1..4),
    )
        .prop_map(|(name, dims)| TensorField { name, dims })
}

/// A valid data type: unique names enforced by deduplication.
fn data_type() -> impl Strategy<Value = DataType> {
    (
        prop::collection::vec(tensor_field(), 1..4),
        prop::collection::vec(field_name(), 0..3),
    )
        .prop_map(|(mut tensors, mut recursive)| {
            // Enforce the uniqueness invariant the validator checks.
            let mut seen = std::collections::HashSet::new();
            for t in &mut tensors {
                if let Some(n) = &t.name {
                    if !seen.insert(n.clone()) {
                        t.name = None;
                    }
                }
            }
            recursive.sort();
            recursive.dedup();
            recursive.retain(|r| !seen.contains(r));
            DataType { tensors, recursive }
        })
}

fn valid_program() -> impl Strategy<Value = Program> {
    (data_type(), data_type()).prop_map(|(input, output)| Program { input, output })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn parser_never_panics_on_arbitrary_input(src in ".{0,120}") {
        // Result may be Ok or Err, but must never panic.
        let _ = parse_program(&src);
    }

    #[test]
    fn parser_never_panics_on_grammar_like_input(
        src in r"[\{\}\[\]:, a-z0-9]*"
    ) {
        let _ = parse_program(&src);
    }

    #[test]
    fn valid_programs_round_trip(prog in valid_program()) {
        prop_assume!(prog.validate().is_ok());
        let printed = prog.to_string();
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("round trip failed on `{printed}`: {e}"));
        prop_assert_eq!(prog, reparsed);
    }

    #[test]
    fn template_matching_is_total_on_valid_programs(prog in valid_program()) {
        prop_assume!(prog.validate().is_ok());
        // The last template is fully general, so matching always succeeds.
        let matched = match_templates(&prog);
        prop_assert!(matched.is_some());
        prop_assert!(!matched.unwrap().models.is_empty());
    }

    #[test]
    fn codegen_produces_well_formed_julia(prog in valid_program()) {
        prop_assume!(prog.validate().is_ok());
        let code = easeml_dsl::codegen::julia_types(&prog);
        prop_assert!(code.contains("type Input"));
        prop_assert!(code.contains("type Output"));
        prop_assert_eq!(code.matches("\nend\n").count() + usize::from(code.starts_with("end")), 2);
    }
}
