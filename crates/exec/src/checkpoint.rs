//! Crash-safe checkpoint/restore of in-flight execution state.
//!
//! [`ExecCheckpoint`] snapshots everything the engine needs to resume
//! mid-flight: the resolved observation sequence (replaying it through the
//! same numeric path rebuilds bit-identical GP state), every in-flight
//! run's pre-resolved outcome, the device fleet's busy/idle integrals, the
//! fault injector's attempt counters, and the HYBRID picker's freeze
//! detector. Restoring marks each in-flight run pending again in dispatch
//! order, which rebuilds the GP-BUCB hallucinated posterior bit-identically
//! (the hallucinated state is always the real posterior plus one mean-fake
//! per pending arm, in order).
//!
//! Serialization follows the same hand-rolled JSON conventions as the core
//! checkpoint ([`easeml::checkpoint`]): finite floats round-trip bit-exactly,
//! non-finite floats serialize as `null` (the in-flight `quality` of a
//! censored run, HYBRID's `-inf` sentinel), and `u64` seeds travel as
//! decimal strings.
//!
//! One caveat: the stochastic pickers ([`SchedulerKind::Random`],
//! `Greedy(Random)`) draw from an RNG whose stream position is not part of
//! the checkpoint — a restored run re-seeds from the start, so only the
//! deterministic schedulers replay bit-identically across a restore.

use crate::engine::{Arrival, ExecEngine, InFlight, PickerSlot};
use crate::fleet::{DeviceSpec, Fleet};
use easeml::checkpoint::{decode_u64, encode_u64};
use easeml::fault::{FaultConfig, FaultRates};
use easeml::sim::{SchedulerKind, SimConfig, SimEvent};
use easeml::TaskState;
use easeml_data::Dataset;
use easeml_gp::ArmPrior;
use easeml_obs::json::{self, Json};
use easeml_obs::RecorderHandle;
use easeml_sched::{Hybrid, HybridState, PickRule};
use serde::Serialize;
use std::collections::BTreeMap;

/// Current execution-checkpoint format version.
///
/// v2 added the bounded queueing-delay / busy-span quantile sketches;
/// v3 added the rolling witness-digest chain (`witness_*` fields) so a
/// restored engine continues the digest WAL recovery asserts against;
/// v4 added open-loop workload state (`open_loop`, per-tenant `retired` /
/// `backlog`, and the pending `arrivals` queue) so a mid-replay restore
/// resumes the workload bit-exactly.
pub const EXEC_CHECKPOINT_VERSION: u32 = 4;

/// A bounded quantile sketch's exported state (mirrors
/// [`easeml_obs::SketchParts`]).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SketchCheckpoint {
    /// Relative-error target α.
    pub alpha: f64,
    /// Live-bucket cap.
    pub max_buckets: u64,
    /// `(bucket index, count)` pairs, ascending by index.
    pub buckets: Vec<(i32, u64)>,
    /// Observations at or below the zero noise floor.
    pub zeros: u64,
    /// Rejected observations.
    pub rejected: u64,
    /// Observations whose bucket was collapsed by the cap.
    pub collapsed: u64,
    /// Sum of accepted observations.
    pub sum: f64,
    /// Smallest accepted observation (`None` when empty).
    pub min: Option<f64>,
    /// Largest accepted observation (`None` when empty).
    pub max: Option<f64>,
}

impl SketchCheckpoint {
    fn of(sketch: &easeml_obs::QuantileSketch) -> Self {
        let parts = sketch.to_parts();
        SketchCheckpoint {
            alpha: parts.alpha,
            max_buckets: parts.max_buckets as u64,
            buckets: parts.buckets,
            zeros: parts.zeros,
            rejected: parts.rejected,
            collapsed: parts.collapsed,
            sum: parts.sum,
            min: parts.min,
            max: parts.max,
        }
    }

    fn to_sketch(&self) -> easeml_obs::QuantileSketch {
        easeml_obs::QuantileSketch::from_parts(&easeml_obs::SketchParts {
            alpha: self.alpha,
            max_buckets: self.max_buckets as usize,
            buckets: self.buckets.clone(),
            zeros: self.zeros,
            rejected: self.rejected,
            collapsed: self.collapsed,
            sum: self.sum,
            min: self.min,
            max: self.max,
        })
    }
}

/// One device's spec and runtime accounting.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DeviceCheckpoint {
    /// Speed factor.
    pub speed: f64,
    /// Job slots.
    pub slots: u64,
    /// Occupied slots at checkpoint time.
    pub in_use: u64,
    /// Accrued busy slot-time.
    pub busy: f64,
    /// Accrued idle slot-time.
    pub idle: f64,
    /// Time of the last accounting update.
    pub last_t: f64,
    /// When the device last became fully idle.
    pub idle_since: f64,
}

/// One in-flight run, outcome pre-resolved but unrevealed.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct InFlightCheckpoint {
    /// Dispatch sequence number.
    pub seq: u64,
    /// Served user.
    pub user: usize,
    /// Dispatched model.
    pub model: usize,
    /// Executing device.
    pub device: usize,
    /// Dispatch time.
    pub dispatched_at: f64,
    /// Scheduled completion time.
    pub finish: f64,
    /// Charged cost.
    pub charge: f64,
    /// Whether the run completes with a usable quality.
    pub ok: bool,
    /// Revealed quality; serialized as `null` (NaN) for censored runs.
    pub quality: f64,
    /// Censoring kind (empty for clean runs).
    pub kind: String,
}

/// One resolved (completed) run, in completion order.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ResolvedCheckpoint {
    /// Served user.
    pub user: usize,
    /// Trained model.
    pub model: usize,
    /// Charged cost.
    pub cost: f64,
    /// Revealed quality.
    pub quality: f64,
}

/// One `Done` cell of the dispatch board.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DoneCellCheckpoint {
    /// User row.
    pub user: usize,
    /// Arm column.
    pub arm: usize,
    /// Recorded accuracy.
    pub accuracy: f64,
}

/// The HYBRID picker's freeze detector (mirrors
/// [`easeml_sched::HybridState`]).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HybridCheckpoint {
    /// Greedy line-8 rule name.
    pub rule: String,
    /// Freeze threshold s.
    pub patience: u64,
    /// Consecutive frozen rounds.
    pub frozen_rounds: u64,
    /// Candidate set at the previous round.
    pub prev_candidates: Vec<usize>,
    /// Best-reward sum at the previous round (`null` while `-inf`).
    pub prev_best_sum: f64,
    /// Whether the round-robin switch happened.
    pub switched: bool,
    /// Round-robin cursor.
    pub rr_cursor: u64,
}

/// One arrival still waiting for the simulated clock at checkpoint time.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ArrivalCheckpoint {
    /// Arrival sequence number.
    pub seq: u64,
    /// The tenant the job belongs to.
    pub user: usize,
    /// Absolute simulated arrival time.
    pub at: f64,
}

/// Fault-injector configuration and attempt counters.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultStateCheckpoint {
    /// Seed, as a decimal string.
    pub seed: String,
    /// Base rates `[crash, timeout, invalid, straggler]`.
    pub rates: [f64; 4],
    /// Per-user rate overrides.
    pub user_overrides: Vec<(usize, [f64; 4])>,
    /// Per-arm rate overrides.
    pub arm_overrides: Vec<(usize, [f64; 4])>,
    /// Straggler cost multiplier.
    pub straggler_factor: f64,
    /// Fraction of cost consumed before a crash.
    pub crash_cost_fraction: f64,
    /// Timeout deadline as a multiple of cost.
    pub timeout_factor: f64,
    /// Per-(user, arm) attempt counters.
    pub attempts: Vec<(usize, usize, u64)>,
}

/// The full mid-flight engine snapshot.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExecCheckpoint {
    /// Format version ([`EXEC_CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Scheduler kind name (canonical [`SchedulerKind::name`]).
    pub kind: String,
    /// Picker RNG seed, as a decimal string.
    pub seed: String,
    /// Cost budget.
    pub budget: f64,
    /// Cost-aware arm selection flag.
    pub cost_aware: bool,
    /// GP observation-noise variance.
    pub noise_var: f64,
    /// β-schedule failure probability δ.
    pub delta: f64,
    /// The fleet: specs plus runtime accounting.
    pub devices: Vec<DeviceCheckpoint>,
    /// Simulated clock.
    pub now: f64,
    /// Next dispatch sequence number.
    pub next_seq: u64,
    /// Picker step counter.
    pub step: u64,
    /// Completed budgeted rounds.
    pub rounds: u64,
    /// Censored runs so far.
    pub censored: u64,
    /// Total dispatches.
    pub dispatches: u64,
    /// Dispatches made while other runs were in flight.
    pub parallel_dispatches: u64,
    /// Cost committed so far.
    pub committed: f64,
    /// Mean loss after the warm-up pass.
    pub initial_loss: f64,
    /// Per-user best quality seen.
    pub best_seen: Vec<f64>,
    /// Per-user charged cost.
    pub user_cost: Vec<f64>,
    /// `(time, mean loss)` trajectory so far.
    pub points: Vec<(f64, f64)>,
    /// Resolved runs in completion order — replaying them rebuilds the GP
    /// posteriors bit-identically.
    pub resolved: Vec<ResolvedCheckpoint>,
    /// In-flight runs in dispatch (sequence) order.
    pub in_flight: Vec<InFlightCheckpoint>,
    /// `Done` cells of the dispatch board. Stored explicitly rather than
    /// derived from `resolved`: a completed cell can be re-dispatched and
    /// censored later, reverting it to pending.
    pub board_done: Vec<DoneCellCheckpoint>,
    /// HYBRID picker state, when the scheduler is HYBRID.
    pub hybrid: Option<HybridCheckpoint>,
    /// Fault injector, if one is attached.
    pub fault: Option<FaultStateCheckpoint>,
    /// Queueing-delay sketch accrued so far.
    pub queueing_delay: SketchCheckpoint,
    /// Busy-span sketch accrued so far.
    pub busy_spans: SketchCheckpoint,
    /// Rolling witness digest at checkpoint time, as a decimal string.
    pub witness_digest: String,
    /// Completions folded into the witness digest so far.
    pub witness_rounds: u64,
    /// Witness fan-out bound K.
    pub witness_top_k: u64,
    /// Open-loop mode flag (v4).
    pub open_loop: bool,
    /// Per-tenant retirement flags (v4).
    pub retired: Vec<bool>,
    /// Per-tenant arrived-but-undispatched job counts (v4).
    pub backlog: Vec<u64>,
    /// Next arrival sequence number (v4).
    pub arrival_seq: u64,
    /// Arrivals not yet absorbed, in non-decreasing time order (v4).
    pub arrivals: Vec<ArrivalCheckpoint>,
}

fn rates_to_array(r: FaultRates) -> [f64; 4] {
    [r.crash, r.timeout, r.invalid, r.straggler]
}

fn rates_from_array(a: [f64; 4]) -> FaultRates {
    FaultRates {
        crash: a[0],
        timeout: a[1],
        invalid: a[2],
        straggler: a[3],
    }
}

/// Maps a canonical scheduler name back to its kind.
fn kind_from_name(name: &str) -> Result<SchedulerKind, String> {
    Ok(match name {
        "fcfs" => SchedulerKind::Fcfs,
        "round-robin" => SchedulerKind::RoundRobin,
        "random" => SchedulerKind::Random,
        "greedy(max-gap)" => SchedulerKind::Greedy(PickRule::MaxUcbGap),
        "greedy(max-sigma)" => SchedulerKind::Greedy(PickRule::MaxSigmaTilde),
        "greedy(random)" => SchedulerKind::Greedy(PickRule::Random),
        "hybrid" => SchedulerKind::Hybrid,
        other => return Err(format!("unknown scheduler kind {other:?}")),
    })
}

impl ExecEngine<'_> {
    /// Snapshots the full mid-flight state.
    pub fn checkpoint(&self) -> ExecCheckpoint {
        let devices = self
            .fleet
            .devices
            .iter()
            .map(|d| DeviceCheckpoint {
                speed: d.spec.speed,
                slots: d.spec.slots as u64,
                in_use: d.in_use as u64,
                busy: d.busy,
                idle: d.idle,
                last_t: d.last_t,
                idle_since: d.idle_since,
            })
            .collect();
        let in_flight = self
            .in_flight
            .iter()
            .map(|r| InFlightCheckpoint {
                seq: r.seq,
                user: r.user,
                model: r.model,
                device: r.device,
                dispatched_at: r.dispatched_at,
                finish: r.finish,
                charge: r.charge,
                ok: r.ok,
                quality: r.quality,
                kind: r.kind.clone(),
            })
            .collect();
        let mut board_done = Vec::new();
        for user in 0..self.board.num_users() {
            for arm in 0..self.board.num_arms() {
                if let TaskState::Done(accuracy) = self.board.state(user, arm) {
                    board_done.push(DoneCellCheckpoint {
                        user,
                        arm,
                        accuracy,
                    });
                }
            }
        }
        let hybrid = self.picker.hybrid().map(|h| {
            let s = h.export_state();
            HybridCheckpoint {
                rule: s.rule.name().to_string(),
                patience: s.patience as u64,
                frozen_rounds: s.frozen_rounds as u64,
                prev_candidates: s.prev_candidates,
                prev_best_sum: s.prev_best_sum,
                switched: s.switched,
                rr_cursor: s.rr_cursor as u64,
            }
        });
        let fault = self.injector.as_ref().map(|inj| {
            let c = inj.config();
            FaultStateCheckpoint {
                seed: encode_u64(c.seed),
                rates: rates_to_array(c.rates),
                user_overrides: c
                    .user_overrides
                    .iter()
                    .map(|(&u, &r)| (u, rates_to_array(r)))
                    .collect(),
                arm_overrides: c
                    .arm_overrides
                    .iter()
                    .map(|(&a, &r)| (a, rates_to_array(r)))
                    .collect(),
                straggler_factor: c.straggler_factor,
                crash_cost_fraction: c.crash_cost_fraction,
                timeout_factor: c.timeout_factor,
                attempts: inj
                    .attempts()
                    .iter()
                    .map(|(&(u, a), &n)| (u, a, n))
                    .collect(),
            }
        });
        ExecCheckpoint {
            version: EXEC_CHECKPOINT_VERSION,
            kind: self.kind.name().to_string(),
            seed: encode_u64(self.seed),
            budget: self.cfg.budget,
            cost_aware: self.cfg.cost_aware,
            noise_var: self.cfg.noise_var,
            delta: self.cfg.delta,
            devices,
            now: self.now,
            next_seq: self.next_seq,
            step: self.step as u64,
            rounds: self.rounds as u64,
            censored: self.censored as u64,
            dispatches: self.dispatches as u64,
            parallel_dispatches: self.parallel_dispatches as u64,
            committed: self.committed,
            initial_loss: self.initial_loss,
            best_seen: self.best_seen.clone(),
            user_cost: self.user_cost.clone(),
            points: self.points.clone(),
            resolved: self
                .events
                .iter()
                .map(|e| ResolvedCheckpoint {
                    user: e.user,
                    model: e.model,
                    cost: e.cost,
                    quality: e.quality,
                })
                .collect(),
            in_flight,
            board_done,
            hybrid,
            fault,
            queueing_delay: SketchCheckpoint::of(&self.queueing_delay),
            busy_spans: SketchCheckpoint::of(&self.busy_spans),
            witness_digest: encode_u64(self.wlog.digest_value()),
            witness_rounds: self.wlog.rounds(),
            witness_top_k: self.wlog.top_k() as u64,
            open_loop: self.open_loop,
            retired: self.retired.clone(),
            backlog: self.backlog.clone(),
            arrival_seq: self.arrival_seq,
            arrivals: self
                .arrivals
                .iter()
                .map(|a| ArrivalCheckpoint {
                    seq: a.seq,
                    user: a.user,
                    at: a.at,
                })
                .collect(),
        }
    }

    /// Writes this engine's checkpoint to `path` atomically (temp file +
    /// rename + fsync), then — when a WAL is attached — seals and compacts
    /// the log behind a checkpoint mark, exactly like the serial server's
    /// [`easeml::server::EaseMl::checkpoint_to`].
    ///
    /// # Errors
    ///
    /// Filesystem errors from the atomic write.
    pub fn checkpoint_to(&self, path: &std::path::Path) -> Result<(), String> {
        let json = self.checkpoint().to_json();
        easeml::checkpoint::write_checkpoint_atomic(path, &json).map_err(|e| e.to_string())?;
        self.durability
            .mark_checkpoint(self.wlog.rounds(), self.wlog.digest_value());
        Ok(())
    }

    /// Rebuilds an engine from a checkpoint: replays the resolved
    /// observations through the same numeric path (bit-identical GP
    /// posteriors), re-marks every in-flight run pending in dispatch order
    /// (bit-identical hallucinated posteriors), and restores the fleet,
    /// fault, board, and picker state. The restored engine carries a
    /// disabled recorder; attach a live one with
    /// [`ExecEngine::attach_recorder`].
    ///
    /// # Errors
    ///
    /// Returns a message on a version mismatch, an unknown scheduler kind,
    /// a malformed seed, or dimensions that do not fit `dataset`/`priors`.
    pub fn restore<'a>(
        dataset: &'a Dataset,
        priors: &[ArmPrior],
        ck: &ExecCheckpoint,
    ) -> Result<ExecEngine<'a>, String> {
        if ck.version != EXEC_CHECKPOINT_VERSION {
            return Err(format!(
                "unsupported exec checkpoint version {} (expected {EXEC_CHECKPOINT_VERSION})",
                ck.version
            ));
        }
        let kind = kind_from_name(&ck.kind)?;
        let seed = decode_u64(&ck.seed)?;
        let n = dataset.num_users();
        if ck.best_seen.len() != n
            || ck.user_cost.len() != n
            || ck.retired.len() != n
            || ck.backlog.len() != n
        {
            return Err(format!(
                "checkpoint is for {} users, dataset has {n}",
                ck.best_seen.len()
            ));
        }
        let fault = match &ck.fault {
            None => None,
            Some(f) => {
                let mut config = FaultConfig::new(decode_u64(&f.seed)?);
                config.rates = rates_from_array(f.rates);
                config.user_overrides = f
                    .user_overrides
                    .iter()
                    .map(|&(u, r)| (u, rates_from_array(r)))
                    .collect();
                config.arm_overrides = f
                    .arm_overrides
                    .iter()
                    .map(|&(a, r)| (a, rates_from_array(r)))
                    .collect();
                config.straggler_factor = f.straggler_factor;
                config.crash_cost_fraction = f.crash_cost_fraction;
                config.timeout_factor = f.timeout_factor;
                Some(config)
            }
        };
        let cfg = SimConfig {
            budget: ck.budget,
            cost_aware: ck.cost_aware,
            noise_var: ck.noise_var,
            delta: ck.delta,
            fault,
        };
        let specs: Vec<DeviceSpec> = ck
            .devices
            .iter()
            .map(|d| DeviceSpec {
                speed: d.speed,
                slots: d.slots as usize,
            })
            .collect();
        let mut engine = ExecEngine::new(
            dataset,
            priors,
            kind,
            &cfg,
            Fleet::new(specs),
            seed,
            RecorderHandle::noop(),
        );

        // Replay the resolved observations in completion order: the GP
        // posteriors grow through the exact numeric path of the original
        // run. The picker is NOT notified — its state is restored verbatim
        // below (HYBRID) or is a pure function of `step` (the rest).
        for r in &ck.resolved {
            engine.tenants[r.user].observe(r.model, r.quality);
            engine.bucbs[r.user].observe_direct(r.model, r.quality);
            engine.events.push(SimEvent {
                user: r.user,
                model: r.model,
                cost: r.cost,
                quality: r.quality,
            });
        }
        if let Some(h) = &ck.hybrid {
            let rule = PickRule::from_name(&h.rule)
                .ok_or_else(|| format!("unknown greedy rule {:?}", h.rule))?;
            engine.picker = PickerSlot::Hybrid(Hybrid::from_state(HybridState {
                rule,
                patience: h.patience as usize,
                frozen_rounds: h.frozen_rounds as usize,
                prev_candidates: h.prev_candidates.clone(),
                prev_best_sum: h.prev_best_sum,
                switched: h.switched,
                rr_cursor: h.rr_cursor as usize,
            }));
        }
        if let Some(f) = &ck.fault {
            let injector = engine
                .injector
                .as_mut()
                .expect("fault config implies an injector");
            let attempts: BTreeMap<(usize, usize), u64> =
                f.attempts.iter().map(|&(u, a, c)| ((u, a), c)).collect();
            injector.restore_attempts(attempts);
        }
        for (dev, d) in engine.fleet.devices.iter_mut().zip(&ck.devices) {
            dev.in_use = d.in_use as usize;
            dev.busy = d.busy;
            dev.idle = d.idle;
            dev.last_t = d.last_t;
            dev.idle_since = d.idle_since;
        }
        for cell in &ck.board_done {
            engine.board.finish(cell.user, cell.arm, cell.accuracy);
        }
        // Re-mark in-flight runs pending in dispatch order — this rebuilds
        // each user's hallucinated posterior bit-identically on top of the
        // replayed real posterior.
        for r in &ck.in_flight {
            engine.board.start(r.user, r.model);
            engine.bucbs[r.user].mark_pending(r.model);
            engine.queue.push(r.finish, r.seq);
            engine.in_flight.push(InFlight {
                seq: r.seq,
                user: r.user,
                model: r.model,
                device: r.device,
                dispatched_at: r.dispatched_at,
                finish: r.finish,
                charge: r.charge,
                ok: r.ok,
                quality: r.quality,
                kind: r.kind.clone(),
                // A checkpoint does not carry the dispatch-time decision
                // context; the restored run's completion skips the witness
                // chain but still folds into the digest.
                witness: None,
            });
        }
        engine.now = ck.now;
        engine.next_seq = ck.next_seq;
        engine.step = ck.step as usize;
        engine.rounds = ck.rounds as usize;
        engine.censored = ck.censored as usize;
        engine.dispatches = ck.dispatches as usize;
        engine.parallel_dispatches = ck.parallel_dispatches as usize;
        engine.committed = ck.committed;
        engine.initial_loss = ck.initial_loss;
        engine.best_seen = ck.best_seen.clone();
        engine.user_cost = ck.user_cost.clone();
        engine.points = ck.points.clone();
        engine.queueing_delay = ck.queueing_delay.to_sketch();
        engine.busy_spans = ck.busy_spans.to_sketch();
        // Continue the rolling digest chain: ExecEngine::new ran warm_up
        // with a fresh log, so this overwrite is what makes the restored
        // digest trajectory match the original's (WAL recovery asserts
        // completion-by-completion equality on it).
        engine.wlog = easeml::witness::DecisionLog::from_state(
            ck.witness_top_k as usize,
            decode_u64(&ck.witness_digest)?,
            ck.witness_rounds,
        );
        // Open-loop workload state (v4): restore the raw fields, then let
        // the engine recompute every tenant's picker visibility from them.
        engine.retired = ck.retired.clone();
        engine.backlog = ck.backlog.clone();
        engine.arrival_seq = ck.arrival_seq;
        engine.arrivals = ck
            .arrivals
            .iter()
            .map(|a| Arrival {
                seq: a.seq,
                user: a.user,
                at: a.at,
            })
            .collect();
        engine.set_open_loop(ck.open_loop);
        Ok(engine)
    }
}

impl ExecCheckpoint {
    /// Serializes the checkpoint to one JSON document.
    pub fn to_json(&self) -> String {
        json::to_string(self)
    }

    /// Parses a checkpoint document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed or missing field.
    pub fn from_json(input: &str) -> Result<Self, String> {
        let doc = json::parse(input)?;
        let fields = as_object(&doc, "exec checkpoint")?;
        let version = get_u64(fields, "version")? as u32;
        if version != EXEC_CHECKPOINT_VERSION {
            return Err(format!(
                "unsupported exec checkpoint version {version} (expected {EXEC_CHECKPOINT_VERSION})"
            ));
        }
        let devices = as_array(get(fields, "devices")?, "devices")?
            .iter()
            .map(|d| {
                let f = as_object(d, "device")?;
                Ok(DeviceCheckpoint {
                    speed: get_f64(f, "speed")?,
                    slots: get_u64(f, "slots")?,
                    in_use: get_u64(f, "in_use")?,
                    busy: get_f64(f, "busy")?,
                    idle: get_f64(f, "idle")?,
                    last_t: get_f64(f, "last_t")?,
                    idle_since: get_f64(f, "idle_since")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let resolved = as_array(get(fields, "resolved")?, "resolved")?
            .iter()
            .map(|r| {
                let f = as_object(r, "resolved run")?;
                Ok(ResolvedCheckpoint {
                    user: get_u64(f, "user")? as usize,
                    model: get_u64(f, "model")? as usize,
                    cost: get_f64(f, "cost")?,
                    quality: get_f64(f, "quality")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let in_flight = as_array(get(fields, "in_flight")?, "in_flight")?
            .iter()
            .map(|r| {
                let f = as_object(r, "in-flight run")?;
                Ok(InFlightCheckpoint {
                    seq: get_u64(f, "seq")?,
                    user: get_u64(f, "user")? as usize,
                    model: get_u64(f, "model")? as usize,
                    device: get_u64(f, "device")? as usize,
                    dispatched_at: get_f64(f, "dispatched_at")?,
                    finish: get_f64(f, "finish")?,
                    charge: get_f64(f, "charge")?,
                    ok: get_bool(f, "ok")?,
                    quality: get_f64_or_nan(f, "quality")?,
                    kind: get_str(f, "kind")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let board_done = as_array(get(fields, "board_done")?, "board_done")?
            .iter()
            .map(|c| {
                let f = as_object(c, "done cell")?;
                Ok(DoneCellCheckpoint {
                    user: get_u64(f, "user")? as usize,
                    arm: get_u64(f, "arm")? as usize,
                    accuracy: get_f64(f, "accuracy")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let hybrid = match get(fields, "hybrid")? {
            Json::Null => None,
            value => {
                let f = as_object(value, "hybrid")?;
                Some(HybridCheckpoint {
                    rule: get_str(f, "rule")?,
                    patience: get_u64(f, "patience")?,
                    frozen_rounds: get_u64(f, "frozen_rounds")?,
                    prev_candidates: parse_usize_array(
                        get(f, "prev_candidates")?,
                        "prev_candidates",
                    )?,
                    prev_best_sum: get_f64_or_neg_inf(f, "prev_best_sum")?,
                    switched: get_bool(f, "switched")?,
                    rr_cursor: get_u64(f, "rr_cursor")?,
                })
            }
        };
        let fault = match get(fields, "fault")? {
            Json::Null => None,
            value => {
                let f = as_object(value, "fault")?;
                Some(FaultStateCheckpoint {
                    seed: get_str(f, "seed")?,
                    rates: parse_rates(get(f, "rates")?, "rates")?,
                    user_overrides: parse_overrides(get(f, "user_overrides")?, "user_overrides")?,
                    arm_overrides: parse_overrides(get(f, "arm_overrides")?, "arm_overrides")?,
                    straggler_factor: get_f64(f, "straggler_factor")?,
                    crash_cost_fraction: get_f64(f, "crash_cost_fraction")?,
                    timeout_factor: get_f64(f, "timeout_factor")?,
                    attempts: as_array(get(f, "attempts")?, "attempts")?
                        .iter()
                        .map(|t| parse_triple(t, "attempt counter"))
                        .collect::<Result<Vec<_>, String>>()?
                        .into_iter()
                        .map(|(a, b, c)| (a as usize, b as usize, c))
                        .collect(),
                })
            }
        };
        Ok(ExecCheckpoint {
            version,
            kind: get_str(fields, "kind")?,
            seed: get_str(fields, "seed")?,
            budget: get_f64(fields, "budget")?,
            cost_aware: get_bool(fields, "cost_aware")?,
            noise_var: get_f64(fields, "noise_var")?,
            delta: get_f64(fields, "delta")?,
            devices,
            now: get_f64(fields, "now")?,
            next_seq: get_u64(fields, "next_seq")?,
            step: get_u64(fields, "step")?,
            rounds: get_u64(fields, "rounds")?,
            censored: get_u64(fields, "censored")?,
            dispatches: get_u64(fields, "dispatches")?,
            parallel_dispatches: get_u64(fields, "parallel_dispatches")?,
            committed: get_f64(fields, "committed")?,
            initial_loss: get_f64(fields, "initial_loss")?,
            best_seen: parse_f64_array(get(fields, "best_seen")?, "best_seen")?,
            user_cost: parse_f64_array(get(fields, "user_cost")?, "user_cost")?,
            points: as_array(get(fields, "points")?, "points")?
                .iter()
                .map(|p| parse_f64_pair(p, "point"))
                .collect::<Result<Vec<_>, String>>()?,
            resolved,
            in_flight,
            board_done,
            hybrid,
            fault,
            queueing_delay: parse_sketch(get(fields, "queueing_delay")?, "queueing_delay")?,
            busy_spans: parse_sketch(get(fields, "busy_spans")?, "busy_spans")?,
            witness_digest: get_str(fields, "witness_digest")?,
            witness_rounds: get_u64(fields, "witness_rounds")?,
            witness_top_k: get_u64(fields, "witness_top_k")?,
            open_loop: get_bool(fields, "open_loop")?,
            retired: parse_bool_array(get(fields, "retired")?, "retired")?,
            backlog: parse_u64_array(get(fields, "backlog")?, "backlog")?,
            arrival_seq: get_u64(fields, "arrival_seq")?,
            arrivals: as_array(get(fields, "arrivals")?, "arrivals")?
                .iter()
                .map(|a| {
                    let f = as_object(a, "arrival")?;
                    Ok(ArrivalCheckpoint {
                        seq: get_u64(f, "seq")?,
                        user: get_u64(f, "user")? as usize,
                        at: get_f64(f, "at")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
        })
    }
}

fn parse_sketch(value: &Json, what: &str) -> Result<SketchCheckpoint, String> {
    let f = as_object(value, what)?;
    let buckets = as_array(get(f, "buckets")?, "buckets")?
        .iter()
        .map(|pair| {
            let (index, count) = parse_f64_pair(pair, "sketch bucket")?;
            if index.fract() != 0.0 || count < 0.0 || count.fract() != 0.0 {
                return Err(format!("{what}: malformed sketch bucket"));
            }
            Ok((index as i32, count as u64))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let opt_f64 = |key: &str| -> Result<Option<f64>, String> {
        match get(f, key)? {
            Json::Null => Ok(None),
            value => as_f64(value, key).map(Some),
        }
    };
    Ok(SketchCheckpoint {
        alpha: get_f64(f, "alpha")?,
        max_buckets: get_u64(f, "max_buckets")?,
        buckets,
        zeros: get_u64(f, "zeros")?,
        rejected: get_u64(f, "rejected")?,
        collapsed: get_u64(f, "collapsed")?,
        sum: get_f64(f, "sum")?,
        min: opt_f64("min")?,
        max: opt_f64("max")?,
    })
}

fn get<'a>(fields: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn as_object<'a>(value: &'a Json, what: &str) -> Result<&'a [(String, Json)], String> {
    match value {
        Json::Object(fields) => Ok(fields),
        other => Err(format!("{what}: expected an object, got {other:?}")),
    }
}

fn as_array<'a>(value: &'a Json, what: &str) -> Result<&'a [Json], String> {
    match value {
        Json::Array(items) => Ok(items),
        other => Err(format!("{what}: expected an array, got {other:?}")),
    }
}

fn as_f64(value: &Json, what: &str) -> Result<f64, String> {
    match value {
        Json::Number(n) => Ok(*n),
        other => Err(format!("{what}: expected a number, got {other:?}")),
    }
}

fn get_f64(fields: &[(String, Json)], key: &str) -> Result<f64, String> {
    as_f64(get(fields, key)?, key)
}

fn get_f64_or_nan(fields: &[(String, Json)], key: &str) -> Result<f64, String> {
    match get(fields, key)? {
        Json::Null => Ok(f64::NAN),
        value => as_f64(value, key),
    }
}

fn get_f64_or_neg_inf(fields: &[(String, Json)], key: &str) -> Result<f64, String> {
    match get(fields, key)? {
        Json::Null => Ok(f64::NEG_INFINITY),
        value => as_f64(value, key),
    }
}

fn get_u64(fields: &[(String, Json)], key: &str) -> Result<u64, String> {
    let n = get_f64(fields, key)?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("field {key:?}: expected a non-negative integer"));
    }
    Ok(n as u64)
}

fn get_bool(fields: &[(String, Json)], key: &str) -> Result<bool, String> {
    match get(fields, key)? {
        Json::Bool(b) => Ok(*b),
        other => Err(format!("field {key:?}: expected a bool, got {other:?}")),
    }
}

fn get_str(fields: &[(String, Json)], key: &str) -> Result<String, String> {
    match get(fields, key)? {
        Json::String(s) => Ok(s.clone()),
        other => Err(format!("field {key:?}: expected a string, got {other:?}")),
    }
}

fn parse_usize_array(value: &Json, what: &str) -> Result<Vec<usize>, String> {
    as_array(value, what)?
        .iter()
        .map(|v| as_f64(v, what).map(|n| n as usize))
        .collect()
}

fn parse_bool_array(value: &Json, what: &str) -> Result<Vec<bool>, String> {
    as_array(value, what)?
        .iter()
        .map(|v| match v {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("{what}: expected a bool, got {other:?}")),
        })
        .collect()
}

fn parse_u64_array(value: &Json, what: &str) -> Result<Vec<u64>, String> {
    as_array(value, what)?
        .iter()
        .map(|v| {
            let n = as_f64(v, what)?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(format!("{what}: expected a non-negative integer"));
            }
            Ok(n as u64)
        })
        .collect()
}

fn parse_f64_array(value: &Json, what: &str) -> Result<Vec<f64>, String> {
    as_array(value, what)?
        .iter()
        .map(|v| as_f64(v, what))
        .collect()
}

fn parse_f64_pair(value: &Json, what: &str) -> Result<(f64, f64), String> {
    let items = as_array(value, what)?;
    if items.len() != 2 {
        return Err(format!("{what}: expected a pair"));
    }
    Ok((as_f64(&items[0], what)?, as_f64(&items[1], what)?))
}

fn parse_triple(value: &Json, what: &str) -> Result<(u64, u64, u64), String> {
    let items = as_array(value, what)?;
    if items.len() != 3 {
        return Err(format!("{what}: expected a triple"));
    }
    Ok((
        as_f64(&items[0], what)? as u64,
        as_f64(&items[1], what)? as u64,
        as_f64(&items[2], what)? as u64,
    ))
}

fn parse_rates(value: &Json, what: &str) -> Result<[f64; 4], String> {
    let items = parse_f64_array(value, what)?;
    if items.len() != 4 {
        return Err(format!("{what}: expected 4 rates"));
    }
    Ok([items[0], items[1], items[2], items[3]])
}

fn parse_overrides(value: &Json, what: &str) -> Result<Vec<(usize, [f64; 4])>, String> {
    as_array(value, what)?
        .iter()
        .map(|entry| {
            let items = as_array(entry, what)?;
            if items.len() != 2 {
                return Err(format!("{what}: expected (key, rates) pairs"));
            }
            Ok((
                as_f64(&items[0], what)? as usize,
                parse_rates(&items[1], what)?,
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_multi_device;
    use easeml_data::SynConfig;

    fn small_dataset() -> Dataset {
        SynConfig {
            num_users: 4,
            num_models: 3,
            ..SynConfig::paper(0.5, 0.5)
        }
        .generate(3)
    }

    fn flat_priors(dataset: &Dataset) -> Vec<ArmPrior> {
        (0..dataset.num_users())
            .map(|_| ArmPrior::independent(dataset.num_models(), 0.05))
            .collect()
    }

    fn chaos_cfg() -> SimConfig {
        let mut cfg = SimConfig::new(8.0);
        cfg.fault = Some(
            FaultConfig::new(13)
                .with_crash_rate(0.2)
                .with_timeout_rate(0.1),
        );
        cfg
    }

    #[test]
    fn checkpoint_json_round_trips_mid_flight() {
        let d = small_dataset();
        let priors = flat_priors(&d);
        let cfg = chaos_cfg();
        let mut engine = ExecEngine::new(
            &d,
            &priors,
            SchedulerKind::Hybrid,
            &cfg,
            Fleet::uniform(3),
            7,
            RecorderHandle::noop(),
        );
        for _ in 0..4 {
            assert!(engine.tick());
        }
        assert!(engine.in_flight_len() > 0, "checkpoint must be mid-flight");
        let ck = engine.checkpoint();
        let parsed = ExecCheckpoint::from_json(&ck.to_json()).expect("round-trip");
        assert_eq!(parsed, ck);
        assert!(ck.hybrid.is_some());
        assert!(ck.fault.is_some());
        assert!(!ck.in_flight.is_empty());
    }

    #[test]
    fn version_and_kind_mismatches_are_rejected() {
        let d = small_dataset();
        let priors = flat_priors(&d);
        let cfg = SimConfig::new(4.0);
        let engine = ExecEngine::new(
            &d,
            &priors,
            SchedulerKind::RoundRobin,
            &cfg,
            Fleet::uniform(2),
            7,
            RecorderHandle::noop(),
        );
        let mut ck = engine.checkpoint();
        ck.version = 99;
        assert!(ExecCheckpoint::from_json(&ck.to_json())
            .unwrap_err()
            .contains("version"));
        ck.version = EXEC_CHECKPOINT_VERSION;
        ck.kind = "most-cited".into();
        let err = ExecEngine::restore(&d, &priors, &ck)
            .err()
            .expect("unknown kinds must be rejected");
        assert!(err.contains("unknown scheduler kind"));
    }

    #[test]
    fn restored_engine_finishes_like_the_original() {
        // Coarse end-to-end check (the bit-exact invariant lives in
        // tests/invariants.rs): restore at tick 5 and finish both.
        let d = small_dataset();
        let priors = flat_priors(&d);
        let cfg = SimConfig::new(6.0);
        let reference = simulate_multi_device(&d, &priors, SchedulerKind::RoundRobin, &cfg, 2, 7);
        let mut engine = ExecEngine::new(
            &d,
            &priors,
            SchedulerKind::RoundRobin,
            &cfg,
            Fleet::uniform(2),
            7,
            RecorderHandle::noop(),
        );
        for _ in 0..5 {
            assert!(engine.tick());
        }
        let ck = engine.checkpoint();
        let restored = ExecEngine::restore(&d, &priors, &ck).expect("restore");
        let trace = restored.run();
        assert_eq!(trace.sim.events, reference.sim.events);
        assert_eq!(trace.sim.points, reference.sim.points);
        assert_eq!(trace.makespan, reference.makespan);
    }
}
