//! The discrete-event execution engine: a dispatcher that keeps a
//! heterogeneous device fleet saturated with training runs selected through
//! GP-BUCB hallucinated updates, resolving completions into the posterior
//! in completion order (delayed feedback).
//!
//! The engine generalizes the serial simulator
//! ([`easeml::sim::simulate`]): with one unit-speed, single-slot device it
//! reproduces the serial trajectory *bit for bit* — the GP-BUCB selection
//! with an empty pending batch evaluates the exact GP-UCB expression, the
//! committed-cost budget test equals the serial makespan test, and
//! completions resolve immediately. With more devices, runs overlap: each
//! dispatch hallucinates its outcome at the posterior mean so the next
//! dispatch (possibly for the same user) explores a *different* arm, and
//! the truth replaces the hallucination only when the run completes.

use crate::fleet::{DeviceSpec, Fleet};
use crate::queue::EventQueue;
use easeml::durability::Durability;
use easeml::fault::FaultInjector;
use easeml::pool::TaskBoard;
use easeml::server::TrainingOutcome;
use easeml::sim::{
    build_tenants, cheapest_model, tenant_beta, SchedulerKind, SimConfig, SimEvent, SimTrace,
};
use easeml::witness::{DecisionLog, RoundWitness};
use easeml_bandit::{ArmExplanation, GpBucb};
use easeml_data::Dataset;
use easeml_gp::ArmPrior;
use easeml_linalg::vec_ops;
use easeml_obs::{Component, Event, QuantileSketch, RecorderHandle};
use easeml_sched::{Fcfs, Greedy, Hybrid, RandomPicker, RoundRobin, Tenant, UserPicker};
use easeml_wal::DurableEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One dispatched, not-yet-completed run.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct InFlight {
    /// Dispatch sequence number (ties the run to its queue event).
    pub(crate) seq: u64,
    /// The served user.
    pub(crate) user: usize,
    /// The dispatched model.
    pub(crate) model: usize,
    /// The device executing it.
    pub(crate) device: usize,
    /// Simulated dispatch time.
    pub(crate) dispatched_at: f64,
    /// Simulated completion time.
    pub(crate) finish: f64,
    /// Cost charged to the budget (the censored charge for failed runs).
    pub(crate) charge: f64,
    /// Whether the run will complete with a usable quality.
    pub(crate) ok: bool,
    /// The revealed quality (`NaN` when `ok` is false).
    pub(crate) quality: f64,
    /// The censoring kind for failed runs (empty when `ok`).
    pub(crate) kind: String,
    /// Witness context captured at dispatch time, committed with the
    /// completion. `None` when no recorder was attached at dispatch (and
    /// for runs rebuilt from a checkpoint — their decision context is
    /// gone, but the digest fold still happens at completion).
    pub(crate) witness: Option<Box<PendingWitness>>,
}

/// What the dispatch decision hinged on, frozen until its completion event
/// commits the witness chain.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PendingWitness {
    pub(crate) user_scores: Vec<f64>,
    pub(crate) candidates: Vec<usize>,
    pub(crate) path: String,
    pub(crate) arm_expl: ArmExplanation,
}

/// One externally-scheduled job arrival, waiting for the simulated clock
/// to reach it. Open-loop mode only ([`ExecEngine::set_open_loop`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Arrival {
    /// Monotone arrival sequence number (0-based, per engine).
    pub(crate) seq: u64,
    /// The tenant the job belongs to.
    pub(crate) user: usize,
    /// Absolute simulated arrival time.
    pub(crate) at: f64,
}

/// The user-picking strategy, kept concrete for HYBRID so its freeze
/// detector can be exported into a checkpoint.
pub(crate) enum PickerSlot {
    /// The HYBRID picker, checkpointable via [`Hybrid::export_state`].
    Hybrid(Hybrid),
    /// Any other picker, behind the trait object.
    Boxed(Box<dyn UserPicker>),
}

impl PickerSlot {
    pub(crate) fn as_mut(&mut self) -> &mut dyn UserPicker {
        match self {
            PickerSlot::Hybrid(h) => h,
            PickerSlot::Boxed(b) => b.as_mut(),
        }
    }

    pub(crate) fn hybrid(&self) -> Option<&Hybrid> {
        match self {
            PickerSlot::Hybrid(h) => Some(h),
            PickerSlot::Boxed(_) => None,
        }
    }

    fn build(kind: SchedulerKind, recorder: &RecorderHandle) -> Self {
        let mut slot = match kind {
            SchedulerKind::Hybrid | SchedulerKind::EaseMl => PickerSlot::Hybrid(Hybrid::ease_ml()),
            SchedulerKind::Fcfs => PickerSlot::Boxed(Box::new(Fcfs::default())),
            SchedulerKind::RoundRobin => PickerSlot::Boxed(Box::new(RoundRobin::default())),
            SchedulerKind::Random => PickerSlot::Boxed(Box::new(RandomPicker::default())),
            SchedulerKind::Greedy(rule) => PickerSlot::Boxed(Box::new(Greedy::new(rule))),
            SchedulerKind::MostCited | SchedulerKind::MostRecent => {
                panic!("heuristic scheduler kinds are not supported by the execution engine")
            }
        };
        slot.as_mut().set_recorder(recorder.clone());
        slot
    }
}

/// The result of a multi-device execution: the familiar [`SimTrace`] plus
/// the fleet-level accounting the serial simulator has no notion of.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecTrace {
    /// The loss trajectory, events, and final losses — same shape as the
    /// serial simulator's trace, points keyed by simulated *time*.
    pub sim: SimTrace,
    /// Simulated time of the last completion.
    pub makespan: f64,
    /// Per-device accrued busy slot-time.
    pub device_busy: Vec<f64>,
    /// Per-device accrued idle slot-time.
    pub device_idle: Vec<f64>,
    /// Total job slots (`Σ busy + Σ idle == capacity × makespan`).
    pub capacity: usize,
    /// Total dispatches (completed and censored).
    pub dispatches: usize,
    /// Dispatches made while at least one other run was in flight — the
    /// delayed-feedback dispatches a serial simulator never makes.
    pub parallel_dispatches: usize,
    /// Censored (crashed / timed-out / invalid-quality) runs.
    pub censored: usize,
    /// Cost charged per user.
    pub user_cost: Vec<f64>,
    /// Total cost charged across all users.
    pub total_charged: f64,
    /// Mergeable quantile sketch over the fully-idle gaps devices sat
    /// through before their next dispatch — the queueing-delay
    /// distribution (same sketch family the telemetry layer exports).
    pub queueing_delay: QuantileSketch,
    /// Mergeable quantile sketch over per-run device occupancy durations.
    pub busy_spans: QuantileSketch,
}

/// The multi-device discrete-event execution engine.
///
/// Construct one with [`ExecEngine::new`], then either drive it to the end
/// with [`ExecEngine::run`] or step it with [`ExecEngine::tick`] (and
/// possibly [`checkpoint`](ExecEngine::checkpoint) it mid-flight).
pub struct ExecEngine<'a> {
    pub(crate) dataset: &'a Dataset,
    pub(crate) cfg: SimConfig,
    pub(crate) kind: SchedulerKind,
    pub(crate) seed: u64,
    pub(crate) rng: StdRng,
    pub(crate) fleet: Fleet,
    pub(crate) tenants: Vec<Tenant>,
    pub(crate) bucbs: Vec<GpBucb>,
    pub(crate) picker: PickerSlot,
    pub(crate) injector: Option<FaultInjector>,
    pub(crate) best_possible: Vec<f64>,
    pub(crate) best_seen: Vec<f64>,
    pub(crate) board: TaskBoard,
    pub(crate) queue: EventQueue,
    pub(crate) in_flight: Vec<InFlight>,
    pub(crate) now: f64,
    pub(crate) next_seq: u64,
    pub(crate) step: usize,
    pub(crate) rounds: usize,
    pub(crate) censored: usize,
    pub(crate) committed: f64,
    pub(crate) user_cost: Vec<f64>,
    pub(crate) dispatches: usize,
    pub(crate) parallel_dispatches: usize,
    pub(crate) initial_loss: f64,
    pub(crate) points: Vec<(f64, f64)>,
    pub(crate) events: Vec<SimEvent>,
    pub(crate) queueing_delay: QuantileSketch,
    pub(crate) busy_spans: QuantileSketch,
    pub(crate) recorder: RecorderHandle,
    pub(crate) wlog: DecisionLog,
    pub(crate) durability: Durability,
    /// Open-loop mode: tenants are only dispatchable while they have
    /// backlogged jobs (fed through [`ExecEngine::push_arrival`]). Off by
    /// default — the classic closed-loop engine assumes every tenant is
    /// always backlogged.
    pub(crate) open_loop: bool,
    /// Per-tenant retirement flags. A retired tenant never re-enters any
    /// picker candidate set until it rejoins; its GP state is kept.
    pub(crate) retired: Vec<bool>,
    /// Per-tenant count of arrived-but-not-yet-dispatched jobs (open-loop
    /// accounting; ignored in closed-loop mode).
    pub(crate) backlog: Vec<u64>,
    /// Future arrivals in non-decreasing time order.
    pub(crate) arrivals: std::collections::VecDeque<Arrival>,
    /// Next arrival sequence number.
    pub(crate) arrival_seq: u64,
}

impl<'a> ExecEngine<'a> {
    /// Builds an engine and performs the budget-free warm-up pass (one
    /// cheapest model per user, same as the serial simulator). `seed`
    /// drives the stochastic pickers; deterministic kinds ignore it.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive budget, a heuristic scheduler kind
    /// ([`SchedulerKind::MostCited`] / [`SchedulerKind::MostRecent`]), or a
    /// `priors` length that does not match the number of users.
    pub fn new(
        dataset: &'a Dataset,
        priors: &[ArmPrior],
        kind: SchedulerKind,
        cfg: &SimConfig,
        fleet: Fleet,
        seed: u64,
        recorder: RecorderHandle,
    ) -> Self {
        assert!(cfg.budget > 0.0, "budget must be positive");
        assert_eq!(
            priors.len(),
            dataset.num_users(),
            "one prior per user is required"
        );
        let n = dataset.num_users();
        let tenants = build_tenants(dataset, priors, cfg, &recorder);
        let beta = tenant_beta(dataset, cfg);
        let bucbs: Vec<GpBucb> = (0..n)
            .map(|i| {
                let policy = GpBucb::new(priors[i].clone(), cfg.noise_var, beta);
                let policy = if cfg.cost_aware {
                    policy.with_costs(dataset.user_costs(i).to_vec())
                } else {
                    policy
                };
                policy.with_recorder(recorder.clone(), i)
            })
            .collect();
        let picker = PickerSlot::build(kind, &recorder);
        let injector = cfg.fault.clone().map(FaultInjector::new);
        let mut engine = ExecEngine {
            dataset,
            cfg: cfg.clone(),
            kind,
            seed,
            rng: StdRng::seed_from_u64(seed),
            fleet,
            tenants,
            bucbs,
            picker,
            injector,
            best_possible: (0..n).map(|i| dataset.best_quality(i)).collect(),
            best_seen: vec![0.0; n],
            board: TaskBoard::new(n, dataset.num_models()),
            queue: EventQueue::new(),
            in_flight: Vec::new(),
            now: 0.0,
            next_seq: 0,
            step: 0,
            rounds: 0,
            censored: 0,
            committed: 0.0,
            user_cost: vec![0.0; n],
            dispatches: 0,
            parallel_dispatches: 0,
            initial_loss: 0.0,
            points: Vec::new(),
            events: Vec::new(),
            queueing_delay: QuantileSketch::default(),
            busy_spans: QuantileSketch::default(),
            recorder,
            wlog: DecisionLog::new(),
            durability: Durability::noop(),
            open_loop: false,
            retired: vec![false; n],
            backlog: vec![0; n],
            arrivals: std::collections::VecDeque::new(),
            arrival_seq: 0,
        };
        engine.warm_up();
        engine
    }

    /// Attaches write-ahead durability: every dispatch and completion
    /// appends a [`DurableEvent`] through the handle. The default engine
    /// runs with a noop handle that costs one branch per logging site.
    pub fn set_durability(&mut self, durability: Durability) {
        durability.set_recorder(self.recorder.clone());
        self.durability = durability;
    }

    /// The durability handle (noop unless attached).
    pub fn durability(&self) -> &Durability {
        &self.durability
    }

    /// Rolling digest (16 hex chars) of every completed decision — equal
    /// digests mean equal decision sequences, bit-compatible with the
    /// serial simulator's at one unit device ([`easeml::witness`]).
    pub fn state_digest(&self) -> String {
        self.wlog.digest_hex()
    }

    /// The budget-free warm-up pass, identical to the serial simulator's:
    /// each user starts with her cheapest model already trained, observed by
    /// both the tenant's GP-UCB (scheduler state) and the GP-BUCB dispatcher.
    fn warm_up(&mut self) {
        for user in 0..self.dataset.num_users() {
            let model = cheapest_model(self.dataset, user);
            let quality = self.dataset.quality(user, model);
            self.tenants[user].observe(model, quality);
            self.bucbs[user].observe_direct(model, quality);
            if quality > self.best_seen[user] {
                self.best_seen[user] = quality;
            }
            self.picker.as_mut().after_observe(&self.tenants, user);
        }
        self.initial_loss = self.mean_loss();
    }

    /// Swaps the recorder on the engine and every instrumented component —
    /// used by checkpoint restore, which rebuilds silently and then attaches
    /// the live sink.
    pub fn attach_recorder(&mut self, recorder: RecorderHandle) {
        for (i, tenant) in self.tenants.iter_mut().enumerate() {
            tenant.policy_mut().set_recorder(recorder.clone(), i);
        }
        for (i, bucb) in self.bucbs.iter_mut().enumerate() {
            bucb.set_recorder(recorder.clone(), i);
        }
        self.picker.as_mut().set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// Per-user accuracy losses (best possible minus best seen).
    pub fn losses(&self) -> Vec<f64> {
        self.best_possible
            .iter()
            .zip(&self.best_seen)
            .map(|(b, s)| (b - s).max(0.0))
            .collect()
    }

    fn mean_loss(&self) -> f64 {
        vec_ops::mean(&self.losses())
    }

    /// The simulated clock (time of the most recent completion).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Cost committed to dispatched runs so far (completed or in flight).
    pub fn committed(&self) -> f64 {
        self.committed
    }

    /// Number of runs currently in flight.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// The device fleet (read-only).
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// The dispatch board (read-only).
    pub fn board(&self) -> &TaskBoard {
        &self.board
    }

    /// Recomputes tenant `user`'s picker visibility: a tenant is a
    /// candidate iff it has not retired and (in open-loop mode) has at
    /// least one backlogged job. In closed-loop mode every non-retired
    /// tenant stays visible, which is the pre-open-loop behavior bit for
    /// bit.
    fn refresh_eligibility(&mut self, user: usize) {
        let eligible = !self.retired[user] && (!self.open_loop || self.backlog[user] > 0);
        self.tenants[user].set_active(eligible);
    }

    /// Switches between closed-loop (default: every tenant always
    /// backlogged) and open-loop mode (tenants only receive work through
    /// [`ExecEngine::push_arrival`], and devices idle — the clock jumps to
    /// the next arrival — when no job is queued).
    pub fn set_open_loop(&mut self, open: bool) {
        self.open_loop = open;
        for user in 0..self.tenants.len() {
            self.refresh_eligibility(user);
        }
    }

    /// Whether the engine is in open-loop mode.
    pub fn is_open_loop(&self) -> bool {
        self.open_loop
    }

    /// Schedules one job arrival for `user` at absolute simulated time
    /// `at` and returns its arrival sequence number. Arrivals must be
    /// pushed in non-decreasing time order; an arrival at or before the
    /// current clock is absorbed on the next tick. Arrivals left after the
    /// budget is committed are never served.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range user, a non-finite or negative time, or a
    /// time earlier than the previously pushed arrival's.
    pub fn push_arrival(&mut self, user: usize, at: f64) -> u64 {
        assert!(user < self.tenants.len(), "arrival for unknown user {user}");
        assert!(
            at.is_finite() && at >= 0.0,
            "arrival time must be finite and non-negative"
        );
        if let Some(last) = self.arrivals.back() {
            assert!(
                at >= last.at,
                "arrivals must be pushed in non-decreasing time order ({at} < {})",
                last.at
            );
        }
        let seq = self.arrival_seq;
        self.arrival_seq += 1;
        self.arrivals.push_back(Arrival { seq, user, at });
        seq
    }

    /// Arrived-but-undispatched jobs for `user` (open-loop accounting).
    pub fn backlog(&self, user: usize) -> u64 {
        self.backlog[user]
    }

    /// Arrivals still waiting for the clock (not yet absorbed).
    pub fn pending_arrivals(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether tenant `user` has retired.
    pub fn is_tenant_retired(&self, user: usize) -> bool {
        self.retired[user]
    }

    /// Retires tenant `user`: it leaves every future picker candidate set
    /// (in-flight runs still resolve into its kept GP state). Idempotent.
    /// Appends a [`DurableEvent::TenantRetired`] record when a WAL is
    /// attached and emits [`Event::TenantRetired`].
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range user.
    pub fn retire_tenant(&mut self, user: usize) {
        assert!(user < self.tenants.len(), "retiring unknown user {user}");
        if self.retired[user] {
            return;
        }
        self.retired[user] = true;
        self.refresh_eligibility(user);
        let serves = self.events.iter().filter(|e| e.user == user).count() as u64;
        self.recorder.emit(|| Event::TenantRetired {
            user,
            serves,
            at: self.now,
            parent: easeml_obs::current_span(),
        });
        self.durability.append(|| DurableEvent::TenantRetired {
            round: self.next_seq,
            user: user as u64,
        });
    }

    /// Re-activates a retired tenant (tenant churn: the slot rejoins the
    /// shared service with its GP state intact). Idempotent for active
    /// tenants. Appends a [`DurableEvent::TenantJoined`] record when a WAL
    /// is attached and emits [`Event::TenantJoined`].
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range user.
    pub fn rejoin_tenant(&mut self, user: usize) {
        assert!(user < self.tenants.len(), "rejoining unknown user {user}");
        if !self.retired[user] {
            return;
        }
        self.retired[user] = false;
        self.refresh_eligibility(user);
        let models = self.dataset.num_models() as u64;
        self.recorder.emit(|| Event::TenantJoined {
            user,
            name: format!("user{user}"),
            models,
            at: self.now,
            parent: easeml_obs::current_span(),
        });
        self.durability.append(|| DurableEvent::TenantJoined {
            round: self.next_seq,
            user: user as u64,
            arms: models,
            name: format!("user{user}"),
            program: String::new(),
        });
    }

    /// Whether any tenant is currently dispatchable.
    fn dispatchable(&self) -> bool {
        self.tenants.iter().any(Tenant::is_active)
    }

    /// Moves every arrival at or before the clock into its tenant's
    /// backlog, emitting [`Event::JobArrived`] stamped with the *arrival*
    /// time (which may trail the clock when the fleet was busy).
    fn absorb_due_arrivals(&mut self) {
        while let Some(front) = self.arrivals.front() {
            if front.at > self.now {
                break;
            }
            let arrival = *front;
            self.arrivals.pop_front();
            self.backlog[arrival.user] += 1;
            self.refresh_eligibility(arrival.user);
            self.recorder.emit(|| Event::JobArrived {
                user: arrival.user,
                seq: arrival.seq,
                at: arrival.at,
                parent: easeml_obs::current_span(),
            });
            self.recorder.count("exec/arrivals", 1);
        }
    }

    /// Dispatches runs until the fleet is saturated, no tenant is
    /// dispatchable, or the budget is committed.
    fn saturate(&mut self) {
        while self.committed < self.cfg.budget && self.dispatchable() {
            match self.fleet.best_free() {
                Some(device) => self.dispatch(device),
                None => break,
            }
        }
    }

    /// One dispatch: pick a user, select an arm through the hallucinated
    /// posterior, roll the fault model, occupy the device, and schedule the
    /// completion event.
    fn dispatch(&mut self, device: usize) {
        let _span = self.recorder.span("dispatch");
        let _timing = self.recorder.time(Component::ExecDispatch);
        let user = {
            let _pick_span = self.recorder.span("pick_user");
            let _pick = self.recorder.time(Component::SchedulerPick);
            self.picker
                .as_mut()
                .pick(&self.tenants, self.step, &mut self.rng)
        };
        self.step += 1;
        // Freeze the decision context before `select_next` hallucinates:
        // the explanation must score the same posterior the argmax saw.
        let witness = if self.recorder.is_enabled() {
            let _w = self.recorder.span("witness");
            Some(Box::new(PendingWitness {
                user_scores: self.picker.as_mut().decision_scores(&self.tenants),
                candidates: self.picker.as_mut().last_candidates().to_vec(),
                path: self.picker.as_mut().pick_path(),
                arm_expl: self.bucbs[user].explain_next(self.wlog.top_k()),
            }))
        } else {
            None
        };
        // Consume one backlogged job *after* the witness froze its scores:
        // eligibility flips must not leak into the recorded decision
        // context of the pick they follow.
        if self.open_loop {
            debug_assert!(self.backlog[user] > 0, "dispatched a user with no backlog");
            self.backlog[user] = self.backlog[user].saturating_sub(1);
            // Inlined `refresh_eligibility` — the recorder's timing guard
            // pins `self.recorder`, so no `&mut self` call is possible here.
            let eligible = !self.retired[user] && self.backlog[user] > 0;
            self.tenants[user].set_active(eligible);
        }
        let model = self.bucbs[user].select_next();
        let clean = TrainingOutcome {
            accuracy: self.dataset.quality(user, model),
            cost: self.dataset.cost(user, model),
        };
        let outcome = match self.injector.as_mut() {
            Some(inj) => inj.apply(user, model, clean),
            None => Ok(clean),
        };
        // The outcome is pre-resolved at dispatch (the fault stream is
        // keyed by (user, arm, attempt), not by time), but nothing of it is
        // *revealed* until the completion event fires.
        let (charge, ok, quality, kind) = match outcome {
            Ok(out) if out.accuracy.is_finite() => (out.cost, true, out.accuracy, ""),
            Ok(out) => (out.cost, false, f64::NAN, "invalid-quality"),
            Err(error) => (error.cost_consumed(), false, f64::NAN, error.kind()),
        };
        // A censored run occupies its device for the *charged* duration:
        // a crash frees the device at censoring time, not at the clean
        // run's would-be finish.
        let duration = if charge.is_finite() && charge > 0.0 {
            charge / self.fleet.speed(device)
        } else {
            0.0
        };
        if let Some(gap) = self.fleet.occupy(device, self.now) {
            self.queueing_delay.insert(gap);
            self.recorder.emit(|| Event::DeviceIdle {
                device,
                idle: gap,
                at: self.now,
                parent: easeml_obs::current_span(),
            });
        }
        self.busy_spans.insert(duration);
        self.board.start(user, model);
        if charge.is_finite() && charge > 0.0 {
            self.committed += charge;
            self.user_cost[user] += charge;
        }
        if !self.in_flight.is_empty() {
            self.parallel_dispatches += 1;
        }
        self.dispatches += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        let finish = self.now + duration;
        self.queue.push(finish, seq);
        self.in_flight.push(InFlight {
            seq,
            user,
            model,
            device,
            dispatched_at: self.now,
            finish,
            charge,
            ok,
            quality,
            kind: kind.to_string(),
            witness,
        });
        self.recorder.emit(|| Event::RunDispatched {
            user,
            model,
            device,
            cost: charge,
            at: self.now,
            parent: easeml_obs::current_span(),
        });
        self.recorder.count("exec/dispatches", 1);
        self.durability.append(|| DurableEvent::ExecDispatch {
            seq,
            user: user as u64,
            arm: model as u64,
            device: device as u64,
        });
    }

    /// Resolves the earliest scheduled completion: frees the device, feeds
    /// the truth into the posteriors (or retracts the hallucination for a
    /// censored run), and advances the clock. Returns `false` when nothing
    /// was in flight.
    fn process_next(&mut self) -> bool {
        let Some(event) = self.queue.pop() else {
            return false;
        };
        self.now = event.time;
        // `in_flight` is push-ordered by seq, so the entry's position is
        // also its position in the GP-BUCB pending batch *among this user's
        // pending arms* — recover both before removal.
        let idx = self
            .in_flight
            .iter()
            .position(|r| r.seq == event.seq)
            .expect("queued event must have an in-flight run");
        let pending_idx = self.in_flight[..idx]
            .iter()
            .filter(|r| r.user == self.in_flight[idx].user)
            .count();
        let run = self.in_flight.remove(idx);
        // The span opens before the device release so the busy-integral
        // sweep inside `release` is attributed to `complete` — it is part
        // of resolving this run, not idle scheduler time.
        let _span = self.recorder.span("complete");
        self.fleet.release(run.device, self.now);
        self.recorder.emit(|| Event::RunFinished {
            user: run.user,
            model: run.model,
            device: run.device,
            at: self.now,
            ok: run.ok,
            parent: easeml_obs::current_span(),
        });
        if run.ok {
            self.recorder.emit(|| Event::TrainingCompleted {
                user: run.user,
                model: run.model,
                cost: run.charge,
                quality: run.quality,
                parent: easeml_obs::current_span(),
            });
            self.tenants[run.user].observe(run.model, run.quality);
            let resolved = self.bucbs[run.user].resolve_at(pending_idx, run.quality);
            debug_assert_eq!(resolved, run.model, "pending batch out of sync");
            self.board.finish(run.user, run.model, run.quality);
            if run.quality > self.best_seen[run.user] {
                self.best_seen[run.user] = run.quality;
            }
            self.points.push((self.now, self.mean_loss()));
            self.events.push(SimEvent {
                user: run.user,
                model: run.model,
                cost: run.charge,
                quality: run.quality,
            });
            self.picker.as_mut().after_observe(&self.tenants, run.user);
            self.rounds += 1;
            self.recorder.count("sim/rounds", 1);
        } else {
            let cancelled = self.bucbs[run.user].cancel_at(pending_idx);
            debug_assert_eq!(cancelled, run.model, "pending batch out of sync");
            self.board.fail(run.user, run.model);
            self.recorder.emit(|| Event::TrainingFailed {
                user: run.user,
                model: run.model,
                cost: run.charge.max(0.0),
                kind: run.kind.clone(),
                attempt: 1,
                parent: easeml_obs::current_span(),
            });
            self.censored += 1;
            self.recorder.count("sim/failed-rounds", 1);
        }
        // Commit the decision's provenance in completion order. `seq` is
        // the dispatch counter, so at one unit device the witness rounds
        // and the digest trajectory match the serial simulator's exactly.
        let w = run.witness.as_deref();
        self.wlog.record(
            &self.recorder,
            RoundWitness {
                round: run.seq,
                user: run.user,
                arm: run.model,
                user_scores: w.map_or(&[][..], |w| &w.user_scores),
                candidates: w.map_or(&[][..], |w| &w.candidates),
                arm_explanation: w.map(|w| &w.arm_expl),
                path: w.map_or_else(String::new, |w| w.path.clone()),
                fallback: if run.ok {
                    String::new()
                } else {
                    run.kind.clone()
                },
                censored: !run.ok,
            },
        );
        // The completion IS the commit on the exec side: the digest seals
        // the whole decision chain up to and including this run.
        if self.durability.is_enabled() {
            let digest = self.wlog.digest_value();
            self.durability.append(|| DurableEvent::ExecCompletion {
                seq: run.seq,
                user: run.user as u64,
                arm: run.model as u64,
                censored: !run.ok,
                digest,
            });
        }
        true
    }

    /// One engine step: absorb due arrivals, saturate the fleet with
    /// dispatches, then advance to the next event — a completion, or (in
    /// open-loop mode) a job arrival the idle clock jumps forward to.
    /// Arrivals tied with a completion absorb first, so a freed device
    /// sees the newly backlogged tenant. Returns `false` when the run is
    /// over: budget committed and nothing left in flight, or (open-loop)
    /// nothing in flight, no backlog, and no arrival left to wake on.
    pub fn tick(&mut self) -> bool {
        loop {
            self.absorb_due_arrivals();
            self.saturate();
            // An arrival only matters while budget remains to serve it.
            let next_arrival = if self.committed < self.cfg.budget {
                self.arrivals.front().map(|a| a.at)
            } else {
                None
            };
            match (self.queue.peek().map(|e| e.time), next_arrival) {
                (Some(completion), Some(arrival)) if arrival <= completion => {
                    self.now = self.now.max(arrival);
                }
                (Some(_), _) => return self.process_next(),
                (None, Some(arrival)) => self.now = self.now.max(arrival),
                (None, None) => return false,
            }
        }
    }

    /// Final accounting: sweeps every device's busy/idle integral to the
    /// makespan and assembles the trace.
    pub fn finish(mut self) -> ExecTrace {
        self.fleet.advance_all(self.now);
        self.recorder.gauge("sim/makespan", self.now);
        self.recorder.gauge("sim/mean-loss", self.mean_loss());
        ExecTrace {
            sim: SimTrace {
                budget: self.cfg.budget,
                initial_loss: self.initial_loss,
                points: self.points,
                events: self.events,
                final_losses: self
                    .best_possible
                    .iter()
                    .zip(&self.best_seen)
                    .map(|(b, s)| (b - s).max(0.0))
                    .collect(),
                rounds: self.rounds,
            },
            makespan: self.now,
            device_busy: self.fleet.busy(),
            device_idle: self.fleet.idle(),
            capacity: self.fleet.capacity(),
            dispatches: self.dispatches,
            parallel_dispatches: self.parallel_dispatches,
            censored: self.censored,
            user_cost: self.user_cost,
            total_charged: self.committed,
            queueing_delay: self.queueing_delay,
            busy_spans: self.busy_spans,
        }
    }

    /// Drives the engine to completion.
    pub fn run(mut self) -> ExecTrace {
        while self.tick() {}
        self.finish()
    }
}

/// Runs one multi-device simulation on `devices` identical unit-speed
/// devices. The drop-in multi-device counterpart of
/// [`easeml::sim::simulate`]; with `devices = 1` the returned trace equals
/// the serial one bit for bit (deterministic pickers).
///
/// # Panics
///
/// Same contract as [`ExecEngine::new`] plus `devices > 0`.
pub fn simulate_multi_device(
    dataset: &Dataset,
    priors: &[ArmPrior],
    kind: SchedulerKind,
    cfg: &SimConfig,
    devices: usize,
    seed: u64,
) -> ExecTrace {
    simulate_multi_device_with_recorder(
        dataset,
        priors,
        kind,
        cfg,
        devices,
        seed,
        &RecorderHandle::noop(),
    )
}

/// [`simulate_multi_device`] with an observability sink attached: every
/// dispatch emits [`Event::RunDispatched`], every completion
/// [`Event::RunFinished`] (plus the familiar `TrainingCompleted` /
/// `TrainingFailed`), and a device waking from a fully-idle gap emits
/// [`Event::DeviceIdle`].
///
/// # Panics
///
/// Same contract as [`simulate_multi_device`].
pub fn simulate_multi_device_with_recorder(
    dataset: &Dataset,
    priors: &[ArmPrior],
    kind: SchedulerKind,
    cfg: &SimConfig,
    devices: usize,
    seed: u64,
    recorder: &RecorderHandle,
) -> ExecTrace {
    assert!(devices > 0, "need at least one device");
    simulate_fleet_with_recorder(
        dataset,
        priors,
        kind,
        cfg,
        vec![DeviceSpec::unit(); devices],
        seed,
        recorder,
    )
}

/// The fully general entry point: an explicit heterogeneous fleet.
///
/// # Panics
///
/// Same contract as [`ExecEngine::new`] plus [`Fleet::new`]'s.
pub fn simulate_fleet_with_recorder(
    dataset: &Dataset,
    priors: &[ArmPrior],
    kind: SchedulerKind,
    cfg: &SimConfig,
    specs: Vec<DeviceSpec>,
    seed: u64,
    recorder: &RecorderHandle,
) -> ExecTrace {
    ExecEngine::new(
        dataset,
        priors,
        kind,
        cfg,
        Fleet::new(specs),
        seed,
        recorder.clone(),
    )
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeml_data::SynConfig;

    fn small_dataset() -> Dataset {
        SynConfig {
            num_users: 5,
            num_models: 4,
            ..SynConfig::paper(0.5, 0.5)
        }
        .generate(3)
    }

    fn flat_priors(dataset: &Dataset) -> Vec<ArmPrior> {
        (0..dataset.num_users())
            .map(|_| ArmPrior::independent(dataset.num_models(), 0.05))
            .collect()
    }

    #[test]
    fn multi_device_overlaps_runs_and_shrinks_makespan() {
        let d = small_dataset();
        let priors = flat_priors(&d);
        let cfg = SimConfig::new(8.0);
        let t1 = simulate_multi_device(&d, &priors, SchedulerKind::RoundRobin, &cfg, 1, 7);
        let t4 = simulate_multi_device(&d, &priors, SchedulerKind::RoundRobin, &cfg, 4, 7);
        assert_eq!(t1.parallel_dispatches, 0, "one device cannot overlap");
        assert!(t4.parallel_dispatches > 0, "four devices must overlap");
        assert!(
            t4.makespan < t1.makespan,
            "4 devices: {} vs 1 device: {}",
            t4.makespan,
            t1.makespan
        );
        // Both commit (at least) the budget, within one run's overshoot.
        assert!(t1.total_charged >= cfg.budget);
        assert!(t4.total_charged >= cfg.budget);
    }

    #[test]
    fn losses_never_increase_and_points_are_time_ordered() {
        let d = small_dataset();
        let priors = flat_priors(&d);
        let cfg = SimConfig::new(10.0);
        let t = simulate_multi_device(&d, &priors, SchedulerKind::Hybrid, &cfg, 3, 7);
        assert!(!t.sim.points.is_empty());
        for w in t.sim.points.windows(2) {
            assert!(w[1].0 >= w[0].0 - 1e-12, "time must not run backwards");
            assert!(w[1].1 <= w[0].1 + 1e-12, "loss must not increase");
        }
        assert_eq!(t.sim.events.len(), t.sim.rounds);
        assert_eq!(t.dispatches, t.sim.rounds + t.censored);
    }

    #[test]
    fn faster_devices_attract_the_dispatches() {
        let d = small_dataset();
        let priors = flat_priors(&d);
        let cfg = SimConfig::new(8.0);
        let rec = RecorderHandle::noop();
        let t = simulate_fleet_with_recorder(
            &d,
            &priors,
            SchedulerKind::RoundRobin,
            &cfg,
            vec![DeviceSpec::with_speed(1.0), DeviceSpec::with_speed(4.0)],
            7,
            &rec,
        );
        // The 4x device does (at least) the same slot-time of work per unit
        // busy, and being preferred by best_free it must end up busier in
        // charged terms: its busy time is nonzero and the makespan beats
        // the uniform single-device run.
        assert!(t.device_busy[1] > 0.0);
        let serial = simulate_multi_device(&d, &priors, SchedulerKind::RoundRobin, &cfg, 1, 7);
        assert!(t.makespan < serial.makespan);
    }

    #[test]
    fn recorder_stream_pairs_every_dispatch_with_a_finish() {
        use easeml_obs::InMemoryRecorder;
        use std::sync::Arc;
        let d = small_dataset();
        let priors = flat_priors(&d);
        let cfg = SimConfig::new(6.0);
        let rec = Arc::new(InMemoryRecorder::new());
        let handle = RecorderHandle::new(rec.clone());
        let t = simulate_multi_device_with_recorder(
            &d,
            &priors,
            SchedulerKind::RoundRobin,
            &cfg,
            2,
            7,
            &handle,
        );
        let counts = rec.event_counts();
        assert_eq!(counts.get("RunDispatched"), Some(&t.dispatches));
        assert_eq!(counts.get("RunFinished"), Some(&t.dispatches));
        assert_eq!(
            counts.get("TrainingCompleted").copied().unwrap_or(0),
            t.sim.rounds
        );
        assert_eq!(rec.counter("exec/dispatches"), t.dispatches as u64);
        // Completion events mirror the trace events one-to-one.
        let completed: Vec<SimEvent> = rec
            .events()
            .iter()
            .filter_map(|e| match *e {
                Event::TrainingCompleted {
                    user,
                    model,
                    cost,
                    quality,
                    ..
                } => Some(SimEvent {
                    user,
                    model,
                    cost,
                    quality,
                }),
                _ => None,
            })
            .collect();
        assert_eq!(completed, t.sim.events);
    }

    #[test]
    fn single_device_witness_digests_match_the_serial_simulator() {
        use easeml_obs::InMemoryRecorder;
        use rand::SeedableRng;
        use std::sync::Arc;
        let d = small_dataset();
        let priors = flat_priors(&d);
        let cfg = SimConfig::new(9.0);
        let digests = |events: &[Event]| -> Vec<String> {
            events
                .iter()
                .filter_map(|e| match e {
                    Event::DecisionWitness { round, digest, .. } => {
                        Some(format!("{round}:{digest}"))
                    }
                    _ => None,
                })
                .collect()
        };
        let serial_rec = Arc::new(InMemoryRecorder::new());
        let _ = easeml::sim::simulate_with_recorder(
            &d,
            &priors,
            SchedulerKind::Hybrid,
            &cfg,
            &mut rand::rngs::StdRng::seed_from_u64(7),
            &RecorderHandle::new(serial_rec.clone()),
        );
        let exec_rec = Arc::new(InMemoryRecorder::new());
        let _ = simulate_multi_device_with_recorder(
            &d,
            &priors,
            SchedulerKind::Hybrid,
            &cfg,
            1,
            7,
            &RecorderHandle::new(exec_rec.clone()),
        );
        let serial = digests(&serial_rec.events());
        let exec = digests(&exec_rec.events());
        assert!(!serial.is_empty());
        assert_eq!(serial, exec, "D=1 exec must replay the serial decisions");
    }

    #[test]
    fn multi_device_witnesses_commit_one_per_dispatch() {
        use easeml_obs::InMemoryRecorder;
        use std::sync::Arc;
        let d = small_dataset();
        let priors = flat_priors(&d);
        let cfg = SimConfig::new(8.0);
        let rec = Arc::new(InMemoryRecorder::new());
        let t = simulate_multi_device_with_recorder(
            &d,
            &priors,
            SchedulerKind::RoundRobin,
            &cfg,
            3,
            7,
            &RecorderHandle::new(rec.clone()),
        );
        let records = easeml_obs::witness_records(&rec.events());
        assert_eq!(records.len(), t.dispatches, "one witness per dispatch");
        // Witness rounds are dispatch seq numbers: a permutation of 0..n.
        let mut rounds: Vec<u64> = records.iter().map(|r| r.round).collect();
        rounds.sort_unstable();
        assert_eq!(rounds, (0..t.dispatches as u64).collect::<Vec<_>>());
    }

    #[test]
    fn open_loop_without_arrivals_ends_immediately() {
        let d = small_dataset();
        let priors = flat_priors(&d);
        let cfg = SimConfig::new(8.0);
        let mut engine = ExecEngine::new(
            &d,
            &priors,
            SchedulerKind::RoundRobin,
            &cfg,
            Fleet::uniform(2),
            7,
            RecorderHandle::noop(),
        );
        engine.set_open_loop(true);
        assert!(!engine.tick(), "no arrivals means nothing to do");
        let trace = engine.finish();
        assert_eq!(trace.dispatches, 0);
        assert_eq!(trace.makespan, 0.0);
    }

    #[test]
    fn open_loop_clock_jumps_to_arrivals_and_serves_them() {
        use easeml_obs::InMemoryRecorder;
        use std::sync::Arc;
        let d = small_dataset();
        let priors = flat_priors(&d);
        let cfg = SimConfig::new(100.0);
        let rec = Arc::new(InMemoryRecorder::new());
        let mut engine = ExecEngine::new(
            &d,
            &priors,
            SchedulerKind::RoundRobin,
            &cfg,
            Fleet::uniform(1),
            7,
            RecorderHandle::new(rec.clone()),
        );
        engine.set_open_loop(true);
        engine.push_arrival(0, 3.0);
        engine.push_arrival(1, 3.5);
        let trace = engine.run();
        // Two jobs arrived, the budget is ample: exactly two dispatches,
        // and the first cannot predate the first arrival.
        assert_eq!(trace.dispatches, 2);
        assert!(trace.makespan >= 3.5, "makespan {}", trace.makespan);
        let dispatch_times: Vec<f64> = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::RunDispatched { at, .. } => Some(*at),
                _ => None,
            })
            .collect();
        assert_eq!(dispatch_times.len(), 2);
        assert!(dispatch_times[0] >= 3.0, "device must idle until 3.0");
        // JobArrived events carry the *arrival* times.
        let arrival_times: Vec<f64> = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::JobArrived { at, .. } => Some(*at),
                _ => None,
            })
            .collect();
        assert_eq!(arrival_times, vec![3.0, 3.5]);
    }

    #[test]
    fn arrivals_must_be_pushed_in_time_order() {
        let d = small_dataset();
        let priors = flat_priors(&d);
        let cfg = SimConfig::new(8.0);
        let mut engine = ExecEngine::new(
            &d,
            &priors,
            SchedulerKind::RoundRobin,
            &cfg,
            Fleet::uniform(1),
            7,
            RecorderHandle::noop(),
        );
        engine.push_arrival(0, 2.0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.push_arrival(1, 1.0);
        }));
        assert!(result.is_err(), "out-of-order arrival must panic");
    }

    #[test]
    fn retiring_every_tenant_drains_and_stops() {
        use easeml_obs::InMemoryRecorder;
        use std::sync::Arc;
        let d = small_dataset();
        let priors = flat_priors(&d);
        let cfg = SimConfig::new(50.0);
        let rec = Arc::new(InMemoryRecorder::new());
        let mut engine = ExecEngine::new(
            &d,
            &priors,
            SchedulerKind::RoundRobin,
            &cfg,
            Fleet::uniform(2),
            7,
            RecorderHandle::new(rec.clone()),
        );
        for _ in 0..4 {
            assert!(engine.tick());
        }
        for user in 0..d.num_users() {
            engine.retire_tenant(user);
            engine.retire_tenant(user); // idempotent
        }
        assert!(engine.is_tenant_retired(0));
        let trace = engine.run();
        // The budget is far from committed, yet the run ends: retired
        // tenants are not dispatchable and in-flight runs drained.
        assert!(trace.total_charged < cfg.budget);
        let retirements = rec
            .events()
            .iter()
            .filter(|e| matches!(e, Event::TenantRetired { .. }))
            .count();
        assert_eq!(retirements, d.num_users(), "one event per retirement");
        // No dispatch ever follows a tenant's retirement.
        let mut retired_seen = vec![false; d.num_users()];
        for event in rec.events().iter() {
            match event {
                Event::TenantRetired { user, .. } => retired_seen[*user] = true,
                Event::RunDispatched { user, .. } => {
                    assert!(!retired_seen[*user], "dispatch after retirement of {user}");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn rejoined_tenant_becomes_dispatchable_again() {
        let d = small_dataset();
        let priors = flat_priors(&d);
        let cfg = SimConfig::new(6.0);
        let mut engine = ExecEngine::new(
            &d,
            &priors,
            SchedulerKind::RoundRobin,
            &cfg,
            Fleet::uniform(1),
            7,
            RecorderHandle::noop(),
        );
        engine.retire_tenant(2);
        assert!(engine.is_tenant_retired(2));
        engine.rejoin_tenant(2);
        assert!(!engine.is_tenant_retired(2));
        let trace = engine.run();
        assert!(
            trace.sim.events.iter().any(|e| e.user == 2),
            "a rejoined tenant must be served"
        );
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn heuristic_kinds_are_rejected() {
        let d = easeml_data::deeplearning::generate(1).select_users(&[0, 1]);
        let priors = flat_priors(&d);
        let cfg = SimConfig::new(4.0);
        let _ = simulate_multi_device(&d, &priors, SchedulerKind::MostCited, &cfg, 2, 7);
    }
}
