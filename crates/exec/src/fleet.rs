//! The device fleet: heterogeneous simulated accelerators with per-device
//! speed factors, job slots, and exact busy/idle accounting.
//!
//! Accounting is integral: every device accrues `in_use · Δt` busy
//! slot-time and `(slots − in_use) · Δt` idle slot-time at each of its own
//! transitions, so after a final sweep to the makespan the conservation law
//! `Σ busy + Σ idle == capacity × makespan` holds exactly (up to float
//! summation), for any mix of speeds and slot counts.

/// Static description of one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpec {
    /// Relative throughput: a run of cost `c` occupies the device for
    /// `c / speed` simulated time units. `1.0` matches the serial
    /// [`Cluster`](easeml::cluster::Cluster) exactly.
    pub speed: f64,
    /// Concurrent job slots (≥ 1). A multi-GPU node is a device with
    /// several slots at one speed.
    pub slots: usize,
}

impl DeviceSpec {
    /// A unit-speed, single-slot device — the serial cluster's device.
    pub fn unit() -> Self {
        DeviceSpec {
            speed: 1.0,
            slots: 1,
        }
    }

    /// A single-slot device with the given speed factor.
    ///
    /// # Panics
    ///
    /// Panics unless `speed` is finite and strictly positive.
    pub fn with_speed(speed: f64) -> Self {
        assert!(
            speed.is_finite() && speed > 0.0,
            "device speed must be finite and positive"
        );
        DeviceSpec { speed, slots: 1 }
    }
}

/// Runtime state of one device.
#[derive(Debug, Clone)]
pub(crate) struct Device {
    pub(crate) spec: DeviceSpec,
    /// Occupied slots.
    pub(crate) in_use: usize,
    /// Accrued busy slot-time.
    pub(crate) busy: f64,
    /// Accrued idle slot-time.
    pub(crate) idle: f64,
    /// Simulated time of the last accounting update.
    pub(crate) last_t: f64,
    /// When the device last became fully idle (all slots free).
    pub(crate) idle_since: f64,
}

impl Device {
    fn new(spec: DeviceSpec) -> Self {
        Device {
            spec,
            in_use: 0,
            busy: 0.0,
            idle: 0.0,
            last_t: 0.0,
            idle_since: 0.0,
        }
    }

    /// Accrues busy/idle slot-time up to `t` (no-op when time stands still).
    fn advance(&mut self, t: f64) {
        let dt = t - self.last_t;
        debug_assert!(dt >= -1e-12, "device clock ran backwards: {dt}");
        if dt > 0.0 {
            self.busy += self.in_use as f64 * dt;
            self.idle += (self.spec.slots - self.in_use) as f64 * dt;
            self.last_t = t;
        }
    }
}

/// The fleet of devices the dispatcher places runs on.
///
/// # Examples
///
/// ```
/// use easeml_exec::{DeviceSpec, Fleet};
///
/// let mut fleet = Fleet::new(vec![DeviceSpec::unit(), DeviceSpec::with_speed(2.0)]);
/// // The faster device wins placement.
/// assert_eq!(fleet.best_free(), Some(1));
/// fleet.occupy(1, 0.0);
/// assert_eq!(fleet.best_free(), Some(0));
/// ```
#[derive(Debug, Clone)]
pub struct Fleet {
    pub(crate) devices: Vec<Device>,
}

impl Fleet {
    /// Builds a fleet from explicit specs.
    ///
    /// # Panics
    ///
    /// Panics on an empty fleet, a non-positive/non-finite speed, or a
    /// zero-slot device.
    pub fn new(specs: Vec<DeviceSpec>) -> Self {
        assert!(!specs.is_empty(), "a fleet needs at least one device");
        for spec in &specs {
            assert!(
                spec.speed.is_finite() && spec.speed > 0.0,
                "device speed must be finite and positive"
            );
            assert!(spec.slots > 0, "a device needs at least one slot");
        }
        Fleet {
            devices: specs.into_iter().map(Device::new).collect(),
        }
    }

    /// `d` identical unit-speed, single-slot devices.
    ///
    /// # Panics
    ///
    /// Panics when `d` is zero.
    pub fn uniform(d: usize) -> Self {
        Fleet::new(vec![DeviceSpec::unit(); d])
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the fleet is empty (never true for a constructed fleet).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Total job slots across all devices — the capacity in the
    /// conservation law `Σ busy + Σ idle == capacity × makespan`.
    pub fn capacity(&self) -> usize {
        self.devices.iter().map(|d| d.spec.slots).sum()
    }

    /// The specs the fleet was built from.
    pub fn specs(&self) -> Vec<DeviceSpec> {
        self.devices.iter().map(|d| d.spec).collect()
    }

    /// Speed factor of device `d`.
    pub fn speed(&self, d: usize) -> f64 {
        self.devices[d].spec.speed
    }

    /// Occupied slots of device `d`.
    pub fn in_use(&self, d: usize) -> usize {
        self.devices[d].in_use
    }

    /// The device a new run should go to: among devices with a free slot,
    /// the fastest one, ties toward the lower index. `None` when the fleet
    /// is saturated.
    pub fn best_free(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, dev) in self.devices.iter().enumerate() {
            if dev.in_use >= dev.spec.slots {
                continue;
            }
            match best {
                Some(b) if self.devices[b].spec.speed >= dev.spec.speed => {}
                _ => best = Some(i),
            }
        }
        best
    }

    /// Takes one slot of device `d` at time `now`, returning the length of
    /// the fully-idle gap that just ended (`None` when the device was
    /// already partly busy or the gap is zero) — the queueing-delay sample
    /// behind [`Event::DeviceIdle`](easeml_obs::Event::DeviceIdle).
    ///
    /// # Panics
    ///
    /// Panics when the device has no free slot.
    pub fn occupy(&mut self, d: usize, now: f64) -> Option<f64> {
        let dev = &mut self.devices[d];
        assert!(dev.in_use < dev.spec.slots, "device {d} has no free slot");
        dev.advance(now);
        let gap = if dev.in_use == 0 && now > dev.idle_since {
            Some(now - dev.idle_since)
        } else {
            None
        };
        dev.in_use += 1;
        gap
    }

    /// Releases one slot of device `d` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics when the device has no occupied slot.
    pub fn release(&mut self, d: usize, now: f64) {
        let dev = &mut self.devices[d];
        assert!(dev.in_use > 0, "device {d} has no run to release");
        dev.advance(now);
        dev.in_use -= 1;
        if dev.in_use == 0 {
            dev.idle_since = now;
        }
    }

    /// Sweeps every device's accounting forward to `t` (the makespan).
    pub fn advance_all(&mut self, t: f64) {
        for dev in &mut self.devices {
            dev.advance(t);
        }
    }

    /// Per-device accrued busy slot-time.
    pub fn busy(&self) -> Vec<f64> {
        self.devices.iter().map(|d| d.busy).collect()
    }

    /// Per-device accrued idle slot-time.
    pub fn idle(&self) -> Vec<f64> {
        self.devices.iter().map(|d| d.idle).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_free_prefers_speed_then_low_index() {
        let mut fleet = Fleet::new(vec![
            DeviceSpec::with_speed(1.0),
            DeviceSpec::with_speed(2.0),
            DeviceSpec::with_speed(2.0),
        ]);
        assert_eq!(fleet.best_free(), Some(1), "fastest wins, low index ties");
        fleet.occupy(1, 0.0);
        assert_eq!(fleet.best_free(), Some(2));
        fleet.occupy(2, 0.0);
        assert_eq!(fleet.best_free(), Some(0));
        fleet.occupy(0, 0.0);
        assert_eq!(fleet.best_free(), None, "saturated");
    }

    #[test]
    fn accounting_conserves_slot_time() {
        let mut fleet = Fleet::new(vec![
            DeviceSpec::unit(),
            DeviceSpec {
                speed: 2.0,
                slots: 2,
            },
        ]);
        fleet.occupy(1, 0.0);
        fleet.occupy(1, 0.5);
        fleet.release(1, 2.0);
        fleet.occupy(0, 2.0);
        fleet.release(0, 5.0);
        fleet.release(1, 4.0);
        fleet.advance_all(5.0);
        let busy: f64 = fleet.busy().iter().sum();
        let idle: f64 = fleet.idle().iter().sum();
        let capacity = fleet.capacity() as f64;
        assert!(
            (busy + idle - capacity * 5.0).abs() < 1e-12,
            "{busy} {idle}"
        );
        // Device 1: slot-busy = (0.5 − 0) · 1 + (2 − 0.5) · 2 + (4 − 2) · 1.
        assert!((fleet.busy()[1] - (0.5 + 3.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn idle_gap_is_reported_when_a_cold_device_wakes() {
        let mut fleet = Fleet::uniform(1);
        assert_eq!(fleet.occupy(0, 0.0), None, "no gap at t = 0");
        fleet.release(0, 2.0);
        let gap = fleet.occupy(0, 3.5).expect("idle gap");
        assert!((gap - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no free slot")]
    fn over_occupying_panics() {
        let mut fleet = Fleet::uniform(1);
        fleet.occupy(0, 0.0);
        fleet.occupy(0, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_fleet_panics() {
        let _ = Fleet::new(Vec::new());
    }
}
