//! # easeml-exec — multi-device discrete-event execution with delayed feedback
//!
//! The paper's ease.ml treats the whole GPU pool as one device (§4.5):
//! training runs execute strictly one at a time. This crate lifts that
//! restriction with a deterministic discrete-event execution engine:
//!
//! * a [`Fleet`] of heterogeneous devices (per-device speed factors and job
//!   slots) with exact integral busy/idle accounting — the conservation law
//!   `Σ busy + Σ idle == capacity × makespan` holds for every run;
//! * an [`EventQueue`] keyed on simulated completion time, with dispatch
//!   sequence numbers breaking ties deterministically;
//! * an [`ExecEngine`] dispatcher that keeps the fleet saturated by
//!   selecting arms through [`easeml_bandit::GpBucb`] *hallucinated*
//!   updates while earlier runs are still in flight, and resolves the true
//!   rewards into the posterior in completion order — the delayed-feedback
//!   regime of Desautels et al. (JMLR 2014) the paper's §6 points to;
//! * fault-layer integration: a crashed in-flight run frees its device at
//!   censoring time and charges only its partial cost;
//! * [`ExecCheckpoint`] — crash-safe JSON checkpoint/restore of the full
//!   in-flight state, bit-identical for deterministic schedulers.
//!
//! With one unit-speed single-slot device the engine reproduces the serial
//! simulator's trajectory bit for bit (see `tests/invariants.rs`), so every
//! multi-device result is anchored to the validated single-device model.
//!
//! ```
//! use easeml::prelude::*;
//! use easeml_exec::simulate_multi_device;
//! use easeml_gp::ArmPrior;
//!
//! let dataset = easeml_data::SynConfig {
//!     num_users: 4,
//!     num_models: 3,
//!     ..easeml_data::SynConfig::paper(0.5, 0.5)
//! }
//! .generate(1);
//! let priors: Vec<ArmPrior> =
//!     (0..4).map(|_| ArmPrior::independent(3, 0.05)).collect();
//! let cfg = SimConfig::new(6.0);
//! let serial = simulate_multi_device(&dataset, &priors, SchedulerKind::RoundRobin, &cfg, 1, 7);
//! let fleet4 = simulate_multi_device(&dataset, &priors, SchedulerKind::RoundRobin, &cfg, 4, 7);
//! assert!(fleet4.makespan < serial.makespan, "parallelism shrinks the makespan");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod checkpoint;
mod engine;
mod fleet;
mod queue;
mod recovery;

pub use checkpoint::{ExecCheckpoint, EXEC_CHECKPOINT_VERSION};
pub use engine::{
    simulate_fleet_with_recorder, simulate_multi_device, simulate_multi_device_with_recorder,
    ExecEngine, ExecTrace,
};
pub use fleet::{DeviceSpec, Fleet};
pub use queue::{EventQueue, QueuedEvent};
pub use recovery::recover_engine;
