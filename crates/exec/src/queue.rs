//! The discrete-event queue: completion events ordered by simulated time,
//! with a monotone sequence number breaking ties deterministically.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled completion: the run dispatched as sequence number `seq`
/// finishes at simulated time `time`.
#[derive(Debug, Clone, Copy)]
pub struct QueuedEvent {
    /// Simulated finish time.
    pub time: f64,
    /// Dispatch sequence number — the deterministic tie-break: two runs
    /// finishing at the same instant resolve in dispatch order.
    pub seq: u64,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time.total_cmp(&other.time) == Ordering::Equal && self.seq == other.seq
    }
}

impl Eq for QueuedEvent {}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedEvent {
    /// Reversed comparison so `BinaryHeap` (a max-heap) pops the earliest
    /// time first, and the lowest sequence number on ties.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-queue of [`QueuedEvent`]s.
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    heap: BinaryHeap<QueuedEvent>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules a completion.
    pub fn push(&mut self, time: f64, seq: u64) {
        self.heap.push(QueuedEvent { time, seq });
    }

    /// Pops the earliest completion (lowest time, then lowest seq).
    pub fn pop(&mut self) -> Option<QueuedEvent> {
        self.heap.pop()
    }

    /// The earliest scheduled completion without removing it — the
    /// open-loop engine compares it against the next job arrival to decide
    /// whether the clock advances to an arrival or a completion.
    pub fn peek(&self) -> Option<QueuedEvent> {
        self.heap.peek().copied()
    }

    /// Number of scheduled completions.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_seq_tie_break() {
        let mut q = EventQueue::new();
        q.push(3.0, 0);
        q.push(1.0, 3);
        q.push(1.0, 1);
        q.push(2.0, 2);
        assert_eq!(q.peek().map(|e| (e.time, e.seq)), Some((1.0, 1)));
        let order: Vec<(f64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.time, e.seq))
            .collect();
        assert_eq!(order, vec![(1.0, 1), (1.0, 3), (2.0, 2), (3.0, 0)]);
        assert!(q.is_empty());
    }

    #[test]
    fn negative_zero_and_ordinary_zero_coexist() {
        // total_cmp orders -0.0 before 0.0; the queue must not panic or
        // lose events on such inputs.
        let mut q = EventQueue::new();
        q.push(0.0, 0);
        q.push(-0.0, 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.pop().unwrap().seq, 0);
    }
}
