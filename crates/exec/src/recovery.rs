//! Verify-replay recovery for the execution engine.
//!
//! The exec side needs no attempt substitution: every in-flight run's
//! outcome is pre-resolved inside the checkpoint, and the fault stream is
//! keyed by `(user, arm, attempt)` with the attempt counters checkpointed
//! — so a restored engine re-derives the post-checkpoint trajectory on its
//! own. What the WAL adds is *verification*: every logged
//! [`DurableEvent::ExecCompletion`] carries the rolling witness digest at
//! that completion, and [`recover_engine`] ticks the restored engine
//! forward asserting digest equality at each one. A committed completion
//! the engine cannot reproduce bit-exactly is an error, never a silent
//! divergence; dispatch records after the last completion (runs in flight
//! at the crash) are counted and truncated.

use crate::checkpoint::ExecCheckpoint;
use crate::engine::ExecEngine;
use easeml::durability::RecoveryReport;
use easeml_data::Dataset;
use easeml_gp::ArmPrior;
use easeml_wal::{read_log, truncate_log, DurableEvent};
use std::path::Path;
use std::time::Instant;

/// One logged completion with its physical position in the log.
struct LoggedCompletion {
    seq: u64,
    censored: bool,
    digest: u64,
    segment: u64,
    end_offset: u64,
}

/// Rebuilds an engine from `ck` and verifies it against the WAL in
/// `wal_dir`: every completion logged after the checkpoint must be
/// reproduced with an identical rolling digest. Returns the caught-up
/// engine and a [`RecoveryReport`]; the log's uncommitted suffix (dispatch
/// records of runs that never completed) is physically truncated.
///
/// The returned engine has no WAL attached; call
/// [`ExecEngine::set_durability`] to resume logging.
///
/// # Errors
///
/// Unreadable WAL, serial-simulator records in the log, a checkpoint
/// digest that never appears in the completion chain, or any digest /
/// sequence divergence during replay.
pub fn recover_engine<'a>(
    dataset: &'a Dataset,
    priors: &[ArmPrior],
    ck: &ExecCheckpoint,
    wal_dir: &Path,
) -> Result<(ExecEngine<'a>, RecoveryReport), String> {
    let start = Instant::now();
    let mut engine = ExecEngine::restore(dataset, priors, ck)?;
    let d0 = engine.wlog.digest_value();
    let checkpoint_rounds = engine.wlog.rounds();
    let log = read_log(wal_dir).map_err(|e| format!("reading WAL {}: {e}", wal_dir.display()))?;
    let mut completions: Vec<LoggedCompletion> = Vec::new();
    let mut cut: Option<(u64, u64)> = None;
    // Completions seen before the last mark whose digest matches the
    // checkpoint — the suffix anchor when compaction already removed the
    // pre-checkpoint completions from the log.
    let mut mark_anchor: Option<usize> = None;
    for rec in &log.records {
        let event = DurableEvent::decode(&rec.payload)
            .map_err(|e| format!("undecodable WAL record (CRC passed): {e}"))?;
        match event {
            DurableEvent::ExecCompletion {
                seq,
                censored,
                digest,
                ..
            } => completions.push(LoggedCompletion {
                seq,
                censored,
                digest,
                segment: rec.segment,
                end_offset: rec.end_offset,
            }),
            // Dispatches are uncommitted intent; marks are barriers that
            // must survive truncation. Tenant lifecycle records are audit
            // entries here: the workload driver that issued them re-applies
            // join/retire from its own replay position after a restore, so
            // verify-replay neither applies nor rejects them.
            DurableEvent::ExecDispatch { .. }
            | DurableEvent::TenantJoined { .. }
            | DurableEvent::TenantRetired { .. } => {}
            DurableEvent::CheckpointMark { digest, .. } => {
                cut = Some((rec.segment, rec.end_offset));
                if digest == d0 {
                    mark_anchor = Some(completions.len());
                }
            }
            _ => return Err("serial-simulator records in an exec-engine WAL".into()),
        }
    }
    // The digest at the checkpoint locates the replay suffix: completions
    // after its last occurrence are post-checkpoint. When the checkpoint's
    // own barrier compacted the pre-checkpoint completions away, the
    // surviving mark record carries the digest instead. A checkpoint taken
    // before any completion anchors at the start.
    let begin = if checkpoint_rounds == 0 || completions.is_empty() {
        // Nothing to skip: either the checkpoint predates every logged
        // completion, or the crash hit the checkpoint barrier itself —
        // compaction already emptied the log and the mark is torn, so the
        // checkpoint document alone carries the state.
        0
    } else {
        match completions.iter().rposition(|c| c.digest == d0) {
            Some(i) => i + 1,
            None => match mark_anchor {
                Some(anchor) => anchor,
                None => {
                    return Err(format!(
                        "checkpoint digest {d0:016x} not found in the WAL completion chain \
                         ({} completions)",
                        completions.len()
                    ))
                }
            },
        }
    };
    for skipped in &completions[..begin] {
        let mark = Some((skipped.segment, skipped.end_offset));
        if mark > cut {
            cut = mark;
        }
    }
    let mut verified = 0u64;
    for logged in &completions[begin..] {
        if !engine.tick() {
            return Err(format!(
                "engine finished before reproducing logged completion seq {}",
                logged.seq
            ));
        }
        let digest = engine.wlog.digest_value();
        if digest != logged.digest {
            return Err(format!(
                "completion seq {}: replay digest {digest:016x} != logged {:016x}",
                logged.seq, logged.digest
            ));
        }
        verified += 1;
        let mark = Some((logged.segment, logged.end_offset));
        if mark > cut {
            cut = mark;
        }
        let _ = logged.censored;
    }
    let dropped = log
        .records
        .iter()
        .filter(|r| cut.is_none_or(|c| (r.segment, r.end_offset) > c))
        .count() as u64;
    truncate_log(wal_dir, cut).map_err(|e| format!("truncating WAL suffix: {e}"))?;
    let report = RecoveryReport {
        checkpoint_rounds,
        replayed_rounds: verified,
        skipped_records: begin as u64,
        dropped_records: dropped,
        torn_tail: log.torn.as_ref().map(|t| {
            format!(
                "{} in segment {} at offset {}",
                t.reason.name(),
                t.segment,
                t.offset
            )
        }),
        final_rounds: engine.wlog.rounds(),
        final_digest: engine.wlog.digest_hex(),
        replay_ns: start.elapsed().as_nanos() as u64,
    };
    Ok((engine, report))
}
