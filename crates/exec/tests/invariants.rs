//! Engine invariants that anchor the multi-device engine to the validated
//! serial simulator:
//!
//! 1. one unit-speed single-slot device reproduces the serial trajectory
//!    bit for bit (clean and faulty runs alike);
//! 2. slot-time is conserved: `Σ busy + Σ idle == capacity × makespan`;
//! 3. a mid-flight checkpoint, serialized through JSON and restored,
//!    finishes with the exact trace of the uninterrupted run;
//! 4. under chaos, crashed in-flight runs free their devices and every
//!    charged unit of cost is accounted exactly once.

use easeml::prelude::*;
use easeml_data::{Dataset, SynConfig};
use easeml_exec::{
    simulate_fleet_with_recorder, simulate_multi_device, DeviceSpec, ExecCheckpoint, ExecEngine,
    Fleet,
};
use easeml_gp::ArmPrior;
use easeml_obs::RecorderHandle;
use easeml_sched::PickRule;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset(users: usize, models: usize, seed: u64) -> Dataset {
    SynConfig {
        num_users: users,
        num_models: models,
        ..SynConfig::paper(0.5, 0.5)
    }
    .generate(seed)
}

fn priors(dataset: &Dataset) -> Vec<ArmPrior> {
    (0..dataset.num_users())
        .map(|_| ArmPrior::independent(dataset.num_models(), 0.05))
        .collect()
}

fn chaos(seed: u64) -> FaultConfig {
    FaultConfig::new(seed)
        .with_crash_rate(0.2)
        .with_timeout_rate(0.1)
        .with_invalid_rate(0.05)
}

#[test]
fn single_unit_device_reproduces_the_serial_trajectory() {
    let d = dataset(5, 4, 3);
    let p = priors(&d);
    let kinds = [
        SchedulerKind::RoundRobin,
        SchedulerKind::Fcfs,
        SchedulerKind::Hybrid,
        SchedulerKind::Greedy(PickRule::MaxUcbGap),
    ];
    for kind in kinds {
        for cost_aware in [false, true] {
            let mut cfg = SimConfig::new(10.0);
            cfg.cost_aware = cost_aware;
            let mut rng = StdRng::seed_from_u64(42);
            let serial = simulate(&d, &p, kind, &cfg, &mut rng);
            let exec = simulate_multi_device(&d, &p, kind, &cfg, 1, 42);
            assert_eq!(
                exec.sim,
                serial,
                "D=1 must be bit-identical to serial ({} cost_aware={cost_aware})",
                kind.name()
            );
            assert_eq!(exec.parallel_dispatches, 0, "one slot cannot overlap runs");
        }
    }
}

#[test]
fn single_unit_device_matches_serial_under_faults() {
    let d = dataset(4, 5, 9);
    let p = priors(&d);
    let mut cfg = SimConfig::new(12.0);
    cfg.fault = Some(chaos(77));
    for kind in [SchedulerKind::RoundRobin, SchedulerKind::Hybrid] {
        let mut rng = StdRng::seed_from_u64(5);
        let serial = simulate(&d, &p, kind, &cfg, &mut rng);
        let exec = simulate_multi_device(&d, &p, kind, &cfg, 1, 5);
        assert_eq!(
            exec.sim,
            serial,
            "censoring must not break D=1 equivalence ({})",
            kind.name()
        );
        assert!(exec.censored > 0, "chaos config should censor something");
    }
}

#[test]
fn slot_time_is_conserved_for_every_fleet_shape() {
    let d = dataset(6, 4, 11);
    let p = priors(&d);
    let fleets: Vec<Vec<DeviceSpec>> = vec![
        vec![DeviceSpec::unit(); 4],
        vec![
            DeviceSpec::with_speed(2.0),
            DeviceSpec::with_speed(1.0),
            DeviceSpec::with_speed(0.5),
        ],
        vec![
            DeviceSpec {
                speed: 1.5,
                slots: 3,
            },
            DeviceSpec {
                speed: 0.75,
                slots: 2,
            },
        ],
    ];
    for (i, specs) in fleets.into_iter().enumerate() {
        for faulty in [false, true] {
            let mut cfg = SimConfig::new(9.0);
            if faulty {
                cfg.fault = Some(chaos(100 + i as u64));
            }
            let trace = simulate_fleet_with_recorder(
                &d,
                &p,
                SchedulerKind::Hybrid,
                &cfg,
                specs.clone(),
                13,
                &RecorderHandle::noop(),
            );
            let busy: f64 = trace.device_busy.iter().sum();
            let idle: f64 = trace.device_idle.iter().sum();
            let expected = trace.capacity as f64 * trace.makespan;
            assert!(
                (busy + idle - expected).abs() <= 1e-9 * expected.max(1.0),
                "fleet {i} faulty={faulty}: busy {busy} + idle {idle} != {expected}"
            );
            assert!(busy > 0.0, "fleet {i}: something must have run");
        }
    }
}

#[test]
fn mid_flight_checkpoint_replays_bit_identically() {
    let d = dataset(5, 4, 21);
    let p = priors(&d);
    let mut cfg = SimConfig::new(10.0);
    cfg.fault = Some(chaos(55));
    for kind in [SchedulerKind::Hybrid, SchedulerKind::RoundRobin] {
        let specs = vec![
            DeviceSpec::with_speed(2.0),
            DeviceSpec::unit(),
            DeviceSpec::unit(),
        ];
        let reference = simulate_fleet_with_recorder(
            &d,
            &p,
            kind,
            &cfg,
            specs.clone(),
            31,
            &RecorderHandle::noop(),
        );
        let mut engine = ExecEngine::new(
            &d,
            &p,
            kind,
            &cfg,
            Fleet::new(specs),
            31,
            RecorderHandle::noop(),
        );
        for _ in 0..6 {
            assert!(engine.tick(), "budget must outlast six ticks");
        }
        assert!(
            engine.in_flight_len() > 0,
            "the checkpoint must capture in-flight runs"
        );
        let encoded = engine.checkpoint().to_json();
        let decoded = ExecCheckpoint::from_json(&encoded).expect("parse checkpoint");
        let restored = ExecEngine::restore(&d, &p, &decoded).expect("restore checkpoint");
        let trace = restored.run();
        assert_eq!(
            trace,
            reference,
            "restored run must match the uninterrupted run bit for bit ({})",
            kind.name()
        );
    }
}

#[test]
fn chaos_frees_devices_and_accounts_every_charge_once() {
    let d = dataset(6, 5, 33);
    let p = priors(&d);
    let mut cfg = SimConfig::new(14.0);
    cfg.fault = Some(
        FaultConfig::new(8)
            .with_crash_rate(0.35)
            .with_timeout_rate(0.15),
    );
    let trace = simulate_multi_device(&d, &p, SchedulerKind::Hybrid, &cfg, 4, 17);
    assert!(trace.censored > 0, "crash rate 0.35 must censor something");
    assert_eq!(
        trace.dispatches,
        trace.sim.rounds + trace.censored,
        "every dispatch either completes or is censored"
    );
    let per_user: f64 = trace.user_cost.iter().sum();
    assert!(
        (per_user - trace.total_charged).abs() <= 1e-9 * trace.total_charged.max(1.0),
        "per-user charges {per_user} must sum to the total {}",
        trace.total_charged
    );
    assert!(
        trace.total_charged >= trace.sim.budget,
        "the engine stops dispatching only once the budget is committed"
    );
    // A crashed run frees its device at censoring time: the conservation law
    // then closes over the whole fleet, which would fail if a slot stayed
    // occupied past its (partial-cost) completion event.
    let busy: f64 = trace.device_busy.iter().sum();
    let idle: f64 = trace.device_idle.iter().sum();
    let expected = trace.capacity as f64 * trace.makespan;
    assert!(
        (busy + idle - expected).abs() <= 1e-9 * expected.max(1.0),
        "slot-time must be conserved under chaos"
    );
    // Clean traces on the same dataset differ — the faults really bit.
    let clean_cfg = SimConfig::new(14.0);
    let clean = simulate_multi_device(&d, &p, SchedulerKind::Hybrid, &clean_cfg, 4, 17);
    assert_eq!(clean.censored, 0);
    assert_ne!(clean.sim.events, trace.sim.events);
}

/// Enough time-zero arrivals per user that no backlog can empty before the
/// budget is committed.
fn flood_arrivals(engine: &mut ExecEngine, d: &Dataset, budget: f64) {
    let min_cost = (0..d.num_users())
        .flat_map(|u| (0..d.num_models()).map(move |m| d.cost(u, m)))
        .fold(f64::INFINITY, f64::min);
    let enough = (budget / min_cost).ceil() as usize + 8;
    for user in 0..d.num_users() {
        for _ in 0..enough {
            engine.push_arrival(user, 0.0);
        }
    }
}

#[test]
fn always_backlogged_open_loop_is_bit_identical_to_closed_loop() {
    use easeml_obs::InMemoryRecorder;
    use std::sync::Arc;
    let d = dataset(5, 4, 3);
    let p = priors(&d);
    let cfg = SimConfig::new(9.0);
    for kind in [
        SchedulerKind::Hybrid,
        SchedulerKind::Greedy(PickRule::MaxUcbGap),
        SchedulerKind::RoundRobin,
    ] {
        let digests = |events: &[easeml_obs::Event]| -> Vec<String> {
            events
                .iter()
                .filter_map(|e| match e {
                    easeml_obs::Event::DecisionWitness { round, digest, .. } => {
                        Some(format!("{round}:{digest}"))
                    }
                    _ => None,
                })
                .collect()
        };
        let closed_rec = Arc::new(InMemoryRecorder::new());
        let closed = ExecEngine::new(
            &d,
            &p,
            kind,
            &cfg,
            Fleet::uniform(3),
            7,
            RecorderHandle::new(closed_rec.clone()),
        )
        .run();
        let open_rec = Arc::new(InMemoryRecorder::new());
        let mut engine = ExecEngine::new(
            &d,
            &p,
            kind,
            &cfg,
            Fleet::uniform(3),
            7,
            RecorderHandle::new(open_rec.clone()),
        );
        engine.set_open_loop(true);
        flood_arrivals(&mut engine, &d, cfg.budget);
        let open = engine.run();
        assert_eq!(
            open,
            closed,
            "always-backlogged open loop must equal the closed loop ({})",
            kind.name()
        );
        assert_eq!(
            digests(&open_rec.events()),
            digests(&closed_rec.events()),
            "witness digest chains must be identical ({})",
            kind.name()
        );
    }
}

#[test]
fn open_loop_checkpoint_resumes_mid_replay_with_churn() {
    let d = dataset(5, 4, 21);
    let p = priors(&d);
    let mut cfg = SimConfig::new(10.0);
    cfg.fault = Some(chaos(55));
    // The external action script both runs share: staggered arrivals pushed
    // up-front, then a retirement after four ticks.
    let build = || {
        let mut engine = ExecEngine::new(
            &d,
            &p,
            SchedulerKind::Hybrid,
            &cfg,
            Fleet::uniform(2),
            31,
            RecorderHandle::noop(),
        );
        engine.set_open_loop(true);
        for i in 0..40u32 {
            for user in 0..d.num_users() {
                engine.push_arrival(user, 0.2 * f64::from(i) + 0.03 * user as f64);
            }
        }
        for _ in 0..4 {
            assert!(engine.tick());
        }
        engine.retire_tenant(1);
        engine
    };
    let reference = build().run();
    let mut engine = build();
    for _ in 0..3 {
        assert!(engine.tick());
    }
    let ck = engine.checkpoint();
    assert!(ck.open_loop, "open-loop flag must checkpoint");
    assert!(ck.retired[1], "retirement must checkpoint");
    assert!(
        !ck.arrivals.is_empty(),
        "pending arrivals must checkpoint mid-replay"
    );
    let decoded = ExecCheckpoint::from_json(&ck.to_json()).expect("parse checkpoint");
    let restored = ExecEngine::restore(&d, &p, &decoded).expect("restore checkpoint");
    let trace = restored.run();
    assert_eq!(
        trace, reference,
        "mid-replay restore must resume the workload bit-exactly"
    );
}

#[test]
fn makespan_shrinks_as_devices_are_added() {
    let d = dataset(6, 4, 41);
    let p = priors(&d);
    let cfg = SimConfig::new(12.0);
    let mut last = f64::INFINITY;
    for devices in [1usize, 2, 4] {
        let trace = simulate_multi_device(&d, &p, SchedulerKind::Hybrid, &cfg, devices, 23);
        assert!(
            trace.makespan < last,
            "makespan must strictly shrink: {devices} devices gave {} (previous {last})",
            trace.makespan
        );
        last = trace.makespan;
    }
}
