//! The intrinsic coregionalization model (ICM): a multi-task GP over
//! (user, model) pairs.
//!
//! The paper's §6 ("Multi-task Gaussian Process") names the intrinsic model
//! of coregionalization — a kernel decomposed as a Kronecker product — as
//! the path to integrating *user* correlations into ease.ml, and lists it
//! as future work. This module implements it: the joint prior covariance of
//! the pair `(user u, model m)` with `(u′, m′)` is
//!
//! ```text
//! K[(u,m), (u′,m′)] = K_users[u, u′] · K_models[m, m′]
//! ```
//!
//! so an observation of model m on user u also informs the posterior of
//! *other users'* arms — exactly the transfer the single-task estimator in
//! the shipped scheduler forgoes.

use crate::posterior::GpPosterior;
use crate::prior::ArmPrior;
use easeml_linalg::Matrix;

/// Kronecker product `a ⊗ b`.
///
/// The result has shape `(a.rows·b.rows) × (a.cols·b.cols)` with
/// `out[(i·p + k, j·q + l)] = a[(i, j)] · b[(k, l)]` for `b` of shape p×q.
pub fn kronecker(a: &Matrix, b: &Matrix) -> Matrix {
    let (ar, ac) = a.shape();
    let (br, bc) = b.shape();
    Matrix::from_fn(ar * br, ac * bc, |i, j| {
        a[(i / br, j / bc)] * b[(i % br, j % bc)]
    })
}

/// A multi-task GP over all (user, model) pairs of a workload.
///
/// Arms are flattened as `user · num_models + model`. Observations for any
/// user update the posterior of every user through the user kernel.
#[derive(Debug, Clone)]
pub struct MultiTaskGp {
    gp: GpPosterior,
    num_users: usize,
    num_models: usize,
}

impl MultiTaskGp {
    /// Builds the joint prior `K_users ⊗ K_models` and wraps a posterior
    /// around it.
    ///
    /// # Panics
    ///
    /// Panics if either Gram matrix is empty or not square, or if
    /// `noise_var <= 0`.
    pub fn new(user_gram: &Matrix, model_gram: &Matrix, noise_var: f64) -> Self {
        assert!(
            user_gram.is_square() && model_gram.is_square(),
            "Gram matrices must be square"
        );
        let joint = kronecker(user_gram, model_gram);
        let prior = ArmPrior::from_gram(joint);
        MultiTaskGp {
            gp: GpPosterior::new(prior, noise_var),
            num_users: user_gram.rows(),
            num_models: model_gram.rows(),
        }
    }

    /// Number of users n.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of models K.
    #[inline]
    pub fn num_models(&self) -> usize {
        self.num_models
    }

    fn index(&self, user: usize, model: usize) -> usize {
        assert!(user < self.num_users, "user index out of range");
        assert!(model < self.num_models, "model index out of range");
        user * self.num_models + model
    }

    /// Records that `model` trained on `user`'s task reached `reward`.
    pub fn observe(&mut self, user: usize, model: usize, reward: f64) {
        let idx = self.index(user, model);
        self.gp.observe(idx, reward);
    }

    /// Posterior mean of `(user, model)`.
    pub fn mean(&self, user: usize, model: usize) -> f64 {
        self.gp.mean(self.index(user, model))
    }

    /// Posterior variance of `(user, model)`.
    pub fn var(&self, user: usize, model: usize) -> f64 {
        self.gp.var(self.index(user, model))
    }

    /// The underlying flattened posterior.
    pub fn posterior(&self) -> &GpPosterior {
        &self.gp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kronecker_shape_and_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.0, 5.0], &[6.0, 7.0]]);
        let k = kronecker(&a, &b);
        assert_eq!(k.shape(), (4, 4));
        assert_eq!(k[(0, 1)], 5.0); // a00 * b01
        assert_eq!(k[(2, 0)], 3.0 * 0.0);
        assert_eq!(k[(3, 3)], 4.0 * 7.0);
        assert_eq!(k[(1, 2)], 2.0 * 6.0);
    }

    #[test]
    fn kronecker_of_identities_is_identity() {
        let k = kronecker(&Matrix::identity(2), &Matrix::identity(3));
        assert!(k.approx_eq(&Matrix::identity(6), 0.0));
    }

    fn correlated(n: usize, rho: f64) -> Matrix {
        Matrix::from_fn(n, n, |i, j| if i == j { 1.0 } else { rho })
    }

    #[test]
    fn cross_user_transfer_through_the_user_kernel() {
        // Two strongly correlated users, two independent models.
        let mut mt = MultiTaskGp::new(&correlated(2, 0.9), &Matrix::identity(2), 0.01);
        assert_eq!(mt.num_users(), 2);
        assert_eq!(mt.num_models(), 2);
        mt.observe(0, 0, 0.8);
        // User 1's belief about model 0 moved too…
        assert!(mt.mean(1, 0) > 0.4, "transfer: {}", mt.mean(1, 0));
        assert!(mt.var(1, 0) < 1.0);
        // …but not about model 1 (independent models).
        assert!(mt.mean(1, 1).abs() < 1e-9);
    }

    #[test]
    fn no_transfer_with_independent_users() {
        let mut mt = MultiTaskGp::new(&Matrix::identity(2), &correlated(2, 0.9), 0.01);
        mt.observe(0, 0, 0.8);
        // Model correlation transfers within the user…
        assert!(mt.mean(0, 1) > 0.4);
        // …but nothing crosses to user 1.
        assert!(mt.mean(1, 0).abs() < 1e-9);
        assert!(mt.mean(1, 1).abs() < 1e-9);
    }

    #[test]
    fn joint_transfer_diagonal_case() {
        // Both kernels correlated: observing (0,0) lifts (1,1) by the
        // product of the correlations.
        let mut mt = MultiTaskGp::new(&correlated(2, 0.8), &correlated(2, 0.5), 0.001);
        mt.observe(0, 0, 1.0);
        let direct = mt.mean(0, 0);
        let cross = mt.mean(1, 1);
        assert!(direct > 0.9);
        assert!((cross / direct - 0.4).abs() < 0.05, "expected ~0.8*0.5");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_user_panics() {
        let mut mt = MultiTaskGp::new(&Matrix::identity(2), &Matrix::identity(2), 0.01);
        mt.observe(2, 0, 0.5);
    }
}
