//! Covariance kernels over model feature vectors.
//!
//! A kernel maps two feature vectors to a covariance. The paper uses standard
//! kernels (linear, squared-exponential, Matérn — §3.1 and the discussion of
//! Theorem 5 of Srinivas et al.) evaluated on the Appendix-A "quality
//! vectors": per-model vectors of observed accuracies on the training users.
//! [`Kernel::gram`] assembles the K×K prior covariance over all arms.

use easeml_linalg::{vec_ops, Matrix};

/// A positive (semi-)definite covariance function over feature vectors.
pub trait Kernel: Send + Sync + std::fmt::Debug {
    /// Evaluates `k(x, y)`.
    fn eval(&self, x: &[f64], y: &[f64]) -> f64;

    /// Assembles the Gram matrix over a set of feature vectors, exploiting
    /// symmetry (each off-diagonal pair is evaluated once).
    fn gram(&self, xs: &[Vec<f64>]) -> Matrix {
        let n = xs.len();
        let mut g = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = self.eval(&xs[i], &xs[j]);
                g[(i, j)] = v;
                g[(j, i)] = v;
            }
        }
        g
    }
}

/// Linear kernel `k(x, y) = xᵀy + bias`.
///
/// This is the kernel for which the paper's Theorem 5 citation gives the
/// `I(T) = O(log T)` information-gain bound used in Theorems 1–3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearKernel {
    /// Constant added to every inner product (a "homogeneity" offset).
    pub bias: f64,
}

impl LinearKernel {
    /// A bias-free linear kernel.
    pub fn new() -> Self {
        LinearKernel { bias: 0.0 }
    }
}

impl Default for LinearKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel for LinearKernel {
    fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        vec_ops::dot(x, y) + self.bias
    }
}

/// Squared-exponential (RBF) kernel
/// `k(x, y) = exp(−‖x − y‖² / (2 ℓ²))`.
///
/// This is also the covariance the paper's synthetic generator uses between
/// models, with hidden scalar features f(j) and bandwidth σ_M (Appendix B.1.2
/// uses the convention `exp(−(f_i − f_j)²/σ²)`, i.e. no factor 2; use
/// [`RbfKernel::paper_convention`] for that form).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RbfKernel {
    /// Length scale ℓ.
    pub length_scale: f64,
    /// When true, uses `exp(−d²/ℓ²)` (the paper's Appendix-B convention)
    /// instead of the standard `exp(−d²/(2ℓ²))`.
    pub paper_convention: bool,
}

impl RbfKernel {
    /// Standard-convention RBF kernel with the given length scale.
    ///
    /// # Panics
    ///
    /// Panics if `length_scale` is not strictly positive.
    pub fn new(length_scale: f64) -> Self {
        assert!(length_scale > 0.0, "RBF length scale must be positive");
        RbfKernel {
            length_scale,
            paper_convention: false,
        }
    }

    /// Appendix-B convention: `k = exp(−‖x−y‖²/σ_M²)`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_m` is not strictly positive.
    pub fn paper_convention(sigma_m: f64) -> Self {
        assert!(sigma_m > 0.0, "RBF bandwidth must be positive");
        RbfKernel {
            length_scale: sigma_m,
            paper_convention: true,
        }
    }
}

impl Kernel for RbfKernel {
    fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        let d2 = vec_ops::dist2_sq(x, y);
        let denom = if self.paper_convention {
            self.length_scale * self.length_scale
        } else {
            2.0 * self.length_scale * self.length_scale
        };
        (-d2 / denom).exp()
    }
}

/// Matérn-3/2 kernel `(1 + √3 d/ℓ) exp(−√3 d/ℓ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Matern32Kernel {
    /// Length scale ℓ.
    pub length_scale: f64,
}

impl Matern32Kernel {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if `length_scale` is not strictly positive.
    pub fn new(length_scale: f64) -> Self {
        assert!(length_scale > 0.0, "Matérn length scale must be positive");
        Matern32Kernel { length_scale }
    }
}

impl Kernel for Matern32Kernel {
    fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        let d = vec_ops::dist2_sq(x, y).sqrt();
        let z = 3f64.sqrt() * d / self.length_scale;
        (1.0 + z) * (-z).exp()
    }
}

/// Matérn-5/2 kernel `(1 + √5 d/ℓ + 5d²/(3ℓ²)) exp(−√5 d/ℓ)` — one of the
/// two "other popular kernels" for which the paper notes Theorems 2–3 remain
/// sublinear (§4.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Matern52Kernel {
    /// Length scale ℓ.
    pub length_scale: f64,
}

impl Matern52Kernel {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if `length_scale` is not strictly positive.
    pub fn new(length_scale: f64) -> Self {
        assert!(length_scale > 0.0, "Matérn length scale must be positive");
        Matern52Kernel { length_scale }
    }
}

impl Kernel for Matern52Kernel {
    fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        let d2 = vec_ops::dist2_sq(x, y);
        let d = d2.sqrt();
        let z = 5f64.sqrt() * d / self.length_scale;
        (1.0 + z + 5.0 * d2 / (3.0 * self.length_scale * self.length_scale)) * (-z).exp()
    }
}

/// Constant kernel `k(x, y) = value`, modelling a shared offset across arms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantKernel {
    /// The constant covariance.
    pub value: f64,
}

impl Kernel for ConstantKernel {
    fn eval(&self, _x: &[f64], _y: &[f64]) -> f64 {
        self.value
    }
}

/// White-noise kernel: `noise` when the two inputs are identical, 0
/// otherwise. Useful for composing an explicit noise floor into a prior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WhiteKernel {
    /// Variance added on the diagonal.
    pub noise: f64,
}

impl Kernel for WhiteKernel {
    fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        if x == y {
            self.noise
        } else {
            0.0
        }
    }
}

/// Rational-quadratic kernel
/// `k(x, y) = (1 + d²/(2 α ℓ²))^{−α}` — a scale mixture of RBF kernels,
/// heavier-tailed than a single RBF.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RationalQuadraticKernel {
    /// Length scale ℓ.
    pub length_scale: f64,
    /// Mixture parameter α; RBF in the limit α → ∞.
    pub alpha: f64,
}

impl RationalQuadraticKernel {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are strictly positive.
    pub fn new(length_scale: f64, alpha: f64) -> Self {
        assert!(length_scale > 0.0, "length scale must be positive");
        assert!(alpha > 0.0, "alpha must be positive");
        RationalQuadraticKernel {
            length_scale,
            alpha,
        }
    }
}

impl Kernel for RationalQuadraticKernel {
    fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        let d2 = vec_ops::dist2_sq(x, y);
        (1.0 + d2 / (2.0 * self.alpha * self.length_scale * self.length_scale)).powf(-self.alpha)
    }
}

/// Exp-sine-squared (periodic) kernel
/// `k(x, y) = exp(−2 sin²(π d / p) / ℓ²)` over the Euclidean distance d.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodicKernel {
    /// Length scale ℓ.
    pub length_scale: f64,
    /// Period p.
    pub period: f64,
}

impl PeriodicKernel {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are strictly positive.
    pub fn new(length_scale: f64, period: f64) -> Self {
        assert!(length_scale > 0.0, "length scale must be positive");
        assert!(period > 0.0, "period must be positive");
        PeriodicKernel {
            length_scale,
            period,
        }
    }
}

impl Kernel for PeriodicKernel {
    fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        let d = vec_ops::dist2_sq(x, y).sqrt();
        let s = (std::f64::consts::PI * d / self.period).sin();
        (-2.0 * s * s / (self.length_scale * self.length_scale)).exp()
    }
}

/// Sum of two kernels.
#[derive(Debug)]
pub struct SumKernel<A, B>(pub A, pub B);

impl<A: Kernel, B: Kernel> Kernel for SumKernel<A, B> {
    fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        self.0.eval(x, y) + self.1.eval(x, y)
    }
}

/// Product of two kernels.
#[derive(Debug)]
pub struct ProductKernel<A, B>(pub A, pub B);

impl<A: Kernel, B: Kernel> Kernel for ProductKernel<A, B> {
    fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        self.0.eval(x, y) * self.1.eval(x, y)
    }
}

/// A kernel scaled by an output variance: `s² · k(x, y)`.
#[derive(Debug)]
pub struct ScaledKernel<K> {
    /// Inner kernel.
    pub inner: K,
    /// Output variance (the `s²` factor, stored directly).
    pub variance: f64,
}

impl<K: Kernel> ScaledKernel<K> {
    /// Wraps `inner` with the given output variance.
    ///
    /// # Panics
    ///
    /// Panics if `variance` is negative.
    pub fn new(inner: K, variance: f64) -> Self {
        assert!(variance >= 0.0, "kernel variance must be non-negative");
        ScaledKernel { inner, variance }
    }
}

impl<K: Kernel> Kernel for ScaledKernel<K> {
    fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        self.variance * self.inner.eval(x, y)
    }
}

impl Kernel for Box<dyn Kernel> {
    fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        (**self).eval(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: &[f64] = &[1.0, 0.0];
    const Y: &[f64] = &[0.0, 1.0];

    #[test]
    fn linear_is_dot_plus_bias() {
        assert_eq!(LinearKernel::new().eval(X, X), 1.0);
        assert_eq!(LinearKernel::new().eval(X, Y), 0.0);
        assert_eq!(LinearKernel { bias: 2.0 }.eval(X, Y), 2.0);
        assert_eq!(LinearKernel::default(), LinearKernel::new());
    }

    #[test]
    fn rbf_unit_at_zero_distance_and_decays() {
        let k = RbfKernel::new(1.0);
        assert_eq!(k.eval(X, X), 1.0);
        let v = k.eval(X, Y); // d² = 2 → exp(−1)
        assert!((v - (-1.0f64).exp()).abs() < 1e-12);
        // Paper convention: exp(−d²/σ²) = exp(−2).
        let kp = RbfKernel::paper_convention(1.0);
        assert!((kp.eval(X, Y) - (-2.0f64).exp()).abs() < 1e-12);
        // Longer length scale ⇒ higher covariance.
        assert!(RbfKernel::new(10.0).eval(X, Y) > v);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rbf_rejects_zero_length_scale() {
        let _ = RbfKernel::new(0.0);
    }

    #[test]
    fn matern_kernels_are_one_at_zero_and_decay() {
        for k in [
            Box::new(Matern32Kernel::new(1.0)) as Box<dyn Kernel>,
            Box::new(Matern52Kernel::new(1.0)),
        ] {
            assert!((k.eval(X, X) - 1.0).abs() < 1e-12);
            let near = k.eval(&[0.0], &[0.1]);
            let far = k.eval(&[0.0], &[2.0]);
            assert!(near > far);
            assert!(far > 0.0 && near < 1.0);
        }
    }

    #[test]
    fn matern52_is_smoother_than_matern32_at_distance() {
        // At moderate distance the 5/2 kernel retains more covariance.
        let m32 = Matern32Kernel::new(1.0).eval(&[0.0], &[1.0]);
        let m52 = Matern52Kernel::new(1.0).eval(&[0.0], &[1.0]);
        assert!(m52 > m32);
    }

    #[test]
    fn white_and_constant() {
        let w = WhiteKernel { noise: 0.5 };
        assert_eq!(w.eval(X, X), 0.5);
        assert_eq!(w.eval(X, Y), 0.0);
        let c = ConstantKernel { value: 3.0 };
        assert_eq!(c.eval(X, Y), 3.0);
    }

    #[test]
    fn combinators() {
        let k = SumKernel(ConstantKernel { value: 1.0 }, LinearKernel::new());
        assert_eq!(k.eval(X, X), 2.0);
        let k = ProductKernel(ConstantKernel { value: 2.0 }, LinearKernel::new());
        assert_eq!(k.eval(X, X), 2.0);
        let k = ScaledKernel::new(RbfKernel::new(1.0), 4.0);
        assert_eq!(k.eval(X, X), 4.0);
    }

    #[test]
    fn rational_quadratic_interpolates_towards_rbf() {
        let d = [0.0];
        let e = [1.3];
        let rbf = RbfKernel::new(1.0).eval(&d, &e);
        let rq_small = RationalQuadraticKernel::new(1.0, 0.5).eval(&d, &e);
        let rq_huge = RationalQuadraticKernel::new(1.0, 1e6).eval(&d, &e);
        assert!((rq_huge - rbf).abs() < 1e-4, "α→∞ limit is RBF");
        assert!(rq_small > rbf, "small α has heavier tails");
        assert_eq!(RationalQuadraticKernel::new(1.0, 1.0).eval(&d, &d), 1.0);
    }

    #[test]
    fn periodic_kernel_repeats() {
        let k = PeriodicKernel::new(1.0, 2.0);
        let a = [0.0];
        assert!((k.eval(&a, &[0.0]) - 1.0).abs() < 1e-12);
        // Points one full period apart are perfectly correlated.
        assert!((k.eval(&a, &[2.0]) - 1.0).abs() < 1e-12);
        assert!((k.eval(&a, &[4.0]) - 1.0).abs() < 1e-12);
        // Half a period apart: minimum correlation.
        assert!(k.eval(&a, &[1.0]) < k.eval(&a, &[0.25]));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn periodic_rejects_zero_period() {
        let _ = PeriodicKernel::new(1.0, 0.0);
    }

    #[test]
    fn gram_is_symmetric_with_unit_diag_for_rbf() {
        let xs: Vec<Vec<f64>> = vec![vec![0.0], vec![0.5], vec![2.0]];
        let g = RbfKernel::new(1.0).gram(&xs);
        assert!(g.is_symmetric(0.0));
        for i in 0..3 {
            assert!((g[(i, i)] - 1.0).abs() < 1e-12);
        }
        assert!(g[(0, 1)] > g[(0, 2)]);
    }

    #[test]
    fn rbf_gram_is_positive_definite() {
        let xs: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 * 0.7]).collect();
        let g = RbfKernel::new(1.0).gram(&xs);
        assert!(easeml_linalg::Cholesky::factor_with_jitter(&g, 1e-12, 8).is_ok());
    }

    #[test]
    fn boxed_kernel_dispatches() {
        let k: Box<dyn Kernel> = Box::new(RbfKernel::new(1.0));
        assert_eq!(k.eval(X, X), 1.0);
        let g = k.gram(&[vec![0.0], vec![1.0]]);
        assert_eq!(g.shape(), (2, 2));
    }
}
