//! Gaussian-process regression over a *finite arm set*, the estimator at the
//! heart of ease.ml's model-selection subsystem (paper §3).
//!
//! Ease.ml treats the K candidate models of a user as arms of a bandit, and
//! models the vector of their (unknown) qualities as a draw from a
//! multivariate Gaussian `N(μ₀, Σ)`. The prior covariance Σ comes from a
//! [`kernel`] evaluated on per-model feature vectors — in the paper's
//! Appendix A these are "quality vectors" of each model measured on the
//! training users. After observing noisy rewards, the [`GpPosterior`] yields
//! the posterior mean and variance of every arm, which the GP-UCB policies in
//! `easeml-bandit` turn into upper confidence bounds.
//!
//! The posterior is maintained *incrementally*: each new observation extends
//! a Cholesky factor in O(t²) rather than refactorizing in O(t³)
//! (see [`easeml_linalg::Cholesky::extend`]).
//!
//! Hyperparameters (output scale, noise) are chosen by maximizing the
//! [log marginal likelihood](mll::log_marginal_likelihood) on a grid, the
//! approach the paper describes as "tuned by maximizing the
//! log-marginal-likelihood as in scikit-learn" (§5.2).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod icm;
pub mod kernel;
pub mod mll;
pub mod optimize;
pub mod posterior;
pub mod prior;
pub mod tune;

pub use icm::{kronecker, MultiTaskGp};
pub use kernel::{
    ConstantKernel, Kernel, LinearKernel, Matern32Kernel, Matern52Kernel, PeriodicKernel,
    ProductKernel, RationalQuadraticKernel, RbfKernel, ScaledKernel, SumKernel, WhiteKernel,
};
pub use optimize::{nelder_mead, tune_scale_noise_continuous, NelderMeadOptions};
pub use posterior::GpPosterior;
pub use prior::ArmPrior;
pub use tune::{tune_scale_noise, TuneGrid, TunedHyperparams};
