//! Log marginal likelihood of observations under a GP prior.

use crate::prior::ArmPrior;
use easeml_linalg::{vec_ops, Cholesky, Matrix};

const LN_2PI: f64 = 1.8378770664093453;

/// Computes the log marginal likelihood of the observation history
/// `(arm, reward)*` under the prior with observation noise `noise_var`:
///
/// ```text
/// log p(y) = −½ (y−μ)ᵀ K⁻¹ (y−μ) − ½ log|K| − (t/2) log 2π
/// ```
///
/// with `K = Σ_obs + σ²I`. Returns `0.0` for an empty history (the marginal
/// likelihood of no data is 1).
///
/// This is the objective the hyperparameter tuner maximizes, mirroring the
/// paper's protocol of tuning GP-UCB hyperparameters "by maximizing the
/// log-marginal-likelihood as in scikit-learn" (§5.2).
///
/// # Panics
///
/// Panics if an arm index is out of range or `noise_var <= 0`.
pub fn log_marginal_likelihood(
    prior: &ArmPrior,
    noise_var: f64,
    observations: &[(usize, f64)],
) -> f64 {
    assert!(noise_var > 0.0, "noise variance must be positive");
    let t = observations.len();
    if t == 0 {
        return 0.0;
    }
    for &(a, _) in observations {
        assert!(a < prior.num_arms(), "arm index {a} out of range");
    }

    let mut k = Matrix::from_fn(t, t, |i, j| {
        prior.cov()[(observations[i].0, observations[j].0)]
    });
    k.add_diag_mut(noise_var);
    let (chol, _) =
        Cholesky::factor_with_jitter(&k, 1e-10, 12).expect("noisy Gram matrix must be factorable");

    let centered: Vec<f64> = observations
        .iter()
        .map(|&(a, y)| y - prior.mean()[a])
        .collect();
    let quad = chol
        .quad_form(&centered)
        .expect("dimension matches history");
    -0.5 * quad - 0.5 * chol.log_det() - 0.5 * t as f64 * LN_2PI
}

/// Per-observation average log marginal likelihood — a scale-free score for
/// comparing hyperparameter settings across histories of different lengths.
pub fn mean_log_marginal_likelihood(
    prior: &ArmPrior,
    noise_var: f64,
    observations: &[(usize, f64)],
) -> f64 {
    if observations.is_empty() {
        return 0.0;
    }
    log_marginal_likelihood(prior, noise_var, observations) / observations.len() as f64
}

/// Centers rewards to zero mean, returning the centered observations and the
/// subtracted mean. Centering before fitting is the standard companion of a
/// zero-mean prior.
pub fn center_rewards(observations: &[(usize, f64)]) -> (Vec<(usize, f64)>, f64) {
    let ys: Vec<f64> = observations.iter().map(|&(_, y)| y).collect();
    let m = vec_ops::mean(&ys);
    (observations.iter().map(|&(a, y)| (a, y - m)).collect(), m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_history_has_zero_lml() {
        let prior = ArmPrior::independent(2, 1.0);
        assert_eq!(log_marginal_likelihood(&prior, 0.1, &[]), 0.0);
        assert_eq!(mean_log_marginal_likelihood(&prior, 0.1, &[]), 0.0);
    }

    #[test]
    fn single_observation_matches_univariate_gaussian() {
        // One observation of arm 0: y ~ N(0, v + s²).
        let v = 1.5;
        let s2 = 0.3;
        let y = 0.8;
        let prior = ArmPrior::independent(1, v);
        let lml = log_marginal_likelihood(&prior, s2, &[(0, y)]);
        let var = v + s2;
        let expected = -0.5 * y * y / var - 0.5 * var.ln() - 0.5 * LN_2PI;
        assert!((lml - expected).abs() < 1e-10);
    }

    #[test]
    fn data_from_the_prior_scores_higher_than_mismatched_data() {
        // Rewards near 0 are more likely under a zero-mean unit prior than
        // rewards far away.
        let prior = ArmPrior::independent(3, 1.0);
        let near = [(0usize, 0.1), (1, -0.2), (2, 0.05)];
        let far = [(0usize, 5.0), (1, -6.0), (2, 4.0)];
        assert!(
            log_marginal_likelihood(&prior, 0.1, &near)
                > log_marginal_likelihood(&prior, 0.1, &far)
        );
    }

    #[test]
    fn correlated_prior_explains_correlated_data_better() {
        use easeml_linalg::Matrix;
        let rho = Matrix::from_rows(&[&[1.0, 0.95], &[0.95, 1.0]]);
        let corr = ArmPrior::from_gram(rho);
        let indep = ArmPrior::independent(2, 1.0);
        // Both arms observed at nearly the same value: correlated prior wins.
        let obs = [(0usize, 0.9), (1, 0.88)];
        assert!(
            log_marginal_likelihood(&corr, 0.05, &obs)
                > log_marginal_likelihood(&indep, 0.05, &obs)
        );
    }

    #[test]
    fn mean_lml_is_average() {
        let prior = ArmPrior::independent(2, 1.0);
        let obs = [(0usize, 0.5), (1, -0.5)];
        let total = log_marginal_likelihood(&prior, 0.2, &obs);
        assert!((mean_log_marginal_likelihood(&prior, 0.2, &obs) - total / 2.0).abs() < 1e-12);
    }

    #[test]
    fn centering() {
        let (centered, m) = center_rewards(&[(0, 1.0), (1, 3.0)]);
        assert_eq!(m, 2.0);
        assert_eq!(centered, vec![(0, -1.0), (1, 1.0)]);
        let (c, m) = center_rewards(&[]);
        assert!(c.is_empty());
        assert_eq!(m, 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_arm_panics() {
        let prior = ArmPrior::independent(1, 1.0);
        let _ = log_marginal_likelihood(&prior, 0.1, &[(3, 0.0)]);
    }
}
