//! Derivative-free maximization of the log marginal likelihood with the
//! Nelder–Mead simplex method.
//!
//! The paper tunes hyperparameters "by maximizing the log-marginal-
//! likelihood as in scikit-learn" (§5.2); scikit-learn uses a gradient
//! optimizer with restarts. This module provides the derivative-free
//! equivalent: [`nelder_mead`] maximizes any objective over ℝⁿ, and
//! [`tune_scale_noise_continuous`] applies it to the (log-scale, log-noise)
//! plane, typically seeded from the best grid point for robustness.

use crate::mll::log_marginal_likelihood;
use crate::prior::ArmPrior;
use crate::tune::TunedHyperparams;
use easeml_linalg::Matrix;

/// Options for the Nelder–Mead search.
#[derive(Debug, Clone, Copy)]
pub struct NelderMeadOptions {
    /// Maximum number of objective evaluations.
    pub max_evals: usize,
    /// Convergence tolerance on the simplex's objective spread.
    pub tol: f64,
    /// Initial simplex step added to each coordinate of the start point.
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions {
            max_evals: 200,
            tol: 1e-8,
            initial_step: 0.5,
        }
    }
}

/// Maximizes `f` over ℝⁿ starting from `x0`. Returns `(argmax, max)`.
///
/// Standard Nelder–Mead with reflection 1, expansion 2, contraction ½,
/// shrink ½. Deterministic for a deterministic objective.
///
/// # Panics
///
/// Panics if `x0` is empty or options are degenerate.
pub fn nelder_mead(
    f: impl Fn(&[f64]) -> f64,
    x0: &[f64],
    opts: &NelderMeadOptions,
) -> (Vec<f64>, f64) {
    assert!(!x0.is_empty(), "need at least one dimension");
    assert!(opts.max_evals > 0 && opts.tol >= 0.0 && opts.initial_step > 0.0);
    let n = x0.len();
    let evals = std::cell::Cell::new(0usize);
    let eval = |x: &[f64]| {
        evals.set(evals.get() + 1);
        f(x)
    };

    // Initial simplex: x0 plus one step along each axis.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let v0 = eval(x0);
    simplex.push((x0.to_vec(), v0));
    for i in 0..n {
        let mut x = x0.to_vec();
        x[i] += opts.initial_step;
        let v = eval(&x);
        simplex.push((x, v));
    }

    while evals.get() < opts.max_evals {
        // Sort descending by value (we maximize).
        simplex.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let best = simplex[0].1;
        let worst = simplex[n].1;
        if (best - worst).abs() <= opts.tol * (best.abs() + worst.abs() + 1e-12) {
            break;
        }
        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (x, _) in &simplex[..n] {
            for (c, xi) in centroid.iter_mut().zip(x) {
                *c += xi / n as f64;
            }
        }
        let worst_x = simplex[n].0.clone();
        let blend = |alpha: f64| -> Vec<f64> {
            centroid
                .iter()
                .zip(&worst_x)
                .map(|(c, w)| c + alpha * (c - w))
                .collect()
        };

        let reflected = blend(1.0);
        let vr = eval(&reflected);
        if vr > simplex[0].1 {
            // Try expanding.
            let expanded = blend(2.0);
            let ve = eval(&expanded);
            simplex[n] = if ve > vr {
                (expanded, ve)
            } else {
                (reflected, vr)
            };
        } else if vr > simplex[n - 1].1 {
            simplex[n] = (reflected, vr);
        } else {
            // Contract towards the centroid.
            let contracted = blend(-0.5);
            let vc = eval(&contracted);
            if vc > simplex[n].1 {
                simplex[n] = (contracted, vc);
            } else {
                // Shrink everything towards the best point.
                let best_x = simplex[0].0.clone();
                for entry in simplex.iter_mut().skip(1) {
                    let x: Vec<f64> = entry
                        .0
                        .iter()
                        .zip(&best_x)
                        .map(|(xi, bi)| bi + 0.5 * (xi - bi))
                        .collect();
                    let v = eval(&x);
                    *entry = (x, v);
                }
            }
        }
        if evals.get() >= opts.max_evals {
            break;
        }
    }
    simplex.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    simplex.swap_remove(0)
}

/// Continuously tunes `(scale, noise)` for a base Gram matrix by
/// Nelder–Mead over the log-parameters, starting from `start` (typically
/// the best grid point from [`crate::tune_scale_noise`]).
///
/// # Panics
///
/// Panics on empty observations or non-positive start values.
pub fn tune_scale_noise_continuous(
    gram: &Matrix,
    observations: &[(usize, f64)],
    start: (f64, f64),
    opts: &NelderMeadOptions,
) -> TunedHyperparams {
    assert!(!observations.is_empty(), "tuning needs observations");
    assert!(start.0 > 0.0 && start.1 > 0.0, "start must be positive");
    let objective = |x: &[f64]| {
        let scale = x[0].exp();
        let noise = x[1].exp();
        // Keep the search inside a sane box.
        if !(1e-6..=1e4).contains(&scale) || !(1e-9..=1.0).contains(&noise) {
            return f64::NEG_INFINITY;
        }
        let prior = ArmPrior::from_gram(gram.scaled(scale));
        log_marginal_likelihood(&prior, noise, observations)
    };
    let x0 = [start.0.ln(), start.1.ln()];
    let (x, lml) = nelder_mead(objective, &x0, opts);
    TunedHyperparams {
        scale: x[0].exp(),
        noise_var: x[1].exp(),
        lml,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tune::{tune_scale_noise, TuneGrid};

    #[test]
    fn maximizes_a_concave_quadratic() {
        let f = |x: &[f64]| -(x[0] - 3.0).powi(2) - 2.0 * (x[1] + 1.0).powi(2);
        let (x, v) = nelder_mead(f, &[0.0, 0.0], &NelderMeadOptions::default());
        assert!((x[0] - 3.0).abs() < 1e-3, "x0 = {}", x[0]);
        assert!((x[1] + 1.0).abs() < 1e-3, "x1 = {}", x[1]);
        assert!(v > -1e-5);
    }

    #[test]
    fn one_dimensional_maximization() {
        let f = |x: &[f64]| -(x[0] - 0.5).powi(2);
        let (x, _) = nelder_mead(f, &[-4.0], &NelderMeadOptions::default());
        assert!((x[0] - 0.5).abs() < 1e-3);
    }

    #[test]
    fn respects_the_eval_budget() {
        let count = std::cell::Cell::new(0usize);
        let f = |x: &[f64]| {
            count.set(count.get() + 1);
            -x[0] * x[0]
        };
        let opts = NelderMeadOptions {
            max_evals: 25,
            ..Default::default()
        };
        let _ = nelder_mead(f, &[10.0], &opts);
        // Shrink steps may finish an in-flight iteration; allow slack of n.
        assert!(count.get() <= 27, "{} evals", count.get());
    }

    #[test]
    fn continuous_tuning_improves_on_the_grid_start() {
        let gram = Matrix::identity(3);
        let obs = [(0usize, 0.50), (0, 0.56), (1, -0.40), (1, -0.46), (2, 0.05)];
        let grid = TuneGrid {
            scales: vec![0.1, 1.0],
            noises: vec![1e-3, 1e-2],
        };
        let coarse = tune_scale_noise(&gram, &obs, &grid);
        let fine = tune_scale_noise_continuous(
            &gram,
            &obs,
            (coarse.scale, coarse.noise_var),
            &NelderMeadOptions::default(),
        );
        assert!(
            fine.lml >= coarse.lml - 1e-9,
            "continuous {:.4} must not be worse than grid {:.4}",
            fine.lml,
            coarse.lml
        );
        assert!(fine.scale > 0.0 && fine.noise_var > 0.0);
    }

    #[test]
    fn out_of_box_start_is_survivable() {
        // A start near the box edge still returns finite results.
        let gram = Matrix::identity(2);
        let obs = [(0usize, 0.2), (1, -0.2)];
        let t =
            tune_scale_noise_continuous(&gram, &obs, (1e-5, 1e-8), &NelderMeadOptions::default());
        assert!(t.lml.is_finite());
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_start_panics() {
        let _ = nelder_mead(|_| 0.0, &[], &NelderMeadOptions::default());
    }
}
