//! The incremental GP posterior over a finite arm set.

use crate::prior::ArmPrior;
use easeml_linalg::{vec_ops, Cholesky, Matrix};

/// Posterior belief over arm qualities after a sequence of noisy
/// observations, per lines 6–7 of the paper's Algorithm 1:
///
/// ```text
/// μ_t(k)  = μ₀(k) + Σ_t(k)ᵀ (Σ_t + σ²I)⁻¹ (y − μ₀)
/// σ_t²(k) = Σ(k,k) − Σ_t(k)ᵀ (Σ_t + σ²I)⁻¹ Σ_t(k)
/// ```
///
/// where `Σ_t(k)` is the vector of prior covariances between arm `k` and the
/// arms played so far, and `Σ_t` is the Gram matrix of the played arms.
///
/// Each [`GpPosterior::observe`] call extends the Cholesky factor of
/// `Σ_t + σ²I` in O(t²) and refreshes the cached posterior means and
/// variances of all K arms in O(K·t²). Reads are O(1).
///
/// # Examples
///
/// ```
/// use easeml_gp::{ArmPrior, GpPosterior};
/// use easeml_linalg::Matrix;
///
/// // Two strongly correlated arms.
/// let gram = Matrix::from_rows(&[&[1.0, 0.9], &[0.9, 1.0]]);
/// let mut gp = GpPosterior::new(ArmPrior::from_gram(gram), 0.01);
///
/// gp.observe(0, 0.8);
/// // Observing arm 0 tells us a lot about arm 1 too.
/// assert!(gp.mean(1) > 0.5);
/// assert!(gp.var(1) < 1.0);
/// assert!(gp.var(0) < gp.var(1));
/// ```
#[derive(Debug, Clone)]
pub struct GpPosterior {
    prior: ArmPrior,
    noise_var: f64,
    obs_arms: Vec<usize>,
    obs_y: Vec<f64>,
    chol: Cholesky,
    alpha: Vec<f64>,
    means: Vec<f64>,
    vars: Vec<f64>,
}

impl GpPosterior {
    /// Creates a posterior equal to the prior (no observations).
    ///
    /// # Panics
    ///
    /// Panics if `noise_var` is not strictly positive — zero observation
    /// noise makes repeated pulls of the same arm degenerate.
    pub fn new(prior: ArmPrior, noise_var: f64) -> Self {
        assert!(noise_var > 0.0, "observation noise variance must be > 0");
        let means = prior.mean().to_vec();
        let vars = prior.cov().diag();
        GpPosterior {
            prior,
            noise_var,
            obs_arms: Vec::new(),
            obs_y: Vec::new(),
            chol: Cholesky::empty(),
            alpha: Vec::new(),
            means,
            vars,
        }
    }

    /// Number of arms K.
    #[inline]
    pub fn num_arms(&self) -> usize {
        self.prior.num_arms()
    }

    /// Number of observations incorporated so far (t).
    #[inline]
    pub fn num_observations(&self) -> usize {
        self.obs_arms.len()
    }

    /// The `(arm, reward)` observation history, oldest first.
    pub fn observations(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.obs_arms
            .iter()
            .copied()
            .zip(self.obs_y.iter().copied())
    }

    /// Observation noise variance σ².
    #[inline]
    pub fn noise_var(&self) -> f64 {
        self.noise_var
    }

    /// The prior this posterior conditions.
    #[inline]
    pub fn prior(&self) -> &ArmPrior {
        &self.prior
    }

    /// Posterior mean μ_t(k).
    #[inline]
    pub fn mean(&self, k: usize) -> f64 {
        self.means[k]
    }

    /// Posterior variance σ_t²(k), clamped at 0.
    #[inline]
    pub fn var(&self, k: usize) -> f64 {
        self.vars[k]
    }

    /// Posterior standard deviation σ_t(k).
    #[inline]
    pub fn std(&self, k: usize) -> f64 {
        self.vars[k].sqrt()
    }

    /// All posterior means.
    #[inline]
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// All posterior variances.
    #[inline]
    pub fn vars(&self) -> &[f64] {
        &self.vars
    }

    /// Cheap condition-number estimate of the `Σ_t + σ²I` Cholesky factor
    /// (see [`Cholesky::condition_estimate`]); 1 before any observation.
    /// Exposed so telemetry can watch the posterior's numerical health as
    /// the observation history grows.
    #[inline]
    pub fn condition_estimate(&self) -> f64 {
        self.chol.condition_estimate()
    }

    /// Best reward observed so far and the arm that produced it, or `None`
    /// before the first observation. This is the "best model so far" that
    /// ease.ml serves to the user (§3's ease.ml regret).
    pub fn best_observed(&self) -> Option<(usize, f64)> {
        vec_ops::argmax(&self.obs_y).map(|i| (self.obs_arms[i], self.obs_y[i]))
    }

    /// Incorporates the observation `reward` for `arm`.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range or `reward` is not finite.
    pub fn observe(&mut self, arm: usize, reward: f64) {
        assert!(arm < self.num_arms(), "arm index {arm} out of range");
        assert!(reward.is_finite(), "reward must be finite");

        // Cross-covariances between the new arm and the history.
        let cross: Vec<f64> = self
            .obs_arms
            .iter()
            .map(|&a| self.prior.cov()[(a, arm)])
            .collect();
        let diag = self.prior.cov()[(arm, arm)] + self.noise_var;

        if self.chol.extend(&cross, diag).is_err() {
            // Numerically degenerate extension (e.g. nearly-duplicate rows
            // with tiny noise): refactorize the whole Gram with jitter.
            self.obs_arms.push(arm);
            self.obs_y.push(reward);
            self.refactor();
            self.refresh();
            return;
        }
        self.obs_arms.push(arm);
        self.obs_y.push(reward);
        self.recompute_alpha();
        self.refresh();
    }

    /// Discards all observations, returning to the prior.
    pub fn reset(&mut self) {
        self.obs_arms.clear();
        self.obs_y.clear();
        self.chol = Cholesky::empty();
        self.alpha.clear();
        self.means = self.prior.mean().to_vec();
        self.vars = self.prior.cov().diag();
    }

    /// Posterior covariance between two arms,
    /// `cov_t(k₁, k₂) = Σ(k₁,k₂) − Σ_t(k₁)ᵀ (Σ_t + σ²I)⁻¹ Σ_t(k₂)`.
    ///
    /// The diagonal agrees with [`GpPosterior::var`]; off-diagonals feed
    /// joint sampling (parallel-GP extensions) and diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if either arm index is out of range.
    pub fn posterior_cov(&self, k1: usize, k2: usize) -> f64 {
        assert!(
            k1 < self.num_arms() && k2 < self.num_arms(),
            "arm index out of range"
        );
        if self.obs_arms.is_empty() {
            return self.prior.cov()[(k1, k2)];
        }
        let c1: Vec<f64> = self
            .obs_arms
            .iter()
            .map(|&a| self.prior.cov()[(a, k1)])
            .collect();
        let c2: Vec<f64> = self
            .obs_arms
            .iter()
            .map(|&a| self.prior.cov()[(a, k2)])
            .collect();
        let h1 = self.chol.half_solve(&c1).expect("dimension matches");
        let h2 = self.chol.half_solve(&c2).expect("dimension matches");
        self.prior.cov()[(k1, k2)] - vec_ops::dot(&h1, &h2)
    }

    /// The full posterior covariance over a subset of arms (symmetrized).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn joint_cov(&self, arms: &[usize]) -> Matrix {
        let mut m = Matrix::from_fn(arms.len(), arms.len(), |i, j| {
            self.posterior_cov(arms[i], arms[j])
        });
        m.symmetrize_mut();
        m
    }

    /// Rebuilds the Cholesky factor from scratch with jitter escalation.
    fn refactor(&mut self) {
        let t = self.obs_arms.len();
        let mut gram = Matrix::from_fn(t, t, |i, j| {
            self.prior.cov()[(self.obs_arms[i], self.obs_arms[j])]
        });
        gram.add_diag_mut(self.noise_var);
        let (chol, _) = Cholesky::factor_with_jitter(&gram, 1e-10, 12)
            .expect("noisy Gram matrix must be factorable");
        self.chol = chol;
        self.recompute_alpha();
    }

    fn recompute_alpha(&mut self) {
        let centered: Vec<f64> = self
            .obs_arms
            .iter()
            .zip(&self.obs_y)
            .map(|(&a, &y)| y - self.prior.mean()[a])
            .collect();
        self.alpha = self
            .chol
            .solve(&centered)
            .expect("solve dimension matches history length");
    }

    /// Recomputes the cached posterior means and variances of all arms.
    fn refresh(&mut self) {
        let _timing = easeml_obs::global_timer(easeml_obs::Component::PosteriorRefresh);
        let k_arms = self.num_arms();
        let mut cross = vec![0.0; self.obs_arms.len()];
        for k in 0..k_arms {
            for (slot, &a) in cross.iter_mut().zip(&self.obs_arms) {
                *slot = self.prior.cov()[(a, k)];
            }
            self.means[k] = self.prior.mean()[k] + vec_ops::dot(&cross, &self.alpha);
            let half = self
                .chol
                .half_solve(&cross)
                .expect("solve dimension matches history length");
            let reduction = vec_ops::dot(&half, &half);
            self.vars[k] = (self.prior.cov()[(k, k)] - reduction).max(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeml_linalg::Matrix;

    fn correlated_prior(rho: f64) -> ArmPrior {
        ArmPrior::from_gram(Matrix::from_rows(&[&[1.0, rho], &[rho, 1.0]]))
    }

    #[test]
    fn prior_state_before_observations() {
        let gp = GpPosterior::new(correlated_prior(0.5), 0.1);
        assert_eq!(gp.num_observations(), 0);
        assert_eq!(gp.mean(0), 0.0);
        assert_eq!(gp.var(0), 1.0);
        assert_eq!(gp.best_observed(), None);
    }

    #[test]
    fn observation_moves_mean_and_shrinks_variance() {
        let mut gp = GpPosterior::new(correlated_prior(0.9), 0.01);
        gp.observe(0, 1.0);
        assert!(gp.mean(0) > 0.9, "mean should move towards the observation");
        assert!(gp.var(0) < 0.05, "variance of the observed arm collapses");
        // Correlated arm learns too, but less.
        assert!(gp.mean(1) > 0.5);
        assert!(gp.var(1) > gp.var(0));
        assert!(gp.var(1) < 1.0);
    }

    #[test]
    fn independent_arms_do_not_leak_information() {
        let mut gp = GpPosterior::new(ArmPrior::independent(2, 1.0), 0.01);
        gp.observe(0, 1.0);
        assert_eq!(gp.mean(1), 0.0);
        assert!((gp.var(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn posterior_matches_closed_form_single_observation() {
        // For one observation of arm 0 with prior var v and noise s²:
        // μ = v/(v+s²) · y, σ² = v − v²/(v+s²).
        let v = 2.0;
        let s2 = 0.5;
        let y = 1.5;
        let mut gp = GpPosterior::new(ArmPrior::independent(1, v), s2);
        gp.observe(0, y);
        let shrink = v / (v + s2);
        assert!((gp.mean(0) - shrink * y).abs() < 1e-12);
        assert!((gp.var(0) - (v - v * shrink)).abs() < 1e-12);
    }

    #[test]
    fn repeated_observations_average_out() {
        let mut gp = GpPosterior::new(ArmPrior::independent(1, 1.0), 0.1);
        for _ in 0..50 {
            gp.observe(0, 0.7);
        }
        assert!((gp.mean(0) - 0.7).abs() < 0.01);
        assert!(gp.var(0) < 0.01);
    }

    #[test]
    fn incremental_matches_batch_reconstruction() {
        // Verify the cached posterior against a from-scratch computation.
        let gram = Matrix::from_rows(&[&[1.0, 0.6, 0.2], &[0.6, 1.0, 0.4], &[0.2, 0.4, 1.0]]);
        let prior = ArmPrior::from_gram(gram.clone());
        let noise = 0.05;
        let mut gp = GpPosterior::new(prior.clone(), noise);
        let history = [(0usize, 0.9), (2, 0.3), (0, 0.85), (1, 0.6)];
        for &(a, y) in &history {
            gp.observe(a, y);
        }

        // Batch: K_t + σ²I, solve directly.
        let t = history.len();
        let mut kt = Matrix::from_fn(t, t, |i, j| gram[(history[i].0, history[j].0)]);
        kt.add_diag_mut(noise);
        let chol = Cholesky::factor(&kt).unwrap();
        let ys: Vec<f64> = history.iter().map(|&(_, y)| y).collect();
        let alpha = chol.solve(&ys).unwrap();
        for k in 0..3 {
            let cross: Vec<f64> = history.iter().map(|&(a, _)| gram[(a, k)]).collect();
            let mean = vec_ops::dot(&cross, &alpha);
            let var = gram[(k, k)] - chol.quad_form(&cross).unwrap();
            assert!((gp.mean(k) - mean).abs() < 1e-9, "mean arm {k}");
            assert!((gp.var(k) - var.max(0.0)).abs() < 1e-9, "var arm {k}");
        }
    }

    #[test]
    fn best_observed_tracks_maximum() {
        let mut gp = GpPosterior::new(ArmPrior::independent(3, 1.0), 0.1);
        gp.observe(1, 0.4);
        gp.observe(2, 0.9);
        gp.observe(0, 0.6);
        assert_eq!(gp.best_observed(), Some((2, 0.9)));
    }

    #[test]
    fn reset_restores_prior() {
        let mut gp = GpPosterior::new(correlated_prior(0.5), 0.1);
        gp.observe(0, 1.0);
        gp.reset();
        assert_eq!(gp.num_observations(), 0);
        assert_eq!(gp.mean(0), 0.0);
        assert_eq!(gp.var(1), 1.0);
    }

    #[test]
    fn nonzero_prior_mean_is_respected() {
        let prior = ArmPrior::independent(2, 1.0).with_mean(vec![0.5, 0.5]);
        let mut gp = GpPosterior::new(prior, 0.1);
        assert_eq!(gp.mean(0), 0.5);
        gp.observe(0, 0.5);
        // Observation equal to the prior mean leaves the mean in place.
        assert!((gp.mean(0) - 0.5).abs() < 1e-12);
        assert!((gp.mean(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tiny_noise_duplicate_observations_survive() {
        // Nearly-singular extension path: same arm many times with
        // minuscule noise exercises the refactor fallback.
        let mut gp = GpPosterior::new(correlated_prior(0.999), 1e-12);
        for _ in 0..10 {
            gp.observe(0, 0.5);
        }
        assert!(gp.mean(0).is_finite());
        assert!(gp.var(0) >= 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_arm_panics() {
        let mut gp = GpPosterior::new(ArmPrior::independent(1, 1.0), 0.1);
        gp.observe(1, 0.0);
    }

    #[test]
    #[should_panic(expected = "noise variance")]
    fn zero_noise_rejected() {
        let _ = GpPosterior::new(ArmPrior::independent(1, 1.0), 0.0);
    }

    #[test]
    fn variance_never_negative() {
        let mut gp = GpPosterior::new(correlated_prior(0.99), 0.001);
        for i in 0..20 {
            gp.observe(i % 2, 0.5 + 0.01 * i as f64);
            for k in 0..2 {
                assert!(gp.var(k) >= 0.0);
            }
        }
    }

    #[test]
    fn posterior_cov_diagonal_matches_var() {
        let mut gp = GpPosterior::new(correlated_prior(0.7), 0.05);
        gp.observe(0, 0.4);
        gp.observe(1, 0.6);
        for k in 0..2 {
            assert!((gp.posterior_cov(k, k) - gp.var(k)).abs() < 1e-10);
        }
    }

    #[test]
    fn posterior_cov_prior_state_and_shrinkage() {
        let mut gp = GpPosterior::new(correlated_prior(0.8), 0.01);
        // Before observations the posterior covariance is the prior's.
        assert!((gp.posterior_cov(0, 1) - 0.8).abs() < 1e-12);
        gp.observe(0, 0.5);
        // Observing arm 0 explains away shared variance: |cov| shrinks.
        assert!(gp.posterior_cov(0, 1).abs() < 0.8);
    }

    #[test]
    fn joint_cov_is_symmetric_and_consistent() {
        let mut gp = GpPosterior::new(correlated_prior(0.6), 0.02);
        gp.observe(1, 0.7);
        let j = gp.joint_cov(&[0, 1]);
        assert!(j.is_symmetric(1e-12));
        assert!((j[(0, 0)] - gp.var(0)).abs() < 1e-10);
        assert!((j[(0, 1)] - gp.posterior_cov(0, 1)).abs() < 1e-10);
    }

    #[test]
    fn condition_estimate_starts_at_one_and_grows() {
        let mut gp = GpPosterior::new(correlated_prior(0.95), 0.01);
        assert_eq!(gp.condition_estimate(), 1.0);
        gp.observe(0, 0.5);
        let c1 = gp.condition_estimate();
        assert!(c1 >= 1.0 && c1.is_finite());
        // Repeatedly observing highly correlated arms with small noise
        // makes the Gram matrix progressively ill-conditioned.
        for _ in 0..8 {
            gp.observe(0, 0.5);
            gp.observe(1, 0.45);
        }
        assert!(gp.condition_estimate() > c1);
    }

    #[test]
    fn observations_iterator_order() {
        let mut gp = GpPosterior::new(ArmPrior::independent(3, 1.0), 0.1);
        gp.observe(2, 0.2);
        gp.observe(0, 0.1);
        let obs: Vec<_> = gp.observations().collect();
        assert_eq!(obs, vec![(2, 0.2), (0, 0.1)]);
    }
}
