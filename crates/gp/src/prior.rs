//! The Gaussian prior over a user's candidate arms.

use crate::kernel::Kernel;
use easeml_linalg::{project_psd, Cholesky, Matrix};

/// Prior belief `N(μ₀, Σ)` over the qualities of K candidate models.
///
/// The covariance is validated (and, if necessary, repaired) at construction
/// so the posterior never has to worry about indefinite priors: empirical
/// Gram matrices are symmetrized and, when not factorable even with a small
/// jitter, projected onto the PSD cone by eigenvalue clipping.
///
/// As a convention (and per the paper's Appendix A) the prior mean is zero
/// for GPs not conditioned on data; [`ArmPrior::with_mean`] overrides this
/// when rewards are not centered.
#[derive(Debug, Clone)]
pub struct ArmPrior {
    mean: Vec<f64>,
    cov: Matrix,
}

impl ArmPrior {
    /// Builds a zero-mean prior from a raw covariance (Gram) matrix,
    /// repairing asymmetry and indefiniteness.
    ///
    /// # Panics
    ///
    /// Panics if `gram` is not square or is empty.
    pub fn from_gram(gram: Matrix) -> Self {
        assert!(gram.is_square(), "prior covariance must be square");
        assert!(gram.rows() > 0, "prior needs at least one arm");
        let mut cov = gram;
        cov.symmetrize_mut();
        // Accept the matrix if it is factorable with at most a tiny jitter;
        // otherwise clip negative eigenvalues.
        if Cholesky::factor_with_jitter(&cov, 1e-12, 4).is_err() {
            cov = project_psd(&cov, 0.0).expect("PSD projection of symmetric matrix cannot fail");
        }
        let k = cov.rows();
        ArmPrior {
            mean: vec![0.0; k],
            cov,
        }
    }

    /// Builds a zero-mean prior by evaluating `kernel` on per-arm feature
    /// vectors.
    ///
    /// # Panics
    ///
    /// Panics if `features` is empty.
    pub fn from_kernel<K: Kernel + ?Sized>(kernel: &K, features: &[Vec<f64>]) -> Self {
        assert!(!features.is_empty(), "prior needs at least one arm");
        Self::from_gram(kernel.gram(features))
    }

    /// An uninformative prior: zero mean, `variance · I`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `variance <= 0`.
    pub fn independent(k: usize, variance: f64) -> Self {
        assert!(k > 0, "prior needs at least one arm");
        assert!(variance > 0.0, "prior variance must be positive");
        ArmPrior {
            mean: vec![0.0; k],
            cov: Matrix::from_diag(&vec![variance; k]),
        }
    }

    /// Replaces the prior mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean.len()` does not match the number of arms.
    pub fn with_mean(mut self, mean: Vec<f64>) -> Self {
        assert_eq!(mean.len(), self.num_arms(), "prior mean length mismatch");
        self.mean = mean;
        self
    }

    /// Scales the covariance by `s` (an output-variance hyperparameter).
    ///
    /// # Panics
    ///
    /// Panics if `s <= 0`.
    pub fn scaled(mut self, s: f64) -> Self {
        assert!(s > 0.0, "covariance scale must be positive");
        self.cov.scale_mut(s);
        self
    }

    /// Number of arms K.
    #[inline]
    pub fn num_arms(&self) -> usize {
        self.cov.rows()
    }

    /// Prior mean vector μ₀.
    #[inline]
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Prior covariance Σ.
    #[inline]
    pub fn cov(&self) -> &Matrix {
        &self.cov
    }

    /// Prior variance of arm `k` (the diagonal entry Σ(k,k)).
    #[inline]
    pub fn var(&self, k: usize) -> f64 {
        self.cov[(k, k)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::RbfKernel;

    #[test]
    fn independent_prior() {
        let p = ArmPrior::independent(3, 2.0);
        assert_eq!(p.num_arms(), 3);
        assert_eq!(p.mean(), &[0.0, 0.0, 0.0]);
        assert_eq!(p.var(1), 2.0);
        assert_eq!(p.cov()[(0, 1)], 0.0);
    }

    #[test]
    fn from_kernel_builds_gram() {
        let feats = vec![vec![0.0], vec![1.0]];
        let p = ArmPrior::from_kernel(&RbfKernel::new(1.0), &feats);
        assert_eq!(p.num_arms(), 2);
        assert!((p.var(0) - 1.0).abs() < 1e-12);
        assert!(p.cov()[(0, 1)] > 0.0 && p.cov()[(0, 1)] < 1.0);
    }

    #[test]
    fn indefinite_gram_is_repaired() {
        // Eigenvalues 3 and −1: genuinely indefinite.
        let g = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        let p = ArmPrior::from_gram(g);
        // The repaired covariance must be factorable (with tiny jitter).
        assert!(Cholesky::factor_with_jitter(p.cov(), 1e-10, 8).is_ok());
        // The dominant structure survives: positive cross-covariance.
        assert!(p.cov()[(0, 1)] > 0.0);
    }

    #[test]
    fn asymmetric_gram_is_symmetrized() {
        let g = Matrix::from_rows(&[&[1.0, 0.30001], &[0.29999, 1.0]]);
        let p = ArmPrior::from_gram(g);
        assert_eq!(p.cov().asymmetry(), 0.0);
        assert!((p.cov()[(0, 1)] - 0.3).abs() < 1e-5);
    }

    #[test]
    fn with_mean_and_scaled() {
        let p = ArmPrior::independent(2, 1.0)
            .with_mean(vec![0.5, 0.7])
            .scaled(4.0);
        assert_eq!(p.mean(), &[0.5, 0.7]);
        assert_eq!(p.var(0), 4.0);
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn empty_prior_panics() {
        let _ = ArmPrior::from_gram(Matrix::zeros(0, 0));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_mean_length_panics() {
        let _ = ArmPrior::independent(2, 1.0).with_mean(vec![0.0]);
    }
}
