//! Hyperparameter tuning by grid maximization of the log marginal
//! likelihood.
//!
//! The paper tunes "all hyperparameters for GP-UCB … by maximizing the
//! log-marginal-likelihood as in scikit-learn" (§5.2). For a fixed Gram
//! matrix over arms (e.g. an empirical quality-vector kernel), the free
//! hyperparameters are an output scale `s` (multiplying the Gram matrix) and
//! the observation-noise variance `σ²`. The grid search here is exhaustive
//! and deterministic — robust for the small grids involved, and free of the
//! gradient pathologies an L-BFGS restart scheme has to manage.

use crate::mll::log_marginal_likelihood;
use crate::prior::ArmPrior;
use easeml_linalg::Matrix;

/// The grid of candidate hyperparameters to score.
#[derive(Debug, Clone)]
pub struct TuneGrid {
    /// Candidate output scales (multipliers of the base Gram matrix).
    pub scales: Vec<f64>,
    /// Candidate observation-noise variances.
    pub noises: Vec<f64>,
}

impl Default for TuneGrid {
    /// A log-spaced default grid covering three decades of scale and four of
    /// noise — adequate for rewards in `[0, 1]` after centering.
    fn default() -> Self {
        TuneGrid {
            scales: vec![0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0],
            noises: vec![1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1],
        }
    }
}

/// The winning hyperparameters and their score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunedHyperparams {
    /// Output scale multiplying the base Gram matrix.
    pub scale: f64,
    /// Observation-noise variance.
    pub noise_var: f64,
    /// Log marginal likelihood achieved.
    pub lml: f64,
}

/// Scores every `(scale, noise)` pair in `grid` against the observation
/// history and returns the maximizer.
///
/// `gram` is the *base* covariance over arms; the scored prior is
/// `scale · gram`. Rewards should be centered by the caller (see
/// [`crate::mll::center_rewards`]) when using a zero-mean prior.
///
/// # Panics
///
/// Panics if the grid or the history is empty, or if any grid value is not
/// strictly positive.
pub fn tune_scale_noise(
    gram: &Matrix,
    observations: &[(usize, f64)],
    grid: &TuneGrid,
) -> TunedHyperparams {
    assert!(
        !grid.scales.is_empty() && !grid.noises.is_empty(),
        "tuning grid must be non-empty"
    );
    assert!(!observations.is_empty(), "tuning needs observations");
    assert!(
        grid.scales.iter().chain(&grid.noises).all(|&v| v > 0.0),
        "grid values must be positive"
    );

    let mut best = TunedHyperparams {
        scale: grid.scales[0],
        noise_var: grid.noises[0],
        lml: f64::NEG_INFINITY,
    };
    for &scale in &grid.scales {
        let prior = ArmPrior::from_gram(gram.scaled(scale));
        for &noise in &grid.noises {
            let lml = log_marginal_likelihood(&prior, noise, observations);
            if lml > best.lml {
                best = TunedHyperparams {
                    scale,
                    noise_var: noise,
                    lml,
                };
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Kernel, RbfKernel};

    #[test]
    fn recovers_noise_regime_from_noisy_replications() {
        // Arm rewards replicated with visible scatter: the tuner should not
        // pick the tiniest noise on the grid.
        let gram = Matrix::identity(2);
        let obs = [
            (0usize, 0.50),
            (0, 0.58),
            (0, 0.44),
            (0, 0.54),
            (1, -0.50),
            (1, -0.42),
            (1, -0.55),
        ];
        let grid = TuneGrid {
            scales: vec![0.3, 1.0, 3.0],
            noises: vec![1e-6, 1e-3, 3e-3, 1e-2, 3e-2],
        };
        let t = tune_scale_noise(&gram, &obs, &grid);
        assert!(t.noise_var >= 1e-3, "tuned noise {} too small", t.noise_var);
        assert!(t.lml.is_finite());
    }

    #[test]
    fn prefers_scale_matching_reward_magnitude() {
        // Rewards of magnitude ~3 under a unit Gram: a larger scale should
        // win over a much smaller one.
        let gram = Matrix::identity(3);
        let obs = [(0usize, 3.0), (1, -2.8), (2, 3.2)];
        let grid = TuneGrid {
            scales: vec![0.01, 10.0],
            noises: vec![1e-3],
        };
        let t = tune_scale_noise(&gram, &obs, &grid);
        assert_eq!(t.scale, 10.0);
    }

    #[test]
    fn tuned_lml_dominates_all_grid_points() {
        let feats: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64 * 0.5]).collect();
        let gram = RbfKernel::new(1.0).gram(&feats);
        let obs = [(0usize, 0.2), (1, 0.25), (2, 0.15), (3, 0.3)];
        let grid = TuneGrid::default();
        let best = tune_scale_noise(&gram, &obs, &grid);
        for &s in &grid.scales {
            for &n in &grid.noises {
                let prior = ArmPrior::from_gram(gram.scaled(s));
                let lml = log_marginal_likelihood(&prior, n, &obs);
                assert!(lml <= best.lml + 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "needs observations")]
    fn empty_history_panics() {
        let _ = tune_scale_noise(&Matrix::identity(2), &[], &TuneGrid::default());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_grid_panics() {
        let grid = TuneGrid {
            scales: vec![],
            noises: vec![1.0],
        };
        let _ = tune_scale_noise(&Matrix::identity(2), &[(0, 0.0)], &grid);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_grid_panics() {
        let grid = TuneGrid {
            scales: vec![0.0],
            noises: vec![1.0],
        };
        let _ = tune_scale_noise(&Matrix::identity(2), &[(0, 0.0)], &grid);
    }
}
