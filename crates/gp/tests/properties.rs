//! Property-based tests for the GP layer.

use easeml_gp::kernel::{Kernel, Matern52Kernel, RbfKernel};
use easeml_gp::mll::log_marginal_likelihood;
use easeml_gp::{ArmPrior, GpPosterior};
use easeml_linalg::Cholesky;
use proptest::prelude::*;

fn features(n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-2.0f64..2.0, 3), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rbf_gram_is_psd((xs,) in (2usize..8).prop_flat_map(|n| (features(n),))) {
        let g = RbfKernel::new(0.8).gram(&xs);
        prop_assert!(Cholesky::factor_with_jitter(&g, 1e-10, 10).is_ok());
    }

    #[test]
    fn matern_gram_is_psd((xs,) in (2usize..8).prop_flat_map(|n| (features(n),))) {
        let g = Matern52Kernel::new(1.2).gram(&xs);
        prop_assert!(Cholesky::factor_with_jitter(&g, 1e-10, 10).is_ok());
    }

    #[test]
    fn posterior_variance_is_monotone_nonincreasing_in_observations(
        (xs, plays) in (3usize..7).prop_flat_map(|n| {
            (features(n), prop::collection::vec((0usize..n, -1.0f64..1.0), 1..12))
        })
    ) {
        let prior = ArmPrior::from_kernel(&RbfKernel::new(1.0), &xs);
        let k = prior.num_arms();
        let mut gp = GpPosterior::new(prior, 0.05);
        let mut prev: Vec<f64> = gp.vars().to_vec();
        for (arm, y) in plays {
            gp.observe(arm, y);
            for j in 0..k {
                // More data never increases posterior variance (up to
                // numerical slack).
                prop_assert!(gp.var(j) <= prev[j] + 1e-8,
                    "variance of arm {j} grew: {} -> {}", prev[j], gp.var(j));
            }
            prev = gp.vars().to_vec();
        }
    }

    #[test]
    fn posterior_mean_is_bounded_by_observation_extremes_for_independent_prior(
        plays in prop::collection::vec((0usize..4, 0.0f64..1.0), 1..16)
    ) {
        // With an independent prior and zero prior mean, each arm's
        // posterior mean is a shrunk average of its own observations, so it
        // lies between 0 and the max observed reward.
        let mut gp = GpPosterior::new(ArmPrior::independent(4, 1.0), 0.05);
        for &(arm, y) in &plays {
            gp.observe(arm, y);
        }
        let max_y = plays.iter().map(|&(_, y)| y).fold(0.0f64, f64::max);
        for j in 0..4 {
            prop_assert!(gp.mean(j) >= -1e-9);
            prop_assert!(gp.mean(j) <= max_y + 1e-9);
        }
    }

    #[test]
    fn lml_is_finite_and_decreases_with_gross_mismatch(
        (xs, shift) in (3usize..6).prop_flat_map(|n| (features(n), 5.0f64..20.0))
    ) {
        let prior = ArmPrior::from_kernel(&RbfKernel::new(1.0), &xs);
        let obs: Vec<(usize, f64)> = (0..xs.len()).map(|i| (i, 0.1)).collect();
        let shifted: Vec<(usize, f64)> = obs.iter().map(|&(a, y)| (a, y + shift)).collect();
        let l0 = log_marginal_likelihood(&prior, 0.05, &obs);
        let l1 = log_marginal_likelihood(&prior, 0.05, &shifted);
        prop_assert!(l0.is_finite() && l1.is_finite());
        prop_assert!(l1 < l0);
    }

    #[test]
    fn observed_arm_mean_approaches_its_reward_as_noise_vanishes(
        y in -1.0f64..1.0
    ) {
        let mut gp = GpPosterior::new(ArmPrior::independent(2, 1.0), 1e-8);
        gp.observe(0, y);
        prop_assert!((gp.mean(0) - y).abs() < 1e-6);
        prop_assert!(gp.var(0) < 1e-6);
    }
}
