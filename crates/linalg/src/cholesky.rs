//! Cholesky factorization of symmetric positive-definite matrices, with the
//! incremental operations the GP posterior needs.

use crate::triangular::{solve_lower, solve_lower_transpose};
use crate::{LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `L` of an SPD matrix `A = L Lᵀ`.
///
/// Beyond the usual solve/log-det operations, this factor supports the two
/// incremental updates that make the GP-UCB inner loop cheap:
///
/// * [`Cholesky::extend`] grows the factored matrix by one row and column in
///   O(n²) — used every time the bandit observes a new reward, instead of
///   refactorizing the (t+1)×(t+1) Gram matrix from scratch in O(t³);
/// * [`Cholesky::rank1_update`] / [`Cholesky::rank1_downdate`] apply
///   `A ± v vᵀ` in O(n²).
///
/// # Examples
///
/// ```
/// use easeml_linalg::{Cholesky, Matrix};
///
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let chol = Cholesky::factor(&a).unwrap();
/// let x = chol.solve(&[2.0, 1.0]).unwrap();
/// let b = a.matvec(&x).unwrap();
/// assert!((b[0] - 2.0).abs() < 1e-12 && (b[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors an SPD matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input and
    /// [`LinalgError::NotPositiveDefinite`] when a pivot is non-positive.
    pub fn factor(a: &Matrix) -> Result<Self> {
        let _timing = easeml_obs::global_timer(easeml_obs::Component::CholeskyFactor);
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 || !s.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i, value: s });
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Factors `a`, retrying with exponentially growing diagonal jitter when
    /// the matrix is positive *semi*-definite or mildly indefinite — the
    /// normal state of affairs for empirical kernel matrices built from
    /// finite samples.
    ///
    /// Jitter starts at `initial_jitter` (scaled by the mean diagonal) and is
    /// multiplied by 10 for up to `attempts` tries. Returns the factor and
    /// the jitter that succeeded.
    ///
    /// # Errors
    ///
    /// Propagates the final [`LinalgError::NotPositiveDefinite`] when even
    /// the largest jitter fails.
    pub fn factor_with_jitter(
        a: &Matrix,
        initial_jitter: f64,
        attempts: usize,
    ) -> Result<(Self, f64)> {
        match Self::factor(a) {
            Ok(c) => return Ok((c, 0.0)),
            Err(LinalgError::NotSquare { rows, cols }) => {
                return Err(LinalgError::NotSquare { rows, cols })
            }
            Err(_) => {}
        }
        let diag_scale = {
            let d = a.diag();
            let m = crate::vec_ops::mean(&d).abs();
            if m > 0.0 {
                m
            } else {
                1.0
            }
        };
        let mut jitter = initial_jitter * diag_scale;
        let mut last_err = LinalgError::NotPositiveDefinite {
            pivot: 0,
            value: 0.0,
        };
        for attempt in 1..=attempts {
            let mut aj = a.clone();
            aj.add_diag_mut(jitter);
            match Self::factor(&aj) {
                Ok(c) => {
                    easeml_obs::global_handle().emit(|| easeml_obs::Event::JitterRetry {
                        attempts: attempt as u64,
                        jitter,
                        parent: easeml_obs::current_span(),
                    });
                    return Ok((c, jitter));
                }
                Err(e) => last_err = e,
            }
            jitter *= 10.0;
        }
        Err(last_err)
    }

    /// Creates an empty 0×0 factor; useful as the starting point for a purely
    /// incremental build via [`Cholesky::extend`].
    pub fn empty() -> Self {
        Cholesky {
            l: Matrix::zeros(0, 0),
        }
    }

    /// Dimension of the factored matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrows the lower-triangular factor `L`.
    #[inline]
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Cheap 2-norm condition-number estimate of the factored matrix:
    /// `(max Lᵢᵢ / min Lᵢᵢ)²`. The diagonal of `L` brackets the singular
    /// values of `A = L Lᵀ`, so this underestimates the true κ₂ but tracks
    /// its growth — enough to flag numerical degradation in telemetry
    /// without an O(n³) SVD. Returns 1 for an empty factor.
    pub fn condition_estimate(&self) -> f64 {
        let n = self.l.rows();
        if n == 0 {
            return 1.0;
        }
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for i in 0..n {
            let d = self.l[(i, i)];
            min = min.min(d);
            max = max.max(d);
        }
        if min <= 0.0 {
            return f64::INFINITY;
        }
        let ratio = max / min;
        ratio * ratio
    }

    /// Solves `A x = b` using the factor (`L Lᵀ x = b`).
    ///
    /// # Errors
    ///
    /// Shape errors when `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let _timing = easeml_obs::global_timer(easeml_obs::Component::CholeskySolve);
        let y = solve_lower(&self.l, b)?;
        solve_lower_transpose(&self.l, &y)
    }

    /// Solves `L y = b` (half-solve). The squared norm of the result is the
    /// quadratic form `bᵀ A⁻¹ b`, which is exactly what the GP posterior
    /// variance needs.
    ///
    /// # Errors
    ///
    /// Shape errors when `b.len() != dim()`.
    pub fn half_solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        solve_lower(&self.l, b)
    }

    /// Quadratic form `bᵀ A⁻¹ b`, always ≥ 0 for SPD `A`.
    ///
    /// # Errors
    ///
    /// Shape errors when `b.len() != dim()`.
    pub fn quad_form(&self, b: &[f64]) -> Result<f64> {
        let y = self.half_solve(b)?;
        Ok(crate::vec_ops::dot(&y, &y))
    }

    /// Natural logarithm of `det(A) = det(L)²`.
    pub fn log_det(&self) -> f64 {
        2.0 * (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>()
    }

    /// Reconstructs `A = L Lᵀ` (mainly for testing and diagnostics).
    pub fn reconstruct(&self) -> Matrix {
        let n = self.dim();
        Matrix::from_fn(n, n, |i, j| {
            let k = i.min(j) + 1;
            (0..k).map(|t| self.l[(i, t)] * self.l[(j, t)]).sum()
        })
    }

    /// Extends the factor of an n×n matrix `A` to the factor of the
    /// (n+1)×(n+1) matrix
    ///
    /// ```text
    /// [ A   c ]
    /// [ cᵀ  d ]
    /// ```
    ///
    /// in O(n²): the new off-diagonal row solves `L r = c` and the new
    /// diagonal entry is `sqrt(d − ‖r‖²)`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] if `c.len() != dim()`, and
    /// [`LinalgError::NotPositiveDefinite`] when the extended matrix is not
    /// positive definite (`d ≤ ‖r‖²`).
    pub fn extend(&mut self, c: &[f64], d: f64) -> Result<()> {
        let _timing = easeml_obs::global_timer(easeml_obs::Component::CholeskyExtend);
        let n = self.dim();
        if c.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, 1),
                found: (c.len(), 1),
            });
        }
        let r = solve_lower(&self.l, c)?;
        let s = d - crate::vec_ops::dot(&r, &r);
        if s <= 0.0 || !s.is_finite() {
            return Err(LinalgError::NotPositiveDefinite { pivot: n, value: s });
        }
        let mut l = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            let (src, dst) = (self.l.row(i), l.row_mut(i));
            dst[..=i].copy_from_slice(&src[..=i]);
        }
        l.row_mut(n)[..n].copy_from_slice(&r);
        l[(n, n)] = s.sqrt();
        self.l = l;
        Ok(())
    }

    /// Applies the rank-1 update `A ← A + v vᵀ` directly on the factor in
    /// O(n²) using Givens-style rotations.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] if `v.len() != dim()`.
    pub fn rank1_update(&mut self, v: &[f64]) -> Result<()> {
        let n = self.dim();
        if v.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, 1),
                found: (v.len(), 1),
            });
        }
        let mut w = v.to_vec();
        for k in 0..n {
            let lkk = self.l[(k, k)];
            let r = (lkk * lkk + w[k] * w[k]).sqrt();
            let c = r / lkk;
            let s = w[k] / lkk;
            self.l[(k, k)] = r;
            for i in (k + 1)..n {
                let lik = self.l[(i, k)];
                self.l[(i, k)] = (lik + s * w[i]) / c;
                w[i] = c * w[i] - s * self.l[(i, k)];
            }
        }
        Ok(())
    }

    /// Applies the rank-1 downdate `A ← A − v vᵀ` on the factor in O(n²).
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] if `v.len() != dim()`;
    /// [`LinalgError::DowndateBreaksPositivity`] when `A − v vᵀ` would not be
    /// positive definite (the factor is left unchanged in that case).
    pub fn rank1_downdate(&mut self, v: &[f64]) -> Result<()> {
        let n = self.dim();
        if v.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, 1),
                found: (v.len(), 1),
            });
        }
        let mut l = self.l.clone();
        let mut w = v.to_vec();
        for k in 0..n {
            let lkk = l[(k, k)];
            let under = lkk * lkk - w[k] * w[k];
            if under <= 0.0 {
                return Err(LinalgError::DowndateBreaksPositivity);
            }
            let r = under.sqrt();
            let c = r / lkk;
            let s = w[k] / lkk;
            l[(k, k)] = r;
            for i in (k + 1)..n {
                let lik = l[(i, k)];
                l[(i, k)] = (lik - s * w[i]) / c;
                w[i] = c * w[i] - s * l[(i, k)];
            }
        }
        self.l = l;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A well-conditioned SPD test matrix: B Bᵀ + n·I for a fixed B.
    fn spd(n: usize, seed: u64) -> Matrix {
        // Simple deterministic LCG so tests do not need a rand dependency
        // in this module.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let b = Matrix::from_fn(n, n, |_, _| next());
        let mut a = b.matmul(&b.transpose()).unwrap();
        a.add_diag_mut(n as f64);
        a
    }

    #[test]
    fn condition_estimate_tracks_diagonal_spread() {
        assert_eq!(Cholesky::empty().condition_estimate(), 1.0);
        let id = Cholesky::factor(&Matrix::identity(4)).unwrap();
        assert!((id.condition_estimate() - 1.0).abs() < 1e-12);
        // diag(100, 1): L = diag(10, 1), estimate (10/1)² = true κ₂ = 100.
        let skewed = Cholesky::factor(&Matrix::from_diag(&[100.0, 1.0])).unwrap();
        assert!((skewed.condition_estimate() - 100.0).abs() < 1e-9);
        // The estimate never exceeds, and grows with, the true κ₂.
        let a = spd(6, 3);
        let c = Cholesky::factor(&a).unwrap();
        assert!(c.condition_estimate() >= 1.0);
    }

    #[test]
    fn numerical_health_events_reach_the_global_recorder() {
        // The global recorder is process state; this single test covers
        // both emission sites (jitter retry + PSD projection) to avoid
        // racing another test for it under the parallel runner.
        let recorder = std::sync::Arc::new(easeml_obs::InMemoryRecorder::new());
        let previous = easeml_obs::set_global_recorder(Some(recorder.clone()));

        // Indefinite matrix: plain factorization fails, jitter rescues it.
        let ind = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        let psd = crate::project_psd(&ind, 0.0).unwrap();
        let _ = Cholesky::factor_with_jitter(&psd, 1e-10, 12).unwrap();

        easeml_obs::set_global_recorder(previous);
        let events = recorder.events();
        let jitter: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, easeml_obs::Event::JitterRetry { .. }))
            .collect();
        assert_eq!(jitter.len(), 1, "{events:?}");
        match jitter[0] {
            easeml_obs::Event::JitterRetry {
                attempts, jitter, ..
            } => {
                assert!(*attempts >= 1);
                assert!(*jitter > 0.0);
            }
            _ => unreachable!(),
        }
        let proj: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                easeml_obs::Event::PsdProjectionApplied {
                    clipped,
                    clipped_mass,
                    ..
                } => Some((*clipped, *clipped_mass)),
                _ => None,
            })
            .collect();
        assert_eq!(proj.len(), 1, "{events:?}");
        let (clipped, mass) = proj[0];
        assert_eq!(clipped, 1, "one eigenvalue (−1) clipped to 0");
        assert!((mass - 1.0).abs() < 1e-9, "clipped mass ≈ 1, got {mass}");
    }

    #[test]
    fn factor_and_reconstruct() {
        for n in [1, 2, 5, 12] {
            let a = spd(n, n as u64);
            let c = Cholesky::factor(&a).unwrap();
            assert!(c.reconstruct().approx_eq(&a, 1e-9), "n = {n}");
        }
    }

    #[test]
    fn solve_inverts() {
        let a = spd(6, 42);
        let c = Cholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..6).map(|i| (i as f64) - 2.5).collect();
        let x = c.solve(&b).unwrap();
        let recon = a.matvec(&x).unwrap();
        for (r, bb) in recon.iter().zip(&b) {
            assert!((r - bb).abs() < 1e-9);
        }
    }

    #[test]
    fn quad_form_is_positive_and_consistent() {
        let a = spd(5, 7);
        let c = Cholesky::factor(&a).unwrap();
        let v = [1.0, -1.0, 0.5, 2.0, 0.0];
        let q = c.quad_form(&v).unwrap();
        assert!(q > 0.0);
        // Compare with explicit x = A⁻¹ v, q = vᵀx.
        let x = c.solve(&v).unwrap();
        assert!((q - crate::vec_ops::dot(&v, &x)).abs() < 1e-9);
    }

    #[test]
    fn log_det_matches_2x2_closed_form() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let c = Cholesky::factor(&a).unwrap();
        let det: f64 = 4.0 * 3.0 - 2.0 * 2.0;
        assert!((c.log_det() - det.ln()).abs() < 1e-12);
    }

    #[test]
    fn non_spd_is_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        let rect = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::factor(&rect),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn jitter_rescues_psd_matrix() {
        // Rank-deficient PSD matrix (outer product).
        let v = [1.0, 2.0, 3.0];
        let a = Matrix::from_fn(3, 3, |i, j| v[i] * v[j]);
        assert!(Cholesky::factor(&a).is_err());
        let (c, jitter) = Cholesky::factor_with_jitter(&a, 1e-10, 12).unwrap();
        assert!(jitter > 0.0);
        assert_eq!(c.dim(), 3);
    }

    #[test]
    fn jitter_passes_through_non_square_error() {
        let rect = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::factor_with_jitter(&rect, 1e-10, 3),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn extend_matches_full_factorization() {
        let a = spd(8, 3);
        // Build incrementally from the empty factor.
        let mut inc = Cholesky::empty();
        for k in 0..8 {
            let c: Vec<f64> = (0..k).map(|i| a[(k, i)]).collect();
            inc.extend(&c, a[(k, k)]).unwrap();
        }
        let full = Cholesky::factor(&a).unwrap();
        assert!(inc.l().approx_eq(full.l(), 1e-9));
    }

    #[test]
    fn extend_rejects_indefinite_growth() {
        let mut c = Cholesky::factor(&Matrix::from_rows(&[&[1.0]])).unwrap();
        // New diagonal too small: [1 1; 1 0.5] has det < 0.
        assert!(matches!(
            c.extend(&[1.0], 0.5),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        assert!(matches!(
            c.extend(&[1.0, 2.0], 5.0),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn rank1_update_matches_explicit() {
        let a = spd(5, 11);
        let v = [0.3, -0.8, 1.1, 0.0, 0.5];
        let mut c = Cholesky::factor(&a).unwrap();
        c.rank1_update(&v).unwrap();
        let vv = Matrix::from_fn(5, 5, |i, j| v[i] * v[j]);
        let expected = &a + &vv;
        assert!(c.reconstruct().approx_eq(&expected, 1e-9));
    }

    #[test]
    fn rank1_downdate_reverses_update() {
        let a = spd(5, 13);
        let v = [0.3, -0.8, 1.1, 0.0, 0.5];
        let mut c = Cholesky::factor(&a).unwrap();
        c.rank1_update(&v).unwrap();
        c.rank1_downdate(&v).unwrap();
        assert!(c.reconstruct().approx_eq(&a, 1e-8));
    }

    #[test]
    fn downdate_refuses_to_break_positivity() {
        let a = Matrix::identity(2);
        let mut c = Cholesky::factor(&a).unwrap();
        let before = c.clone();
        assert_eq!(
            c.rank1_downdate(&[2.0, 0.0]),
            Err(LinalgError::DowndateBreaksPositivity)
        );
        // Factor must be untouched on failure.
        assert_eq!(c, before);
    }

    #[test]
    fn shape_errors_for_updates() {
        let mut c = Cholesky::factor(&Matrix::identity(3)).unwrap();
        assert!(c.rank1_update(&[1.0]).is_err());
        assert!(c.rank1_downdate(&[1.0]).is_err());
    }

    #[test]
    fn empty_factor_behaviour() {
        let c = Cholesky::empty();
        assert_eq!(c.dim(), 0);
        assert_eq!(c.log_det(), 0.0);
        assert_eq!(c.solve(&[]).unwrap(), Vec::<f64>::new());
        assert_eq!(c.quad_form(&[]).unwrap(), 0.0);
    }
}
