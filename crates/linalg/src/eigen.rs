//! Symmetric eigendecomposition via the cyclic Jacobi method, and the PSD
//! projection built on it.
//!
//! Empirical kernel matrices built from finite quality-vector samples
//! (Appendix A of the paper) are symmetric but can be indefinite due to
//! round-off or because the chosen similarity function is not a true kernel.
//! [`project_psd`] clips negative eigenvalues to restore positive
//! semi-definiteness before the GP layer adds observation noise and factors.

use crate::{LinalgError, Matrix, Result};

/// Result of a symmetric eigendecomposition `A = V diag(λ) Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as matrix columns, ordered to match
    /// `values`.
    pub vectors: Matrix,
}

impl SymmetricEigen {
    /// Reconstructs `V diag(λ) Vᵀ` (mainly for testing).
    pub fn reconstruct(&self) -> Matrix {
        let n = self.values.len();
        Matrix::from_fn(n, n, |i, j| {
            (0..n)
                .map(|k| self.vectors[(i, k)] * self.values[k] * self.vectors[(j, k)])
                .sum()
        })
    }
}

const MAX_SWEEPS: usize = 64;

/// Computes the eigendecomposition of a symmetric matrix with the cyclic
/// Jacobi method.
///
/// # Errors
///
/// [`LinalgError::NotSquare`] for non-square input;
/// [`LinalgError::EigenNoConvergence`] if the off-diagonal mass has not
/// vanished after the sweep budget (does not happen for symmetric input of
/// the sizes used here).
pub fn eigen(a: &Matrix) -> Result<SymmetricEigen> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(SymmetricEigen {
            values: vec![],
            vectors: Matrix::zeros(0, 0),
        });
    }
    let mut m = a.clone();
    m.symmetrize_mut();
    let mut v = Matrix::identity(n);
    let scale = m.max_abs().max(1.0);
    let tol = 1e-14 * scale;

    for _ in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol * 1e-2 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = 0.5 * (aqq - app) / apq;
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply the rotation G(p, q, θ) on both sides: m = Gᵀ m G.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut off = 0.0f64;
    for i in 0..n {
        for j in (i + 1)..n {
            off += m[(i, j)] * m[(i, j)];
        }
    }
    let off = off.sqrt();
    if off > tol.max(1e-10 * scale) {
        return Err(LinalgError::EigenNoConvergence { off_diagonal: off });
    }

    // Sort eigenpairs in descending eigenvalue order.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(j, j)].partial_cmp(&m[(i, i)]).unwrap());
    let values: Vec<f64> = order.iter().map(|&k| m[(k, k)]).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| v[(i, order[j])]);
    Ok(SymmetricEigen { values, vectors })
}

/// Projects a symmetric matrix onto the cone of positive semi-definite
/// matrices by clipping negative eigenvalues to `floor` (≥ 0).
///
/// # Errors
///
/// Propagates errors from [`eigen`].
pub fn project_psd(a: &Matrix, floor: f64) -> Result<Matrix> {
    assert!(floor >= 0.0, "PSD floor must be non-negative");
    let mut decomp = eigen(a)?;
    let mut clipped = 0u64;
    let mut clipped_mass = 0.0;
    for v in &mut decomp.values {
        if *v < floor {
            clipped += 1;
            clipped_mass += floor - *v;
            *v = floor;
        }
    }
    if clipped == 0 {
        let mut out = a.clone();
        out.symmetrize_mut();
        return Ok(out);
    }
    easeml_obs::global_handle().emit(|| easeml_obs::Event::PsdProjectionApplied {
        floor,
        clipped,
        clipped_mass,
        parent: easeml_obs::current_span(),
    });
    let mut out = decomp.reconstruct();
    out.symmetrize_mut();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let e = eigen(&a).unwrap();
        assert_eq!(e.values, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthonormality() {
        let a = Matrix::from_rows(&[
            &[4.0, 1.0, 0.5, 0.0],
            &[1.0, 3.0, 0.2, -0.3],
            &[0.5, 0.2, 5.0, 1.0],
            &[0.0, -0.3, 1.0, 2.0],
        ]);
        let e = eigen(&a).unwrap();
        assert!(e.reconstruct().approx_eq(&a, 1e-8));
        // VᵀV = I.
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(4), 1e-8));
    }

    #[test]
    fn indefinite_matrix_has_negative_eigenvalue() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        let e = eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn psd_projection_makes_cholesky_possible() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(crate::Cholesky::factor(&a).is_err());
        let p = project_psd(&a, 1e-9).unwrap();
        // After projection (with tiny positive floor) the factorization
        // succeeds, possibly with a whisker of jitter.
        let (c, _) = crate::Cholesky::factor_with_jitter(&p, 1e-12, 8).unwrap();
        assert_eq!(c.dim(), 2);
        // Projection is idempotent-ish: already-PSD input is unchanged.
        let id = Matrix::identity(3);
        assert!(project_psd(&id, 0.0).unwrap().approx_eq(&id, 1e-12));
    }

    #[test]
    fn projection_preserves_psd_part() {
        // For A = diag(2, -1), projection with floor 0 yields diag(2, 0).
        let a = Matrix::from_diag(&[2.0, -1.0]);
        let p = project_psd(&a, 0.0).unwrap();
        assert!(p.approx_eq(&Matrix::from_diag(&[2.0, 0.0]), 1e-10));
    }

    #[test]
    fn empty_and_non_square() {
        let e = eigen(&Matrix::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
        assert!(matches!(
            eigen(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "floor")]
    fn negative_floor_panics() {
        let _ = project_psd(&Matrix::identity(2), -1.0);
    }
}
