//! Error type shared by the factorizations and solvers.

use std::fmt;

/// Errors produced by factorizations and solvers in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes. Carries `(expected, found)`
    /// rendered as `rows x cols` strings.
    ShapeMismatch {
        /// Shape the operation required.
        expected: (usize, usize),
        /// Shape that was supplied.
        found: (usize, usize),
    },
    /// A matrix that must be square was not.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// Cholesky factorization hit a non-positive pivot: the matrix is not
    /// positive definite (within the attempted jitter budget).
    NotPositiveDefinite {
        /// Index of the pivot that failed.
        pivot: usize,
        /// Value of the failing pivot.
        value: f64,
    },
    /// A triangular solve encountered a (near-)zero diagonal entry.
    SingularTriangular {
        /// Index of the zero diagonal entry.
        index: usize,
    },
    /// The Jacobi eigensolver did not converge within its sweep budget.
    EigenNoConvergence {
        /// Off-diagonal norm remaining after the final sweep.
        off_diagonal: f64,
    },
    /// A rank-1 downdate would have made the factor indefinite.
    DowndateBreaksPositivity,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { expected, found } => write!(
                f,
                "shape mismatch: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite: pivot {pivot} has value {value:.6e}"
            ),
            LinalgError::SingularTriangular { index } => {
                write!(f, "triangular matrix is singular at diagonal index {index}")
            }
            LinalgError::EigenNoConvergence { off_diagonal } => write!(
                f,
                "Jacobi eigensolver failed to converge (off-diagonal norm {off_diagonal:.3e})"
            ),
            LinalgError::DowndateBreaksPositivity => {
                write!(f, "rank-1 downdate would break positive definiteness")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::ShapeMismatch {
            expected: (3, 4),
            found: (2, 2),
        };
        assert_eq!(e.to_string(), "shape mismatch: expected 3x4, found 2x2");

        let e = LinalgError::NotSquare { rows: 2, cols: 5 };
        assert!(e.to_string().contains("2x5"));

        let e = LinalgError::NotPositiveDefinite {
            pivot: 1,
            value: -0.5,
        };
        assert!(e.to_string().contains("pivot 1"));

        let e = LinalgError::SingularTriangular { index: 7 };
        assert!(e.to_string().contains("index 7"));

        let e = LinalgError::EigenNoConvergence { off_diagonal: 1e-3 };
        assert!(e.to_string().contains("converge"));

        assert!(LinalgError::DowndateBreaksPositivity
            .to_string()
            .contains("downdate"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            LinalgError::SingularTriangular { index: 1 },
            LinalgError::SingularTriangular { index: 1 }
        );
        assert_ne!(
            LinalgError::SingularTriangular { index: 1 },
            LinalgError::SingularTriangular { index: 2 }
        );
    }
}
