//! Dense linear algebra substrate for the ease.ml reproduction.
//!
//! The Gaussian-process machinery at the heart of ease.ml's model-selection
//! subsystem needs a small but reliable set of dense-matrix operations over
//! symmetric positive-definite (SPD) systems:
//!
//! * [`Matrix`] — a row-major dense `f64` matrix with the usual arithmetic,
//!   products, and structural helpers;
//! * [`Cholesky`] — an SPD factorization supporting solves, log-determinants,
//!   **incremental extension** by one row/column (the GP posterior grows by
//!   one observation per bandit step, so refactorizing from scratch would turn
//!   an O(t²) update into O(t³)), and rank-1 updates;
//! * triangular solves ([`solve_lower`], [`solve_upper`], and transposed
//!   variants) used by both the factorization and the marginal likelihood;
//! * a symmetric [`eigen`] decomposition (cyclic Jacobi) used to repair
//!   empirical kernels that are only *almost* positive semi-definite
//!   ([`project_psd`]);
//! * [`Lu`] (partial pivoting) for general square systems, determinants,
//!   and inverses, and [`Qr`] (Householder) with [`least_squares`] for
//!   overdetermined fits;
//! * small vector helpers in [`vec_ops`].
//!
//! Everything is pure safe Rust with no external dependencies. The matrices
//! involved in the paper's experiments are small (at most a few hundred rows:
//! 179 models, ≤ 200 users), so clarity and correctness are favoured over
//! blocked/SIMD kernels; the implementations are still cache-friendly
//! (row-major traversal, no per-element allocation).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cholesky;
mod eigen;
mod error;
mod lu;
mod matrix;
mod qr;
mod triangular;
pub mod vec_ops;

pub use cholesky::Cholesky;
pub use eigen::{eigen, project_psd, SymmetricEigen};
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;
pub use qr::{least_squares, Qr};
pub use triangular::{solve_lower, solve_lower_transpose, solve_upper, solve_upper_transpose};

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
