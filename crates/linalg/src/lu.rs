//! LU decomposition with partial pivoting, for general (non-SPD) systems.
//!
//! The GP layer lives on Cholesky, but the tooling around it — solving for
//! kernel-parameter sensitivities, inverting small general matrices in
//! diagnostics — occasionally needs a general solver.

use crate::{LinalgError, Matrix, Result};

/// LU factorization `P A = L U` with partial pivoting, stored compactly
/// (unit-diagonal `L` below the diagonal of `lu`, `U` on and above).
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position i.
    perm: Vec<usize>,
    /// Number of row swaps (for the determinant's sign).
    swaps: usize,
}

impl Lu {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] for non-square input;
    /// [`LinalgError::SingularTriangular`] when a pivot column is all zero
    /// (the matrix is singular to working precision).
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut swaps = 0;

        for k in 0..n {
            // Partial pivot: largest |entry| in column k at or below row k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < 1e-300 {
                return Err(LinalgError::SingularTriangular { index: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                swaps += 1;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let delta = factor * lu[(k, j)];
                    lu[(i, j)] -= delta;
                }
            }
        }
        Ok(Lu { lu, perm, swaps })
    }

    /// Dimension of the factored matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Shape errors when `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, 1),
                found: (b.len(), 1),
            });
        }
        // Apply the permutation, then forward- and back-substitute.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 0..n {
            for j in 0..i {
                x[i] -= self.lu[(i, j)] * x[j];
            }
        }
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                x[i] -= self.lu[(i, j)] * x[j];
            }
            x[i] /= self.lu[(i, i)];
        }
        Ok(x)
    }

    /// The determinant of `A` (product of U's diagonal, sign from swaps).
    pub fn det(&self) -> f64 {
        let sign = if self.swaps.is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        sign * (0..self.dim()).map(|i| self.lu[(i, i)]).product::<f64>()
    }

    /// The inverse of `A`, column by column.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (cannot occur after a successful factor).
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn general3() -> Matrix {
        Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, -1.0, 3.0], &[2.0, 4.0, -2.0]])
    }

    #[test]
    fn solve_matches_matvec() {
        let a = general3();
        let lu = Lu::factor(&a).unwrap();
        let b = [5.0, -1.0, 2.0];
        let x = lu.solve(&b).unwrap();
        let recon = a.matvec(&x).unwrap();
        for (r, bb) in recon.iter().zip(&b) {
            assert!((r - bb).abs() < 1e-10);
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // a[0][0] = 0 requires a row swap.
        let lu = Lu::factor(&general3()).unwrap();
        assert_eq!(lu.dim(), 3);
        assert!(lu.det().abs() > 0.0);
    }

    #[test]
    fn determinant_known_values() {
        let id = Matrix::identity(4);
        assert!((Lu::factor(&id).unwrap().det() - 1.0).abs() < 1e-12);
        let d = Matrix::from_diag(&[2.0, 3.0, -1.0]);
        assert!((Lu::factor(&d).unwrap().det() + 6.0).abs() < 1e-12);
        // 2x2 closed form.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!((Lu::factor(&a).unwrap().det() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = general3();
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            Lu::factor(&a),
            Err(LinalgError::SingularTriangular { .. })
        ));
    }

    #[test]
    fn non_square_is_rejected() {
        assert!(matches!(
            Lu::factor(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn wrong_rhs_length_is_rejected() {
        let lu = Lu::factor(&Matrix::identity(2)).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
    }
}
