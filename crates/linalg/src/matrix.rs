//! A row-major dense `f64` matrix.

use crate::{LinalgError, Result};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major matrix of `f64` values.
///
/// This is deliberately minimal: it supports exactly the operations the GP
/// and scheduler layers need (construction, element access, arithmetic,
/// products, transposes, row/column extraction, and structural predicates).
///
/// # Examples
///
/// ```
/// use easeml_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c, a);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix with every entry set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a square matrix with `diag` on the diagonal and zeros
    /// elsewhere.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Creates a matrix from row slices. All rows must have equal length.
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows passed to Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(i, j)` for each entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Copy the main diagonal into a new vector.
    pub fn diag(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self[(i, i)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when the inner dimensions
    /// disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.cols, rhs.cols),
                found: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj loop order keeps the inner loop streaming over contiguous rows.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for j in 0..rrow.len() {
                    orow[j] += aik * rrow[j];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.cols, 1),
                found: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| crate::vec_ops::dot(self.row(i), v))
            .collect())
    }

    /// Scales every entry by `s`, in place.
    pub fn scale_mut(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Returns a scaled copy.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut out = self.clone();
        out.scale_mut(s);
        out
    }

    /// Adds `s` to each diagonal entry in place (useful for jitter /
    /// observation noise).
    pub fn add_diag_mut(&mut self, s: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += s;
        }
    }

    /// Extracts the square submatrix with rows and columns taken from
    /// `indices`, in order. Used to restrict a kernel matrix to the arms a
    /// bandit has actually played.
    pub fn submatrix(&self, indices: &[usize]) -> Matrix {
        Matrix::from_fn(indices.len(), indices.len(), |i, j| {
            self[(indices[i], indices[j])]
        })
    }

    /// Maximum absolute difference from its own transpose; 0 for symmetric
    /// matrices.
    pub fn asymmetry(&self) -> f64 {
        if !self.is_square() {
            return f64::INFINITY;
        }
        let mut worst = 0.0f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }

    /// Whether the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        self.is_square() && self.asymmetry() <= tol
    }

    /// Forces exact symmetry by averaging with the transpose, in place.
    pub fn symmetrize_mut(&mut self) {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, x| m.max(x.abs()))
    }

    /// Element-wise comparison within an absolute tolerance.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "matrix subtraction shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scaled(s)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:9.4}", self[(i, j)])?;
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_shape() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        assert!(!z.is_square());

        let id = Matrix::identity(3);
        assert!(id.is_square());
        assert_eq!(id.diag(), vec![1.0, 1.0, 1.0]);
        assert_eq!(id[(0, 1)], 0.0);

        let d = Matrix::from_diag(&[2.0, 5.0]);
        assert_eq!(d[(0, 0)], 2.0);
        assert_eq!(d[(1, 1)], 5.0);
        assert_eq!(d[(1, 0)], 0.0);

        let f = Matrix::filled(2, 2, 7.0);
        assert!(f.as_slice().iter().all(|&x| x == 7.0));
    }

    #[test]
    fn from_fn_matches_manual() {
        let m = Matrix::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(2, 1)], 21.0);
        assert_eq!(m.row(1), &[10.0, 11.0]);
        assert_eq!(m.col(0), vec![0.0, 10.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 0)], 3.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_identity_and_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matmul(&Matrix::identity(2)).unwrap(), a);

        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn matvec_known_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn arithmetic_operators() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::identity(2);
        let sum = &a + &b;
        assert_eq!(sum[(0, 0)], 2.0);
        assert_eq!(sum[(0, 1)], 2.0);
        let diff = &sum - &b;
        assert_eq!(diff, a);
        let scaled = &a * 2.0;
        assert_eq!(scaled[(1, 1)], 8.0);
    }

    #[test]
    fn diag_and_add_diag() {
        let mut m = Matrix::identity(3);
        m.add_diag_mut(0.5);
        assert_eq!(m.diag(), vec![1.5, 1.5, 1.5]);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn submatrix_selects_rows_and_cols() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.submatrix(&[3, 1]);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s[(0, 0)], m[(3, 3)]);
        assert_eq!(s[(0, 1)], m[(3, 1)]);
        assert_eq!(s[(1, 0)], m[(1, 3)]);
    }

    #[test]
    fn symmetry_predicates() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0 + 1e-12, 1.0]]);
        assert!(m.is_symmetric(1e-9));
        assert!(!m.is_symmetric(1e-15));
        m.symmetrize_mut();
        assert_eq!(m.asymmetry(), 0.0);
        assert!(!Matrix::zeros(1, 2).is_symmetric(1.0));
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Matrix::filled(2, 2, 1.0);
        let mut b = a.clone();
        b[(0, 0)] = 1.0 + 1e-10;
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&b, 1e-12));
        assert!(!a.approx_eq(&Matrix::zeros(2, 3), 1.0));
    }

    #[test]
    fn debug_format_is_bounded() {
        let m = Matrix::zeros(20, 20);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 20x20"));
        assert!(s.contains('…'));
    }
}
