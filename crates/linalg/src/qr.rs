//! Householder QR decomposition and least squares.
//!
//! Used by the diagnostics around hyperparameter tuning (fitting the
//! information-gain envelope of Theorems 1–3 to measured regret curves is a
//! small least-squares problem) and available to downstream users.

use crate::{LinalgError, Matrix, Result};

/// QR factorization `A = Q R` of an m×n matrix with m ≥ n, computed with
/// Householder reflections. `Q` is m×n with orthonormal columns (thin QR),
/// `R` is n×n upper triangular.
#[derive(Debug, Clone)]
pub struct Qr {
    q: Matrix,
    r: Matrix,
}

impl Qr {
    /// Factors `a`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when `a` has more columns than rows.
    pub fn factor(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, n),
                found: (m, n),
            });
        }
        let mut r = a.clone();
        // Accumulate Q as a full m×m product, then trim to m×n.
        let mut q_full = Matrix::identity(m);

        for k in 0..n {
            // Householder vector for column k below the diagonal.
            let mut norm = 0.0;
            for i in k..m {
                norm += r[(i, k)] * r[(i, k)];
            }
            let norm = norm.sqrt();
            if norm < 1e-300 {
                continue; // column already zero below the diagonal
            }
            let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
            let mut v = vec![0.0; m];
            for i in k..m {
                v[i] = r[(i, k)];
            }
            v[k] -= alpha;
            let vnorm2: f64 = v[k..].iter().map(|x| x * x).sum();
            if vnorm2 < 1e-300 {
                continue;
            }
            // Apply H = I − 2 v vᵀ / (vᵀv) to R (columns k..n).
            for j in k..n {
                let dot: f64 = (k..m).map(|i| v[i] * r[(i, j)]).sum();
                let scale = 2.0 * dot / vnorm2;
                for i in k..m {
                    r[(i, j)] -= scale * v[i];
                }
            }
            // Accumulate into Q: Q ← Q H (apply H from the right).
            for i in 0..m {
                let dot: f64 = (k..m).map(|j| q_full[(i, j)] * v[j]).sum();
                let scale = 2.0 * dot / vnorm2;
                for j in k..m {
                    q_full[(i, j)] -= scale * v[j];
                }
            }
        }

        let q = Matrix::from_fn(m, n, |i, j| q_full[(i, j)]);
        let r = Matrix::from_fn(n, n, |i, j| if j >= i { r[(i, j)] } else { 0.0 });
        Ok(Qr { q, r })
    }

    /// The thin orthonormal factor `Q` (m×n).
    #[inline]
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// The upper-triangular factor `R` (n×n).
    #[inline]
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Solves the least-squares problem `min ‖A x − b‖₂` via
    /// `R x = Qᵀ b`.
    ///
    /// # Errors
    ///
    /// Shape errors for wrong `b` length; singular-triangular errors for
    /// rank-deficient `A`.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.q.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                expected: (m, 1),
                found: (b.len(), 1),
            });
        }
        let qtb: Vec<f64> = (0..n)
            .map(|j| (0..m).map(|i| self.q[(i, j)] * b[i]).sum())
            .collect();
        crate::triangular::solve_upper(&self.r, &qtb)
    }
}

/// Convenience: least-squares fit of `A x ≈ b`.
///
/// # Errors
///
/// Propagates factorization and solve errors.
pub fn least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Qr::factor(a)?.solve_least_squares(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_reconstructs_the_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let qr = Qr::factor(&a).unwrap();
        let recon = qr.q().matmul(qr.r()).unwrap();
        assert!(recon.approx_eq(&a, 1e-10));
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = Matrix::from_rows(&[
            &[2.0, -1.0, 0.5],
            &[0.0, 3.0, 1.0],
            &[1.0, 1.0, -2.0],
            &[4.0, 0.0, 0.3],
        ]);
        let qr = Qr::factor(&a).unwrap();
        let qtq = qr.q().transpose().matmul(qr.q()).unwrap();
        assert!(qtq.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 7.0]]);
        let qr = Qr::factor(&a).unwrap();
        assert_eq!(qr.r()[(1, 0)], 0.0);
    }

    #[test]
    fn exact_system_is_solved_exactly() {
        // Square invertible system: least squares = exact solve.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = [5.0, 10.0];
        let x = least_squares(&a, &b).unwrap();
        let recon = a.matvec(&x).unwrap();
        for (r, bb) in recon.iter().zip(&b) {
            assert!((r - bb).abs() < 1e-10);
        }
    }

    #[test]
    fn overdetermined_fit_matches_normal_equations() {
        // Fit y = c0 + c1 x to 4 points; compare with the closed form.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 2.1, 2.9, 4.2];
        let a = Matrix::from_fn(4, 2, |i, j| if j == 0 { 1.0 } else { xs[i] });
        let c = least_squares(&a, &ys).unwrap();
        // Closed-form slope/intercept for these points.
        let n = 4.0;
        let sx: f64 = xs.iter().sum();
        let sy: f64 = ys.iter().sum();
        let sxx: f64 = xs.iter().map(|x| x * x).sum();
        let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        let intercept = (sy - slope * sx) / n;
        assert!((c[0] - intercept).abs() < 1e-10);
        assert!((c[1] - slope).abs() < 1e-10);
    }

    #[test]
    fn wide_matrix_is_rejected() {
        assert!(matches!(
            Qr::factor(&Matrix::zeros(2, 3)),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn wrong_rhs_length_is_rejected() {
        let qr = Qr::factor(&Matrix::identity(3)).unwrap();
        assert!(qr.solve_least_squares(&[1.0]).is_err());
    }

    #[test]
    fn rank_deficient_least_squares_errors() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]]);
        let qr = Qr::factor(&a).unwrap();
        assert!(qr.solve_least_squares(&[1.0, 1.0, 1.0]).is_err());
    }
}
