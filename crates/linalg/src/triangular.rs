//! Forward and backward substitution for triangular systems.

use crate::{LinalgError, Matrix, Result};

const SINGULARITY_TOL: f64 = 1e-300;

fn check_square_system(m: &Matrix, b: &[f64]) -> Result<()> {
    if !m.is_square() {
        return Err(LinalgError::NotSquare {
            rows: m.rows(),
            cols: m.cols(),
        });
    }
    if b.len() != m.rows() {
        return Err(LinalgError::ShapeMismatch {
            expected: (m.rows(), 1),
            found: (b.len(), 1),
        });
    }
    Ok(())
}

/// Solves `L x = b` where `L` is lower triangular (entries above the
/// diagonal are ignored).
///
/// # Errors
///
/// Returns [`LinalgError::SingularTriangular`] on a zero diagonal entry and
/// shape errors when `L` is not square or `b` has the wrong length.
pub fn solve_lower(l: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    check_square_system(l, b)?;
    let n = l.rows();
    let mut x = b.to_vec();
    for i in 0..n {
        let row = l.row(i);
        let mut s = x[i];
        for j in 0..i {
            s -= row[j] * x[j];
        }
        let d = row[i];
        if d.abs() < SINGULARITY_TOL {
            return Err(LinalgError::SingularTriangular { index: i });
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solves `U x = b` where `U` is upper triangular (entries below the
/// diagonal are ignored).
///
/// # Errors
///
/// Same failure modes as [`solve_lower`].
pub fn solve_upper(u: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    check_square_system(u, b)?;
    let n = u.rows();
    let mut x = b.to_vec();
    for i in (0..n).rev() {
        let row = u.row(i);
        let mut s = x[i];
        for j in (i + 1)..n {
            s -= row[j] * x[j];
        }
        let d = row[i];
        if d.abs() < SINGULARITY_TOL {
            return Err(LinalgError::SingularTriangular { index: i });
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solves `Lᵀ x = b` given lower-triangular `L`, without materializing the
/// transpose. This is the second half of a Cholesky solve.
///
/// # Errors
///
/// Same failure modes as [`solve_lower`].
pub fn solve_lower_transpose(l: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    check_square_system(l, b)?;
    let n = l.rows();
    let mut x = b.to_vec();
    for i in (0..n).rev() {
        let mut s = x[i];
        // Lᵀ[i][j] = L[j][i] for j > i.
        for j in (i + 1)..n {
            s -= l[(j, i)] * x[j];
        }
        let d = l[(i, i)];
        if d.abs() < SINGULARITY_TOL {
            return Err(LinalgError::SingularTriangular { index: i });
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solves `Uᵀ x = b` given upper-triangular `U`, without materializing the
/// transpose.
///
/// # Errors
///
/// Same failure modes as [`solve_lower`].
pub fn solve_upper_transpose(u: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    check_square_system(u, b)?;
    let n = u.rows();
    let mut x = b.to_vec();
    for i in 0..n {
        let mut s = x[i];
        for j in 0..i {
            s -= u[(j, i)] * x[j];
        }
        let d = u[(i, i)];
        if d.abs() < SINGULARITY_TOL {
            return Err(LinalgError::SingularTriangular { index: i });
        }
        x[i] = s / d;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec_ops::dot;

    fn lower3() -> Matrix {
        Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[1.0, 3.0, 0.0], &[4.0, -1.0, 5.0]])
    }

    #[test]
    fn solve_lower_matches_forward_elimination() {
        let l = lower3();
        let b = [2.0, 7.0, 12.0];
        let x = solve_lower(&l, &b).unwrap();
        // Verify L x = b.
        for i in 0..3 {
            assert!((dot(&l.row(i)[..=i], &x[..=i]) - b[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_upper_matches_back_substitution() {
        let u = lower3().transpose();
        let b = [2.0, 7.0, 10.0];
        let x = solve_upper(&u, &b).unwrap();
        let recon = u.matvec(&x).unwrap();
        for i in 0..3 {
            assert!((recon[i] - b[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_solvers_agree_with_explicit_transpose() {
        let l = lower3();
        let b = [1.0, -2.0, 0.5];
        let via_t = solve_lower_transpose(&l, &b).unwrap();
        let explicit = solve_upper(&l.transpose(), &b).unwrap();
        for (a, e) in via_t.iter().zip(&explicit) {
            assert!((a - e).abs() < 1e-12);
        }

        let u = lower3().transpose();
        let via_t = solve_upper_transpose(&u, &b).unwrap();
        let explicit = solve_lower(&u.transpose(), &b).unwrap();
        for (a, e) in via_t.iter().zip(&explicit) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_diagonal_is_detected() {
        let l = Matrix::from_rows(&[&[1.0, 0.0], &[5.0, 0.0]]);
        assert_eq!(
            solve_lower(&l, &[1.0, 1.0]),
            Err(LinalgError::SingularTriangular { index: 1 })
        );
        assert!(solve_lower_transpose(&l, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn shape_errors() {
        let l = Matrix::zeros(2, 3);
        assert!(matches!(
            solve_lower(&l, &[1.0, 1.0]),
            Err(LinalgError::NotSquare { .. })
        ));
        let l = Matrix::identity(2);
        assert!(matches!(
            solve_upper(&l, &[1.0]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn identity_solves_are_no_ops() {
        let id = Matrix::identity(4);
        let b = [1.0, 2.0, 3.0, 4.0];
        for f in [
            solve_lower,
            solve_upper,
            solve_lower_transpose,
            solve_upper_transpose,
        ] {
            assert_eq!(f(&id, &b).unwrap(), b.to_vec());
        }
    }
}
