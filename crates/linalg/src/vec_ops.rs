//! Small vector helpers used across the workspace.
//!
//! These are free functions over slices rather than a wrapper type: callers
//! throughout the workspace keep their data in plain `Vec<f64>` / `&[f64]`,
//! which composes better with the simulation code than a newtype would.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics in debug builds if the lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn dist2_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dist length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// `y += alpha * x`, the classic AXPY update.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scales a slice in place.
#[inline]
pub fn scale(a: &mut [f64], s: f64) {
    for x in a {
        *x *= s;
    }
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Population variance; 0.0 for slices with fewer than two entries.
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64
}

/// Population standard deviation.
pub fn std_dev(a: &[f64]) -> f64 {
    variance(a).sqrt()
}

/// Index of the maximum entry, breaking ties toward the lowest index.
/// Returns `None` for an empty slice; ignores NaN entries.
pub fn argmax(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in a.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            Some((_, bx)) if x <= bx => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the minimum entry, breaking ties toward the lowest index.
/// Returns `None` for an empty slice; ignores NaN entries.
pub fn argmin(a: &[f64]) -> Option<usize> {
    let neg: Vec<f64> = a.iter().map(|x| -x).collect();
    argmax(&neg)
}

/// Maximum entry; `None` for an empty slice.
pub fn max(a: &[f64]) -> Option<f64> {
    argmax(a).map(|i| a[i])
}

/// Minimum entry; `None` for an empty slice.
pub fn min(a: &[f64]) -> Option<f64> {
    argmin(a).map(|i| a[i])
}

/// Clamps every entry into `[lo, hi]` in place.
pub fn clamp_all(a: &mut [f64], lo: f64, hi: f64) {
    for x in a {
        *x = x.clamp(lo, hi);
    }
}

/// Linear interpolation table lookup: given sorted `xs` and matching `ys`,
/// evaluates the piecewise-linear interpolant at `x`, clamping outside the
/// range. Used when resampling experiment curves onto a common grid.
pub fn interp(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    assert_eq!(xs.len(), ys.len(), "interp length mismatch");
    assert!(!xs.is_empty(), "interp needs at least one point");
    if x <= xs[0] {
        return ys[0];
    }
    if x >= xs[xs.len() - 1] {
        return ys[ys.len() - 1];
    }
    // Binary search for the bracketing segment.
    let mut lo = 0;
    let mut hi = xs.len() - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if xs[mid] <= x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let t = if xs[hi] > xs[lo] {
        (x - xs[lo]) / (xs[hi] - xs[lo])
    } else {
        0.0
    };
    ys[lo] + t * (ys[hi] - ys[lo])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn distance() {
        assert_eq!(dist2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut a = vec![1.0, -2.0];
        scale(&mut a, -3.0);
        assert_eq!(a, vec![-3.0, 6.0]);
    }

    #[test]
    fn moments() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-15);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn argmax_argmin_ties_and_nan() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmin(&[2.0, -1.0, -1.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN, 1.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN]), None);
        assert_eq!(max(&[1.0, 5.0, 2.0]), Some(5.0));
        assert_eq!(min(&[1.0, 5.0, 2.0]), Some(1.0));
    }

    #[test]
    fn clamping() {
        let mut a = vec![-1.0, 0.5, 2.0];
        clamp_all(&mut a, 0.0, 1.0);
        assert_eq!(a, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn interpolation() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 10.0, 0.0];
        assert_eq!(interp(&xs, &ys, -1.0), 0.0); // clamp left
        assert_eq!(interp(&xs, &ys, 3.0), 0.0); // clamp right
        assert_eq!(interp(&xs, &ys, 0.5), 5.0);
        assert_eq!(interp(&xs, &ys, 1.5), 5.0);
        assert_eq!(interp(&xs, &ys, 1.0), 10.0);
    }

    #[test]
    fn interp_single_point() {
        assert_eq!(interp(&[1.0], &[7.0], 0.0), 7.0);
        assert_eq!(interp(&[1.0], &[7.0], 2.0), 7.0);
    }
}
