//! Property-based tests for the linear-algebra substrate.

use easeml_linalg::{eigen, project_psd, solve_lower, vec_ops, Cholesky, Lu, Matrix, Qr};
use proptest::prelude::*;

/// Strategy producing a random SPD matrix of the given size as B Bᵀ + n·I.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |vals| {
        let b = Matrix::from_vec(n, n, vals);
        let mut a = b.matmul(&b.transpose()).unwrap();
        a.add_diag_mut(n as f64 + 1.0);
        a
    })
}

fn vector(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cholesky_reconstructs((a, _) in (2usize..9).prop_flat_map(|n| (spd_matrix(n), Just(n)))) {
        let c = Cholesky::factor(&a).unwrap();
        prop_assert!(c.reconstruct().approx_eq(&a, 1e-8));
    }

    #[test]
    fn cholesky_solve_residual_is_small(
        (a, b) in (2usize..9).prop_flat_map(|n| (spd_matrix(n), vector(n)))
    ) {
        let c = Cholesky::factor(&a).unwrap();
        let x = c.solve(&b).unwrap();
        let recon = a.matvec(&x).unwrap();
        for (r, bb) in recon.iter().zip(&b) {
            prop_assert!((r - bb).abs() < 1e-6);
        }
    }

    #[test]
    fn quad_form_is_nonnegative(
        (a, v) in (2usize..9).prop_flat_map(|n| (spd_matrix(n), vector(n)))
    ) {
        let c = Cholesky::factor(&a).unwrap();
        prop_assert!(c.quad_form(&v).unwrap() >= -1e-12);
    }

    #[test]
    fn incremental_extension_matches_batch(
        a in (3usize..9).prop_flat_map(spd_matrix)
    ) {
        let n = a.rows();
        let full = Cholesky::factor(&a).unwrap();
        let mut inc = Cholesky::empty();
        for k in 0..n {
            let col: Vec<f64> = (0..k).map(|i| a[(k, i)]).collect();
            inc.extend(&col, a[(k, k)]).unwrap();
        }
        prop_assert!(inc.l().approx_eq(full.l(), 1e-8));
    }

    #[test]
    fn rank1_update_then_downdate_roundtrips(
        (a, v) in (2usize..8).prop_flat_map(|n| (spd_matrix(n), vector(n)))
    ) {
        let mut c = Cholesky::factor(&a).unwrap();
        c.rank1_update(&v).unwrap();
        c.rank1_downdate(&v).unwrap();
        prop_assert!(c.reconstruct().approx_eq(&a, 1e-6));
    }

    #[test]
    fn log_det_matches_eigenvalue_sum(
        a in (2usize..8).prop_flat_map(spd_matrix)
    ) {
        let c = Cholesky::factor(&a).unwrap();
        let e = eigen(&a).unwrap();
        let eig_log_det: f64 = e.values.iter().map(|v| v.ln()).sum();
        prop_assert!((c.log_det() - eig_log_det).abs() < 1e-6);
    }

    #[test]
    fn eigen_reconstructs_symmetric(
        a in (2usize..8).prop_flat_map(spd_matrix)
    ) {
        let e = eigen(&a).unwrap();
        prop_assert!(e.reconstruct().approx_eq(&a, 1e-7));
        // Eigenvalues of SPD matrices are positive and sorted descending.
        for w in e.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        prop_assert!(e.values.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn psd_projection_is_factorable(
        vals in prop::collection::vec(-1.0f64..1.0, 16)
    ) {
        // Arbitrary symmetric (possibly indefinite) 4x4 matrix.
        let mut a = Matrix::from_vec(4, 4, vals);
        a.symmetrize_mut();
        let p = project_psd(&a, 1e-6).unwrap();
        let (c, _) = Cholesky::factor_with_jitter(&p, 1e-10, 10).unwrap();
        prop_assert_eq!(c.dim(), 4);
    }

    #[test]
    fn triangular_solve_residual(
        (a, b) in (2usize..9).prop_flat_map(|n| (spd_matrix(n), vector(n)))
    ) {
        let c = Cholesky::factor(&a).unwrap();
        let y = solve_lower(c.l(), &b).unwrap();
        // L y = b.
        for i in 0..b.len() {
            let got = vec_ops::dot(&c.l().row(i)[..=i], &y[..=i]);
            prop_assert!((got - b[i]).abs() < 1e-7);
        }
    }

    #[test]
    fn matmul_is_associative_enough(
        vals in prop::collection::vec(-1.0f64..1.0, 27)
    ) {
        let a = Matrix::from_vec(3, 3, vals[0..9].to_vec());
        let b = Matrix::from_vec(3, 3, vals[9..18].to_vec());
        let c = Matrix::from_vec(3, 3, vals[18..27].to_vec());
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-10));
    }

    #[test]
    fn lu_solve_residual_is_small(
        (a, b) in (2usize..8).prop_flat_map(|n| (spd_matrix(n), vector(n)))
    ) {
        // SPD matrices are a convenient source of well-conditioned general
        // matrices; LU must agree with a residual check.
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let recon = a.matvec(&x).unwrap();
        for (r, bb) in recon.iter().zip(&b) {
            prop_assert!((r - bb).abs() < 1e-6);
        }
    }

    #[test]
    fn lu_det_matches_cholesky_log_det(
        a in (2usize..8).prop_flat_map(spd_matrix)
    ) {
        let det = Lu::factor(&a).unwrap().det();
        prop_assert!(det > 0.0, "SPD determinant must be positive");
        let log_det = Cholesky::factor(&a).unwrap().log_det();
        prop_assert!((det.ln() - log_det).abs() < 1e-6);
    }

    #[test]
    fn lu_inverse_roundtrips(
        a in (2usize..7).prop_flat_map(spd_matrix)
    ) {
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        prop_assert!(prod.approx_eq(&Matrix::identity(a.rows()), 1e-6));
    }

    #[test]
    fn qr_reconstructs_and_q_is_orthonormal(
        vals in prop::collection::vec(-3.0f64..3.0, 12)
    ) {
        let a = Matrix::from_vec(4, 3, vals);
        let qr = Qr::factor(&a).unwrap();
        prop_assert!(qr.q().matmul(qr.r()).unwrap().approx_eq(&a, 1e-9));
        let qtq = qr.q().transpose().matmul(qr.q()).unwrap();
        // Columns that hit a zero pivot stay zero; check the diagonal is
        // 0-or-1 and off-diagonals vanish.
        for i in 0..3 {
            for j in 0..3 {
                let v = qtq[(i, j)];
                if i == j {
                    prop_assert!(v.abs() < 1e-9 || (v - 1.0).abs() < 1e-9);
                } else {
                    prop_assert!(v.abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn least_squares_residual_is_orthogonal_to_columns(
        (vals, b) in (prop::collection::vec(-2.0f64..2.0, 10), vector(5))
    ) {
        // 5x2 full-rank-ish fit; skip degenerate draws.
        let a = Matrix::from_vec(5, 2, vals);
        let Ok(x) = easeml_linalg::least_squares(&a, &b) else {
            return Ok(()); // rank-deficient draw
        };
        let fitted = a.matvec(&x).unwrap();
        let resid: Vec<f64> = b.iter().zip(&fitted).map(|(bb, f)| bb - f).collect();
        // Normal equations: Aᵀ r = 0.
        for j in 0..2 {
            let col = a.col(j);
            prop_assert!(vec_ops::dot(&col, &resid).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_reverses_product(
        vals in prop::collection::vec(-1.0f64..1.0, 24)
    ) {
        let a = Matrix::from_vec(3, 4, vals[0..12].to_vec());
        let b = Matrix::from_vec(4, 3, vals[12..24].to_vec());
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-12));
    }
}
