//! A deliberately small HTTP/1.1 subset: enough to parse `GET /path?query`
//! request heads and write `Connection: close` responses. No keep-alive, no
//! chunked encoding, no request bodies — every telemetry exchange is one
//! short request, one full response, hang up.

use std::io::{self, Read, Write};

/// Upper bound on an accepted request head; anything longer is rejected
/// before it can tie up memory.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// A parsed request line: method, path, and decoded query parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The HTTP method verbatim (`GET`, `POST`, ...).
    pub method: String,
    /// The path component, without the query string.
    pub path: String,
    /// `key=value` query parameters in order; keys without `=` get `""`.
    pub query: Vec<(String, String)>,
}

impl Request {
    /// The first value of query parameter `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads a request head (through the blank line) from `stream` and parses
/// its request line. Headers are read and discarded — routing needs none of
/// them.
///
/// # Errors
///
/// Propagates I/O errors; malformed or oversized heads become
/// `InvalidData`.
pub fn read_request(stream: &mut impl Read) -> io::Result<Request> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    // One byte at a time is fine here: requests are ~100 bytes and the
    // alternative (buffered reads) would need to hold back body bytes.
    while !head.ends_with(b"\r\n\r\n") && !head.ends_with(b"\n\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
        match stream.read(&mut byte)? {
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-request",
                ))
            }
            _ => head.push(byte[0]),
        }
    }
    let head = String::from_utf8(head)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 request head"))?;
    let line = head.lines().next().unwrap_or_default();
    parse_request_line(line)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed request line"))
}

/// Parses `"GET /path?a=1 HTTP/1.1"` into a [`Request`].
pub fn parse_request_line(line: &str) -> Option<Request> {
    let mut parts = line.split_ascii_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/") || parts.next().is_some() {
        return None;
    }
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    if !path.starts_with('/') {
        return None;
    }
    let query = query_str
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect();
    Some(Request {
        method,
        path: path.to_string(),
        query,
    })
}

/// An HTTP status line the telemetry endpoint can answer with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// 200
    Ok,
    /// 400
    BadRequest,
    /// 404
    NotFound,
    /// 405
    MethodNotAllowed,
}

impl Status {
    fn line(self) -> &'static str {
        match self {
            Status::Ok => "200 OK",
            Status::BadRequest => "400 Bad Request",
            Status::NotFound => "404 Not Found",
            Status::MethodNotAllowed => "405 Method Not Allowed",
        }
    }
}

/// Writes one complete `Connection: close` response.
///
/// # Errors
///
/// Propagates I/O errors from the underlying stream.
pub fn write_response(
    stream: &mut impl Write,
    status: Status,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status.line(),
        content_type,
        body.len(),
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_parse() {
        let r = parse_request_line("GET /metrics HTTP/1.1").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/metrics");
        assert!(r.query.is_empty());

        let r = parse_request_line("GET /trace?after=17&flag HTTP/1.0").unwrap();
        assert_eq!(r.path, "/trace");
        assert_eq!(r.query_param("after"), Some("17"));
        assert_eq!(r.query_param("flag"), Some(""));
        assert_eq!(r.query_param("missing"), None);
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        for bad in [
            "",
            "GET",
            "GET /x",
            "GET /x HTTP/1.1 extra",
            "GET x HTTP/1.1",
            "GET /x FTP/1.1",
        ] {
            assert!(parse_request_line(bad).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn read_request_consumes_the_full_head() {
        let raw = b"GET /healthz HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n";
        let mut cursor = io::Cursor::new(raw.to_vec());
        let r = read_request(&mut cursor).unwrap();
        assert_eq!(r.path, "/healthz");
    }

    #[test]
    fn truncated_heads_error() {
        let mut cursor = io::Cursor::new(b"GET /healthz HTTP/1.1\r\n".to_vec());
        assert!(read_request(&mut cursor).is_err());
    }

    #[test]
    fn oversized_heads_error() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.resize(raw.len() + MAX_HEAD_BYTES + 10, b'a');
        let mut cursor = io::Cursor::new(raw);
        assert!(read_request(&mut cursor).is_err());
    }

    #[test]
    fn responses_have_content_length_and_close() {
        let mut out = Vec::new();
        write_response(&mut out, Status::Ok, "text/plain", "hello").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 5\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nhello"), "{text}");
    }
}
