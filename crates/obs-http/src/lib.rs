//! Live telemetry endpoint for the ease.ml reproduction.
//!
//! `easeml-obs` captures what the multi-tenant scheduler is doing;
//! this crate makes that visible *while it happens* over plain HTTP/1.1 —
//! no external dependencies, just `std::net::TcpListener` and a thread per
//! connection. Five routes:
//!
//! | Route            | Content                                             |
//! |------------------|-----------------------------------------------------|
//! | `GET /healthz`   | `ok` (liveness probe)                               |
//! | `GET /metrics`   | Prometheus text format: event/counter/gauge values, |
//! |                  | per-component latency histograms, per-tenant regret |
//! | `GET /status`    | JSON scheduler snapshot pushed by the application   |
//! | `GET /trace`     | JSONL event trace; `?after=<seq>` tails only events |
//! |                  | with sequence number strictly greater than `seq`;   |
//! |                  | `?limit=<n>` caps the page at `n` events            |
//! | `GET /profile`   | Aggregated span call-tree profile as JSON, or with  |
//! |                  | `?format=folded` as Brendan-Gregg folded stacks     |
//! |                  | ready for `flamegraph.pl` / speedscope              |
//! | `GET /explain`   | Decision-health JSON: committed witness rounds,     |
//! |                  | censor/tie counts, margin distribution, per-path    |
//! |                  | tallies; `?round=<n>` serves one round's full       |
//! |                  | decision witness (scored users, scored arms, path)  |
//! | `GET /durability`| Write-ahead-log JSON pushed by the application:     |
//! |                  | append/fsync counters, latency quantiles, segment   |
//! |                  | position, replay totals (`{"enabled":false}` when   |
//! |                  | the run has no WAL attached)                        |
//!
//! The application side is a [`TelemetryHub`]: it owns the
//! [`InMemoryRecorder`] the scheduler writes through, optionally a
//! [`TimeSeriesRecorder`] for per-tenant
//! regret curves, and a status JSON slot the application refreshes whenever
//! convenient. [`TelemetryServer::serve`] binds an address (port 0 picks a
//! free port) and answers from the hub until dropped or
//! [`TelemetryServer::shutdown`] is called.
//!
//! ```no_run
//! use easeml_obs::InMemoryRecorder;
//! use easeml_obs_http::{TelemetryHub, TelemetryServer};
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(InMemoryRecorder::new());
//! let hub = Arc::new(TelemetryHub::new(recorder.clone()));
//! let server = TelemetryServer::serve("127.0.0.1:0", hub).unwrap();
//! println!("metrics at http://{}/metrics", server.local_addr());
//! // ... run the simulation, recording through `recorder` ...
//! drop(server); // unbinds and joins the accept loop
//! ```

mod http;
mod render;

use easeml_obs::{CallTreeProfile, InMemoryRecorder, JsonlFileSink, Profiler, TimeSeriesRecorder};
use parking_lot::Mutex;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub use http::{parse_request_line, read_request, write_response, Request, Status};
pub use render::{
    render_explain_summary, render_metrics, render_metrics_full, RenderOptions,
    DEFAULT_PER_USER_CAP,
};

/// How long a connection may dribble its request in before being dropped.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// The shared state the telemetry endpoint serves from.
///
/// The hub is passive: the scheduler records through the wrapped
/// [`InMemoryRecorder`] (usually via a
/// [`TeeRecorder`](easeml_obs::TeeRecorder) that also feeds a file sink),
/// and each HTTP request renders whatever state exists at that instant.
pub struct TelemetryHub {
    recorder: Arc<InMemoryRecorder>,
    series: Option<Arc<TimeSeriesRecorder>>,
    profiler: Option<Arc<Profiler>>,
    sinks: Vec<(String, Arc<JsonlFileSink>)>,
    render_opts: RenderOptions,
    render_ns: AtomicU64,
    renders: AtomicU64,
    status_json: Mutex<String>,
    durability_json: Mutex<String>,
}

impl TelemetryHub {
    /// A hub serving metrics and traces from `recorder`.
    pub fn new(recorder: Arc<InMemoryRecorder>) -> Self {
        TelemetryHub {
            recorder,
            series: None,
            profiler: None,
            sinks: Vec::new(),
            render_opts: RenderOptions::default(),
            render_ns: AtomicU64::new(0),
            renders: AtomicU64::new(0),
            status_json: Mutex::new("{}".to_string()),
            durability_json: Mutex::new("{\"enabled\":false}".to_string()),
        }
    }

    /// Attaches a time-series recorder; `/metrics` then also exposes the
    /// per-tenant regret / cost / arm-pull families.
    pub fn with_series(mut self, series: Arc<TimeSeriesRecorder>) -> Self {
        self.series = Some(series);
        self
    }

    /// Registers a file sink whose byte/line/drop/rotation counters appear
    /// on `/metrics` as `easeml_sink_*{sink="<name>"}` families.
    pub fn with_sink_stats(mut self, name: impl Into<String>, sink: Arc<JsonlFileSink>) -> Self {
        self.sinks.push((name.into(), sink));
        self
    }

    /// Attaches a live [`Profiler`]; `/profile` then serves its online
    /// call tree. Without one, `/profile` folds the hub recorder's span
    /// events on demand — same tree, rebuilt per request.
    pub fn with_profiler(mut self, profiler: Arc<Profiler>) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// Overrides the default [`RenderOptions`] (e.g. the per-user
    /// cardinality cap for `easeml_user_*` families).
    pub fn with_render_options(mut self, opts: RenderOptions) -> Self {
        self.render_opts = opts;
        self
    }

    /// The recorder this hub serves from.
    pub fn recorder(&self) -> &Arc<InMemoryRecorder> {
        &self.recorder
    }

    /// The attached time-series recorder, if any.
    pub fn series(&self) -> Option<&Arc<TimeSeriesRecorder>> {
        self.series.as_ref()
    }

    /// Replaces the JSON document served at `/status`. The application
    /// pushes a fresh snapshot whenever convenient (e.g. once per round).
    pub fn set_status_json(&self, json: String) {
        *self.status_json.lock() = json;
    }

    /// Renders the `/metrics` payload. Each call also feeds the hub's own
    /// `easeml_telemetry_overhead_ns_total{component="http/render"}`
    /// self-accounting, so the cost of observing is itself observable.
    pub fn render_metrics(&self) -> String {
        let started = Instant::now();
        let snapshot = self.series.as_ref().map(|s| s.snapshot());
        let sink_stats: Vec<(String, easeml_obs::SinkStats)> = self
            .sinks
            .iter()
            .map(|(name, sink)| (name.clone(), sink.stats()))
            .collect();
        let render_self = (
            self.render_ns.load(Ordering::Relaxed),
            self.renders.load(Ordering::Relaxed),
        );
        let body = render::render_metrics_full(
            &self.recorder,
            snapshot.as_ref(),
            &sink_stats,
            render_self,
            &self.render_opts,
        );
        let elapsed = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.render_ns.fetch_add(elapsed, Ordering::Relaxed);
        self.renders.fetch_add(1, Ordering::Relaxed);
        body
    }

    /// The current `/status` payload.
    pub fn status_json(&self) -> String {
        self.status_json.lock().clone()
    }

    /// Replaces the JSON document served at `/durability`. The application
    /// pushes `Durability::stats_json()` whenever convenient (e.g. after a
    /// checkpoint); the default payload is `{"enabled":false}`.
    pub fn set_durability_json(&self, json: String) {
        *self.durability_json.lock() = json;
    }

    /// The current `/durability` payload.
    pub fn durability_json(&self) -> String {
        self.durability_json.lock().clone()
    }

    /// Renders the `/trace` payload: events with sequence number strictly
    /// greater than `after`, as JSON Lines.
    pub fn render_trace_since(&self, after: u64) -> String {
        self.recorder.to_jsonl_since(after)
    }

    /// Like [`TelemetryHub::render_trace_since`], but returns at most
    /// `limit` events — the pagination contract behind `/trace?limit=`.
    pub fn render_trace_page(&self, after: u64, limit: usize) -> String {
        self.recorder.to_jsonl_since_capped(after, limit)
    }

    /// The call-tree profile behind `/profile`: the attached live
    /// [`Profiler`]'s snapshot, or an on-demand fold of the recorder's
    /// span events when none is attached.
    pub fn profile(&self) -> CallTreeProfile {
        match &self.profiler {
            Some(p) => p.snapshot(),
            None => CallTreeProfile::fold(&self.recorder.events()),
        }
    }

    /// One round's committed decision witness as JSON, or `None` when no
    /// `DecisionWitness` commit marker for that round has landed yet —
    /// a round whose score events are still streaming in is invisible
    /// here, never torn.
    pub fn explain_round(&self, round: u64) -> Option<String> {
        easeml_obs::witness_records(&self.recorder.events())
            .into_iter()
            .find(|r| r.round == round)
            .map(|r| r.to_json())
    }

    /// The `/explain` aggregate decision-health report over every
    /// committed witness round recorded so far.
    pub fn explain_summary(&self) -> String {
        render::render_explain_summary(&easeml_obs::witness_records(&self.recorder.events()))
    }

    /// Routes one parsed request to its response. Exposed for tests and
    /// for embedding the routing into another server.
    pub fn respond(&self, request: &Request) -> (Status, &'static str, String) {
        if request.method != "GET" {
            return (
                Status::MethodNotAllowed,
                "text/plain; charset=utf-8",
                "only GET is supported\n".to_string(),
            );
        }
        match request.path.as_str() {
            "/healthz" => (Status::Ok, "text/plain; charset=utf-8", "ok\n".to_string()),
            "/metrics" => (
                Status::Ok,
                "text/plain; version=0.0.4; charset=utf-8",
                self.render_metrics(),
            ),
            "/status" => (Status::Ok, "application/json", self.status_json()),
            "/durability" => (Status::Ok, "application/json", self.durability_json()),
            "/trace" => {
                let after = request.query_param("after").unwrap_or("0").parse::<u64>();
                let limit = request
                    .query_param("limit")
                    .map_or(Ok(usize::MAX), str::parse::<usize>);
                match (after, limit) {
                    (Ok(after), Ok(limit)) => (
                        Status::Ok,
                        "application/x-ndjson",
                        self.render_trace_page(after, limit),
                    ),
                    _ => (
                        Status::BadRequest,
                        "text/plain; charset=utf-8",
                        "after and limit must be unsigned integers\n".to_string(),
                    ),
                }
            }
            "/profile" => match request.query_param("format") {
                None | Some("json") => (Status::Ok, "application/json", self.profile().to_json()),
                Some("folded") => (
                    Status::Ok,
                    "text/plain; charset=utf-8",
                    self.profile().folded_stacks(),
                ),
                Some(_) => (
                    Status::BadRequest,
                    "text/plain; charset=utf-8",
                    "format must be json or folded\n".to_string(),
                ),
            },
            "/explain" => match request.query_param("round") {
                None => (Status::Ok, "application/json", self.explain_summary()),
                Some(raw) => match raw.parse::<u64>() {
                    Ok(round) => match self.explain_round(round) {
                        Some(body) => (Status::Ok, "application/json", body),
                        None => (
                            Status::NotFound,
                            "text/plain; charset=utf-8",
                            format!("no committed decision witness for round {round}\n"),
                        ),
                    },
                    Err(_) => (
                        Status::BadRequest,
                        "text/plain; charset=utf-8",
                        "round must be an unsigned integer\n".to_string(),
                    ),
                },
            },
            _ => (
                Status::NotFound,
                "text/plain; charset=utf-8",
                "unknown route; try /healthz, /metrics, /status, /trace, /profile, /explain, \
                 /durability\n"
                    .to_string(),
            ),
        }
    }
}

/// A running telemetry endpoint: an accept loop on its own thread, one
/// short-lived thread per connection.
///
/// Dropping the server shuts it down and joins the accept loop.
pub struct TelemetryServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// answering from `hub`.
    ///
    /// # Errors
    ///
    /// Returns the bind error, e.g. when the port is taken.
    pub fn serve(addr: impl ToSocketAddrs, hub: Arc<TelemetryHub>) -> io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = stop.clone();
        let accept_thread = std::thread::Builder::new()
            .name("easeml-telemetry".to_string())
            .spawn(move || accept_loop(&listener, &accept_stop, &hub))?;
        Ok(TelemetryServer {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting connections and joins the accept loop. Idempotent;
    /// also called on drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool, hub: &Arc<TelemetryHub>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let hub = hub.clone();
        // Connection threads are detached: each serves one request with a
        // read timeout and exits, so none outlives the server by long.
        let _ = std::thread::Builder::new()
            .name("easeml-telemetry-conn".to_string())
            .spawn(move || handle_connection(stream, &hub));
    }
}

fn handle_connection(mut stream: TcpStream, hub: &TelemetryHub) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let (status, content_type, body) = match http::read_request(&mut stream) {
        Ok(request) => hub.respond(&request),
        Err(_) => (
            Status::BadRequest,
            "text/plain; charset=utf-8",
            "malformed request\n".to_string(),
        ),
    };
    let _ = http::write_response(&mut stream, status, content_type, &body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeml_obs::{Event, Recorder};
    use std::io::{Read, Write};

    fn get(addr: SocketAddr, target: &str) -> (String, String) {
        raw(addr, &format!("GET {target} HTTP/1.1"))
    }

    fn raw(addr: SocketAddr, request_line: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "{request_line}\r\nHost: t\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    fn sample_hub() -> Arc<TelemetryHub> {
        let recorder = Arc::new(InMemoryRecorder::new());
        for arm in 0..4usize {
            recorder.record(Event::TrainingCompleted {
                user: arm % 2,
                model: arm,
                cost: 1.0,
                quality: 0.5 + 0.1 * arm as f64,
                parent: 0,
            });
        }
        let series = Arc::new(TimeSeriesRecorder::new());
        for event in recorder.events() {
            series.fold(&event);
        }
        let hub = Arc::new(TelemetryHub::new(recorder).with_series(series));
        hub.set_status_json("{\"elapsed_cost\":4.0}".to_string());
        hub
    }

    #[test]
    fn endpoints_answer_over_real_tcp() {
        let hub = sample_hub();
        let server = TelemetryServer::serve("127.0.0.1:0", hub).unwrap();
        let addr = server.local_addr();

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ok\n");

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        assert!(body.contains("easeml_events_total 4"), "{body}");
        assert!(body.contains("easeml_user_regret{user=\"0\"}"), "{body}");

        let (head, body) = get(addr, "/status");
        assert!(head.contains("application/json"), "{head}");
        assert_eq!(body, "{\"elapsed_cost\":4.0}");

        let (_, body) = get(addr, "/trace");
        assert_eq!(body.lines().count(), 4);

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    }

    #[test]
    fn malformed_requests_fail_clean_with_4xx() {
        let hub = sample_hub();
        let server = TelemetryServer::serve("127.0.0.1:0", hub).unwrap();
        let addr = server.local_addr();

        // Unknown paths (including sub-paths of real routes) are 404 with
        // the route hint, never a hang or a connection drop.
        for path in ["/nope", "/trace/tail", "/metrics/raw", "/Trace"] {
            let (head, body) = get(addr, path);
            assert!(head.starts_with("HTTP/1.1 404"), "{path}: {head}");
            assert!(body.contains("unknown route"), "{path}: {body}");
        }

        // Bad ?after= / ?limit= values: empty, negative, non-numeric, and
        // past-u64/usize overflow all map to the same clean 400.
        for target in [
            "/trace?after=",
            "/trace?after=-1",
            "/trace?after=xyz",
            "/trace?after=18446744073709551616",
            "/trace?limit=",
            "/trace?limit=-2",
            "/trace?limit=abc",
            "/trace?limit=99999999999999999999999999",
            "/trace?after=1&limit=",
        ] {
            let (head, body) = get(addr, target);
            assert!(head.starts_with("HTTP/1.1 400"), "{target}: {head}");
            assert!(body.contains("unsigned integers"), "{target}: {body}");
        }

        // Bad ?round= values on /explain: same contract.
        for target in [
            "/explain?round=",
            "/explain?round=-1",
            "/explain?round=abc",
            "/explain?round=18446744073709551616",
        ] {
            let (head, body) = get(addr, target);
            assert!(head.starts_with("HTTP/1.1 400"), "{target}: {head}");
            assert!(body.contains("unsigned integer"), "{target}: {body}");
        }

        // Non-GET methods are 405; a garbage request line is 400.
        let (head, body) = raw(addr, "POST /trace HTTP/1.1");
        assert!(head.starts_with("HTTP/1.1 405"), "{head}");
        assert!(body.contains("only GET"), "{body}");
        let (head, body) = raw(addr, "BLAH");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
        assert!(body.contains("malformed request"), "{body}");

        // After the malformed burst the server still answers cleanly.
        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ok\n");
    }

    #[test]
    fn durability_route_serves_the_pushed_stats() {
        let hub = sample_hub();
        let server = TelemetryServer::serve("127.0.0.1:0", hub.clone()).unwrap();
        let addr = server.local_addr();

        // Before any push: the disabled default, still valid JSON.
        let (head, body) = get(addr, "/durability");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        assert_eq!(body, "{\"enabled\":false}");

        hub.set_durability_json("{\"enabled\":true,\"appends\":12}".to_string());
        let (_, body) = get(addr, "/durability");
        assert_eq!(body, "{\"enabled\":true,\"appends\":12}");

        // The 404 hint advertises the route.
        let (_, body) = get(addr, "/nope");
        assert!(body.contains("/durability"), "{body}");
    }

    #[test]
    fn trace_after_returns_only_newer_events() {
        let hub = sample_hub();
        let server = TelemetryServer::serve("127.0.0.1:0", hub.clone()).unwrap();
        let addr = server.local_addr();

        let (_, body) = get(addr, "/trace?after=3");
        assert_eq!(body.lines().count(), 1);
        let event = Event::from_json(body.lines().next().unwrap()).unwrap();
        assert!(matches!(event, Event::TrainingCompleted { model: 3, .. }));

        let (_, body) = get(addr, "/trace?after=4");
        assert_eq!(body, "");
        // A cursor past the end stays empty rather than erroring.
        let (head, body) = get(addr, "/trace?after=999");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "");

        let (head, _) = get(addr, "/trace?after=-1");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
        let (head, _) = get(addr, "/trace?after=xyz");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
    }

    #[test]
    fn trace_limit_pages_through_the_stream() {
        let hub = sample_hub();
        let server = TelemetryServer::serve("127.0.0.1:0", hub).unwrap();
        let addr = server.local_addr();

        let (head, body) = get(addr, "/trace?limit=2");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body.lines().count(), 2);
        // Next page: resume after the last seq of the previous one.
        let (_, body) = get(addr, "/trace?after=2&limit=2");
        assert_eq!(body.lines().count(), 2);
        let event = Event::from_json(body.lines().next().unwrap()).unwrap();
        assert!(matches!(event, Event::TrainingCompleted { model: 2, .. }));
        // Past the end: empty page, not an error.
        let (head, body) = get(addr, "/trace?after=4&limit=2");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "");
        // limit=0 is a valid (empty) page; garbage is rejected.
        let (_, body) = get(addr, "/trace?limit=0");
        assert_eq!(body, "");
        let (head, _) = get(addr, "/trace?limit=-2");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
        let (head, _) = get(addr, "/trace?limit=abc");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
    }

    #[test]
    fn sink_and_render_self_accounting_flow_to_metrics() {
        let dir = std::env::temp_dir().join(format!("easeml-hub-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let sink = Arc::new(easeml_obs::JsonlFileSink::create(&path).unwrap());
        let recorder = Arc::new(InMemoryRecorder::new());
        let tee = easeml_obs::TeeRecorder::new(recorder.clone()).with_sink(sink.clone());
        for arm in 0..3usize {
            tee.record(Event::TrainingCompleted {
                user: arm,
                model: arm,
                cost: 1.0,
                quality: 0.7,
                parent: 0,
            });
        }
        let hub = Arc::new(TelemetryHub::new(recorder).with_sink_stats("trace", sink));
        let server = TelemetryServer::serve("127.0.0.1:0", hub).unwrap();
        let addr = server.local_addr();

        let (_, body) = get(addr, "/metrics");
        assert!(
            body.contains("easeml_sink_lines_total{sink=\"trace\"} 3"),
            "{body}"
        );
        assert!(
            body.contains("easeml_sink_dropped_total{sink=\"trace\"} 0"),
            "{body}"
        );
        assert!(
            body.contains("easeml_sink_rotations_total{sink=\"trace\"} 0"),
            "{body}"
        );
        // The first render reports zero renders; the second sees the first.
        let (_, body) = get(addr, "/metrics");
        assert!(body.contains("easeml_telemetry_renders_total 1"), "{body}");
        assert!(
            body.contains("easeml_telemetry_overhead_ns_total{component=\"http/render\"}"),
            "{body}"
        );
        drop(server);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn profile_endpoint_serves_folded_and_json_trees() {
        // Without an attached profiler the hub folds the recorder's span
        // events on demand.
        let recorder = Arc::new(InMemoryRecorder::new());
        let handle = easeml_obs::RecorderHandle::new(recorder.clone());
        for _ in 0..2 {
            let _step = handle.span("scheduler_step");
            let _pick = handle.span("pick_user");
        }
        let hub = Arc::new(TelemetryHub::new(recorder));
        let server = TelemetryServer::serve("127.0.0.1:0", hub).unwrap();
        let addr = server.local_addr();

        let (head, body) = get(addr, "/profile");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        assert!(body.contains("\"schema\":\"easeml-profile\""), "{body}");
        assert!(body.contains("\"name\":\"pick_user\""), "{body}");
        assert!(body.contains("\"closed_spans\":4"), "{body}");

        let (head, body) = get(addr, "/profile?format=folded");
        assert!(head.contains("text/plain"), "{head}");
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2, "{body}");
        assert!(lines[0].starts_with("scheduler_step "), "{body}");
        assert!(lines[1].starts_with("scheduler_step;pick_user "), "{body}");

        let (head, _) = get(addr, "/profile?format=ascii-art");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
    }

    #[test]
    fn profile_endpoint_prefers_the_attached_live_profiler() {
        // A live profiler sees spans that never reach the hub's recorder
        // (here: spans through a noop handle).
        let profiler = Arc::new(easeml_obs::Profiler::new());
        assert!(easeml_obs::set_global_profiler(Some(profiler.clone())).is_none());
        let noop = easeml_obs::RecorderHandle::noop();
        for _ in 0..3 {
            let _step = noop.span("scheduler_step");
            let _train = noop.span("train");
        }
        easeml_obs::set_global_profiler(None);

        let hub =
            Arc::new(TelemetryHub::new(Arc::new(InMemoryRecorder::new())).with_profiler(profiler));
        let server = TelemetryServer::serve("127.0.0.1:0", hub).unwrap();
        let (_, body) = get(server.local_addr(), "/profile?format=folded");
        assert!(body.contains("scheduler_step;train "), "{body}");
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let hub = sample_hub();
        let server = TelemetryServer::serve("127.0.0.1:0", hub).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
    }

    #[test]
    fn shutdown_is_idempotent_and_unbinds() {
        let hub = sample_hub();
        let mut server = TelemetryServer::serve("127.0.0.1:0", hub).unwrap();
        let addr = server.local_addr();
        server.shutdown();
        server.shutdown();
        // The port is released: binding it again succeeds.
        let listener = TcpListener::bind(addr);
        assert!(listener.is_ok(), "{listener:?}");
    }

    /// Emits one complete witness chain — two `UserScored`, one
    /// `ArmScored`, then the `DecisionWitness` commit marker — for `round`.
    fn emit_witness_chain(recorder: &InMemoryRecorder, round: u64, censored: bool) {
        for rank in 0..2u64 {
            recorder.record(Event::UserScored {
                round,
                user: rank as usize,
                score: 1.0 - 0.3 * rank as f64,
                rank,
                candidate: true,
                parent: 0,
            });
        }
        recorder.record(Event::ArmScored {
            round,
            user: 0,
            arm: 2,
            mean: 0.6,
            sigma: 0.1,
            ucb: 0.8,
            rank: 0,
            masked: false,
            parent: 0,
        });
        recorder.record(Event::DecisionWitness {
            round,
            user: 0,
            arm: 2,
            user_margin: 0.3,
            arm_margin: 0.1,
            path: "greedy(max-gap)".to_string(),
            fallback: if censored {
                "crash".to_string()
            } else {
                String::new()
            },
            censored,
            candidates: 2,
            digest: format!("{round:016x}"),
            parent: 0,
        });
    }

    /// Looks up a key in a parsed JSON object.
    fn field<'a>(value: &'a easeml_obs::json::Json, key: &str) -> &'a easeml_obs::json::Json {
        match value {
            easeml_obs::json::Json::Object(pairs) => {
                &pairs.iter().find(|(k, _)| k == key).expect(key).1
            }
            other => panic!("expected object with {key}, got {other:?}"),
        }
    }

    #[test]
    fn explain_serves_committed_rounds_and_the_health_summary() {
        let recorder = Arc::new(InMemoryRecorder::new());
        emit_witness_chain(&recorder, 0, false);
        emit_witness_chain(&recorder, 1, true);
        // A torn round: scores landed, commit marker never did.
        recorder.record(Event::UserScored {
            round: 2,
            user: 0,
            score: 0.5,
            rank: 0,
            candidate: false,
            parent: 0,
        });
        let hub = Arc::new(TelemetryHub::new(recorder));
        let server = TelemetryServer::serve("127.0.0.1:0", hub).unwrap();
        let addr = server.local_addr();

        let (head, body) = get(addr, "/explain?round=1");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        let round = easeml_obs::json::parse(&body).unwrap();
        assert_eq!(field(&round, "round"), &easeml_obs::json::Json::Number(1.0));
        assert_eq!(
            field(&round, "censored"),
            &easeml_obs::json::Json::Bool(true)
        );
        assert_eq!(
            field(&round, "fallback"),
            &easeml_obs::json::Json::String("crash".to_string())
        );
        match field(&round, "top_users") {
            easeml_obs::json::Json::Array(users) => assert_eq!(users.len(), 2, "{body}"),
            other => panic!("top_users should be an array, got {other:?}"),
        }

        // The torn round is invisible, not half-rendered.
        let (head, _) = get(addr, "/explain?round=2");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        let (head, _) = get(addr, "/explain?round=abc");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");

        let (head, body) = get(addr, "/explain");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let summary = easeml_obs::json::parse(&body).unwrap();
        assert_eq!(
            field(&summary, "rounds"),
            &easeml_obs::json::Json::Number(2.0)
        );
        assert_eq!(
            field(&summary, "censored"),
            &easeml_obs::json::Json::Number(1.0)
        );
        assert_eq!(
            field(&summary, "last_digest"),
            &easeml_obs::json::Json::String(format!("{:016x}", 1))
        );
        match field(&summary, "fallbacks") {
            easeml_obs::json::Json::Array(kinds) => {
                assert_eq!(
                    field(&kinds[0], "kind"),
                    &easeml_obs::json::Json::String("crash".to_string())
                );
            }
            other => panic!("fallbacks should be an array, got {other:?}"),
        }
    }

    #[test]
    fn profile_and_explain_stay_well_formed_under_concurrent_scrapes() {
        let recorder = Arc::new(InMemoryRecorder::new());
        let hub = Arc::new(TelemetryHub::new(recorder.clone()));
        let server = TelemetryServer::serve("127.0.0.1:0", hub).unwrap();
        let addr = server.local_addr();
        let writer = std::thread::spawn(move || {
            let handle = easeml_obs::RecorderHandle::new(recorder.clone());
            for round in 0..150u64 {
                let _step = handle.span("scheduler_step");
                emit_witness_chain(&recorder, round, round % 7 == 0);
            }
        });
        for _ in 0..8 {
            // Every mid-write scrape must parse, and every round the
            // summary counts must itself be fully committed (no torn
            // witnesses): chains commit in round order here, so `rounds`
            // committed implies round `rounds - 1` is servable and whole.
            let (head, body) = get(addr, "/profile");
            assert!(head.starts_with("HTTP/1.1 200"), "{head}");
            easeml_obs::json::parse(&body).unwrap();
            let (head, body) = get(addr, "/explain");
            assert!(head.starts_with("HTTP/1.1 200"), "{head}");
            let summary = easeml_obs::json::parse(&body).unwrap();
            let committed = match field(&summary, "rounds") {
                easeml_obs::json::Json::Number(n) => *n as u64,
                other => panic!("rounds should be a number, got {other:?}"),
            };
            if committed == 0 {
                continue;
            }
            let (head, body) = get(addr, &format!("/explain?round={}", committed - 1));
            assert!(head.starts_with("HTTP/1.1 200"), "{head} {body}");
            let witness = easeml_obs::json::parse(&body).unwrap();
            match field(&witness, "top_users") {
                easeml_obs::json::Json::Array(users) => assert_eq!(users.len(), 2, "{body}"),
                other => panic!("top_users should be an array, got {other:?}"),
            }
        }
        writer.join().unwrap();
        // After the writer drains, all 150 rounds are committed.
        let (_, body) = get(addr, "/explain");
        let summary = easeml_obs::json::parse(&body).unwrap();
        assert_eq!(
            field(&summary, "rounds"),
            &easeml_obs::json::Json::Number(150.0)
        );
    }

    #[test]
    fn metrics_render_while_recording_concurrently() {
        let recorder = Arc::new(InMemoryRecorder::new());
        let hub = Arc::new(TelemetryHub::new(recorder.clone()));
        let server = TelemetryServer::serve("127.0.0.1:0", hub).unwrap();
        let addr = server.local_addr();
        let writer = std::thread::spawn(move || {
            for i in 0..200usize {
                recorder.record(Event::PosteriorUpdated {
                    arm: i % 8,
                    reward: 0.5,
                    num_obs: i + 1,
                    cond: 1.0,
                    parent: 0,
                });
            }
        });
        for _ in 0..5 {
            let (head, body) = get(addr, "/metrics");
            assert!(head.starts_with("HTTP/1.1 200"), "{head}");
            assert!(body.contains("easeml_events_total"), "{body}");
        }
        writer.join().unwrap();
        let (_, body) = get(addr, "/trace?after=190");
        assert_eq!(body.lines().count(), 10);
    }
}
