//! Rendering recorder state in the Prometheus text exposition format
//! (version 0.0.4): `# HELP` / `# TYPE` headers, cumulative `le=` histogram
//! buckets with a closing `+Inf`, and escaped label values.
//!
//! Per-tenant families (`easeml_user_*`) are *capped*: they render only
//! while the snapshot holds at most [`RenderOptions::per_user_cap`]
//! tenants, so the `/metrics` body cannot grow O(U) with the tenant
//! population. Past the cap, the bounded families — regret/cost/quality
//! quantiles, top-K offenders, and telemetry self-accounting — are the
//! only per-tenant-derived output, keeping the body a constant.

use easeml_obs::{
    Component, Histogram, InMemoryRecorder, SinkStats, TimeSeriesSnapshot, WitnessRecord,
};
use std::fmt::Write as _;

/// Default cap on tenants in the per-user metric families: beyond this
/// the unbounded `easeml_user_*` families are suppressed in favor of the
/// quantile + top-K rendering.
pub const DEFAULT_PER_USER_CAP: usize = 100;

/// The quantiles rendered for every sketch-backed family.
const QUANTILES: [(f64, &str); 4] = [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (1.0, "1")];

/// Knobs for the `/metrics` rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenderOptions {
    /// Per-family cardinality cap: `easeml_user_*` families render only
    /// when the snapshot tracks at most this many tenants.
    pub per_user_cap: usize,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            per_user_cap: DEFAULT_PER_USER_CAP,
        }
    }
}

/// Renders the full `/metrics` payload from an in-memory recorder plus an
/// optional time-series snapshot, with default options and no sink or
/// exporter self-accounting.
pub fn render_metrics(recorder: &InMemoryRecorder, series: Option<&TimeSeriesSnapshot>) -> String {
    render_metrics_full(recorder, series, &[], (0, 0), &RenderOptions::default())
}

/// The full rendering entry point: `sinks` contributes per-sink
/// self-accounting families, `render_self` is `(cumulative ns, count)` of
/// previous `/metrics` renders (the exporter accounting for itself), and
/// `opts` caps the per-tenant families.
pub fn render_metrics_full(
    recorder: &InMemoryRecorder,
    series: Option<&TimeSeriesSnapshot>,
    sinks: &[(String, SinkStats)],
    render_self: (u64, u64),
    opts: &RenderOptions,
) -> String {
    let mut out = String::new();

    write_header(
        &mut out,
        "easeml_events_total",
        "counter",
        "Total structured events recorded.",
    );
    let _ = writeln!(out, "easeml_events_total {}", recorder.num_events());

    let by_type = recorder.event_counts();
    if !by_type.is_empty() {
        write_header(
            &mut out,
            "easeml_events_by_type_total",
            "counter",
            "Structured events recorded, by variant.",
        );
        for (name, count) in &by_type {
            let _ = writeln!(
                out,
                "easeml_events_by_type_total{{type=\"{}\"}} {count}",
                escape_label(name)
            );
        }
    }

    let counters = recorder.counters();
    if !counters.is_empty() {
        write_header(
            &mut out,
            "easeml_counter_total",
            "counter",
            "Named monotonic counters.",
        );
        for (name, value) in &counters {
            let _ = writeln!(
                out,
                "easeml_counter_total{{name=\"{}\"}} {value}",
                escape_label(name)
            );
        }
    }

    let gauges = recorder.gauges();
    if !gauges.is_empty() {
        write_header(&mut out, "easeml_gauge", "gauge", "Named gauges.");
        for (name, value) in &gauges {
            let _ = writeln!(
                out,
                "easeml_gauge{{name=\"{}\"}} {}",
                escape_label(name),
                fmt_f64(*value)
            );
        }
    }

    render_latency_histograms(&mut out, recorder);

    if let Some(snap) = series {
        render_series(&mut out, snap, opts);
    }
    render_telemetry_overhead(&mut out, series, sinks, render_self);

    out
}

fn render_latency_histograms(out: &mut String, recorder: &InMemoryRecorder) {
    let populated: Vec<(Component, Histogram)> = Component::ALL
        .iter()
        .map(|&c| (c, recorder.timing(c)))
        .filter(|(_, h)| h.count() > 0)
        .collect();
    if populated.is_empty() {
        return;
    }
    write_header(
        out,
        "easeml_component_latency_ns",
        "histogram",
        "Per-component wall-clock latency in nanoseconds.",
    );
    for (component, hist) in &populated {
        let label = escape_label(component.name());
        let mut cumulative = 0u64;
        for (i, &count) in hist.buckets().iter().enumerate() {
            cumulative += count;
            // Trim the long tail of empty buckets past the observed max,
            // but keep every populated edge so quantiles reconstruct.
            if cumulative == 0 && count == 0 {
                continue;
            }
            let Some(upper) = Histogram::bucket_upper_ns(i) else {
                break; // the overflow bucket is covered by +Inf below
            };
            let _ = writeln!(
                out,
                "easeml_component_latency_ns_bucket{{component=\"{label}\",le=\"{upper}\"}} {cumulative}",
            );
            if cumulative == hist.count() {
                break;
            }
        }
        let _ = writeln!(
            out,
            "easeml_component_latency_ns_bucket{{component=\"{label}\",le=\"+Inf\"}} {}",
            hist.count()
        );
        let _ = writeln!(
            out,
            "easeml_component_latency_ns_sum{{component=\"{label}\"}} {}",
            hist.sum_ns()
        );
        let _ = writeln!(
            out,
            "easeml_component_latency_ns_count{{component=\"{label}\"}} {}",
            hist.count()
        );
    }
}

/// A rendered metric family driven by an accessor on a stats group:
/// (family name, HELP text, accessor).
type FamilySpec<S, V> = (&'static str, &'static str, fn(&S) -> V);

/// As [`FamilySpec`], but the accessor borrows a sketch out of the
/// per-strategy group (the elided lifetimes tie input to output).
type SketchFamilySpec = (
    &'static str,
    &'static str,
    fn(&easeml_obs::StrategySketches) -> &easeml_obs::QuantileSketch,
);

/// The sketch-backed bounded families: per-strategy quantiles and top-K
/// offender boards. Body size depends only on the strategy count, the
/// quantile list, and K — never on the tenant population.
fn render_scale_families(out: &mut String, snap: &TimeSeriesSnapshot) {
    let scale = &snap.scale;
    let sketched: Vec<(&String, &easeml_obs::StrategySketches)> = scale
        .strategies
        .iter()
        .filter(|(_, g)| g.regret.count() > 0 || g.cost.count() > 0 || g.quality.count() > 0)
        .collect();
    if !sketched.is_empty() {
        let families: [SketchFamilySpec; 3] = [
            (
                "easeml_regret_quantile",
                "Quantiles of per-run regret observations (target minus quality; censored runs observe full regret).",
                |g| &g.regret,
            ),
            (
                "easeml_cost_quantile",
                "Quantiles of per-run charged cost.",
                |g| &g.cost,
            ),
            (
                "easeml_quality_quantile",
                "Quantiles of per-run observed quality (completed runs).",
                |g| &g.quality,
            ),
        ];
        for (name, help, pick) in families {
            if !sketched.iter().any(|(_, g)| pick(g).count() > 0) {
                continue;
            }
            write_header(out, name, "gauge", help);
            for (strategy, group) in &sketched {
                let sketch = pick(group);
                if sketch.count() == 0 {
                    continue;
                }
                let strategy = escape_label(strategy);
                for (q, q_label) in QUANTILES {
                    let Some(value) = sketch.quantile(q) else {
                        continue;
                    };
                    let _ = writeln!(
                        out,
                        "{name}{{strategy=\"{strategy}\",q=\"{q_label}\"}} {}",
                        fmt_f64(value)
                    );
                }
            }
        }
        write_header(
            out,
            "easeml_run_observations_total",
            "counter",
            "Training-run observations folded into the sketches, by scheduler strategy.",
        );
        for (strategy, group) in &sketched {
            let _ = writeln!(
                out,
                "easeml_run_observations_total{{strategy=\"{}\"}} {}",
                escape_label(strategy),
                group.regret.count()
            );
        }
    }

    for (name, help, board) in [
        (
            "easeml_regret_topk",
            "Worst tenants by cost-weighted regret (Space-Saving over-estimate).",
            &scale.worst_regret,
        ),
        (
            "easeml_cost_topk",
            "Worst tenants by charged cost (Space-Saving over-estimate).",
            &scale.worst_cost,
        ),
    ] {
        if board.is_empty() {
            continue;
        }
        write_header(out, name, "gauge", help);
        for (rank, entry) in board.iter().enumerate() {
            let _ = writeln!(
                out,
                "{name}{{user=\"{}\",rank=\"{}\"}} {}",
                entry.user,
                rank + 1,
                fmt_f64(entry.weight)
            );
        }
    }
}

/// Telemetry self-accounting: what the pipeline itself costs, what the
/// aggregate mode sampled away, and what each sink wrote or lost.
fn render_telemetry_overhead(
    out: &mut String,
    series: Option<&TimeSeriesSnapshot>,
    sinks: &[(String, SinkStats)],
    render_self: (u64, u64),
) {
    write_header(
        out,
        "easeml_telemetry_overhead_ns_total",
        "counter",
        "Wall-clock nanoseconds the telemetry pipeline spent on itself, per component.",
    );
    if let Some(snap) = series {
        let _ = writeln!(
            out,
            "easeml_telemetry_overhead_ns_total{{component=\"timeseries/fold\"}} {}",
            snap.scale.overhead.fold_ns
        );
    }
    let _ = writeln!(
        out,
        "easeml_telemetry_overhead_ns_total{{component=\"http/render\"}} {}",
        render_self.0
    );
    for (name, stats) in sinks {
        let _ = writeln!(
            out,
            "easeml_telemetry_overhead_ns_total{{component=\"sink/{}\"}} {}",
            escape_label(name),
            stats.append_ns
        );
    }

    if let Some(snap) = series {
        let overhead = &snap.scale.overhead;
        write_header(
            out,
            "easeml_telemetry_events_total",
            "counter",
            "Events folded by the time-series recorder, by disposition: sampled \
             events updated an exemplar tenant series, dropped events reached \
             only the bounded sketches.",
        );
        let _ = writeln!(
            out,
            "easeml_telemetry_events_total{{disposition=\"folded\"}} {}",
            overhead.events_folded
        );
        let _ = writeln!(
            out,
            "easeml_telemetry_events_total{{disposition=\"sampled\"}} {}",
            overhead.events_sampled
        );
        let _ = writeln!(
            out,
            "easeml_telemetry_events_total{{disposition=\"dropped\"}} {}",
            overhead.events_dropped
        );

        write_header(
            out,
            "easeml_telemetry_exemplar_evictions_total",
            "counter",
            "Exemplar tenant curves evicted by reservoir replacement.",
        );
        let _ = writeln!(
            out,
            "easeml_telemetry_exemplar_evictions_total {}",
            overhead.exemplar_evictions
        );
    }

    write_header(
        out,
        "easeml_telemetry_renders_total",
        "counter",
        "Completed /metrics renders.",
    );
    let _ = writeln!(out, "easeml_telemetry_renders_total {}", render_self.1);

    if let Some(snap) = series {
        write_header(
            out,
            "easeml_telemetry_state_bytes",
            "gauge",
            "Approximate in-memory footprint of the time-series recorder.",
        );
        let _ = writeln!(
            out,
            "easeml_telemetry_state_bytes {}",
            snap.scale.approx_state_bytes
        );
    }

    if !sinks.is_empty() {
        render_sink_stats(out, sinks);
    }
}

/// Per-sink write/loss counters, so silent trace loss shows on `/metrics`.
fn render_sink_stats(out: &mut String, sinks: &[(String, SinkStats)]) {
    let families: [FamilySpec<SinkStats, u64>; 4] = [
        (
            "easeml_sink_bytes_total",
            "Bytes written by the sink across all rotated segments.",
            |s| s.bytes_total,
        ),
        (
            "easeml_sink_lines_total",
            "Event lines written by the sink across all rotated segments.",
            |s| s.lines_total,
        ),
        (
            "easeml_sink_dropped_total",
            "Event lines dropped by the sink on I/O errors (trace loss).",
            |s| s.dropped,
        ),
        (
            "easeml_sink_rotations_total",
            "Segment rotations performed by the sink.",
            |s| s.rotations,
        ),
    ];
    for (name, help, pick) in families {
        write_header(out, name, "counter", help);
        for (sink, stats) in sinks {
            let _ = writeln!(
                out,
                "{name}{{sink=\"{}\"}} {}",
                escape_label(sink),
                pick(stats)
            );
        }
    }
}

fn render_series(out: &mut String, snap: &TimeSeriesSnapshot, opts: &RenderOptions) {
    write_header(
        out,
        "easeml_sim_clock",
        "gauge",
        "Simulated clock: cumulative cost across all completed runs.",
    );
    let _ = writeln!(out, "easeml_sim_clock {}", fmt_f64(snap.clock));

    write_header(
        out,
        "easeml_rounds_total",
        "counter",
        "Completed training runs.",
    );
    let _ = writeln!(out, "easeml_rounds_total {}", snap.rounds);

    write_header(
        out,
        "easeml_failed_rounds_total",
        "counter",
        "Failed (censored) training runs: charged but unobserved.",
    );
    let _ = writeln!(out, "easeml_failed_rounds_total {}", snap.failed_rounds);

    write_header(
        out,
        "easeml_scheduler_decisions_total",
        "counter",
        "Scheduler user-picking decisions.",
    );
    let _ = writeln!(out, "easeml_scheduler_decisions_total {}", snap.decisions);

    write_header(
        out,
        "easeml_fallback_active",
        "gauge",
        "1 once the hybrid scheduler has switched to round robin.",
    );
    let _ = writeln!(
        out,
        "easeml_fallback_active {}",
        u8::from(snap.fallback_active)
    );

    write_header(
        out,
        "easeml_fallback_rate",
        "gauge",
        "Fraction of scheduler decisions taken in fallback mode.",
    );
    let _ = writeln!(
        out,
        "easeml_fallback_rate {}",
        fmt_f64(snap.fallback_rate())
    );

    render_scale_families(out, snap);

    write_header(
        out,
        "easeml_tracked_tenants",
        "gauge",
        "Tenants with a materialized per-user series (exemplars only in aggregate mode).",
    );
    let _ = writeln!(out, "easeml_tracked_tenants {}", snap.users.len());

    if snap.users.is_empty() {
        return;
    }
    // Cardinality guard: unbounded per-tenant families are opt-in via the
    // cap. Past it, the bounded families above are the whole story.
    if snap.users.len() > opts.per_user_cap {
        let _ = writeln!(
            out,
            "# easeml_user_* families suppressed: {} tenants exceed per_user_cap {}; \
             use the quantile and top-K families instead.",
            snap.users.len(),
            opts.per_user_cap
        );
        return;
    }

    write_header(
        out,
        "easeml_user_regret",
        "gauge",
        "Per-tenant regret: target quality minus best quality reached.",
    );
    for (user, series) in &snap.users {
        let _ = writeln!(
            out,
            "easeml_user_regret{{user=\"{user}\"}} {}",
            fmt_f64(series.regret())
        );
    }

    write_header(
        out,
        "easeml_user_best_quality",
        "gauge",
        "Per-tenant best model quality reached so far.",
    );
    for (user, series) in &snap.users {
        let _ = writeln!(
            out,
            "easeml_user_best_quality{{user=\"{user}\"}} {}",
            fmt_f64(series.best_quality)
        );
    }

    write_header(
        out,
        "easeml_user_cost_total",
        "counter",
        "Per-tenant cumulative training cost.",
    );
    for (user, series) in &snap.users {
        let _ = writeln!(
            out,
            "easeml_user_cost_total{{user=\"{user}\"}} {}",
            fmt_f64(series.cumulative_cost)
        );
    }

    write_header(
        out,
        "easeml_user_served_total",
        "counter",
        "Per-tenant completed training runs.",
    );
    for (user, series) in &snap.users {
        let _ = writeln!(
            out,
            "easeml_user_served_total{{user=\"{user}\"}} {}",
            series.served
        );
    }

    write_header(
        out,
        "easeml_user_failed_runs_total",
        "counter",
        "Per-tenant failed (censored) training runs.",
    );
    for (user, series) in &snap.users {
        let _ = writeln!(
            out,
            "easeml_user_failed_runs_total{{user=\"{user}\"}} {}",
            series.failed
        );
    }

    write_header(
        out,
        "easeml_user_arm_pulls_total",
        "counter",
        "Per-tenant training runs per model (arm).",
    );
    for (user, series) in &snap.users {
        for (arm, pulls) in &series.arm_pulls {
            let _ = writeln!(
                out,
                "easeml_user_arm_pulls_total{{user=\"{user}\",arm=\"{arm}\"}} {pulls}"
            );
        }
    }
}

fn write_header(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Escapes a Prometheus label value: backslash, double quote, newline.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders the `/explain` aggregate decision-health report as one JSON
/// object: committed round / censor / tie counts, margin distributions,
/// and per-path / per-fallback tallies. Works off committed
/// [`WitnessRecord`]s only, so a summary scraped mid-round never counts a
/// torn witness.
pub fn render_explain_summary(records: &[WitnessRecord]) -> String {
    let censored = records.iter().filter(|r| r.censored).count();
    let ties = records
        .iter()
        .filter(|r| r.arm_margin.is_finite() && r.arm_margin.abs() < 1e-12)
        .count();
    // Small-cardinality tallies (one entry per decision path / fault
    // kind), keyed by first appearance so the output order is stable.
    let mut paths: Vec<(&str, usize, usize)> = Vec::new();
    let mut fallbacks: Vec<(&str, usize)> = Vec::new();
    for r in records {
        match paths.iter_mut().find(|(p, _, _)| *p == r.path) {
            Some((_, n, c)) => {
                *n += 1;
                *c += usize::from(r.censored);
            }
            None => paths.push((&r.path, 1, usize::from(r.censored))),
        }
        if !r.fallback.is_empty() {
            match fallbacks.iter_mut().find(|(k, _)| *k == r.fallback) {
                Some((_, n)) => *n += 1,
                None => fallbacks.push((&r.fallback, 1)),
            }
        }
    }
    let mut out = String::from("{\"schema\":\"easeml-explain\"");
    let _ = write!(
        out,
        ",\"rounds\":{},\"censored\":{censored},\"ties\":{ties}",
        records.len()
    );
    match records.last() {
        Some(r) => {
            let _ = write!(out, ",\"last_digest\":\"{}\"", escape_json(&r.digest));
        }
        None => out.push_str(",\"last_digest\":null"),
    }
    write_margin_stats(
        &mut out,
        "user_margin",
        records.iter().map(|r| r.user_margin),
    );
    write_margin_stats(&mut out, "arm_margin", records.iter().map(|r| r.arm_margin));
    out.push_str(",\"paths\":[");
    for (i, (path, n, c)) in paths.iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"path\":\"{}\",\"rounds\":{n},\"censored\":{c}}}",
            if i > 0 { "," } else { "" },
            escape_json(path)
        );
    }
    out.push_str("],\"fallbacks\":[");
    for (i, (kind, n)) in fallbacks.iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"kind\":\"{}\",\"count\":{n}}}",
            if i > 0 { "," } else { "" },
            escape_json(kind)
        );
    }
    out.push_str("]}");
    out
}

/// Appends `,"<name>":{"count":..,"min":..,"median":..,"max":..}` over the
/// finite margins, or `,"<name>":null` when no round scored.
fn write_margin_stats(out: &mut String, name: &str, margins: impl Iterator<Item = f64>) {
    let mut finite: Vec<f64> = margins.filter(|m| m.is_finite()).collect();
    if finite.is_empty() {
        let _ = write!(out, ",\"{name}\":null");
        return;
    }
    finite.sort_by(f64::total_cmp);
    let _ = write!(
        out,
        ",\"{name}\":{{\"count\":{},\"min\":{},\"median\":{},\"max\":{}}}",
        finite.len(),
        finite[0],
        finite[finite.len() / 2],
        finite[finite.len() - 1]
    );
}

/// Escapes a JSON string value: backslash, double quote, and control
/// characters (`\u00XX`).
fn escape_json(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Prometheus float formatting: finite values via Rust's shortest form,
/// non-finite as `NaN` / `+Inf` / `-Inf`.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeml_obs::{Event, Recorder, TimeSeriesRecorder};

    fn sample_recorder() -> InMemoryRecorder {
        let r = InMemoryRecorder::new();
        r.record(Event::TrainingCompleted {
            user: 0,
            model: 2,
            cost: 1.5,
            quality: 0.7,
            parent: 0,
        });
        r.add_counter("rounds", 3);
        r.set_gauge("budget-left", 0.25);
        r.record_timing(Component::SchedulerPick, 900);
        r.record_timing(Component::SchedulerPick, 5_000);
        r
    }

    #[test]
    fn metrics_cover_events_counters_gauges() {
        let text = render_metrics(&sample_recorder(), None);
        assert!(text.contains("easeml_events_total 1"), "{text}");
        assert!(
            text.contains("easeml_events_by_type_total{type=\"TrainingCompleted\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("easeml_counter_total{name=\"rounds\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("easeml_gauge{name=\"budget-left\"} 0.25"),
            "{text}"
        );
        // Every exposed metric family carries HELP/TYPE headers.
        for family in [
            "easeml_events_total",
            "easeml_counter_total",
            "easeml_gauge",
            "easeml_component_latency_ns",
        ] {
            assert!(text.contains(&format!("# HELP {family} ")), "{family}");
            assert!(text.contains(&format!("# TYPE {family} ")), "{family}");
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_close_with_inf() {
        let text = render_metrics(&sample_recorder(), None);
        // 900ns lands in [512,1024), 5000ns in [4096,8192): the le="1024"
        // bucket holds 1 cumulative sample, le="8192" both.
        assert!(
            text.contains(
                "easeml_component_latency_ns_bucket{component=\"sched/pick\",le=\"1024\"} 1"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "easeml_component_latency_ns_bucket{component=\"sched/pick\",le=\"8192\"} 2"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "easeml_component_latency_ns_bucket{component=\"sched/pick\",le=\"+Inf\"} 2"
            ),
            "{text}"
        );
        assert!(
            text.contains("easeml_component_latency_ns_sum{component=\"sched/pick\"} 5900"),
            "{text}"
        );
        assert!(
            text.contains("easeml_component_latency_ns_count{component=\"sched/pick\"} 2"),
            "{text}"
        );
        // Untimed components are omitted entirely.
        assert!(!text.contains("cholesky/factor"), "{text}");
    }

    #[test]
    fn series_metrics_expose_per_user_regret() {
        let ts = TimeSeriesRecorder::new();
        ts.set_target(0, 0.9);
        ts.fold(&Event::TrainingCompleted {
            user: 0,
            model: 2,
            cost: 1.0,
            quality: 0.4, // 0.9 - 0.4 is exactly representable (0.5)
            parent: 0,
        });
        ts.fold(&Event::TrainingCompleted {
            user: 1,
            model: 0,
            cost: 2.0,
            quality: 0.75,
            parent: 0,
        });
        ts.fold(&Event::TrainingFailed {
            user: 1,
            model: 0,
            cost: 0.5,
            kind: "timeout".into(),
            attempt: 1,
            parent: 0,
        });
        let text = render_metrics(&InMemoryRecorder::new(), Some(&ts.snapshot()));
        assert!(
            text.contains("easeml_user_regret{user=\"0\"} 0.5"),
            "{text}"
        );
        assert!(
            text.contains("easeml_user_regret{user=\"1\"} 0.25"),
            "{text}"
        );
        assert!(
            text.contains("easeml_user_cost_total{user=\"1\"} 2.5"),
            "{text}"
        );
        assert!(text.contains("easeml_failed_rounds_total 1"), "{text}");
        assert!(
            text.contains("easeml_user_failed_runs_total{user=\"1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("easeml_user_arm_pulls_total{user=\"0\",arm=\"2\"} 1"),
            "{text}"
        );
        assert!(text.contains("easeml_sim_clock 3.5"), "{text}");
        assert!(text.contains("easeml_fallback_active 0"), "{text}");
    }

    #[test]
    fn scale_families_render_quantiles_topk_and_overhead() {
        let ts = TimeSeriesRecorder::new();
        ts.fold(&Event::SchedulerDecision {
            round: 0,
            user: 0,
            rule: "hybrid".into(),
            scores: vec![],
            parent: 0,
        });
        for i in 0..20 {
            ts.fold(&Event::TrainingCompleted {
                user: i % 3,
                model: i % 2,
                cost: 1.0 + i as f64 * 0.1,
                quality: 0.5,
                parent: 0,
            });
        }
        let text = render_metrics(&InMemoryRecorder::new(), Some(&ts.snapshot()));
        for family in [
            "easeml_regret_quantile{strategy=\"hybrid\",q=\"0.5\"}",
            "easeml_cost_quantile{strategy=\"hybrid\",q=\"0.99\"}",
            "easeml_quality_quantile{strategy=\"hybrid\",q=\"0.9\"}",
            "easeml_run_observations_total{strategy=\"hybrid\"} 20",
            "easeml_regret_topk{user=\"",
            "easeml_cost_topk{user=\"",
            "easeml_telemetry_overhead_ns_total{component=\"timeseries/fold\"}",
            "easeml_telemetry_events_total{disposition=\"folded\"} 21",
            "easeml_telemetry_events_total{disposition=\"sampled\"} 20",
            "easeml_telemetry_state_bytes",
            "easeml_tracked_tenants 3",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
        // All runs hit quality 0.5 → the regret p50 is ~0.5 within alpha.
        let line = text
            .lines()
            .find(|l| l.starts_with("easeml_regret_quantile{strategy=\"hybrid\",q=\"0.5\"}"))
            .unwrap();
        let value: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!((value - 0.5).abs() <= 0.01 * 0.5 + 1e-9, "{line}");
    }

    #[test]
    fn per_user_families_are_suppressed_past_the_cap() {
        let ts = TimeSeriesRecorder::new();
        for user in 0..5 {
            ts.fold(&Event::TrainingCompleted {
                user,
                model: 0,
                cost: 1.0,
                quality: 0.5,
                parent: 0,
            });
        }
        let snap = ts.snapshot();
        let opts = RenderOptions { per_user_cap: 3 };
        let capped = render_metrics_full(&InMemoryRecorder::new(), Some(&snap), &[], (0, 0), &opts);
        // Bounded families still render; unbounded per-user ones do not.
        assert!(!capped.contains("easeml_user_regret{"), "{capped}");
        assert!(!capped.contains("easeml_user_arm_pulls_total{"), "{capped}");
        assert!(capped.contains("easeml_regret_quantile{"), "{capped}");
        assert!(capped.contains("easeml_tracked_tenants 5"), "{capped}");
        assert!(
            capped.contains("# easeml_user_* families suppressed: 5 tenants"),
            "{capped}"
        );
        // Under the cap the per-user families come back.
        let open = render_metrics_full(
            &InMemoryRecorder::new(),
            Some(&snap),
            &[],
            (0, 0),
            &RenderOptions { per_user_cap: 5 },
        );
        assert!(open.contains("easeml_user_regret{user=\"4\"}"), "{open}");
    }

    #[test]
    fn sink_stats_and_render_self_accounting_render() {
        let sinks = vec![(
            "trace".to_string(),
            SinkStats {
                bytes_total: 4096,
                lines_total: 37,
                dropped: 2,
                rotations: 1,
                append_ns: 999,
            },
        )];
        let ts = TimeSeriesRecorder::new();
        let text = render_metrics_full(
            &InMemoryRecorder::new(),
            Some(&ts.snapshot()),
            &sinks,
            (12345, 7),
            &RenderOptions::default(),
        );
        for line in [
            "easeml_sink_bytes_total{sink=\"trace\"} 4096",
            "easeml_sink_lines_total{sink=\"trace\"} 37",
            "easeml_sink_dropped_total{sink=\"trace\"} 2",
            "easeml_sink_rotations_total{sink=\"trace\"} 1",
            "easeml_telemetry_overhead_ns_total{component=\"sink/trace\"} 999",
            "easeml_telemetry_overhead_ns_total{component=\"http/render\"} 12345",
            "easeml_telemetry_renders_total 7",
        ] {
            assert!(text.contains(line), "missing {line} in:\n{text}");
        }
        // Without a series snapshot the sink families still render.
        let bare = render_metrics_full(
            &InMemoryRecorder::new(),
            None,
            &sinks,
            (0, 0),
            &RenderOptions::default(),
        );
        assert!(
            bare.contains("easeml_sink_dropped_total{sink=\"trace\"} 2"),
            "{bare}"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("plain/name"), "plain/name");
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn float_formatting_is_prometheus_compatible() {
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(f64::NAN), "NaN");
        assert_eq!(fmt_f64(f64::INFINITY), "+Inf");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "-Inf");
    }

    #[test]
    fn explain_summary_tallies_paths_fallbacks_and_margins() {
        let record = |round: u64, path: &str, fallback: &str, arm_margin: f64| WitnessRecord {
            round,
            user: 0,
            arm: 1,
            user_margin: 0.5,
            arm_margin,
            path: path.to_string(),
            fallback: fallback.to_string(),
            censored: !fallback.is_empty(),
            candidates: 2,
            digest: format!("{round:016x}"),
            top_users: Vec::new(),
            top_arms: Vec::new(),
        };
        let records = [
            record(0, "greedy(max-gap)", "", 0.2),
            record(1, "greedy(max-gap)", "crash", 0.0),
            record(2, "round-robin", "", f64::NAN),
        ];
        let body = render_explain_summary(&records);
        easeml_obs::json::parse(&body).unwrap();
        assert!(body.contains("\"rounds\":3"), "{body}");
        assert!(body.contains("\"censored\":1"), "{body}");
        assert!(body.contains("\"ties\":1"), "{body}");
        assert!(
            body.contains("\"last_digest\":\"0000000000000002\""),
            "{body}"
        );
        // NaN margins are excluded from the distribution, not emitted.
        assert!(
            body.contains("\"arm_margin\":{\"count\":2,\"min\":0,\"median\":0.2,\"max\":0.2}"),
            "{body}"
        );
        assert!(
            body.contains("{\"path\":\"greedy(max-gap)\",\"rounds\":2,\"censored\":1}"),
            "{body}"
        );
        assert!(
            body.contains("\"fallbacks\":[{\"kind\":\"crash\",\"count\":1}]"),
            "{body}"
        );

        let empty = render_explain_summary(&[]);
        easeml_obs::json::parse(&empty).unwrap();
        assert!(empty.contains("\"rounds\":0"), "{empty}");
        assert!(empty.contains("\"last_digest\":null"), "{empty}");
        assert!(empty.contains("\"user_margin\":null"), "{empty}");
    }
}
